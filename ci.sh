#!/usr/bin/env bash
# Repo CI gate: release build, full test suite, and lint-clean clippy.
# Run from the repo root. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo clippy -- -D warnings
