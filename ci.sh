#!/usr/bin/env bash
# Repo CI gate: release build, full test suite (debug + release, so the
# concurrency-sensitive stress tests run optimized too), lint-clean
# clippy, and warning-free docs. Run from the repo root. Fails fast on
# the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo test --release -q
# Parallel experiment engine: determinism across worker counts, and the
# scaling smoke (which itself asserts parallel output is byte-identical
# to the serial reference before reporting any timing).
SAL_JOBS=2 cargo test --release -q -p sal-bench --test parallel_determinism
cargo run --release -q -p sal-bench --bin expscale -- --smoke
# Step-lease scheduler: every artifact must be byte-identical at every
# lease cap. The suite sweeps caps internally; the SAL_LEASE runs also
# pin the *ambient* default (harness literals, sweep defaults) to the
# legacy per-step path and to a capped path. The simscale smoke asserts
# leased output matches the per-step reference before timing anything.
SAL_LEASE=1 cargo test --release -q -p sal-bench --test lease_determinism
SAL_LEASE=64 cargo test --release -q -p sal-bench --test lease_determinism
cargo run --release -q -p sal-bench --bin simscale -- --smoke
# Facade/core split: the monomorphized LockCore path and the erased
# AbortableLock path must produce identical simulations, and the native
# hardware bench (writes BENCH_hwscale.json at the repo root) must run.
cargo test --release -q -p sal-bench --test mono_equivalence
cargo run --release -q -p sal-bench --bin hwscale -- --smoke
# Conditional critical sections: the lock_when/await_when API and the
# deadline abort path on real threads, plus the wakeup-storm bench
# (writes BENCH_ccs.json; asserts evaluate < broadcast on prodcons and
# the per-cell invariants internally). The SAL_LEASE=1 run keeps the
# legacy per-step gate covered on the CCS suite too.
cargo test --release -q -p sal-bench --test ccs_api --test deadline_locking
SAL_LEASE=1 cargo test --release -q -p sal-bench --test ccs_api
cargo run --release -q -p sal-bench --bin ccsscale -- --smoke
# Async surface: resumable enter core + AsyncAbortableMutex, where
# dropping a pending lock future runs the bounded abort. The harness
# cancels at every poll depth and the storm bench (writes
# BENCH_async.json at the repo root) asserts the ≤300-op abort bound
# and zero leakage. Run under the default and the SAL_LEASE=1 legacy
# gate like the CCS suite. Unsafe code in the waker plumbing is held to
# clippy::undocumented_unsafe_blocks (enforced via the workspace lints
# through `cargo clippy -- -D warnings` below).
cargo test --release -q -p sal-bench --test async_mutex --test async_cancellation
SAL_LEASE=1 cargo test --release -q -p sal-bench --test async_mutex --test async_cancellation
cargo run --release -q -p sal-bench --bin asyncscale -- --smoke
# Keyed lock arena: the inline-word protocol is model-checked over
# every interleaving (arena_protocol), the public surface stressed on
# real threads (arena_api + the sal-sync unit suite), both under the
# default config and the SAL_LEASE=1 legacy gate. The arenascale smoke
# (writes BENCH_arena.json at the repo root) asserts per-cell
# lost-update and zero-leak invariants internally; the greps below pin
# that the artifact actually records the resident-object bounds.
cargo test --release -q -p sal-bench --test arena_protocol --test arena_api
SAL_LEASE=1 cargo test --release -q -p sal-bench --test arena_protocol --test arena_api
cargo test --release -q -p sal-sync arena
SAL_LEASE=1 cargo test --release -q -p sal-sync arena
cargo run --release -q -p sal-bench --bin arenascale -- --smoke
grep -q '"max_built_cores_at_max_keys"' BENCH_arena.json
grep -q '"resident_bounded":true' BENCH_arena.json
# Guided schedule search: DPOR pruning and best-first must agree with
# exhaustive BFS on every verdict (and least canonical witness) — run
# the equivalence suite under the default and the SAL_LEASE=1 legacy
# gate, then the explorescale smoke (equivalence gate + states/sec
# grid + RMR witness hunt, writes BENCH_explore.json at the repo root)
# and pin that the artifact records the acceptance verdict.
cargo test --release -q -p sal-bench --test systematic_exploration --test guided_search
SAL_LEASE=1 cargo test --release -q -p sal-bench --test systematic_exploration --test guided_search
cargo run --release -q -p sal-bench --bin explorescale -- --smoke
grep -q '"target_met":true' BENCH_explore.json
# Amortized accounting + the Jayanti–Jayanti constant-amortized lock:
# the aggregate must reconcile bit-exactly with the memory's RMR
# counters (amortized_accounting) and the cumulative bill must obey the
# debt ledger total ≤ c·passages + b (rmr_bounds) — under the default
# and the SAL_LEASE=1 legacy gate. The table1 smoke runs the M9
# amortized experiment (writes BENCH_table1.json at the repo root);
# the greps pin that the artifact carries the measured amortized
# column and the acceptance verdict.
cargo test --release -q -p sal-bench --test amortized_accounting --test rmr_bounds
SAL_LEASE=1 cargo test --release -q -p sal-bench --test amortized_accounting --test rmr_bounds
cargo run --release -q -p sal-bench --bin table1 -- --smoke
grep -q '"amortized_rmrs"' BENCH_table1.json
grep -q '"target_met":true' BENCH_table1.json
cargo fmt --check
cargo clippy -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q
