#!/usr/bin/env bash
# Repo CI gate: release build, full test suite (debug + release, so the
# concurrency-sensitive stress tests run optimized too), lint-clean
# clippy, and warning-free docs. Run from the repo root. Fails fast on
# the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo test --release -q
# Parallel experiment engine: determinism across worker counts, and the
# scaling smoke (which itself asserts parallel output is byte-identical
# to the serial reference before reporting any timing).
SAL_JOBS=2 cargo test --release -q -p sal-bench --test parallel_determinism
cargo run --release -q -p sal-bench --bin expscale -- --smoke
cargo clippy -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q
