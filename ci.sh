#!/usr/bin/env bash
# Repo CI gate: release build, full test suite (debug + release, so the
# concurrency-sensitive stress tests run optimized too), lint-clean
# clippy, and warning-free docs. Run from the repo root. Fails fast on
# the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo test --release -q
cargo clippy -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q
