//! Lee-style F&A + SWAP abortable array lock (Lee, OPODIS 2010 row of
//! Table 1).
//!
//! An Anderson-style array queue: the F&A doorway assigns slot `i`; the
//! process spins on `slot[i]` until granted. An aborter SWAPs the
//! abandoned marker into its slot — if the SWAP returns *granted*, the
//! abort crossed paths with a handoff and the aborter forwards the grant
//! itself. A granter (exiting process or forwarding aborter) SWAPs the
//! grant into successive slots, skipping those that come back abandoned.
//!
//! Cost profile (Table 1, Lee \[19\] row):
//!
//! * `O(1)` RMRs when nobody aborts;
//! * a handoff walks the run of abandoned slots in front of it, and an
//!   aborted passage may additionally inherit and forward a handoff —
//!   `O(A_i · A_t)`-flavoured adaptive cost, `O(N²)`-flavoured worst
//!   case;
//! * FCFS (the F&A doorway orders everyone).
//!
//! Fidelity note: Lee's real algorithm bounds space at `O(N²)` via slot
//! recycling; ours uses a pre-sized arena (one slot per attempt) to keep
//! the protocol minimal — the RMR profile, which is what Table 1
//! compares, is unaffected.

use sal_core::{LockCore, LockMeta, Outcome};
use sal_memory::{AbortSignal, Mem, MemoryBuilder, Pid, WordArray, WordId};
use sal_obs::{probed, Probe};
use std::sync::Mutex;

const PENDING: u64 = 0;
const GRANTED: u64 = 1;
const ABANDONED: u64 = 2;

/// Lee-style abortable F&A array lock. `capacity` bounds total enter
/// attempts.
#[derive(Debug)]
pub struct LeeLock {
    tail: WordId,
    slots: WordArray,
    holding: Vec<Mutex<u64>>,
}

impl LeeLock {
    /// Lay out the lock for `n` processes and at most `capacity` enter
    /// attempts.
    pub fn layout(b: &mut MemoryBuilder, n: usize, capacity: usize) -> Self {
        assert!(n >= 1 && capacity >= 1);
        LeeLock {
            tail: b.alloc(0),
            // Slot 0 is granted from the start.
            slots: b.alloc_array_with(capacity, |i| (0, if i == 0 { GRANTED } else { PENDING })),
            holding: (0..n).map(|_| Mutex::new(0)).collect(),
        }
    }

    /// Hand the grant to the first non-abandoned slot after `i`.
    fn grant_next<M: Mem + ?Sized>(&self, mem: &M, p: Pid, i: u64) {
        let mut j = i + 1;
        loop {
            if j as usize >= self.slots.len() {
                // Queue ran off the arena: the grant dies with the run —
                // acceptable only at the very end of an execution; any
                // further attempt would have panicked on the doorway
                // anyway.
                return;
            }
            let prev = mem.swap(p, self.slots.at(j as usize), GRANTED);
            match prev {
                PENDING => return, // waiter (present or future) now owns it
                ABANDONED => j += 1,
                _ => unreachable!("double grant of slot {j}"),
            }
        }
    }

    /// Attempt to acquire; `false` means aborted.
    pub fn acquire<M, S>(&self, mem: &M, p: Pid, signal: &S) -> bool
    where
        M: Mem + ?Sized,
        S: AbortSignal + ?Sized,
    {
        let i = mem.faa(p, self.tail, 1);
        assert!(
            (i as usize) < self.slots.len(),
            "LeeLock arena exhausted ({} attempts)",
            self.slots.len()
        );
        while mem.read(p, self.slots.at(i as usize)) == PENDING {
            if signal.is_set() {
                let prev = mem.swap(p, self.slots.at(i as usize), ABANDONED);
                if prev == GRANTED {
                    // The handoff raced our abort: forward it.
                    self.grant_next(mem, p, i);
                }
                return false;
            }
        }
        *self.holding[p].lock().unwrap() = i;
        true
    }

    /// Release.
    pub fn release<M: Mem + ?Sized>(&self, mem: &M, p: Pid) {
        let i = *self.holding[p].lock().unwrap();
        self.grant_next(mem, p, i);
    }
}

impl LockMeta for LeeLock {
    fn name(&self) -> String {
        "lee".into()
    }
}

impl<M: Mem + ?Sized, P: Probe + ?Sized> LockCore<M, P> for LeeLock {
    fn enter_core<S: AbortSignal + ?Sized>(
        &self,
        mem: &M,
        p: Pid,
        signal: &S,
        probe: &P,
    ) -> Outcome {
        probe.enter_begin(p);
        if self.acquire(&probed(mem, probe), p, signal) {
            probe.enter_end(p, None);
            Outcome::Entered { ticket: None }
        } else {
            probe.abort(p, None);
            Outcome::Aborted { ticket: None }
        }
    }

    fn exit_core(&self, mem: &M, p: Pid, probe: &P) {
        self.release(&probed(mem, probe), p);
        probe.cs_exit(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sal_memory::{AbortFlag, NeverAbort, RmrProbe};
    use sal_runtime::{run_lock, ProcPlan, RandomSchedule, WorkloadSpec};

    fn build(n: usize, cap: usize) -> (LeeLock, WordId, sal_memory::CcMemory) {
        let mut b = MemoryBuilder::new();
        let lock = LeeLock::layout(&mut b, n, cap);
        let cs = b.alloc(0);
        (lock, cs, b.build_cc(n))
    }

    #[test]
    fn serial_reuse() {
        let (lock, _, mem) = build(1, 16);
        for _ in 0..5 {
            assert!(lock.acquire(&mem, 0, &NeverAbort));
            lock.release(&mem, 0);
        }
    }

    #[test]
    fn abandoned_slots_are_skipped_by_the_granter() {
        let (lock, _, mem) = build(4, 16);
        assert!(lock.acquire(&mem, 0, &NeverAbort));
        let sig = AbortFlag::new();
        sig.set();
        assert!(!lock.acquire(&mem, 1, &sig));
        assert!(!lock.acquire(&mem, 2, &sig));
        lock.release(&mem, 0); // must skip slots 1 and 2
        assert!(lock.acquire(&mem, 3, &NeverAbort));
        lock.release(&mem, 3);
    }

    #[test]
    fn mutual_exclusion_with_aborters_under_random_schedules() {
        for seed in 0..20 {
            let (lock, cs, mem) = build(5, 64);
            let spec = WorkloadSpec {
                plans: vec![
                    ProcPlan::normal(2),
                    ProcPlan::aborter(2, 25),
                    ProcPlan::normal(2),
                    ProcPlan::aborter(2, 35),
                    ProcPlan::normal(2),
                ],
                cs_ops: 2,
                max_steps: 2_000_000,
                lease: sal_runtime::default_lease(),
            };
            let report = run_lock(
                &lock,
                &mem,
                cs,
                &spec,
                Box::new(RandomSchedule::seeded(seed)),
            )
            .unwrap();
            report.assert_safe();
            for p in [0usize, 2, 4] {
                assert_eq!(report.outcomes[p].0, 2, "seed {seed} pid {p}");
            }
        }
    }

    #[test]
    fn no_abort_cost_is_constant() {
        let (lock, _, mem) = build(2, 64);
        let mut max = 0;
        for _ in 0..10 {
            let probe = RmrProbe::start(&mem, 0);
            assert!(lock.acquire(&mem, 0, &NeverAbort));
            lock.release(&mem, 0);
            max = max.max(probe.rmrs(&mem));
        }
        assert!(max <= 8, "no-abort Lee passage should be O(1): {max}");
    }

    #[test]
    fn handoff_cost_scales_with_abandoned_run() {
        let (lock, _, mem) = build(10, 64);
        assert!(lock.acquire(&mem, 0, &NeverAbort));
        let sig = AbortFlag::new();
        sig.set();
        for p in 1..9 {
            assert!(!lock.acquire(&mem, p, &sig));
        }
        // The exit must SWAP through 8 abandoned slots.
        let probe = RmrProbe::start(&mem, 0);
        lock.release(&mem, 0);
        assert!(probe.rmrs(&mem) >= 8, "got {}", probe.rmrs(&mem));
        assert!(lock.acquire(&mem, 9, &NeverAbort));
        lock.release(&mem, 9);
    }

    #[test]
    fn abort_that_inherits_a_grant_forwards_it() {
        let (lock, _, mem) = build(3, 16);
        assert!(lock.acquire(&mem, 0, &NeverAbort));
        // p1 takes slot 1 by hand (the doorway), so we can interleave
        // precisely: grant arrives, then p1 aborts.
        let i = mem.faa(1, lock.tail, 1);
        assert_eq!(i, 1);
        lock.release(&mem, 0); // grants slot 1
                               // Now p1 "notices" an abort signal before reading the grant —
                               // its SWAP returns GRANTED and it must forward to slot 2.
        let sig = AbortFlag::new();
        sig.set();
        // p2 queues first so the forwarded grant has a receiver.
        // (Order within the test is sequential; the protocol tolerates
        // any interleaving.)
        let prev = mem.swap(1, lock.slots.at(1), super::ABANDONED);
        assert_eq!(prev, super::GRANTED);
        lock.grant_next(&mem, 1, 1);
        assert!(lock.acquire(&mem, 2, &NeverAbort));
        lock.release(&mem, 2);
    }

    #[test]
    #[should_panic(expected = "arena exhausted")]
    fn capacity_overflow_panics() {
        let (lock, _, mem) = build(1, 2);
        for _ in 0..5 {
            assert!(lock.acquire(&mem, 0, &NeverAbort));
            lock.release(&mem, 0);
        }
    }
}
