//! # sal-baselines — the competitor locks of Table 1, plus classics
//!
//! Every lock the paper compares against (and the classic non-abortable
//! locks used for context), implemented over the same [`sal_memory::Mem`]
//! primitive set and the same [`sal_core::AbortableLock`] interface as
//! the paper's algorithm, so the Table-1 benchmarks can drive them
//! interchangeably (and observe them through any [`sal_obs::Probe`]):
//!
//! | Module | Table-1 row | Primitives | RMR profile |
//! |---|---|---|---|
//! | [`mcs`] | — (classic) | SWAP, CAS | `O(1)`, not abortable |
//! | [`ticket`] | — (classic) | F&A | `O(N)` under contention, not abortable |
//! | [`tas`] | — (classic) | CAS | unbounded, abortable |
//! | [`tournament`] | Jayanti \[17\] (shape) | read/write | `O(log N)` worst case *and* no-abort |
//! | [`scott`] | Scott \[24\] | SWAP | unbounded worst case, `O(1)` no-abort, `O(#A)` adaptive |
//! | [`lee`] | Lee \[19\] | F&A, SWAP | `O(A²)`-profile, `O(1)` no-abort |
//!
//! ### Fidelity notes
//!
//! The paper gives no pseudo-code for the competitors; `scott`, `lee` and
//! `tournament` are reconstructions that use the same primitive sets and
//! reproduce the cost *profiles* of their Table-1 rows (see each module's
//! docs for the exact protocol and deviations). `tournament` does not
//! implement Jayanti's f-array point-contention adaptivity — its cost is
//! a clean `Θ(log N)` in all cases, which is precisely the curve the
//! paper's `O(log_W N)` result is compared against.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod lee;
pub mod mcs;
pub mod scott;
pub mod tas;
pub mod ticket;
pub mod tournament;

pub use lee::LeeLock;
pub use mcs::McsLock;
pub use scott::ScottLock;
pub use tas::TasLock;
pub use ticket::TicketLock;
pub use tournament::TournamentLock;
