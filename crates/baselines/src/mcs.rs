//! The Mellor-Crummey–Scott queue lock (TOCS 1991) — the canonical
//! `O(1)`-RMR, non-abortable lock the paper cites as the witness that
//! extra primitives (SWAP) beat the `Ω(log N)` lower bound for plain
//! mutual exclusion.

use sal_core::{LockCore, LockMeta, Outcome};
use sal_memory::{AbortSignal, Mem, MemoryBuilder, Pid, WordArray, WordId};
use sal_obs::{probed, Probe};

/// Encoding of queue-node pointers: `0` is nil, `p + 1` is process `p`'s
/// node.
const NIL: u64 = 0;

/// MCS list-based queue lock. Each process owns one queue node
/// (`next[p]`, `locked[p]`); the `tail` word holds the queue's end.
/// Spinning is on the process's own `locked` word, so a passage costs
/// `O(1)` RMRs in the CC model regardless of contention. Long-lived and
/// starvation-free; **not** abortable.
#[derive(Clone, Debug)]
pub struct McsLock {
    tail: WordId,
    next: WordArray,
    locked: WordArray,
}

impl McsLock {
    /// Lay out the lock for `n` processes.
    pub fn layout(b: &mut MemoryBuilder, n: usize) -> Self {
        assert!(n >= 1);
        McsLock {
            tail: b.alloc(NIL),
            next: b.alloc_array(n, NIL),
            locked: b.alloc_array(n, 0),
        }
    }

    /// Acquire the lock (never aborts).
    pub fn acquire<M: Mem + ?Sized>(&self, mem: &M, p: Pid) {
        mem.write(p, self.next.at(p), NIL);
        let pred = mem.swap(p, self.tail, p as u64 + 1);
        if pred != NIL {
            // Flag must be raised before linking, or the handoff write
            // could be lost.
            mem.write(p, self.locked.at(p), 1);
            mem.write(p, self.next.at(pred as usize - 1), p as u64 + 1);
            while mem.read(p, self.locked.at(p)) == 1 {}
        }
    }

    /// Release the lock.
    pub fn release<M: Mem + ?Sized>(&self, mem: &M, p: Pid) {
        if mem.read(p, self.next.at(p)) == NIL {
            // No visible successor: try to swing the tail back to nil.
            if mem.cas(p, self.tail, p as u64 + 1, NIL) {
                return;
            }
            // A successor is mid-link; wait for it to appear.
            while mem.read(p, self.next.at(p)) == NIL {}
        }
        let succ = mem.read(p, self.next.at(p));
        mem.write(p, self.locked.at(succ as usize - 1), 0);
    }
}

impl LockMeta for McsLock {
    fn name(&self) -> String {
        "mcs".into()
    }

    fn is_abortable(&self) -> bool {
        false
    }
}

impl<M: Mem + ?Sized, P: Probe + ?Sized> LockCore<M, P> for McsLock {
    fn enter_core<S: AbortSignal + ?Sized>(
        &self,
        mem: &M,
        p: Pid,
        _signal: &S,
        probe: &P,
    ) -> Outcome {
        probe.enter_begin(p);
        self.acquire(&probed(mem, probe), p);
        probe.enter_end(p, None);
        Outcome::Entered { ticket: None }
    }

    fn exit_core(&self, mem: &M, p: Pid, probe: &P) {
        self.release(&probed(mem, probe), p);
        probe.cs_exit(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sal_memory::NeverAbort;
    use sal_runtime::{run_lock, RandomSchedule, RoundRobin, WorkloadSpec};

    fn build(n: usize) -> (McsLock, WordId, sal_memory::CcMemory) {
        let mut b = MemoryBuilder::new();
        let lock = McsLock::layout(&mut b, n);
        let cs = b.alloc(0);
        (lock, cs, b.build_cc(n))
    }

    #[test]
    fn uncontended_acquire_release() {
        let (lock, _, mem) = build(2);
        for _ in 0..5 {
            lock.acquire(&mem, 0);
            lock.release(&mem, 0);
        }
    }

    #[test]
    fn mutual_exclusion_under_random_schedules() {
        for seed in 0..20 {
            let (lock, cs, mem) = build(4);
            let spec = WorkloadSpec::uniform(4, 3);
            let report = run_lock(
                &lock,
                &mem,
                cs,
                &spec,
                Box::new(RandomSchedule::seeded(seed)),
            )
            .unwrap();
            report.assert_safe();
            assert_eq!(report.total_entered(), 12, "seed {seed}");
            assert_eq!(mem.read(0, cs), 12);
        }
    }

    #[test]
    fn per_passage_rmrs_are_constant_under_contention() {
        let (lock, cs, mem) = build(8);
        let spec = WorkloadSpec::uniform(8, 4);
        let report = run_lock(&lock, &mem, cs, &spec, Box::new(RoundRobin::new())).unwrap();
        report.assert_safe();
        // CC model: swap + link + spin-refresh + handoff ≈ a handful.
        assert!(
            report.max_entered_rmrs() <= 12,
            "MCS passage should be O(1): {}",
            report.max_entered_rmrs()
        );
    }

    #[test]
    fn lock_trait_reports_not_abortable() {
        let (lock, _, mem) = build(1);
        let l: &dyn sal_core::AbortableLock = &lock;
        assert!(!l.is_abortable());
        assert!(l.enter(&mem, 0, &NeverAbort, &sal_obs::NoProbe).entered());
        l.exit(&mem, 0, &sal_obs::NoProbe);
    }
}
