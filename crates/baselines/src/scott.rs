//! Scott-style abortable queue lock (Scott, PODC 2002 row of Table 1).
//!
//! A CLH-flavoured queue lock with *non-blocking timeout*: an aborting
//! process marks its node `ABANDONED` (having first published its
//! predecessor) and leaves in `O(1)` of its own steps; waiters skip over
//! chains of abandoned nodes lazily. Matches Scott's Table-1 row:
//!
//! * primitives: SWAP (queue append) — plus plain reads/writes;
//! * space: **unbounded** — every attempt consumes a fresh node (Scott's
//!   published algorithms also use dynamically allocated nodes);
//! * RMR cost: `O(1)` with no aborts, `O(#A)` where `#A` is the number of
//!   aborts during the execution (a waiter walks every abandoned node
//!   between it and its live predecessor), unbounded in general;
//! * fairness: FCFS among non-aborting processes.
//!
//! Fidelity note: this is a reconstruction in the spirit of Scott's
//! CLH-NB-try; the paper being reproduced provides only the cost profile
//! (Table 1), which this implementation matches. Scott's real algorithm
//! additionally reclaims nodes; ours deliberately leaks them to exhibit
//! the "unbounded space" row honestly.

use sal_core::{LockCore, LockMeta, Outcome};
use sal_memory::{AbortSignal, Mem, MemoryBuilder, Pid, WordArray, WordId};
use sal_obs::{probed, Probe};
use std::sync::Mutex;

const WAITING: u64 = 0;
const RELEASED: u64 = 1;
const ABANDONED: u64 = 2;

/// Scott-style abortable CLH queue lock. `capacity` bounds the total
/// number of enter attempts (the "unbounded space" made concrete as a
/// pre-allocated arena).
#[derive(Debug)]
pub struct ScottLock {
    tail: WordId,
    next_node: WordId,
    status: WordArray,
    pred: WordArray,
    /// Each process's current node, between `enter` and `exit`.
    holding: Vec<Mutex<u64>>,
}

impl ScottLock {
    /// Lay out the lock for `n` processes and at most `capacity` enter
    /// attempts in total.
    pub fn layout(b: &mut MemoryBuilder, n: usize, capacity: usize) -> Self {
        assert!(n >= 1 && capacity >= 1);
        let nodes = capacity + 1;
        // Node 0 is the genesis node, born RELEASED.
        let status = b.alloc_array_with(nodes, |i| (0, if i == 0 { RELEASED } else { WAITING }));
        let pred = b.alloc_array(nodes, 0);
        ScottLock {
            tail: b.alloc(0),
            next_node: b.alloc(1),
            status,
            pred,
            holding: (0..n).map(|_| Mutex::new(0)).collect(),
        }
    }

    /// Attempt to acquire; `false` means aborted.
    pub fn acquire<M, S>(&self, mem: &M, p: Pid, signal: &S) -> bool
    where
        M: Mem + ?Sized,
        S: AbortSignal + ?Sized,
    {
        let me = mem.faa(p, self.next_node, 1);
        assert!(
            (me as usize) < self.status.len(),
            "ScottLock arena exhausted ({} attempts)",
            self.status.len() - 1
        );
        let prev = mem.swap(p, self.tail, me);
        mem.write(p, self.pred.at(me as usize), prev);
        let mut cur = prev;
        loop {
            match mem.read(p, self.status.at(cur as usize)) {
                RELEASED => {
                    *self.holding[p].lock().unwrap() = me;
                    return true;
                }
                ABANDONED => {
                    // Skip lazily over the abandoned chain.
                    cur = mem.read(p, self.pred.at(cur as usize));
                }
                _ => {
                    if signal.is_set() {
                        // Publish the shortcut, then abandon; the order
                        // matters: a successor must never read a stale
                        // pred after seeing ABANDONED.
                        mem.write(p, self.pred.at(me as usize), cur);
                        mem.write(p, self.status.at(me as usize), ABANDONED);
                        return false;
                    }
                }
            }
        }
    }

    /// Release.
    pub fn release<M: Mem + ?Sized>(&self, mem: &M, p: Pid) {
        let me = *self.holding[p].lock().unwrap();
        mem.write(p, self.status.at(me as usize), RELEASED);
    }
}

impl LockMeta for ScottLock {
    fn name(&self) -> String {
        "scott".into()
    }
}

impl<M: Mem + ?Sized, P: Probe + ?Sized> LockCore<M, P> for ScottLock {
    fn enter_core<S: AbortSignal + ?Sized>(
        &self,
        mem: &M,
        p: Pid,
        signal: &S,
        probe: &P,
    ) -> Outcome {
        probe.enter_begin(p);
        if self.acquire(&probed(mem, probe), p, signal) {
            probe.enter_end(p, None);
            Outcome::Entered { ticket: None }
        } else {
            probe.abort(p, None);
            Outcome::Aborted { ticket: None }
        }
    }

    fn exit_core(&self, mem: &M, p: Pid, probe: &P) {
        self.release(&probed(mem, probe), p);
        probe.cs_exit(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sal_memory::{AbortFlag, NeverAbort, RmrProbe};
    use sal_runtime::{run_lock, ProcPlan, RandomSchedule, WorkloadSpec};

    fn build(n: usize, cap: usize) -> (ScottLock, WordId, sal_memory::CcMemory) {
        let mut b = MemoryBuilder::new();
        let lock = ScottLock::layout(&mut b, n, cap);
        let cs = b.alloc(0);
        (lock, cs, b.build_cc(n))
    }

    #[test]
    fn serial_reuse() {
        let (lock, _, mem) = build(1, 16);
        for _ in 0..5 {
            assert!(lock.acquire(&mem, 0, &NeverAbort));
            lock.release(&mem, 0);
        }
    }

    #[test]
    fn aborted_nodes_are_skipped() {
        let (lock, _, mem) = build(3, 16);
        assert!(lock.acquire(&mem, 0, &NeverAbort));
        let sig = AbortFlag::new();
        sig.set();
        assert!(!lock.acquire(&mem, 1, &sig));
        lock.release(&mem, 0);
        // p2 queues behind p1's abandoned node and must skip it.
        assert!(lock.acquire(&mem, 2, &NeverAbort));
        lock.release(&mem, 2);
    }

    #[test]
    fn mutual_exclusion_with_aborters_under_random_schedules() {
        for seed in 0..20 {
            let (lock, cs, mem) = build(5, 64);
            let spec = WorkloadSpec {
                plans: vec![
                    ProcPlan::normal(2),
                    ProcPlan::normal(2),
                    ProcPlan::aborter(2, 30),
                    ProcPlan::aborter(2, 20),
                    ProcPlan::normal(2),
                ],
                cs_ops: 2,
                max_steps: 2_000_000,
                lease: sal_runtime::default_lease(),
            };
            let report = run_lock(
                &lock,
                &mem,
                cs,
                &spec,
                Box::new(RandomSchedule::seeded(seed)),
            )
            .unwrap();
            report.assert_safe();
            for p in [0usize, 1, 4] {
                assert_eq!(report.outcomes[p].0, 2, "seed {seed} pid {p}");
            }
        }
    }

    #[test]
    fn no_abort_cost_is_constant() {
        let (lock, _, mem) = build(2, 64);
        let mut max = 0;
        for _ in 0..10 {
            let probe = RmrProbe::start(&mem, 0);
            assert!(lock.acquire(&mem, 0, &NeverAbort));
            lock.release(&mem, 0);
            max = max.max(probe.rmrs(&mem));
        }
        assert!(max <= 8, "no-abort Scott passage should be O(1): {max}");
    }

    #[test]
    fn waiter_pays_per_abandoned_predecessor() {
        // One waiter behind k abandoned nodes pays ≥ k RMRs: the O(#A)
        // adaptive bound of Table 1, measured.
        let (lock, _, mem) = build(8, 64);
        assert!(lock.acquire(&mem, 0, &NeverAbort));
        let sig = AbortFlag::new();
        sig.set();
        for p in 1..7 {
            assert!(!lock.acquire(&mem, p, &sig));
        }
        lock.release(&mem, 0);
        let probe = RmrProbe::start(&mem, 7);
        assert!(lock.acquire(&mem, 7, &NeverAbort));
        let cost = probe.rmrs(&mem);
        assert!(cost >= 6, "expected Θ(#aborts) walk, got {cost}");
        lock.release(&mem, 7);
    }

    #[test]
    #[should_panic(expected = "arena exhausted")]
    fn capacity_overflow_panics() {
        let (lock, _, mem) = build(1, 2);
        for _ in 0..5 {
            assert!(lock.acquire(&mem, 0, &NeverAbort));
            lock.release(&mem, 0);
        }
    }
}
