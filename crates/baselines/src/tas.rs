//! Test-and-test-and-set lock — trivially abortable (an aborter simply
//! stops retrying) but with unbounded RMR cost and no fairness. The
//! degenerate corner of the abortable-lock design space: Table 1 is the
//! story of doing better than this without giving up abortability.

use sal_core::{LockCore, LockMeta, Outcome};
use sal_memory::{AbortSignal, Mem, MemoryBuilder, Pid, WordId};
use sal_obs::{probed, Probe};

/// CAS-based test-and-test-and-set lock.
#[derive(Clone, Debug)]
pub struct TasLock {
    word: WordId,
}

impl TasLock {
    /// Lay out the lock.
    pub fn layout(b: &mut MemoryBuilder) -> Self {
        TasLock { word: b.alloc(0) }
    }

    /// Try to acquire until success or abort signal.
    pub fn acquire<M, S>(&self, mem: &M, p: Pid, signal: &S) -> bool
    where
        M: Mem + ?Sized,
        S: AbortSignal + ?Sized,
    {
        loop {
            if signal.is_set() {
                return false;
            }
            // Test before test-and-set: spin locally while held.
            if mem.read(p, self.word) == 0 && mem.cas(p, self.word, 0, 1) {
                return true;
            }
        }
    }

    /// Release.
    pub fn release<M: Mem + ?Sized>(&self, mem: &M, p: Pid) {
        mem.write(p, self.word, 0);
    }
}

impl LockMeta for TasLock {
    fn name(&self) -> String {
        "tas".into()
    }
}

impl<M: Mem + ?Sized, P: Probe + ?Sized> LockCore<M, P> for TasLock {
    fn enter_core<S: AbortSignal + ?Sized>(
        &self,
        mem: &M,
        p: Pid,
        signal: &S,
        probe: &P,
    ) -> Outcome {
        probe.enter_begin(p);
        if self.acquire(&probed(mem, probe), p, signal) {
            probe.enter_end(p, None);
            Outcome::Entered { ticket: None }
        } else {
            probe.abort(p, None);
            Outcome::Aborted { ticket: None }
        }
    }

    fn exit_core(&self, mem: &M, p: Pid, probe: &P) {
        self.release(&probed(mem, probe), p);
        probe.cs_exit(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sal_memory::{AbortFlag, NeverAbort};
    use sal_runtime::{run_lock, RandomSchedule, WorkloadSpec};

    fn build(n: usize) -> (TasLock, WordId, sal_memory::CcMemory) {
        let mut b = MemoryBuilder::new();
        let lock = TasLock::layout(&mut b);
        let cs = b.alloc(0);
        (lock, cs, b.build_cc(n))
    }

    #[test]
    fn acquire_release_and_abort() {
        let (lock, _, mem) = build(2);
        assert!(lock.acquire(&mem, 0, &NeverAbort));
        let sig = AbortFlag::new();
        sig.set();
        assert!(!lock.acquire(&mem, 1, &sig));
        lock.release(&mem, 0);
        assert!(lock.acquire(&mem, 1, &NeverAbort));
        lock.release(&mem, 1);
    }

    #[test]
    fn mutual_exclusion_under_random_schedules() {
        for seed in 0..15 {
            let (lock, cs, mem) = build(4);
            let spec = WorkloadSpec::uniform(4, 2);
            let report = run_lock(
                &lock,
                &mem,
                cs,
                &spec,
                Box::new(RandomSchedule::seeded(seed)),
            )
            .unwrap();
            report.assert_safe();
            assert_eq!(mem.read(0, cs), 8, "seed {seed}");
        }
    }
}
