//! Ticket lock — F&A doorway, global spin word. FCFS and starvation-free
//! but every handoff invalidates *every* waiter's cached copy, so a
//! passage costs `Θ(queue position)` RMRs in the CC model. Included as
//! the "F&A alone does not give you O(1)" contrast to MCS and the
//! paper's lock.

use sal_core::{LockCore, LockMeta, Outcome};
use sal_memory::{AbortSignal, Mem, MemoryBuilder, Pid, WordId};
use sal_obs::{probed, Probe};

/// Classic ticket lock: `next_ticket` (F&A doorway) and `now_serving`
/// (shared spin word). Not abortable — a ticket, once taken, must be
/// served, or the queue wedges.
#[derive(Clone, Debug)]
pub struct TicketLock {
    next_ticket: WordId,
    now_serving: WordId,
}

impl TicketLock {
    /// Lay out the lock.
    pub fn layout(b: &mut MemoryBuilder) -> Self {
        TicketLock {
            next_ticket: b.alloc(0),
            now_serving: b.alloc(0),
        }
    }

    /// Acquire (never aborts).
    pub fn acquire<M: Mem + ?Sized>(&self, mem: &M, p: Pid) {
        let t = mem.faa(p, self.next_ticket, 1);
        while mem.read(p, self.now_serving) != t {}
    }

    /// Release.
    pub fn release<M: Mem + ?Sized>(&self, mem: &M, p: Pid) {
        mem.faa(p, self.now_serving, 1);
    }
}

impl LockMeta for TicketLock {
    fn name(&self) -> String {
        "ticket".into()
    }

    fn is_abortable(&self) -> bool {
        false
    }
}

impl<M: Mem + ?Sized, P: Probe + ?Sized> LockCore<M, P> for TicketLock {
    fn enter_core<S: AbortSignal + ?Sized>(
        &self,
        mem: &M,
        p: Pid,
        _signal: &S,
        probe: &P,
    ) -> Outcome {
        probe.enter_begin(p);
        // Inlined acquire so the F&A doorway ticket can be reported —
        // the ticket lock is FCFS and the probe layer can check it.
        let pm = probed(mem, probe);
        let t = pm.faa(p, self.next_ticket, 1);
        while pm.read(p, self.now_serving) != t {}
        probe.enter_end(p, Some(t));
        Outcome::Entered { ticket: Some(t) }
    }

    fn exit_core(&self, mem: &M, p: Pid, probe: &P) {
        self.release(&probed(mem, probe), p);
        probe.cs_exit(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sal_runtime::{run_lock, RandomSchedule, RoundRobin, WorkloadSpec};

    fn build(n: usize) -> (TicketLock, WordId, sal_memory::CcMemory) {
        let mut b = MemoryBuilder::new();
        let lock = TicketLock::layout(&mut b);
        let cs = b.alloc(0);
        (lock, cs, b.build_cc(n))
    }

    #[test]
    fn serial_reuse() {
        let (lock, _, mem) = build(1);
        for _ in 0..5 {
            lock.acquire(&mem, 0);
            lock.release(&mem, 0);
        }
    }

    #[test]
    fn mutual_exclusion_and_completion_under_contention() {
        for seed in 0..15 {
            let (lock, cs, mem) = build(5);
            let spec = WorkloadSpec::uniform(5, 2);
            let report = run_lock(
                &lock,
                &mem,
                cs,
                &spec,
                Box::new(RandomSchedule::seeded(seed)),
            )
            .unwrap();
            report.assert_safe();
            assert_eq!(mem.read(0, cs), 10, "seed {seed}");
        }
    }

    #[test]
    fn rmr_cost_grows_with_waiters() {
        // All N processes queue up behind each other: the last in line is
        // invalidated by every earlier handoff.
        let n = 16;
        let (lock, cs, mem) = build(n);
        let spec = WorkloadSpec::uniform(n, 1);
        let report = run_lock(&lock, &mem, cs, &spec, Box::new(RoundRobin::new())).unwrap();
        report.assert_safe();
        // Worst passage pays at least one RMR per predecessor handoff.
        assert!(
            report.max_entered_rmrs() >= n as u64 - 2,
            "expected Θ(N) worst passage, got {}",
            report.max_entered_rmrs()
        );
    }
}
