//! Abortable binary tournament lock — the `O(log N)` comparison point of
//! Table 1 (Jayanti \[17\] / Lee \[20\] row shape).
//!
//! A complete binary tree of two-party Peterson locks over `N` (padded)
//! leaves. A process climbs from its leaf to the root, winning each
//! node's Peterson instance against the sibling subtree; on an abort
//! signal it withdraws from the node it is contending at (clearing its
//! flag is always safe in Peterson) and releases everything it had won,
//! bottom of the tree getting released last.
//!
//! Cost shape: *every* passage — contended or not, aborting or not —
//! climbs `Θ(log N)` nodes, which is exactly the non-adaptive
//! `O(log N)` worst case *and* no-abort cost that the paper's
//! `O(log_W A)` result is measured against. Uses only reads and writes.
//!
//! Fidelity note: Jayanti's algorithm additionally adapts to point
//! contention (`O(min(k, log N))`) via an LL/SC f-array; we do not
//! reproduce that structure — Table 1's "worst-case" and "no-abort"
//! columns, which the benchmarks regenerate, are unaffected.

use sal_core::{LockCore, LockMeta, Outcome};
use sal_memory::{AbortSignal, Mem, MemoryBuilder, Pid, WordArray};
use sal_obs::{probed, Probe};

/// The abortable Peterson-tournament lock. Long-lived, starvation-free
/// (each Peterson node has bounded bypass), abortable at any point of the
/// climb.
#[derive(Clone, Debug)]
pub struct TournamentLock {
    /// `flag[2·node + side]` for internal nodes `1..n_pad`.
    flags: WordArray,
    /// `turn[node]`.
    turns: WordArray,
    /// Number of padded leaves (power of two).
    n_pad: usize,
    /// Tree height = number of Peterson levels.
    levels: usize,
}

impl TournamentLock {
    /// Lay out a tournament over `n` processes.
    pub fn layout(b: &mut MemoryBuilder, n: usize) -> Self {
        assert!(n >= 1);
        let n_pad = n.next_power_of_two().max(2);
        let levels = n_pad.trailing_zeros() as usize;
        TournamentLock {
            flags: b.alloc_array(2 * n_pad, 0),
            turns: b.alloc_array(n_pad, 0),
            n_pad,
            levels,
        }
    }

    /// Number of Peterson levels (`⌈log₂ N⌉`).
    pub fn levels(&self) -> usize {
        self.levels
    }

    #[inline]
    fn node_side(&self, p: Pid, level: usize) -> (usize, usize) {
        let leaf = self.n_pad + p;
        (leaf >> level, (leaf >> (level - 1)) & 1)
    }

    /// Peterson entry at one node; `false` means the process withdrew in
    /// response to the signal (its flag is already cleared).
    fn acquire_node<M, S>(&self, mem: &M, p: Pid, node: usize, side: usize, signal: &S) -> bool
    where
        M: Mem + ?Sized,
        S: AbortSignal + ?Sized,
    {
        let other = 1 - side;
        mem.write(p, self.flags.at(2 * node + side), 1);
        mem.write(p, self.turns.at(node), other as u64);
        while mem.read(p, self.flags.at(2 * node + other)) == 1
            && mem.read(p, self.turns.at(node)) == other as u64
        {
            if signal.is_set() {
                mem.write(p, self.flags.at(2 * node + side), 0);
                return false;
            }
        }
        true
    }

    fn release_node<M: Mem + ?Sized>(&self, mem: &M, p: Pid, node: usize, side: usize) {
        mem.write(p, self.flags.at(2 * node + side), 0);
    }

    /// Climb the tree; abortable.
    pub fn acquire<M, S>(&self, mem: &M, p: Pid, signal: &S) -> bool
    where
        M: Mem + ?Sized,
        S: AbortSignal + ?Sized,
    {
        for level in 1..=self.levels {
            let (node, side) = self.node_side(p, level);
            if !self.acquire_node(mem, p, node, side, signal) {
                // Withdraw: release everything won so far, top-down.
                for l in (1..level).rev() {
                    let (n, s) = self.node_side(p, l);
                    self.release_node(mem, p, n, s);
                }
                return false;
            }
        }
        true
    }

    /// Descend the tree, releasing from the root downward.
    pub fn release<M: Mem + ?Sized>(&self, mem: &M, p: Pid) {
        for level in (1..=self.levels).rev() {
            let (node, side) = self.node_side(p, level);
            self.release_node(mem, p, node, side);
        }
    }
}

impl LockMeta for TournamentLock {
    fn name(&self) -> String {
        "tournament".into()
    }
}

impl<M: Mem + ?Sized, P: Probe + ?Sized> LockCore<M, P> for TournamentLock {
    fn enter_core<S: AbortSignal + ?Sized>(
        &self,
        mem: &M,
        p: Pid,
        signal: &S,
        probe: &P,
    ) -> Outcome {
        probe.enter_begin(p);
        if self.acquire(&probed(mem, probe), p, signal) {
            probe.enter_end(p, None);
            Outcome::Entered { ticket: None }
        } else {
            probe.abort(p, None);
            Outcome::Aborted { ticket: None }
        }
    }

    fn exit_core(&self, mem: &M, p: Pid, probe: &P) {
        self.release(&probed(mem, probe), p);
        probe.cs_exit(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sal_memory::{AbortFlag, NeverAbort, RmrProbe};
    use sal_runtime::{run_lock, ProcPlan, RandomSchedule, WorkloadSpec};

    fn build(n: usize) -> (TournamentLock, sal_memory::WordId, sal_memory::CcMemory) {
        let mut b = MemoryBuilder::new();
        let lock = TournamentLock::layout(&mut b, n);
        let cs = b.alloc(0);
        (lock, cs, b.build_cc(n))
    }

    #[test]
    fn height_is_log2() {
        let mut b = MemoryBuilder::new();
        assert_eq!(TournamentLock::layout(&mut b, 8).levels(), 3);
        assert_eq!(TournamentLock::layout(&mut b, 9).levels(), 4);
        assert_eq!(TournamentLock::layout(&mut b, 1).levels(), 1);
    }

    #[test]
    fn solo_acquire_release_reusable() {
        let (lock, _, mem) = build(4);
        for _ in 0..5 {
            assert!(lock.acquire(&mem, 2, &NeverAbort));
            lock.release(&mem, 2);
        }
    }

    #[test]
    fn abort_releases_partial_claims() {
        let (lock, _, mem) = build(4);
        assert!(lock.acquire(&mem, 0, &NeverAbort));
        // p1 shares the root with p0's side? p1 is p0's sibling: clashes
        // at level 1 already; the signal makes it withdraw.
        let sig = AbortFlag::new();
        sig.set();
        assert!(!lock.acquire(&mem, 1, &sig));
        lock.release(&mem, 0);
        // p1's withdrawal left no residue: p3 can pass through both
        // levels.
        assert!(lock.acquire(&mem, 3, &NeverAbort));
        lock.release(&mem, 3);
        assert!(lock.acquire(&mem, 1, &NeverAbort));
        lock.release(&mem, 1);
    }

    #[test]
    fn mutual_exclusion_under_random_schedules() {
        for seed in 0..20 {
            let (lock, cs, mem) = build(4);
            let spec = WorkloadSpec::uniform(4, 2);
            let report = run_lock(
                &lock,
                &mem,
                cs,
                &spec,
                Box::new(RandomSchedule::seeded(seed)),
            )
            .unwrap();
            report.assert_safe();
            assert_eq!(mem.read(0, cs), 8, "seed {seed}");
        }
    }

    #[test]
    fn aborters_do_not_wedge_the_tree() {
        for seed in 0..10 {
            let (lock, cs, mem) = build(8);
            let mut plans = vec![ProcPlan::normal(1); 4];
            plans.extend(vec![ProcPlan::aborter(1, 40); 4]);
            let spec = WorkloadSpec {
                plans,
                cs_ops: 2,
                max_steps: 2_000_000,
                lease: sal_runtime::default_lease(),
            };
            let report = run_lock(
                &lock,
                &mem,
                cs,
                &spec,
                Box::new(RandomSchedule::seeded(seed)),
            )
            .unwrap();
            report.assert_safe();
            // The four normal processes always get in.
            for p in 0..4 {
                assert_eq!(report.outcomes[p].0, 1, "seed {seed} pid {p}");
            }
        }
    }

    #[test]
    fn uncontended_cost_is_still_logarithmic() {
        // The defining non-adaptivity: even alone, a process pays ~2 RMRs
        // per level — this is the curve the paper's O(1) no-abort result
        // beats.
        let (lock, _, mem) = build(64);
        // Warm one passage, then measure a second (steady-state caching).
        assert!(lock.acquire(&mem, 0, &NeverAbort));
        lock.release(&mem, 0);
        let probe = RmrProbe::start(&mem, 0);
        assert!(lock.acquire(&mem, 0, &NeverAbort));
        lock.release(&mem, 0);
        let cost = probe.rmrs(&mem);
        assert!(
            cost >= 2 * 6,
            "tournament passage should pay ≥ 2 RMRs per level: {cost}"
        );
    }
}
