//! W1 — wall-clock sanity benches (plain harness, no external deps).
//!
//! The paper's claims are about RMRs, not nanoseconds; these benches
//! exist to show the real-atomics build (`sal-sync`) is a usable lock:
//! uncontended latency in the same league as `std::sync::Mutex`, graceful
//! behaviour under contention, and cheap failed try-locks.
//!
//! ```text
//! cargo bench -p sal-bench
//! ```

use sal_baselines::McsLock;
use sal_memory::{Mem, MemoryBuilder, NeverAbort};
use sal_sync::AbortableMutex;
use std::hint::black_box;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Time `iters` runs of `body`, returning mean nanoseconds per iteration.
fn time_ns(iters: u64, mut body: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        body();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Run a benchmark: short warm-up, then a measured pass, one report line.
fn bench(name: &str, iters: u64, mut body: impl FnMut()) {
    time_ns(iters / 10 + 1, &mut body);
    let ns = time_ns(iters, &mut body);
    println!("{name:<40} {ns:>10.1} ns/iter  ({iters} iters)");
}

fn uncontended() {
    println!("\n== uncontended_lock_unlock ==");
    let iters = 1_000_000;

    {
        let m = AbortableMutex::builder(0u64).capacity(2).build();
        let mut h = m.handle();
        bench("abortable_mutex", iters, || {
            *h.lock() += 1;
        });
    }

    {
        let m = Mutex::new(0u64);
        bench("std_mutex", iters, || {
            *m.lock().unwrap() += 1;
        });
    }

    {
        let mut b = MemoryBuilder::new();
        let lock = McsLock::layout(&mut b, 2);
        let w = b.alloc(0);
        let mem = b.build_raw(2);
        bench("mcs_raw", iters, || {
            lock.acquire(&mem, 0);
            mem.write(0, w, black_box(mem.read(0, w) + 1));
            lock.release(&mem, 0);
        });
    }
}

fn contended() {
    println!("\n== contended_increments (ns per increment) ==");
    let per_thread = 200_000u64;
    for &threads in &[2usize, 4, 8] {
        {
            let m = Arc::new(AbortableMutex::builder(0u64).capacity(threads).build());
            let start = Instant::now();
            std::thread::scope(|s| {
                for _ in 0..threads {
                    let m = Arc::clone(&m);
                    s.spawn(move || {
                        let mut h = m.handle();
                        for _ in 0..per_thread {
                            *h.lock() += 1;
                        }
                    });
                }
            });
            let ns = start.elapsed().as_nanos() as f64 / (per_thread * threads as u64) as f64;
            println!("abortable_mutex/{threads:<2} {ns:>10.1} ns/op");
        }
        {
            let m = Arc::new(Mutex::new(0u64));
            let start = Instant::now();
            std::thread::scope(|s| {
                for _ in 0..threads {
                    let m = Arc::clone(&m);
                    s.spawn(move || {
                        for _ in 0..per_thread {
                            *m.lock().unwrap() += 1;
                        }
                    });
                }
            });
            let ns = start.elapsed().as_nanos() as f64 / (per_thread * threads as u64) as f64;
            println!("std_mutex/{threads:<2}       {ns:>10.1} ns/op");
        }
    }
}

fn abort_paths() {
    println!("\n== abort_paths ==");
    let iters = 1_000_000;

    // Failed try-lock while another handle holds the lock: the paper's
    // bounded-abort property as wall-clock.
    {
        let m = AbortableMutex::builder(0u64).capacity(2).build();
        let mut holder = m.handle();
        let mut waiter = m.handle();
        let g = holder.lock();
        bench("failed_try_lock", iters, || {
            assert!(black_box(waiter.try_lock()).is_none());
        });
        drop(g);
    }

    // Expired-deadline acquisition attempt on a held lock.
    {
        let m = AbortableMutex::builder(0u64).capacity(2).build();
        let mut holder = m.handle();
        let mut waiter = m.handle();
        let g = holder.lock();
        let past = Instant::now() - Duration::from_millis(1);
        bench("expired_deadline_try", iters, || {
            assert!(black_box(waiter.try_lock_until(past)).is_none());
        });
        drop(g);
    }

    // Uncontended abortable acquisition (signal never fires).
    {
        let m = AbortableMutex::builder(0u64).capacity(2).build();
        let mut h = m.handle();
        bench("abortable_enter_no_signal", iters, || {
            let g = h.lock_abortable(&NeverAbort).unwrap();
            drop(g);
        });
    }
}

fn main() {
    uncontended();
    contended();
    abort_paths();
}
