//! W1 — wall-clock sanity benches (Criterion).
//!
//! The paper's claims are about RMRs, not nanoseconds; these benches
//! exist to show the real-atomics build (`sal-sync`) is a usable lock:
//! uncontended latency in the same league as `std::sync::Mutex`, graceful
//! behaviour under contention, and cheap failed try-locks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sal_baselines::McsLock;
use sal_memory::{Mem, MemoryBuilder, NeverAbort};
use sal_sync::AbortableMutex;
use std::hint::black_box;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn uncontended(c: &mut Criterion) {
    let mut group = c.benchmark_group("uncontended_lock_unlock");

    group.bench_function("abortable_mutex", |bench| {
        let m = AbortableMutex::with_capacity(0u64, 2);
        let mut h = m.handle();
        bench.iter(|| {
            *h.lock() += 1;
        });
    });

    group.bench_function("std_mutex", |bench| {
        let m = Mutex::new(0u64);
        bench.iter(|| {
            *m.lock().unwrap() += 1;
        });
    });

    group.bench_function("mcs_raw", |bench| {
        let mut b = MemoryBuilder::new();
        let lock = McsLock::layout(&mut b, 2);
        let w = b.alloc(0);
        let mem = b.build_raw(2);
        bench.iter(|| {
            lock.acquire(&mem, 0);
            mem.write(0, w, black_box(mem.read(0, w) + 1));
            lock.release(&mem, 0);
        });
    });

    group.finish();
}

fn contended(c: &mut Criterion) {
    let mut group = c.benchmark_group("contended_increments");
    group.sample_size(10);
    for &threads in &[2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("abortable_mutex", threads),
            &threads,
            |bench, &threads| {
                bench.iter_custom(|iters| {
                    let per_thread = (iters as usize).max(1);
                    let m = Arc::new(AbortableMutex::with_capacity(0u64, threads));
                    let start = Instant::now();
                    std::thread::scope(|s| {
                        for _ in 0..threads {
                            let m = Arc::clone(&m);
                            s.spawn(move || {
                                let mut h = m.handle();
                                for _ in 0..per_thread {
                                    *h.lock() += 1;
                                }
                            });
                        }
                    });
                    start.elapsed() / threads as u32
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("std_mutex", threads),
            &threads,
            |bench, &threads| {
                bench.iter_custom(|iters| {
                    let per_thread = (iters as usize).max(1);
                    let m = Arc::new(Mutex::new(0u64));
                    let start = Instant::now();
                    std::thread::scope(|s| {
                        for _ in 0..threads {
                            let m = Arc::clone(&m);
                            s.spawn(move || {
                                for _ in 0..per_thread {
                                    *m.lock().unwrap() += 1;
                                }
                            });
                        }
                    });
                    start.elapsed() / threads as u32
                });
            },
        );
    }
    group.finish();
}

fn abort_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("abort_paths");

    // Failed try-lock while another handle holds the lock: the paper's
    // bounded-abort property as wall-clock.
    group.bench_function("failed_try_lock", |bench| {
        let m = AbortableMutex::with_capacity(0u64, 2);
        let mut holder = m.handle();
        let mut waiter = m.handle();
        let g = holder.lock();
        bench.iter(|| {
            assert!(black_box(waiter.try_lock()).is_none());
        });
        drop(g);
    });

    // Expired-deadline acquisition attempt on a held lock.
    group.bench_function("expired_deadline_try", |bench| {
        let m = AbortableMutex::with_capacity(0u64, 2);
        let mut holder = m.handle();
        let mut waiter = m.handle();
        let g = holder.lock();
        let past = Instant::now() - Duration::from_millis(1);
        bench.iter(|| {
            assert!(black_box(waiter.try_lock_until(past)).is_none());
        });
        drop(g);
    });

    // Uncontended abortable acquisition (signal never fires).
    group.bench_function("abortable_enter_no_signal", |bench| {
        let m = AbortableMutex::with_capacity(0u64, 2);
        let mut h = m.handle();
        bench.iter(|| {
            let g = h.lock_abortable(&NeverAbort).unwrap();
            drop(g);
        });
    });

    group.finish();
}

criterion_group!(benches, uncontended, contended, abort_paths);
criterion_main!(benches);
