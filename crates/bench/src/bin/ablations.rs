//! Ablation studies of the paper's design choices.
//!
//! ```text
//! cargo run --release -p sal-bench --bin ablations -- [sidestep|resets|dsm|wrapper|all]
//! ```
//!
//! * `sidestep` — Algorithm 4.3's right-cousin sidestep, on vs off, at
//!   the *lock* level: what the adaptive ascent buys a complete passage.
//! * `resets`  — the §6.2 eager-reset quota (wraparound guard): its cost
//!   per instance switch at 0 / 1 / 8 words.
//! * `dsm`     — the §3 DSM indirection (announce + local spin bit):
//!   what it costs under CC and what it saves under DSM.
//! * `wrapper` — Figure-5 simple vs §6.2 bounded: the price of bounded
//!   space.
//!
//! Independent grid cells run on the work-stealing pool (`--jobs N` /
//! `SAL_JOBS`, default = available parallelism); results are gathered
//! in cell order so output is byte-identical to a serial run.
//!
//! The shared flag vocabulary applies: `--lease k` sets the step-lease
//! cap for every simulation in the run (exported as `SAL_LEASE` so the
//! workload builders' defaults pick it up; results are identical at
//! any cap), and `--strategy bfs|dpor|best-first|fuzz` adds a
//! guided-search cross-check to the `sidestep` ablation — the
//! plain-vs-adaptive gap re-measured over *searched* worst-case
//! schedules at small N instead of one sampled schedule.

use sal_bench::report::save_json;
use sal_bench::{no_abort_sweep, par_grid, worst_case_sweep, ExploreCell, LockKind, Table};
use sal_core::long_lived::BoundedLongLivedLock;
use sal_core::one_shot::DsmOneShotLock;
use sal_core::tree::Ascent;
use sal_memory::{Mem, MemoryBuilder, NeverAbort, RmrProbe};
use sal_runtime::{explore_guided, ExploreOptions, Strategy};

/// A1c (`--strategy` only): the same plain-vs-adaptive comparison with
/// the worst case *searched for* rather than sampled — guided
/// exploration over all schedules of a small contended cell, reporting
/// the most expensive complete passage any explored schedule produced.
fn sidestep_guided(jobs: usize, strategy: Strategy) {
    let mut table = Table::new(
        format!(
            "A1c — ablation under guided search (strategy={}, N=4, B=2, 2 aborters)",
            strategy.label()
        ),
        &["ascent", "worst max RMRs/passage", "schedules"],
    );
    let variants = [
        ("plain", LockKind::OneShotPlain { b: 2 }),
        ("adaptive", LockKind::OneShot { b: 2 }),
    ];
    for (label, kind) in variants {
        let cell = ExploreCell::contended(kind, 4);
        let opts = ExploreOptions {
            jobs,
            ..ExploreOptions::default()
        };
        let result = explore_guided(&opts, strategy, |policy| cell.guided_run(policy));
        assert!(
            result.violation.is_none(),
            "{label} ascent violated safety under guided search: {:?}",
            result.violation
        );
        table.row(vec![
            label.into(),
            result.best_cost.to_string(),
            result.runs.to_string(),
        ]);
    }
    table.print();
    println!(
        "shape check: searched worst cases dominate the sampled ones above; the gap between \
         the ascents survives adversarial scheduling."
    );
}

/// Adaptive vs plain ascent, complete-passage worst case.
fn sidestep(jobs: usize) {
    let mut table = Table::new(
        "A1 — ablation: AdaptiveFindNext (Alg 4.3) vs FindNext (Alg 4.1), worst-case passage",
        &["N", "plain ascent", "adaptive ascent"],
    );
    let ns = [16usize, 64, 256];
    let points = par_grid(jobs, &ns, |&n| {
        let plain = worst_case_sweep(LockKind::OneShotPlain { b: 2 }, n, 17).expect("sim");
        let adaptive = worst_case_sweep(LockKind::OneShot { b: 2 }, n, 17).expect("sim");
        assert!(plain.mutex_ok && adaptive.mutex_ok);
        (n, plain.max_entered_rmrs, adaptive.max_entered_rmrs)
    });
    for &(n, plain, adaptive) in &points {
        table.row(vec![n.to_string(), plain.to_string(), adaptive.to_string()]);
    }
    table.print();
    println!(
        "note: with N−2 aborters both pay O(log A) ≈ O(log N); the sidestep's win shows at\n\
         *low* abort counts — see `figures -- fig4` where the plain ascent pays the full\n\
         height and the adaptive one pays O(1)."
    );

    let mut table = Table::new(
        "A1b — same ablation at A = 2 aborters (N = 256): adaptivity is the whole story",
        &["ascent", "max RMRs/passage"],
    );
    let variants = [
        ("plain", LockKind::OneShotPlain { b: 2 }),
        ("adaptive", LockKind::OneShot { b: 2 }),
    ];
    let rows = par_grid(jobs, &variants, |&(label, kind)| {
        let p = sal_bench::adaptive_sweep(kind, 256, 2, 23).expect("sim");
        assert!(p.mutex_ok);
        (label, p.max_entered_rmrs)
    });
    for (label, max) in rows {
        table.row(vec![label.into(), max.to_string()]);
    }
    table.print();
    save_json("ablation_sidestep", &points);
}

/// Eager-reset quota: measured overhead per passage when every passage
/// switches instances (solo process).
fn resets() {
    let mut table = Table::new(
        "A2 — ablation: §6.2 eager wraparound-reset quota (solo process, 30 switches)",
        &[
            "eager words/switch",
            "max RMRs/passage",
            "mean RMRs/passage",
        ],
    );
    let mut points = Vec::new();
    for &quota in &[0usize, 1, 8, 32] {
        let mut b = MemoryBuilder::new();
        let lock = BoundedLongLivedLock::layout_with(&mut b, 2, 8, Ascent::Adaptive, quota);
        let mem = b.build_cc(2);
        let mut max = 0u64;
        let mut sum = 0u64;
        let rounds = 30u64;
        for _ in 0..rounds {
            let probe = RmrProbe::start(&mem, 0);
            assert!(lock.enter(&mem, 0, &NeverAbort));
            lock.exit(&mem, 0);
            let c = probe.rmrs(&mem);
            max = max.max(c);
            sum += c;
        }
        table.row(vec![
            quota.to_string(),
            max.to_string(),
            format!("{:.1}", sum as f64 / rounds as f64),
        ]);
        points.push((quota, max, sum as f64 / rounds as f64));
    }
    table.print();
    println!("shape check: each eagerly reset word adds ~2–3 RMRs to the switching passage.");
    save_json("ablation_resets", &points);
}

/// The DSM indirection, costed under both models.
fn dsm() {
    let mut table = Table::new(
        "A3 — ablation: §3 DSM indirection (announce[] + local spin bit), N = 64",
        &[
            "variant / model",
            "max RMRs of a passage (sequential handoffs)",
        ],
    );
    // CC variant under CC memory.
    {
        let mut b = MemoryBuilder::new();
        let lock = sal_core::one_shot::OneShotLock::layout(&mut b, 64, 8);
        let mem = b.build_cc(64);
        let mut max = 0;
        for p in 0..64 {
            let probe = RmrProbe::start(&mem, p);
            assert!(lock.enter(&mem, p, &NeverAbort).entered());
            lock.exit(&mem, p);
            max = max.max(probe.rmrs(&mem));
        }
        table.row(vec!["plain variant under CC".into(), max.to_string()]);
    }
    // DSM variant under CC (overhead) and under DSM (the point).
    for (label, dsm_model) in [
        ("DSM variant under CC", false),
        ("DSM variant under DSM", true),
    ] {
        let mut b = MemoryBuilder::new();
        let lock = DsmOneShotLock::layout(&mut b, 64, 8);
        let max = if dsm_model {
            let mem = b.build_dsm(64);
            run_dsm(&lock, &mem)
        } else {
            let mem = b.build_cc(64);
            run_dsm(&lock, &mem)
        };
        table.row(vec![label.into(), max.to_string()]);
    }
    table.print();
    println!(
        "shape check: the indirection costs a constant handful of extra RMRs, and makes \
         the spin loop local in the DSM model (where the plain variant's spin would be \
         unboundedly remote)."
    );
}

/// The §3 motivation, measured: under the DSM model a waiter on the
/// plain variant's dynamically-assigned `go` slot pays one RMR per spin
/// iteration (the slot is remote), while the DSM variant's local spin
/// bit is free — the gap grows linearly with how long the wait lasts.
fn dsm_spin() {
    use sal_core::AbortableLock;
    use sal_runtime::{simulate, RoundRobin, SimOptions};

    let mut table = Table::new(
        "A3b — the waiter's total RMRs under the DSM model vs how long the owner holds the CS",
        &[
            "owner CS steps",
            "plain variant (remote spin)",
            "DSM variant (local spin)",
        ],
    );
    let mut points = Vec::new();
    for &hold in &[4u64, 16, 64, 256] {
        let mut row = vec![hold.to_string()];
        for dsm_variant in [false, true] {
            let mut b = MemoryBuilder::new();
            let lock: Box<dyn AbortableLock> = if dsm_variant {
                Box::new(DsmOneShotLock::layout(&mut b, 2, 4))
            } else {
                Box::new(sal_core::one_shot::OneShotLock::layout(&mut b, 2, 4))
            };
            // The owner's in-CS work touches only its own home word, so
            // the waiter's counter isolates the cost of *waiting*.
            let owner_pad = b.alloc_at(0, 0);
            let mem = b.build_dsm(2);
            // Round-robin: p0 wins ticket 0 and holds the CS for `hold`
            // steps while p1 spins.
            simulate(
                &mem,
                2,
                Box::new(RoundRobin::new()),
                SimOptions::default(),
                |ctx| {
                    let probe = sal_obs::NoProbe;
                    assert!(lock
                        .enter(ctx.mem, ctx.pid, &sal_memory::NeverAbort, &probe)
                        .entered());
                    if ctx.pid == 0 {
                        for _ in 0..hold {
                            ctx.mem.read(0, owner_pad); // home-local, free
                        }
                    }
                    lock.exit(ctx.mem, ctx.pid, &probe);
                },
            )
            .expect("sim failed");
            let waiter = mem.rmrs(1);
            row.push(waiter.to_string());
            points.push((hold, dsm_variant, waiter));
        }
        table.row(row);
    }
    table.print();
    println!(
        "shape check: the plain variant's waiter cost grows with the wait (unbounded in \
         the limit — the §3 problem); the DSM variant's stays flat."
    );
    save_json("ablation_dsm_spin", &points);
}

fn run_dsm<M: Mem>(lock: &DsmOneShotLock, mem: &M) -> u64 {
    let mut max = 0;
    for p in 0..64 {
        let probe = RmrProbe::start(mem, p);
        assert!(lock.enter(mem, p, &NeverAbort).entered());
        lock.exit(mem, p);
        max = max.max(probe.rmrs(mem));
    }
    max
}

/// §7: what F&A buys over read+CAS emulation in the tree's Remove.
fn faa(jobs: usize) {
    use sal_core::tree::Tree;
    use sal_runtime::{simulate, RandomSchedule, SimOptions};

    let mut table = Table::new(
        "A5 — §7 primitive strength: total RMRs of k concurrent Removes under one B=64 node",
        &["k removers", "F&A (Alg 4.2)", "read+CAS emulation"],
    );
    let ks = [2usize, 8, 32, 64];
    // Flatten the whole (k × seed × mode) grid into independent cells,
    // then reduce the gathered totals in deterministic cell order.
    let cells: Vec<(usize, u64, bool)> = ks
        .iter()
        .flat_map(|&k| {
            (0..10u64).flat_map(move |seed| [false, true].map(move |use_cas| (k, seed, use_cas)))
        })
        .collect();
    let totals = par_grid(jobs, &cells, |&(k, seed, use_cas)| {
        let mut b = MemoryBuilder::new();
        let tree = Tree::layout(&mut b, 64, 64);
        let mem = b.build_cc(k);
        simulate(
            &mem,
            k,
            Box::new(RandomSchedule::seeded(seed)),
            SimOptions::default(),
            |ctx| {
                if use_cas {
                    tree.remove_with_cas(ctx.mem, ctx.pid, ctx.pid as u64);
                } else {
                    tree.remove(ctx.mem, ctx.pid, ctx.pid as u64);
                }
            },
        )
        .expect("sim failed");
        mem.total_rmrs()
    });
    let mut points = Vec::new();
    for (row, chunk) in cells.chunks(20).enumerate() {
        let mut faa_total = 0u64;
        let mut cas_total = 0u64;
        for (cell, total) in chunk.iter().zip(&totals[row * 20..]) {
            if cell.2 {
                cas_total += total;
            } else {
                faa_total += total;
            }
        }
        let k = ks[row];
        table.row(vec![
            k.to_string(),
            faa_total.to_string(),
            cas_total.to_string(),
        ]);
        points.push((k, faa_total, cas_total));
    }
    table.print();
    println!(
        "shape check: F&A is exactly one RMR per Remove (totals = 10k); the CAS loop pays \
         2× plus retries that grow with contention — the gap §7 credits for beating the \
         LL/SC f-array approach."
    );
    save_json("ablation_faa", &points);
}

/// Simple (unbounded) vs bounded wrapper cost.
fn wrapper(jobs: usize) {
    let mut table = Table::new(
        "A4 — ablation: Figure-5 simple vs §6.2 bounded long-lived wrapper (N = 8, clean)",
        &["implementation", "max RMRs/passage", "mean RMRs/passage"],
    );
    let kinds = [
        LockKind::LongLivedSimple { b: 8 },
        LockKind::LongLived { b: 8 },
    ];
    let points = par_grid(jobs, &kinds, |&kind| {
        let p = no_abort_sweep(kind, 8, 4, 31).expect("sim");
        assert!(p.mutex_ok);
        p
    });
    for (kind, p) in kinds.iter().zip(&points) {
        table.row(vec![
            kind.label(),
            p.max_entered_rmrs.to_string(),
            format!("{:.1}", p.mean_entered_rmrs),
        ]);
    }
    table.print();
    println!(
        "shape check: bounded space costs a constant factor (version reads + V_w flips), \
         never an asymptotic one."
    );
    save_json("ablation_wrapper", &points);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let sub = if args.first().is_some_and(|a| !a.starts_with('-')) {
        args.remove(0)
    } else {
        "all".to_string()
    };
    let cli = sal_bench::Cli::new(
        "ablations [sidestep|resets|dsm|faa|wrapper|all]",
        "ablation studies of the paper's design choices",
    )
    .opt(
        "--jobs",
        "k",
        "worker threads (0 = auto; SAL_JOBS honoured)",
    )
    .lease_opt()
    .strategy_opt()
    .opt(
        "--seed",
        "u64",
        "fuzzer seed (default 1; fuzz strategy only)",
    );
    let p = match cli.parse(args.into_iter()) {
        Ok(p) if p.help_requested() => {
            println!("{}", cli.usage());
            return;
        }
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n{}", cli.usage());
            std::process::exit(2);
        }
    };
    let run = || -> Result<(usize, Option<Strategy>), String> {
        // The workload builders default their lease through SAL_LEASE;
        // exporting the flag (before any simulation, single-threaded)
        // is what makes `--lease` reach every cell uniformly.
        if let Some(lease) = p.get::<u64>("--lease")? {
            std::env::set_var("SAL_LEASE", lease.to_string());
        }
        Ok((p.jobs()?, p.strategy()?))
    };
    let (jobs, strategy) = match run() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let sidestep_all = |jobs| {
        sidestep(jobs);
        if let Some(s) = strategy {
            sidestep_guided(jobs, s);
        }
    };
    match sub.as_str() {
        "sidestep" => sidestep_all(jobs),
        "resets" => resets(),
        "dsm" => {
            dsm();
            dsm_spin();
        }
        "wrapper" => wrapper(jobs),
        "faa" => faa(jobs),
        "all" => {
            sidestep_all(jobs);
            resets();
            dsm();
            dsm_spin();
            faa(jobs);
            wrapper(jobs);
        }
        other => {
            eprintln!("unknown ablation {other}; use sidestep|resets|dsm|faa|wrapper|all");
            std::process::exit(2);
        }
    }
}
