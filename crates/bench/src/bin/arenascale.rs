//! arenascale — keyed lock arena vs per-key mutex maps (M7).
//!
//! ```text
//! cargo run --release -p sal-bench --bin arenascale -- [--smoke] [--ops N] [--threads a,b]
//! ```
//!
//! Real OS threads hammer a keyed critical section (`*value += 1`)
//! over a grid of key-space size × key-distribution skew × thread
//! count × abort rate, once per implementation:
//!
//! * **arena** — [`sal_sync::Arena`]: one inline atomic word per key,
//!   lock cores materialized from a bounded pool only while a key is
//!   actually contended.
//! * **stdmap** — the same sharded lazy map shape holding one
//!   `std::sync::Mutex` per key (no abortability, the OS-futex
//!   yardstick).
//! * **abortmap** — a prebuilt `HashMap<K, AbortableMutex>`: the
//!   naive way to get per-key abortable locking, paying a full lock
//!   core per key up front. Skipped (with a caveat) beyond
//!   [`ABORTMAP_MAX_KEYS`] keys — materializing a million lock cores
//!   is exactly the cost the arena exists to avoid, and on this
//!   runner it would swamp the benchmark in allocation.
//!
//! Every cell asserts no lost updates (the per-key sums equal the
//! number of successful acquisitions) and, for the arena, that no
//! pooled core leaked (`resident_cores == 0` after the run).
//!
//! Results go to stdout as a table and to `BENCH_arena.json` at the
//! repo root: throughput, sampled p99 enter latency (`null` when a
//! cell recorded no samples — see `lat_samples`), and the resident
//! lock-object counts that make the memory story checkable
//! (`built_cores` for the arena vs `resident_objects` for the maps).
//! Arena and abortmap rows also carry `amortized` — run-scoped
//! [`AmortizedStats`] from a CC-instrumented
//! companion run of the lock core both wrap
//! ([`BoundedLongLivedLock`](sal_core::long_lived::BoundedLongLivedLock)
//! at the builder-default branching) under the cell's thread count and
//! abort pattern; RMRs do not exist on the raw hardware path, so the
//! companion is where the exact-model cost per cell comes from
//! (`accounting_ok` records the bit-exact ground-truth cross-check).
//! `stdmap` rows carry `null` — an OS futex has no lock core to
//! instrument.
//! `target_met` requires the arena to beat abortmap on every
//! uncontended-heavy skewed cell where both ran, and the arena's
//! built-core count to stay bounded by the pool (≪ keys) at the
//! largest key space.

use sal_bench::{amortized_companion, LockKind};
use sal_obs::{AmortizedStats, Histogram, Json, ToJson};
use sal_runtime::SmallRng;
use sal_sync::{AbortableMutex, Arena};
use std::collections::HashMap;
use std::sync::{Barrier, Mutex, RwLock};
use std::time::Instant;

/// Largest key space the prebuilt `AbortableMutex`-per-key baseline
/// is asked to cover.
const ABORTMAP_MAX_KEYS: usize = 16_384;

/// One enter-latency sample per this many operations.
const LAT_SAMPLE_EVERY: u64 = 16;

/// Key-distribution skew of a cell.
#[derive(Clone, Copy, PartialEq)]
enum Skew {
    /// Every key equally likely.
    Uniform,
    /// Zipf with exponent 1.1: a hot head plus a long uncontended
    /// tail — the adaptive case the arena is built for.
    Zipf,
}

impl Skew {
    fn name(self) -> &'static str {
        match self {
            Skew::Uniform => "uniform",
            Skew::Zipf => "zipf1.1",
        }
    }
}

/// Draws keys from `0..keys` under a [`Skew`]. Zipf uses an exact
/// precomputed CDF (one `powf` per key at build time, one binary
/// search per draw).
struct Sampler {
    keys: usize,
    cdf: Option<Box<[f64]>>,
}

impl Sampler {
    fn new(skew: Skew, keys: usize) -> Self {
        let cdf = match skew {
            Skew::Uniform => None,
            Skew::Zipf => {
                let mut weights: Vec<f64> = (0..keys)
                    .map(|i| 1.0 / ((i + 1) as f64).powf(1.1))
                    .collect();
                let mut acc = 0.0;
                for w in &mut weights {
                    acc += *w;
                    *w = acc;
                }
                for w in &mut weights {
                    *w /= acc;
                }
                Some(weights.into_boxed_slice())
            }
        };
        Sampler { keys, cdf }
    }

    fn sample(&self, rng: &mut SmallRng) -> u64 {
        match &self.cdf {
            None => rng.random_range(0..self.keys) as u64,
            Some(cdf) => {
                let u = rng.next_u64() as f64 / u64::MAX as f64;
                cdf.partition_point(|&c| c < u).min(self.keys - 1) as u64
            }
        }
    }
}

/// The sharded lazy `HashMap` shape shared by the arena and the
/// `stdmap` baseline, so the two differ only in what sits behind a
/// key, not in how a key is found.
struct ShardedMap<V> {
    shards: Vec<RwLock<HashMap<u64, Box<V>>>>,
}

impl<V: Default> ShardedMap<V> {
    fn new(shards: usize) -> Self {
        ShardedMap {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    fn entry(&self, key: u64) -> &V {
        let shard = &self.shards[(key as usize) & (self.shards.len() - 1)];
        if let Some(v) = shard.read().unwrap().get(&key) {
            // Safety: values are boxed and never removed, so the heap
            // allocation outlives the map borrow; `&self` keeps the
            // map alive for the returned lifetime.
            return unsafe { &*(&**v as *const V) };
        }
        let mut map = shard.write().unwrap();
        let v = map.entry(key).or_default();
        // Safety: as above — the box is stable and never dropped
        // before the map itself.
        unsafe { &*(&**v as *const V) }
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap().len()).sum()
    }
}

/// What one (cell × implementation) run measured.
struct Measured {
    entered: u64,
    aborted: u64,
    elapsed_s: f64,
    lat: Histogram,
    /// Lock objects resident *during* the run: built cores for the
    /// arena, map entries / prebuilt mutexes for the baselines.
    resident_objects: u64,
}

impl Measured {
    fn mops(&self, total_ops: u64) -> f64 {
        total_ops as f64 / self.elapsed_s / 1e6
    }
}

/// One grid cell: every implementation runs the same operation
/// sequence shape.
#[derive(Clone, Copy)]
struct Cell {
    keys: usize,
    skew: Skew,
    threads: usize,
    /// Every k-th operation is a `try_lock` that may abort; `None`
    /// runs pure blocking locks.
    abort_every: Option<u64>,
    ops_per_thread: u64,
}

/// Drive `ops_per_thread` operations per thread through `op`, which
/// returns `true` when the acquisition succeeded. `op` captures
/// whatever shared state the implementation needs; `local` builds one
/// private per-thread value (e.g. a handle cache) that `op` may
/// mutate without synchronization.
fn drive<L: Send>(
    cell: Cell,
    local: impl Fn(usize) -> L + Sync,
    op: impl Fn(&mut L, u64, bool) -> bool + Sync,
) -> (u64, u64, f64, Histogram) {
    let sampler = Sampler::new(cell.skew, cell.keys);
    let barrier = Barrier::new(cell.threads);
    let merged: Mutex<(u64, u64, Histogram)> = Mutex::new((0, 0, Histogram::new()));
    let start = Mutex::new(None::<Instant>);
    std::thread::scope(|s| {
        for t in 0..cell.threads {
            let (sampler, barrier, merged, start) = (&sampler, &barrier, &merged, &start);
            let (local, op) = (&local, &op);
            s.spawn(move || {
                let mut rng =
                    SmallRng::seed_from_u64(0x9E37 ^ ((t as u64) << 8) ^ cell.keys as u64);
                let mut l = local(t);
                let mut entered = 0u64;
                let mut aborted = 0u64;
                let mut lat = Histogram::new();
                barrier.wait();
                if t == 0 {
                    *start.lock().unwrap() = Some(Instant::now());
                }
                for i in 0..cell.ops_per_thread {
                    let key = sampler.sample(&mut rng);
                    let abortable = cell.abort_every.is_some_and(|k| i % k == 0);
                    let sample = i % LAT_SAMPLE_EVERY == 0;
                    if sample {
                        let t0 = Instant::now();
                        if op(&mut l, key, abortable) {
                            lat.record(t0.elapsed().as_nanos() as u64);
                            entered += 1;
                        } else {
                            aborted += 1;
                        }
                    } else if op(&mut l, key, abortable) {
                        entered += 1;
                    } else {
                        aborted += 1;
                    }
                }
                let mut m = merged.lock().unwrap();
                m.0 += entered;
                m.1 += aborted;
                m.2.merge_from(&lat);
            });
        }
    });
    let elapsed = start.lock().unwrap().expect("started").elapsed();
    let (entered, aborted, lat) =
        std::mem::replace(&mut *merged.lock().unwrap(), (0, 0, Histogram::new()));
    (entered, aborted, elapsed.as_secs_f64(), lat)
}

fn run_arena(cell: Cell) -> Measured {
    let arena: Arena<u64, u64> = Arena::builder()
        .shards(256)
        .pool(cell.threads * 4)
        .core_capacity(cell.threads + 1)
        .build();
    let (entered, aborted, elapsed_s, lat) = drive(
        cell,
        |_| (),
        |_, key, abortable| {
            let a = &arena;
            if abortable {
                match a.try_lock(&key) {
                    Some(mut g) => {
                        *g += 1;
                        true
                    }
                    None => false,
                }
            } else {
                *a.lock(&key) += 1;
                true
            }
        },
    );
    let stats = arena.stats();
    assert_eq!(
        stats.resident_cores,
        0,
        "a pooled core leaked: {stats:?} in cell keys={} skew={} threads={}",
        cell.keys,
        cell.skew.name(),
        cell.threads
    );
    // Lost-update check: the per-key sums must add back up to the
    // number of successful acquisitions.
    let mut sum = 0u64;
    for key in 0..cell.keys as u64 {
        sum += *arena.lock(&key);
    }
    assert_eq!(sum, entered, "lost updates in the arena cell");
    Measured {
        entered,
        aborted,
        elapsed_s,
        lat,
        resident_objects: stats.built_cores as u64,
    }
}

fn run_stdmap(cell: Cell) -> Measured {
    let map: ShardedMap<Mutex<u64>> = ShardedMap::new(256);
    let (entered, aborted, elapsed_s, lat) = drive(
        cell,
        |_| (),
        |_, key, abortable| {
            let lock = map.entry(key);
            if abortable {
                match lock.try_lock() {
                    Ok(mut g) => {
                        *g += 1;
                        true
                    }
                    Err(_) => false,
                }
            } else {
                *lock.lock().unwrap() += 1;
                true
            }
        },
    );
    let mut sum = 0u64;
    for shard in &map.shards {
        for v in shard.read().unwrap().values() {
            sum += *v.lock().unwrap();
        }
    }
    assert_eq!(sum, entered, "lost updates in the stdmap cell");
    Measured {
        entered,
        aborted,
        elapsed_s,
        lat,
        resident_objects: map.len() as u64,
    }
}

fn run_abortmap(cell: Cell) -> Measured {
    // The naive design pays for every key up front: one full lock
    // core per key, built before the clock starts.
    let map: HashMap<u64, AbortableMutex<u64>> = (0..cell.keys as u64)
        .map(|k| {
            (
                k,
                // One slot per worker thread plus one for the
                // post-run checksum reader.
                AbortableMutex::builder(0u64)
                    .capacity(cell.threads + 1)
                    .build(),
            )
        })
        .collect();
    // Handles are per-thread, per-mutex registrations — each thread
    // caches them privately so the baseline is not charged a
    // registration per operation.
    let (entered, aborted, elapsed_s, lat) = drive(
        cell,
        |_| HashMap::<u64, sal_sync::MutexHandle<'_, u64>>::new(),
        |cache, key, abortable| {
            let handle = cache
                .entry(key)
                .or_insert_with(|| map.get(&key).expect("prebuilt").handle());
            if abortable {
                match handle.try_lock() {
                    Some(mut g) => {
                        *g += 1;
                        true
                    }
                    None => false,
                }
            } else {
                *handle.lock() += 1;
                true
            }
        },
    );
    let mut sum = 0u64;
    for m in map.values() {
        sum += *m.handle().lock();
    }
    assert_eq!(sum, entered, "lost updates in the abortmap cell");
    Measured {
        entered,
        aborted,
        elapsed_s,
        lat,
        resident_objects: cell.keys as u64,
    }
}

struct Row {
    cell: Cell,
    imp: &'static str,
    m: Measured,
    /// Exact-model amortized cost of the lock core this implementation
    /// wraps, from the cell's companion run; `None` for `stdmap`.
    amortized: Option<AmortizedStats>,
    accounting_ok: Option<bool>,
}

impl Row {
    fn to_json(&self) -> Json {
        let total = self.cell.ops_per_thread * self.cell.threads as u64;
        Json::obj(vec![
            ("impl", self.imp.to_json()),
            ("keys", (self.cell.keys as u64).to_json()),
            ("skew", self.cell.skew.name().to_json()),
            ("threads", (self.cell.threads as u64).to_json()),
            ("abort_every", self.cell.abort_every.to_json()),
            ("ops_per_thread", self.cell.ops_per_thread.to_json()),
            ("entered", self.m.entered.to_json()),
            ("aborted", self.m.aborted.to_json()),
            ("elapsed_ms", (self.m.elapsed_s * 1e3).to_json()),
            ("mops", self.m.mops(total).to_json()),
            ("p99_enter_ns", self.m.lat.quantile(0.99).to_json()),
            ("lat_samples", self.m.lat.count().to_json()),
            ("resident_objects", self.m.resident_objects.to_json()),
            (
                "amortized",
                self.amortized.map_or(Json::Null, |a| a.to_json()),
            ),
            ("accounting_ok", self.accounting_ok.to_json()),
        ])
    }
}

fn main() {
    let p = sal_bench::Cli::new("arenascale", "keyed lock arena vs per-key mutex maps")
        .flag("--smoke", "CI-sized grid")
        .opt("--ops", "N", "operations per thread per cell")
        .opt("--threads", "a,b", "thread counts")
        .parse_env_or_exit();
    let smoke = p.smoke();
    let nprocs = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
    // Deliberately not clamped to available parallelism: on a small
    // runner, oversubscribed threads still interleave under preemption
    // and drive the promotion/parking paths — the caveat records it.
    let default_threads: Vec<usize> = if smoke { vec![4] } else { vec![2, 8] };
    let threads_list = p
        .list::<usize>("--threads")
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        })
        .unwrap_or(default_threads);
    let ops_per_thread: u64 = p
        .get("--ops")
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        })
        .unwrap_or(if smoke { 20_000 } else { 100_000 });
    let key_spaces: Vec<usize> = if smoke {
        vec![512, 16_384]
    } else {
        vec![1_024, 1 << 20]
    };
    let mode = if smoke { "smoke" } else { "full" };

    println!("arenascale ({mode}): ops/thread={ops_per_thread} threads={threads_list:?} keys={key_spaces:?}");
    println!(
        "{:<9} {:>9} {:<8} {:>7} {:>6} {:>10} {:>8} {:>12} {:>8} {:>9}",
        "impl",
        "keys",
        "skew",
        "threads",
        "abort",
        "mops",
        "p99(ns)",
        "samples",
        "aborted",
        "resident"
    );

    let mut rows: Vec<Row> = Vec::new();
    let mut caveats: Vec<String> = Vec::new();
    for &keys in &key_spaces {
        for skew in [Skew::Uniform, Skew::Zipf] {
            for &threads in &threads_list {
                for abort_every in [None, Some(8u64)] {
                    let cell = Cell {
                        keys,
                        skew,
                        threads,
                        abort_every,
                        ops_per_thread,
                    };
                    let mut runs: Vec<(&'static str, Measured)> =
                        vec![("arena", run_arena(cell)), ("stdmap", run_stdmap(cell))];
                    if keys <= ABORTMAP_MAX_KEYS {
                        runs.push(("abortmap", run_abortmap(cell)));
                    }
                    // One exact-model companion per cell: arena and
                    // abortmap wrap the same lock core, so they share
                    // its run-scoped amortized cost.
                    let (amortized, accounting_ok) = amortized_companion(
                        LockKind::LongLived { b: 64 },
                        cell.threads,
                        cell.abort_every.map(|k| k as usize),
                        if smoke { 100 } else { 200 },
                    );
                    assert!(
                        accounting_ok,
                        "companion probe totals diverged from memory ground truth \
                         (keys={keys} threads={threads})"
                    );
                    for (imp, m) in runs {
                        let total = cell.ops_per_thread * cell.threads as u64;
                        println!(
                            "{:<9} {:>9} {:<8} {:>7} {:>6} {:>10.2} {:>8} {:>12} {:>8} {:>9}",
                            imp,
                            keys,
                            skew.name(),
                            threads,
                            abort_every.map_or(0, |k| k),
                            m.mops(total),
                            m.lat
                                .quantile(0.99)
                                .map_or_else(|| "-".into(), |v| v.to_string()),
                            m.lat.count(),
                            m.aborted,
                            m.resident_objects,
                        );
                        let has_core = imp != "stdmap";
                        rows.push(Row {
                            cell,
                            imp,
                            m,
                            amortized: has_core.then_some(amortized),
                            accounting_ok: has_core.then_some(accounting_ok),
                        });
                    }
                }
            }
        }
    }
    if key_spaces.iter().any(|&k| k > ABORTMAP_MAX_KEYS) {
        caveats.push(format!(
            "abortmap baseline skipped beyond {ABORTMAP_MAX_KEYS} keys: prebuilding one \
             lock core per key at that scale is the cost the arena avoids"
        ));
    }
    if smoke {
        caveats.push("smoke mode: small grid, largest key space reduced".into());
    }
    if threads_list.iter().any(|&t| t > nprocs) {
        caveats.push(format!(
            "thread counts exceed available parallelism ({nprocs}): contention is \
             preemption-driven; throughput ratios stay comparable across impls"
        ));
    }
    caveats.push(
        "zipf cells draw from an exact precomputed CDF; keys are hashed into 256 shards, \
         so shard-map contention is shared by arena and stdmap"
            .into(),
    );

    // Target 1: on uncontended-heavy skewed cells (many keys per
    // thread), the arena's inline word must beat the prebuilt
    // abortable map.
    let mut compared = 0usize;
    let mut arena_wins = 0usize;
    for r in rows.iter().filter(|r| r.imp == "arena") {
        let c = r.cell;
        if c.skew != Skew::Zipf || c.keys < 64 * c.threads {
            continue;
        }
        let Some(base) = rows.iter().find(|b| {
            b.imp == "abortmap"
                && b.cell.keys == c.keys
                && b.cell.threads == c.threads
                && b.cell.skew == c.skew
                && b.cell.abort_every == c.abort_every
        }) else {
            continue;
        };
        compared += 1;
        let total = c.ops_per_thread * c.threads as u64;
        if r.m.mops(total) > base.m.mops(total) {
            arena_wins += 1;
        }
    }
    let beat_map = compared > 0 && arena_wins == compared;
    // Target 2: at the largest key space, built cores stay bounded by
    // the pool — resident memory O(active contended keys), not O(keys).
    let max_keys = *key_spaces.iter().max().expect("non-empty");
    let max_built = rows
        .iter()
        .filter(|r| r.imp == "arena" && r.cell.keys == max_keys)
        .map(|r| r.m.resident_objects)
        .max()
        .unwrap_or(0);
    let pool_bound = threads_list.iter().max().copied().unwrap_or(1) as u64 * 4;
    let resident_bounded = max_built <= pool_bound && (max_built as usize) < max_keys;
    let target_met = beat_map && resident_bounded;
    println!(
        "arena vs abortmap on uncontended-heavy zipf cells: {arena_wins}/{compared} won; \
         max built cores at {max_keys} keys: {max_built} (pool bound {pool_bound}) — target {}",
        if target_met { "met" } else { "NOT met" }
    );
    for c in &caveats {
        println!("caveat: {c}");
    }

    let out = Json::obj(vec![
        ("bench", "arenascale".to_json()),
        ("mode", mode.to_json()),
        ("available_parallelism", (nprocs as u64).to_json()),
        ("ops_per_thread", ops_per_thread.to_json()),
        ("abortmap_max_keys", (ABORTMAP_MAX_KEYS as u64).to_json()),
        ("uncontended_cells_compared", (compared as u64).to_json()),
        ("uncontended_cells_arena_won", (arena_wins as u64).to_json()),
        ("max_keys", (max_keys as u64).to_json()),
        ("max_built_cores_at_max_keys", max_built.to_json()),
        ("resident_core_pool_bound", pool_bound.to_json()),
        ("resident_bounded", resident_bounded.to_json()),
        ("target_met", target_met.to_json()),
        ("caveats", caveats.to_json()),
        ("cells", Json::Arr(rows.iter().map(Row::to_json).collect())),
    ]);
    // The acceptance artifact lives at the repo root (not
    // target/experiments): resolve it from the crate manifest so the
    // binary lands it there regardless of the invoking directory.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_arena.json");
    match std::fs::write(&path, out.render()) {
        Ok(()) => println!("(saved {})", path.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}
