//! asyncscale — async mutex under task storms (M6).
//!
//! ```text
//! cargo run --release -p sal-bench --bin asyncscale -- [--smoke] [--tasks N]
//! ```
//!
//! Three sections, all on the workspace's own mini-executor
//! ([`sal_runtime::executor`]) with **4 worker threads**:
//!
//! 1. **Task grid** — task count × cancel rate. Tasks vastly outnumber
//!    pids (the headline cell runs 10 000 tasks over an 8-pid mutex);
//!    every k-th task races a microsecond deadline against the
//!    contention. Each cell asserts the lost-update invariant (the
//!    protected counter equals the entered count) and zero leakage
//!    (every pid back in the pool, no queued admission tickets).
//! 2. **Cancellation storm** — thousands of pending `lock()` futures
//!    dropped mid-flight against a lock that is *never released*. The
//!    probe counts each cancelled passage's shared-memory ops; the max
//!    must stay ≤ 300 (the paper's bounded-abort claim, measured on the
//!    drop path).
//! 3. **CCS wake economics** — N `lock_when` waiters with disjoint
//!    predicates under `Evaluate` vs `Broadcast` wake policy, surfacing
//!    the registry's wakeup/transition counters on the async path.
//!
//! Results go to stdout as tables and to `BENCH_async.json` at the repo
//! root with `target_met`/`caveats` fields.

use sal_bench::Table;
use sal_obs::{Json, PassageStats, ToJson};
use sal_runtime::executor::{sleep, Executor};
use sal_sync::{AbortReason, AsyncAbortableMutex, AsyncStats, WakePolicy};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};
use std::time::{Duration, Instant};

/// Worker threads for every executor in this benchmark (the M6
/// acceptance criterion is "10 000 tasks on 4 workers").
const WORKERS: usize = 4;
/// Pids backing each mutex: tasks ≫ pids is the shape under test.
const CAPACITY: usize = 8;
/// The paper-derived per-cancellation op bound checked by section 2.
const ABORT_OP_BOUND: u64 = 300;

fn noop_waker() -> Waker {
    fn vt() -> &'static RawWakerVTable {
        &RawWakerVTable::new(|d| RawWaker::new(d, vt()), |_| {}, |_| {}, |_| {})
    }
    // Safety: every vtable entry ignores its data pointer.
    unsafe { Waker::from_raw(RawWaker::new(std::ptr::null(), vt())) }
}

fn poll_once<F: Future + Unpin>(fut: &mut F) -> Poll<F::Output> {
    Pin::new(fut).poll(&mut Context::from_waker(&noop_waker()))
}

fn async_stats_json(s: &AsyncStats) -> Json {
    Json::obj(vec![
        ("enter_wakeups", s.enter_wakeups.to_json()),
        ("futile_enter_wakeups", s.futile_enter_wakeups.to_json()),
        ("pid_waits", s.pid_waits.to_json()),
        ("cancelled_pending", s.cancelled_pending.to_json()),
        ("pool_capacity", s.pool_capacity.to_json()),
        ("free_pids", s.free_pids.to_json()),
        ("queued_tasks", s.queued_tasks.to_json()),
    ])
}

// ---------------------------------------------------------------- grid

struct CellRow {
    tasks: usize,
    reps: usize,
    cancel_every: Option<usize>,
    entered: u64,
    aborted: u64,
    elapsed: Duration,
    stats: AsyncStats,
}

impl CellRow {
    fn throughput(&self) -> f64 {
        self.entered as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

impl ToJson for CellRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("tasks", (self.tasks as u64).to_json()),
            ("reps_per_task", (self.reps as u64).to_json()),
            (
                "cancel_every",
                self.cancel_every.map(|k| k as u64).to_json(),
            ),
            ("entered", self.entered.to_json()),
            ("aborted", self.aborted.to_json()),
            ("elapsed_ns", (self.elapsed.as_nanos() as u64).to_json()),
            ("entered_per_sec", self.throughput().to_json()),
            ("async_stats", async_stats_json(&self.stats)),
        ])
    }
}

/// Run one grid cell: `tasks` tasks × `reps` lock/increment ops each on
/// `WORKERS` workers. With `cancel_every = Some(k)`, every k-th task
/// uses `lock_timeout` with a microsecond-scale deadline, so a slice of
/// the population aborts instead of entering.
fn run_cell(tasks: usize, reps: usize, cancel_every: Option<usize>) -> CellRow {
    let m = Arc::new(
        AsyncAbortableMutex::builder(0u64)
            .capacity(CAPACITY)
            .build_async(),
    );
    let entered = Arc::new(AtomicU64::new(0));
    let aborted = Arc::new(AtomicU64::new(0));
    let ex = Executor::new();
    for t in 0..tasks {
        let m = Arc::clone(&m);
        let entered = Arc::clone(&entered);
        let aborted = Arc::clone(&aborted);
        let cancels = cancel_every.is_some_and(|k| t % k == 0);
        ex.spawn(async move {
            for r in 0..reps {
                if cancels {
                    match m
                        .lock_timeout(Duration::from_micros(((t + r) % 50) as u64))
                        .await
                    {
                        Ok(mut g) => {
                            *g += 1;
                            entered.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(AbortReason::Deadline) => {
                            aborted.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(r) => unreachable!("unexpected abort reason {r:?}"),
                    }
                } else {
                    *m.lock().await += 1;
                    entered.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
    }
    let start = Instant::now();
    ex.run(WORKERS);
    let elapsed = start.elapsed();

    let entered = entered.load(Ordering::Relaxed);
    let aborted = aborted.load(Ordering::Relaxed);
    assert_eq!(
        entered + aborted,
        (tasks * reps) as u64,
        "a task lost an attempt"
    );
    assert_eq!(m.free_pids(), CAPACITY, "a pid leaked");
    assert_eq!(m.queued_tasks(), 0, "an admission ticket leaked");
    assert_eq!(m.waiters(), 0);
    let stats = m.stats();
    let m = Arc::try_unwrap(m).expect("executor drained");
    // The lost-update invariant: the u64 under the mutex must equal the
    // number of passages that entered the critical section.
    assert_eq!(
        m.into_inner(),
        entered,
        "lost update: mutual exclusion violated"
    );
    CellRow {
        tasks,
        reps,
        cancel_every,
        entered,
        aborted,
        elapsed,
        stats,
    }
}

// --------------------------------------------------------------- storm

struct StormResult {
    cancellations: u64,
    max_abort_ops: u64,
    mean_abort_ops: f64,
}

impl ToJson for StormResult {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("cancellations", self.cancellations.to_json()),
            ("max_abort_ops", self.max_abort_ops.to_json()),
            ("mean_abort_ops", self.mean_abort_ops.to_json()),
            ("op_bound", ABORT_OP_BOUND.to_json()),
        ])
    }
}

/// Drop `n` pending `lock()` futures (at varying poll depths) against a
/// lock that is never released, and measure the per-cancellation op
/// cost from the probe records.
fn cancellation_storm(n: usize) -> StormResult {
    let stats = PassageStats::new();
    let m = AsyncAbortableMutex::builder(0u64)
        .capacity(CAPACITY)
        .probe(stats.clone())
        .build_async();
    let holder = m.try_lock().expect("free at start");
    for i in 0..n {
        let mut fut = m.lock();
        for _ in 0..1 + (i % 3) {
            assert!(
                poll_once(&mut fut).is_pending(),
                "the holder never releases"
            );
        }
        drop(fut);
    }
    assert_eq!(m.free_pids(), CAPACITY - 1, "storm leaked a pid");
    assert_eq!(m.queued_tasks(), 0);
    drop(holder);
    assert_eq!(m.stats().cancelled_pending, n as u64);

    let records = stats.records();
    let aborted: Vec<u64> = records
        .iter()
        .filter(|r| !r.entered)
        .map(|r| r.ops)
        .collect();
    assert_eq!(
        aborted.len(),
        n,
        "every drop must leave exactly one aborted passage"
    );
    let max = aborted.iter().copied().max().unwrap_or(0);
    let mean = aborted.iter().sum::<u64>() as f64 / aborted.len().max(1) as f64;
    StormResult {
        cancellations: n as u64,
        max_abort_ops: max,
        mean_abort_ops: mean,
    }
}

// ----------------------------------------------------------------- ccs

struct CcsRow {
    policy: &'static str,
    wakeups: u64,
    transitions: u64,
    futile_wakeups: u64,
    async_stats: AsyncStats,
}

impl ToJson for CcsRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("policy", self.policy.to_json()),
            ("wakeups", self.wakeups.to_json()),
            ("transitions", self.transitions.to_json()),
            ("futile_wakeups", self.futile_wakeups.to_json()),
            ("async_stats", async_stats_json(&self.async_stats)),
        ])
    }
}

/// `waiters` tasks park on disjoint `lock_when` conditions; one
/// incrementer satisfies them one at a time. Under `Evaluate` the
/// registry wakes ~1 waiter per transition; under `Broadcast` it wakes
/// every registered waiter. Same workload, both policies.
fn ccs_cell(policy: WakePolicy, label: &'static str, waiters: u64) -> CcsRow {
    let m = Arc::new(
        AsyncAbortableMutex::builder(0u64)
            .capacity(CAPACITY)
            .wake_policy(policy)
            .build_async(),
    );
    let ex = Executor::new();
    for t in 1..=waiters {
        let m = Arc::clone(&m);
        ex.spawn(async move {
            let g = m.lock_when(move |v: &u64| *v >= t).await;
            assert!(*g >= t);
        });
    }
    {
        let m = Arc::clone(&m);
        ex.spawn(async move {
            for _ in 0..waiters {
                // Let pending waiters register before each transition,
                // so the two policies see comparable registry states.
                sleep(Duration::from_millis(1)).await;
                *m.lock().await += 1;
            }
        });
    }
    ex.run(WORKERS);
    assert_eq!(m.waiters(), 0, "a conditional registration leaked");
    assert_eq!(m.free_pids(), CAPACITY);
    let s = m.ccs_stats();
    CcsRow {
        policy: label,
        wakeups: s.wakeups,
        transitions: s.transitions,
        futile_wakeups: s.futile_wakeups,
        async_stats: m.stats(),
    }
}

// ---------------------------------------------------------------- main

fn main() {
    let p = sal_bench::Cli::new("asyncscale", "async mutex task-scaling benchmark")
        .flag("--smoke", "CI-sized run")
        .opt("--tasks", "N", "headline task count")
        .parse_env_or_exit();
    let smoke = p.smoke();
    let headline_tasks: Option<usize> = p.get("--tasks").unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });

    let headline = headline_tasks.unwrap_or(if smoke { 2_000 } else { 10_000 });
    let task_counts: Vec<usize> = if smoke {
        vec![500, headline]
    } else {
        vec![1_000, 4_000, headline]
    };
    let cancel_rates: &[Option<usize>] = &[None, Some(4)];
    let reps = if smoke { 2 } else { 4 };
    let storm_n = if smoke { 2_000 } else { 10_000 };
    let ccs_waiters: u64 = if smoke { 4 } else { 6 };

    let nprocs = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mode = if smoke { "smoke" } else { "full" };
    println!(
        "asyncscale ({mode}): tasks {task_counts:?} × cancel {cancel_rates:?}, \
         {reps} ops/task, {WORKERS} workers over {CAPACITY} pids, {nprocs} CPUs"
    );

    // 1. Task grid.
    let mut rows: Vec<CellRow> = Vec::new();
    for &tasks in &task_counts {
        for &cancel_every in cancel_rates {
            rows.push(run_cell(tasks, reps, cancel_every));
        }
    }
    let mut table = Table::new(
        "M6 — asyncscale: tasks over pids on the mini-executor",
        &[
            "tasks",
            "cancel",
            "entered",
            "aborted",
            "entered/s",
            "pid waits",
            "futile wakes",
        ],
    );
    for r in &rows {
        table.row(vec![
            r.tasks.to_string(),
            r.cancel_every.map_or("-".into(), |k| format!("1/{k}")),
            r.entered.to_string(),
            r.aborted.to_string(),
            format!("{:.0}", r.throughput()),
            r.stats.pid_waits.to_string(),
            r.stats.futile_enter_wakeups.to_string(),
        ]);
    }
    table.print();

    // 2. Cancellation storm.
    let storm = cancellation_storm(storm_n);
    println!(
        "storm: {} cancellations against a never-released lock, \
         abort cost max {} ops / mean {:.1} ops (bound {ABORT_OP_BOUND})",
        storm.cancellations, storm.max_abort_ops, storm.mean_abort_ops
    );

    // 3. CCS wake economics on the async path.
    let ccs_rows = vec![
        ccs_cell(WakePolicy::Evaluate, "evaluate", ccs_waiters),
        ccs_cell(WakePolicy::Broadcast, "broadcast", ccs_waiters),
    ];
    let mut ccs_table = Table::new(
        "lock_when wake policy, async path",
        &["policy", "wakeups", "transitions", "futile", "enter wakes"],
    );
    for r in &ccs_rows {
        ccs_table.row(vec![
            r.policy.to_string(),
            r.wakeups.to_string(),
            r.transitions.to_string(),
            r.futile_wakeups.to_string(),
            r.async_stats.enter_wakeups.to_string(),
        ]);
    }
    ccs_table.print();

    // Acceptance: the headline cell sustained its storm with integrity
    // (asserted inside run_cell) and cancellation stayed within the
    // paper's op bound.
    let headline_ok = rows.iter().any(|r| r.tasks >= headline);
    let bound_ok = storm.max_abort_ops <= ABORT_OP_BOUND;
    let target_met = headline_ok && bound_ok;
    let mut caveats: Vec<String> = Vec::new();
    if nprocs < WORKERS {
        caveats.push(format!(
            "{nprocs} CPUs < {WORKERS} workers: workers time-share cores, so \
             throughput reflects scheduling cost, not parallel contention"
        ));
    }
    if !bound_ok {
        caveats.push(format!(
            "cancellation exceeded the {ABORT_OP_BOUND}-op bound (max {})",
            storm.max_abort_ops
        ));
    }
    caveats.push(
        "deadline futures are checked at poll time: under zero lock traffic pair \
         lock_timeout with executor::sleep_until for prompt expiry"
            .to_string(),
    );
    println!(
        "headline: {headline} tasks on {WORKERS} workers, abort bound {} (target_met: {target_met})",
        if bound_ok { "held" } else { "VIOLATED" }
    );
    for c in &caveats {
        println!("caveat: {c}");
    }

    let out = Json::obj(vec![
        ("bench", "asyncscale".to_json()),
        ("mode", mode.to_json()),
        ("available_parallelism", (nprocs as u64).to_json()),
        ("workers", (WORKERS as u64).to_json()),
        ("capacity_pids", (CAPACITY as u64).to_json()),
        ("headline_tasks", (headline as u64).to_json()),
        ("abort_op_bound", ABORT_OP_BOUND.to_json()),
        ("target_met", target_met.to_json()),
        ("caveats", caveats.to_json()),
        ("cells", rows.to_json()),
        ("storm", storm.to_json()),
        ("lock_when", ccs_rows.to_json()),
    ]);
    // The acceptance artifact lives at the repo root: resolve from the
    // crate manifest so the binary lands it there regardless of cwd.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_async.json");
    match std::fs::write(&path, out.render()) {
        Ok(()) => println!("(saved {})", path.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}
