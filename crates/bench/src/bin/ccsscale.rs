//! ccsscale — conditional-critical-section wakeup benchmark (M5).
//!
//! ```text
//! cargo run --release -p sal-bench --bin ccsscale -- [--smoke]
//! ```
//!
//! Measures the point of `sal-sync`'s unlock-side condition evaluation:
//! how many waiters one state transition wakes. Three scenarios run on
//! real OS threads over [`AbortableMutex`], each under both
//! [`WakePolicy::Evaluate`] (wake only satisfiable waiters) and
//! [`WakePolicy::Broadcast`] (the classic condition-variable baseline:
//! wake everyone on every unlock):
//!
//! * **prodcons** — mailbox producer/consumer: producers deposit into
//!   per-consumer mailboxes round-robin; consumer `c` waits
//!   `lock_when(|s| s.boxes[c] > 0 || done)`. Under evaluation, a
//!   deposit wakes exactly its addressee; broadcast wakes every parked
//!   consumer. This is the headline cell of the acceptance criterion.
//! * **bqueue** — bounded queue (capacity 4): producers wait for space,
//!   consumers wait for items — conditions on both sides of one queue.
//! * **barrier** — generation barrier via [`sal_sync::MutexGuard::await_when`]:
//!   each round the last arrival bumps the generation; everyone else
//!   re-waits *while holding* their guard.
//!
//! The grid is scenario × policy × threads × abort-rate; under a
//! non-zero abort rate every k-th conditional wait first runs with a
//! tiny deadline (`lock_when_for` / `await_when_for` — the deadline is
//! injected as the lock's abort signal, so it exercises the paper's
//! bounded-RMR abort path while queued) and retries unbounded on
//! [`AbortReason::Deadline`].
//!
//! Every cell asserts its scenario invariant (no lost items, no lost
//! updates, all rounds completed). Results go to stdout and
//! `BENCH_ccs.json`; the headline metric is `wakeups / transitions`,
//! compared Evaluate-vs-Broadcast per scenario.

use sal_bench::Table;
use sal_obs::{Json, ToJson};
use sal_sync::{AbortReason, AbortableMutex, CcsStats, MutexHandle, WakePolicy};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Bounded-queue capacity of the `bqueue` scenario.
const QUEUE_CAP: usize = 4;

/// Deadline used for the abort-rate cells: short enough to fire under
/// contention, long enough that uncontended waits usually finish.
const ABORT_DEADLINE: Duration = Duration::from_micros(50);

/// Per-cell measurements: the mutex's CCS counters plus scenario-side
/// observations.
struct CellResult {
    stats: CcsStats,
    /// Deadline aborts observed (and retried) by the scenario threads.
    deadline_aborts: u64,
    elapsed: Duration,
}

impl CellResult {
    fn wakeups_per_transition(&self) -> f64 {
        self.stats.wakeups as f64 / (self.stats.transitions as f64).max(1.0)
    }
}

/// Cell coordinates shared by all scenarios.
#[derive(Clone, Copy)]
struct CellCfg {
    policy: WakePolicy,
    threads: usize,
    /// `Some(k)`: every k-th conditional wait runs with a deadline
    /// first.
    abort_every: Option<usize>,
    /// Work units per thread (items per producer / barrier rounds).
    items: usize,
}

impl CellCfg {
    fn policy_name(&self) -> &'static str {
        match self.policy {
            WakePolicy::Evaluate => "evaluate",
            WakePolicy::Broadcast => "broadcast",
        }
    }
}

/// Mailbox producer/consumer state.
struct Mail {
    /// One rendezvous slot per consumer: 0 = empty, else the item.
    boxes: Vec<u64>,
    produced: u64,
    consumed: u64,
    producers_done: usize,
}

/// The headline scenario: capacity-1 mailboxes addressed round-robin.
/// A producer waits for its *target* slot to drain, consumer `c` waits
/// for *its own* slot to fill — so every condition names one slot, and
/// under evaluation a deposit can wake exactly its addressee (and a
/// pickup exactly the producers queued on that slot), while broadcast
/// wakes every parked thread on every unlock.
fn prodcons(cfg: &CellCfg) -> CellResult {
    let producers = (cfg.threads / 2).max(1);
    let consumers = (cfg.threads - producers).max(1);
    let m = AbortableMutex::builder(Mail {
        boxes: vec![0; consumers],
        produced: 0,
        consumed: 0,
        producers_done: 0,
    })
    .capacity(producers + consumers)
    .wake_policy(cfg.policy)
    .build();

    let start = Instant::now();
    let mut aborts = 0u64;
    std::thread::scope(|s| {
        let mut joins = Vec::new();
        for p in 0..producers {
            let mut h = m.handle();
            let abort_every = cfg.abort_every;
            let items = cfg.items;
            joins.push(s.spawn(move || {
                let mut aborts = 0u64;
                for i in 0..items {
                    let target = (p * items + i) % consumers;
                    let mut g = conditional_lock(
                        &mut h,
                        move |s: &Mail| s.boxes[target] == 0,
                        abort_every,
                        i + 1,
                        &mut aborts,
                    );
                    g.boxes[target] = 1 + (p * items + i) as u64;
                    g.produced += 1;
                }
                h.lock().producers_done += 1;
                aborts
            }));
        }
        for c in 0..consumers {
            let mut h = m.handle();
            let abort_every = cfg.abort_every;
            joins.push(s.spawn(move || {
                let pred = move |s: &Mail| s.boxes[c] != 0 || s.producers_done == producers;
                let mut aborts = 0u64;
                let mut waits = 0usize;
                loop {
                    waits += 1;
                    let mut g = conditional_lock(&mut h, pred, abort_every, waits, &mut aborts);
                    if g.boxes[c] != 0 {
                        g.boxes[c] = 0;
                        g.consumed += 1;
                    } else if g.producers_done == producers {
                        break;
                    }
                }
                aborts
            }));
        }
        for j in joins {
            aborts += j.join().unwrap();
        }
    });
    let elapsed = start.elapsed();

    let stats = m.ccs_stats();
    let total = (producers * cfg.items) as u64;
    let state = m.into_inner();
    assert_eq!(state.produced, total, "prodcons: lost production");
    assert_eq!(state.consumed, total, "prodcons: lost or duplicated items");
    assert!(
        state.boxes.iter().all(|&b| b == 0),
        "prodcons: undrained mailbox"
    );
    CellResult {
        stats,
        deadline_aborts: aborts,
        elapsed,
    }
}

/// Bounded-queue state.
struct Bq {
    q: VecDeque<u64>,
    pushed: u64,
    popped: u64,
    sum_pushed: u64,
    sum_popped: u64,
    producers_done: usize,
}

/// Producers wait for space, consumers wait for items: conditional
/// waits on both sides of one bounded queue.
fn bqueue(cfg: &CellCfg) -> CellResult {
    let producers = (cfg.threads / 2).max(1);
    let consumers = (cfg.threads - producers).max(1);
    let m = AbortableMutex::builder(Bq {
        q: VecDeque::with_capacity(QUEUE_CAP),
        pushed: 0,
        popped: 0,
        sum_pushed: 0,
        sum_popped: 0,
        producers_done: 0,
    })
    .capacity(producers + consumers)
    .wake_policy(cfg.policy)
    .build();

    let start = Instant::now();
    let mut aborts = 0u64;
    std::thread::scope(|s| {
        let mut joins = Vec::new();
        for p in 0..producers {
            let mut h = m.handle();
            let abort_every = cfg.abort_every;
            let items = cfg.items;
            joins.push(s.spawn(move || {
                let mut aborts = 0u64;
                for i in 0..items {
                    let v = (p * items + i) as u64;
                    let mut g = conditional_lock(
                        &mut h,
                        |s: &Bq| s.q.len() < QUEUE_CAP,
                        abort_every,
                        i + 1,
                        &mut aborts,
                    );
                    assert!(g.q.len() < QUEUE_CAP, "bqueue: overfull on entry");
                    g.q.push_back(v);
                    g.pushed += 1;
                    g.sum_pushed += v;
                }
                h.lock().producers_done += 1;
                aborts
            }));
        }
        for _ in 0..consumers {
            let mut h = m.handle();
            let abort_every = cfg.abort_every;
            joins.push(s.spawn(move || {
                let pred = move |s: &Bq| !s.q.is_empty() || s.producers_done == producers;
                let mut aborts = 0u64;
                let mut waits = 0usize;
                loop {
                    waits += 1;
                    let mut g = conditional_lock(&mut h, pred, abort_every, waits, &mut aborts);
                    if let Some(v) = g.q.pop_front() {
                        g.popped += 1;
                        g.sum_popped += v;
                    } else if g.producers_done == producers {
                        break;
                    }
                }
                aborts
            }));
        }
        for j in joins {
            aborts += j.join().unwrap();
        }
    });
    let elapsed = start.elapsed();

    let stats = m.ccs_stats();
    let total = (producers * cfg.items) as u64;
    let state = m.into_inner();
    assert_eq!(state.pushed, total, "bqueue: lost push");
    assert_eq!(state.popped, total, "bqueue: lost or duplicated pop");
    assert_eq!(
        state.sum_pushed, state.sum_popped,
        "bqueue: value corruption through the queue"
    );
    assert!(state.q.is_empty(), "bqueue: undrained queue");
    CellResult {
        stats,
        deadline_aborts: aborts,
        elapsed,
    }
}

/// Generation-barrier state.
struct Bar {
    gen: u64,
    count: usize,
}

/// All threads meet `items` times; the last arrival of a round bumps
/// the generation and everyone else `await_when`s it — the re-wait
/// happens *while holding a guard*, exercising the release/re-acquire
/// path.
fn barrier(cfg: &CellCfg) -> CellResult {
    let n = cfg.threads;
    let m = AbortableMutex::builder(Bar { gen: 0, count: 0 })
        .capacity(n)
        .wake_policy(cfg.policy)
        .build();

    let start = Instant::now();
    let mut aborts = 0u64;
    std::thread::scope(|s| {
        let mut joins = Vec::new();
        for _ in 0..n {
            let mut h = m.handle();
            let abort_every = cfg.abort_every;
            let rounds = cfg.items;
            joins.push(s.spawn(move || {
                let mut aborts = 0u64;
                for r in 0..rounds {
                    let mut g = h.lock();
                    let my_gen = g.gen;
                    g.count += 1;
                    if g.count == n {
                        g.count = 0;
                        g.gen += 1;
                        // Dropping the guard runs unlock-side
                        // evaluation and wakes the other n-1 arrivals.
                    } else {
                        let pred = move |s: &Bar| s.gen != my_gen;
                        if abort_every.is_some_and(|k| (r + 1).is_multiple_of(k)) {
                            while !g.await_when_for(pred, ABORT_DEADLINE) {
                                aborts += 1;
                            }
                        } else {
                            g.await_when(pred);
                        }
                    }
                }
                aborts
            }));
        }
        for j in joins {
            aborts += j.join().unwrap();
        }
    });
    let elapsed = start.elapsed();

    let stats = m.ccs_stats();
    let state = m.into_inner();
    assert_eq!(
        state.gen, cfg.items as u64,
        "barrier: rounds lost or duplicated"
    );
    assert_eq!(state.count, 0, "barrier: stragglers left behind");
    CellResult {
        stats,
        deadline_aborts: aborts,
        elapsed,
    }
}

/// One conditional acquisition, optionally deadline-first: on the
/// attempts selected by `abort_every` the wait first runs with
/// [`ABORT_DEADLINE`] (injected as the lock's abort signal) and falls
/// back to the unbounded wait on [`AbortReason::Deadline`], counting
/// the abort.
fn conditional_lock<'h, 'm, T, F>(
    h: &'h mut MutexHandle<'m, T>,
    pred: F,
    abort_every: Option<usize>,
    attempt: usize,
    aborts: &mut u64,
) -> sal_sync::MutexGuard<'h, 'm, T>
where
    F: Fn(&T) -> bool + Sync + Copy,
{
    if abort_every.is_some_and(|k| attempt.is_multiple_of(k)) {
        match h.lock_when_for(pred, ABORT_DEADLINE) {
            Ok(_g) => {
                // NLL limitation: returning `_g` here would hold the
                // borrow across the fallback arm; drop and re-take the
                // (now likely satisfiable) wait instead.
                drop(_g);
            }
            Err(AbortReason::Deadline) => *aborts += 1,
            Err(AbortReason::Caller) => unreachable!("deadline waits cannot report Caller"),
        }
    }
    h.lock_when(pred)
}

struct Row {
    scenario: &'static str,
    cfg: CellCfg,
    result: CellResult,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        let s = &self.result.stats;
        Json::obj(vec![
            ("scenario", self.scenario.to_json()),
            ("policy", self.cfg.policy_name().to_json()),
            ("threads", (self.cfg.threads as u64).to_json()),
            (
                "abort_every",
                self.cfg.abort_every.map(|k| k as u64).to_json(),
            ),
            ("items_per_thread", (self.cfg.items as u64).to_json()),
            ("wakeups", s.wakeups.to_json()),
            ("transitions", s.transitions.to_json()),
            ("evaluated", s.evaluated.to_json()),
            ("waits", s.waits.to_json()),
            ("futile_wakeups", s.futile_wakeups.to_json()),
            (
                "wakeups_per_transition",
                self.result.wakeups_per_transition().to_json(),
            ),
            ("deadline_aborts", self.result.deadline_aborts.to_json()),
            (
                "elapsed_ns",
                (self.result.elapsed.as_nanos() as u64).to_json(),
            ),
            ("invariants", "passed".to_json()),
        ])
    }
}

/// Aggregate `wakeups / transitions` over a scenario's rows of one
/// policy.
fn aggregate(rows: &[Row], scenario: &str, policy: WakePolicy) -> (u64, u64) {
    rows.iter()
        .filter(|r| r.scenario == scenario && r.cfg.policy == policy)
        .fold((0, 0), |(w, t), r| {
            (w + r.result.stats.wakeups, t + r.result.stats.transitions)
        })
}

fn main() {
    let smoke = sal_bench::Cli::new(
        "ccsscale",
        "conditional-critical-section throughput benchmark",
    )
    .flag("--smoke", "CI-sized run")
    .parse_env_or_exit()
    .smoke();
    let thread_counts: &[usize] = if smoke { &[2, 4] } else { &[2, 4, 8] };
    let abort_rates: &[Option<usize>] = &[None, Some(8)];
    let items = if smoke { 300 } else { 2_000 };
    let rounds = if smoke { 100 } else { 500 };
    let mode = if smoke { "smoke" } else { "full" };

    println!(
        "ccsscale ({mode}): 3 scenarios × 2 policies × {thread_counts:?} threads × \
         {abort_rates:?} abort rates, {items} items ({rounds} barrier rounds) per thread"
    );

    type Scenario = (&'static str, fn(&CellCfg) -> CellResult);
    let scenarios: &[Scenario] = &[
        ("prodcons", prodcons),
        ("bqueue", bqueue),
        ("barrier", barrier),
    ];
    let mut rows: Vec<Row> = Vec::new();
    for &(name, run) in scenarios {
        for &policy in &[WakePolicy::Evaluate, WakePolicy::Broadcast] {
            for &threads in thread_counts {
                for &abort_every in abort_rates {
                    let cfg = CellCfg {
                        policy,
                        threads,
                        abort_every,
                        items: if name == "barrier" { rounds } else { items },
                    };
                    let result = run(&cfg);
                    rows.push(Row {
                        scenario: name,
                        cfg,
                        result,
                    });
                }
            }
        }
    }

    let mut table = Table::new(
        "M5 — ccsscale: wakeups per state transition, evaluate vs broadcast",
        &[
            "scenario",
            "policy",
            "thr",
            "abort",
            "wake/trans",
            "futile",
            "waits",
            "aborts",
        ],
    );
    for r in &rows {
        table.row(vec![
            r.scenario.into(),
            r.cfg.policy_name().into(),
            r.cfg.threads.to_string(),
            r.cfg.abort_every.map_or("-".into(), |k| format!("1/{k}")),
            format!("{:.3}", r.result.wakeups_per_transition()),
            r.result.stats.futile_wakeups.to_string(),
            r.result.stats.waits.to_string(),
            r.result.deadline_aborts.to_string(),
        ]);
    }
    table.print();

    // Headline: unlock-side evaluation must wake strictly fewer waiters
    // per transition than broadcast on the producer/consumer scenario.
    let mut comparisons = Vec::new();
    let mut prodcons_improved = false;
    for &(name, _) in scenarios {
        let (ew, et) = aggregate(&rows, name, WakePolicy::Evaluate);
        let (bw, bt) = aggregate(&rows, name, WakePolicy::Broadcast);
        let eval = ew as f64 / (et as f64).max(1.0);
        let bcast = bw as f64 / (bt as f64).max(1.0);
        println!(
            "{name}: evaluate {eval:.3} vs broadcast {bcast:.3} wakeups/transition \
             ({:.1}% fewer)",
            (1.0 - eval / bcast.max(1e-9)) * 100.0
        );
        if name == "prodcons" {
            prodcons_improved = eval < bcast;
        }
        comparisons.push(Json::obj(vec![
            ("scenario", name.to_json()),
            ("evaluate_wakeups_per_transition", eval.to_json()),
            ("broadcast_wakeups_per_transition", bcast.to_json()),
            ("evaluate_strictly_fewer", (eval < bcast).to_json()),
        ]));
    }
    assert!(
        prodcons_improved,
        "acceptance: evaluate must wake strictly fewer waiters per transition \
         than broadcast on prodcons"
    );
    println!("acceptance (prodcons evaluate < broadcast): met");

    let out = Json::obj(vec![
        ("bench", "ccsscale".to_json()),
        ("mode", mode.to_json()),
        (
            "available_parallelism",
            (std::thread::available_parallelism().map_or(1, |n| n.get()) as u64).to_json(),
        ),
        ("headline", comparisons.to_json()),
        ("prodcons_evaluate_strictly_fewer", true.to_json()),
        ("invariants_all_passed", true.to_json()),
        ("cells", rows.to_json()),
    ]);
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_ccs.json");
    match std::fs::write(&path, out.render()) {
        Ok(()) => println!("(saved {})", path.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}
