//! Ad-hoc systematic-exploration CLI: bounded-deviation model checking
//! of any registry lock × workload combination, under any search
//! strategy.
//!
//! ```text
//! cargo run --release -p sal-bench --bin explore -- \
//!     --lock one-shot --b 4 --n 3 --aborters 1 --abort-after 8 \
//!     --strategy dpor --deviations 2 --max-runs 4000 --depth 80
//! ```
//!
//! Every schedule within the deviation budget re-executes the workload
//! from scratch; each run must preserve mutual exclusion (and FCFS for
//! one-shot locks) and resolve every attempt. On a violation the
//! witness schedule is printed as a replayable recording and the
//! process exits non-zero.
//!
//! `--strategy` picks the search order: `bfs` (exhaustive reference),
//! `dpor` (independence pruning + state-fingerprint dedup),
//! `best-first` (expand the highest-RMR prefixes first) or `fuzz`
//! (seeded coverage-feedback schedule mutation; `--seed` seeds it).
//! Dropped work is reported, not silent: the table lists how many
//! queued prefixes the run budget truncated, how many children the
//! independence rule pruned and how many runs the fingerprint table
//! deduplicated.
//!
//! `--lease` sets the step-lease cap for every explored run (0 =
//! unbounded, 1 = legacy per-step, k = capped; default from
//! `SAL_LEASE`, else 0). The explored schedule set and any witness are
//! identical at every cap — leases batch the gate handoffs, never the
//! decisions.

use sal_bench::{Cli, ExploreCell, LockKind, Table};
use sal_runtime::{explore_guided, ExploreOptions, Strategy};

fn cli() -> Cli {
    Cli::new(
        "explore",
        "bounded-deviation systematic exploration of a lock workload",
    )
    .opt(
        "--lock",
        "kind",
        "any registry kind, e.g. one-shot | long-lived | mcs | tournament | scott | lee | \
         jj-amortized (default one-shot; a wrong name lists them all)",
    )
    .opt("--b", "2..=64", "tree branching factor (default 4)")
    .opt(
        "--n",
        "procs",
        "number of processes (default 3; keep small — the schedule space is exponential)",
    )
    .opt(
        "--aborters",
        "k",
        "processes playing the aborter role (default 0)",
    )
    .opt(
        "--abort-after",
        "s",
        "abort after waiting this many global steps (default 8)",
    )
    .opt(
        "--passages",
        "k",
        "passages per process (forced to 1 for one-shot locks)",
    )
    .opt("--cs-ops", "k", "shared ops inside the CS (default 2)")
    .opt(
        "--max-steps",
        "s",
        "per-run step limit / livelock detector (default 200000)",
    )
    .strategy_opt()
    .opt(
        "--seed",
        "u64",
        "fuzzer seed (default 1; fuzz strategy only)",
    )
    .opt(
        "--deviations",
        "d",
        "max deviations from round-robin per schedule (default 2)",
    )
    .opt(
        "--max-runs",
        "r",
        "hard cap on executed schedules (default 4000)",
    )
    .opt(
        "--depth",
        "s",
        "branch-point depth cap per run (default 80)",
    )
    .opt(
        "--jobs",
        "k",
        "worker threads (0 = auto; SAL_JOBS honoured; results are identical at any value)",
    )
    .lease_opt()
}

fn main() {
    let p = cli().parse_env_or_exit();
    let run = || -> Result<(), String> {
        let b: usize = p.get_or("--b", 4)?;
        if !(2..=64).contains(&b) {
            return Err(format!("--b must be in 2..=64 (got {b})"));
        }
        let kind = p
            .lock()
            .unwrap_or("one-shot")
            .parse::<LockKind>()?
            .with_branching(b);
        let n: usize = p.get_or("--n", 3)?;
        let aborters: usize = p.get_or("--aborters", 0)?;
        if aborters >= n {
            return Err("--aborters must be < --n".into());
        }
        if aborters > 0 && !kind.abortable() {
            return Err(format!("{} is not abortable", kind.label()));
        }
        let strategy = p.strategy()?.unwrap_or(Strategy::Bfs);
        let cell = ExploreCell {
            kind,
            n,
            aborters,
            abort_after: p.get_or("--abort-after", 8)?,
            passages: p.get_or("--passages", 1)?,
            cs_ops: p.get_or("--cs-ops", 2)?,
            max_steps: p.get_or("--max-steps", 200_000)?,
            lease: p.lease()?,
        };
        let opts = ExploreOptions {
            max_deviations: p.get_or("--deviations", 2)?,
            max_runs: p.get_or("--max-runs", 4_000)?,
            max_branch_depth: p.get_or("--depth", 80)?,
            jobs: p.get_or("--jobs", 0)?,
            ..ExploreOptions::default()
        };
        let result = explore_guided(&opts, strategy, |policy| cell.guided_run(policy));

        let mut t = Table::new(
            format!(
                "explore | {} N={} aborters={} strategy={} deviations<={} lease={}",
                kind.label(),
                n,
                aborters,
                strategy.label(),
                opts.max_deviations,
                cell.lease
            ),
            &["metric", "value"],
        );
        t.row(vec!["schedules executed".into(), result.runs.to_string()]);
        t.row(vec![
            "distinct states".into(),
            result.distinct_states.to_string(),
        ]);
        t.row(vec![
            "truncated (unexecuted prefixes)".into(),
            result.truncated_runs.to_string(),
        ]);
        t.row(vec!["pruned children".into(), result.pruned.to_string()]);
        t.row(vec!["deduped runs".into(), result.deduped.to_string()]);
        t.row(vec![
            "best cost (max entered RMRs)".into(),
            result.best_cost.to_string(),
        ]);
        t.row(vec![
            "verdict".into(),
            match &result.violation {
                None => "all explored schedules safe".into(),
                Some((_, msg)) => format!("VIOLATION: {msg}"),
            },
        ]);
        t.print();
        if let Some(rec) = result.violation_recording() {
            println!("witness recording (replayable): {}", rec.serialize());
            std::process::exit(1);
        }
        Ok(())
    };
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
}
