//! Ad-hoc systematic-exploration CLI: bounded-deviation model checking
//! of any registry lock × workload combination.
//!
//! ```text
//! cargo run --release -p sal-bench --bin explore -- \
//!     --lock one-shot --b 4 --n 3 --aborters 1 --abort-after 8 \
//!     --deviations 2 --max-runs 4000 --depth 80 --lease 0
//! ```
//!
//! Every schedule within the deviation budget re-executes the workload
//! from scratch; each run must preserve mutual exclusion (and FCFS for
//! one-shot locks) and resolve every attempt. On a violation the
//! witness schedule is printed as a replayable recording and the
//! process exits non-zero.
//!
//! `--lease` sets the step-lease cap for every explored run (0 =
//! unbounded, 1 = legacy per-step, k = capped; default from
//! `SAL_LEASE`, else 0). The explored schedule set and any witness are
//! identical at every cap — leases batch the gate handoffs, never the
//! decisions.

use sal_bench::{build_lock, LockKind, Table};
use sal_runtime::{
    explore, run_lock, run_one_shot, ExploreOptions, ForcedSchedule, ProcPlan, WorkloadSpec,
};

#[derive(Debug)]
struct Args {
    lock: String,
    b: usize,
    n: usize,
    aborters: usize,
    abort_after: u64,
    passages: usize,
    cs_ops: usize,
    max_steps: u64,
    deviations: usize,
    max_runs: usize,
    depth: usize,
    jobs: usize,
    lease: u64,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            lock: "one-shot".into(),
            b: 4,
            n: 3,
            aborters: 0,
            abort_after: 8,
            passages: 1,
            cs_ops: 2,
            max_steps: 200_000,
            deviations: 2,
            max_runs: 4_000,
            depth: 80,
            jobs: 0,
            lease: sal_runtime::default_lease(),
        }
    }
}

fn parse() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--lock" => args.lock = value()?,
            "--b" => args.b = value()?.parse().map_err(|e| format!("--b: {e}"))?,
            "--n" => args.n = value()?.parse().map_err(|e| format!("--n: {e}"))?,
            "--aborters" => {
                args.aborters = value()?.parse().map_err(|e| format!("--aborters: {e}"))?
            }
            "--abort-after" => {
                args.abort_after = value()?
                    .parse()
                    .map_err(|e| format!("--abort-after: {e}"))?
            }
            "--passages" => {
                args.passages = value()?.parse().map_err(|e| format!("--passages: {e}"))?
            }
            "--cs-ops" => args.cs_ops = value()?.parse().map_err(|e| format!("--cs-ops: {e}"))?,
            "--max-steps" => {
                args.max_steps = value()?.parse().map_err(|e| format!("--max-steps: {e}"))?
            }
            "--deviations" => {
                args.deviations = value()?.parse().map_err(|e| format!("--deviations: {e}"))?
            }
            "--max-runs" => {
                args.max_runs = value()?.parse().map_err(|e| format!("--max-runs: {e}"))?
            }
            "--depth" => args.depth = value()?.parse().map_err(|e| format!("--depth: {e}"))?,
            "--jobs" => args.jobs = value()?.parse().map_err(|e| format!("--jobs: {e}"))?,
            "--lease" => args.lease = value()?.parse().map_err(|e| format!("--lease: {e}"))?,
            "--help" | "-h" => {
                use std::io::Write;
                let _ = writeln!(std::io::stdout(), "{}", HELP);
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    Ok(args)
}

const HELP: &str = "explore — bounded-deviation systematic exploration of a lock workload

flags:
  --lock <kind>        one-shot | one-shot-plain | one-shot-dsm | long-lived |
                       long-lived-simple | mcs | ticket | tas | tournament | scott | lee
  --b <2..=64>         tree branching factor for the paper's locks (default 4)
  --n <procs>          number of processes (default 3; keep small — the
                       schedule space is exponential)
  --aborters <k>       how many processes play the aborter role (default 0)
  --abort-after <s>    abort after waiting this many global steps (default 8)
  --passages <k>       passages per process (forced to 1 for one-shot locks)
  --cs-ops <k>         shared ops inside the CS (default 2)
  --max-steps <s>      per-run step limit / livelock detector (default 200000)
  --deviations <d>     max deviations from round-robin per schedule (default 2)
  --max-runs <r>       hard cap on executed schedules (default 4000)
  --depth <s>          branch-point depth cap per run (default 80)
  --jobs <k>           worker threads (0 = auto; SAL_JOBS honoured; results
                       are identical at any value)
  --lease <k>          step-lease cap: 0 = unbounded, 1 = legacy per-step,
                       k = capped (default from SAL_LEASE, else 0; the
                       exploration result is identical at any value)";

/// Drive the workload once under a forced schedule and judge the run.
fn run_once(policy: ForcedSchedule, kind: LockKind, args: &Args) -> Result<(), String> {
    let passages = if kind.one_shot() { 1 } else { args.passages };
    let mut plans = vec![ProcPlan::normal(passages); args.n - args.aborters];
    plans.extend(vec![
        ProcPlan::aborter(passages, args.abort_after);
        args.aborters
    ]);
    let attempts: usize = plans.iter().map(|p| p.passages).sum();
    let built = build_lock(kind, args.n, attempts);
    let spec = WorkloadSpec {
        plans,
        cs_ops: args.cs_ops,
        max_steps: args.max_steps,
        lease: args.lease,
    };
    let report = if kind.one_shot() {
        run_one_shot(
            &*built.lock,
            &built.mem,
            built.cs_word,
            &spec,
            Box::new(policy),
        )
    } else {
        run_lock(
            &*built.lock,
            &built.mem,
            built.cs_word,
            &spec,
            Box::new(policy),
        )
    }
    .map_err(|e| e.to_string())?;
    report
        .mutex_check
        .as_ref()
        .map_err(|v| format!("mutual exclusion violated: {v:?}"))?;
    if kind.one_shot() {
        report
            .fcfs_check
            .as_ref()
            .map_err(|v| format!("FCFS violated: {v:?}"))?;
    }
    let resolved: usize = report.outcomes.iter().map(|&(e, a)| e + a).sum();
    if resolved != attempts {
        return Err(format!("only {resolved}/{attempts} attempts resolved"));
    }
    Ok(())
}

fn main() {
    let args = match parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    // The FromStr path shared by sweep/explore/hwscale, re-targeted to
    // the CLI branching factor.
    let kind = match args.lock.parse::<LockKind>() {
        Ok(k) => k.with_branching(args.b),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if !(2..=64).contains(&args.b) {
        eprintln!("error: --b must be in 2..=64 (got {})", args.b);
        std::process::exit(2);
    }
    if args.aborters >= args.n {
        eprintln!("error: --aborters must be < --n");
        std::process::exit(2);
    }
    if args.aborters > 0 && !kind.abortable() {
        eprintln!("error: {} is not abortable", kind.label());
        std::process::exit(2);
    }

    let opts = ExploreOptions {
        max_deviations: args.deviations,
        max_runs: args.max_runs,
        max_branch_depth: args.depth,
        jobs: args.jobs,
        collect_schedules: false,
    };
    let result = explore(&opts, |policy| run_once(policy, kind, &args));

    let mut t = Table::new(
        format!(
            "explore | {} N={} aborters={} deviations<={} lease={}",
            kind.label(),
            args.n,
            args.aborters,
            args.deviations,
            args.lease
        ),
        &["metric", "value"],
    );
    t.row(vec!["schedules executed".into(), result.runs.to_string()]);
    t.row(vec![
        "frontier truncated".into(),
        result.truncated.to_string(),
    ]);
    t.row(vec![
        "verdict".into(),
        match &result.violation {
            None => "all explored schedules safe".into(),
            Some((_, msg)) => format!("VIOLATION: {msg}"),
        },
    ]);
    t.print();
    if let Some(rec) = result.violation_recording() {
        println!("witness recording (replayable): {}", rec.serialize());
        std::process::exit(1);
    }
}
