//! explorescale — guided-search acceptance driver: verdict-equivalence
//! gate, then a distinct-states/sec grid over the search strategies.
//!
//! Two phases:
//!
//! 1. **Equivalence gate.** On a safe contended cell and on a
//!    deliberately racy test-then-set lock, DPOR and best-first must
//!    report the same safety verdict — and, for the racy lock, the
//!    same canonical least witness — as exhaustive BFS; the seeded
//!    fuzzer must find the race too. Any disagreement aborts the bench
//!    with exit 1: a fast pruned search that changes answers is
//!    worthless.
//! 2. **Timing grid.** Each cell × strategy runs at the *same* run
//!    budget; the scored metric is distinct state fingerprints per
//!    second. The headline is the best DPOR/BFS ratio (`target_met`
//!    requires ≥ 10x), plus a witness hunt: best-first must reach a
//!    schedule at least as expensive (max entered-passage RMRs) as the
//!    hand-crafted `worst_case_sweep` adversary of
//!    `tests/rmr_bounds.rs`.
//!
//! Results go to stdout as tables and to `BENCH_explore.json` at the
//! repo root with `target_met`/`caveats` fields. On a single-CPU
//! container the ratio is still meaningful — both searches time-share
//! the same core, so it measures algorithmic pruning, not parallelism —
//! and the caveat records it.

use sal_bench::{worst_case_sweep, Cli, ExploreCell, LockKind, Table};
use sal_memory::{Layered, Mem, MemoryBuilder};
use sal_obs::{Json, ToJson};
use sal_runtime::{
    explore_guided, simulate, ExplorationResult, ExploreOptions, ForcedSchedule, GuidedOutcome,
    OpTraceSink, SimOptions, Strategy,
};
use std::time::Instant;

fn cli() -> Cli {
    Cli::new(
        "explorescale",
        "guided-search equivalence gate + distinct-states/sec grid",
    )
    .flag("--smoke", "CI-sized grid (one cell, small budgets)")
    .opt(
        "--runs",
        "r",
        "run budget per cell (default 2000, smoke 1000 — the ratio needs enough \
         budget for BFS to hit its redundancy wall)",
    )
    .opt("--deviations", "d", "deviation budget (default 2)")
    .opt("--seed", "u64", "fuzzer seed (default 1)")
    .opt(
        "--jobs",
        "k",
        "worker threads (0 = auto; SAL_JOBS honoured; results are identical at any value)",
    )
}

/// The racy test-then-set lock (same shape as the explorer's own unit
/// tests): one deviation is enough to put both processes in the CS.
fn broken_lock_guided(policy: ForcedSchedule) -> GuidedOutcome {
    let mut b = MemoryBuilder::new();
    let flag = b.alloc(0);
    let in_cs = b.alloc(0);
    let max_seen = b.alloc(0);
    let mem = b.build_cc(2);
    let traced = Layered::over(&mem, OpTraceSink::new());
    let report = simulate(&traced, 2, Box::new(policy), SimOptions::default(), |ctx| {
        loop {
            if ctx.mem.read(ctx.pid, flag) == 0 {
                ctx.mem.write(ctx.pid, flag, 1); // should be CAS!
                break;
            }
        }
        let inside = ctx.mem.faa(ctx.pid, in_cs, 1) + 1;
        let seen = ctx.mem.read(ctx.pid, max_seen);
        if inside > seen {
            ctx.mem.write(ctx.pid, max_seen, inside);
        }
        ctx.mem.faa(ctx.pid, in_cs, 1u64.wrapping_neg());
        ctx.mem.write(ctx.pid, flag, 0);
    });
    let ops = traced.into_layer().take();
    let verdict = (|| {
        report.map_err(|e| e.to_string())?;
        if mem.read(0, max_seen) > 1 {
            Err("two processes in the CS".into())
        } else {
            Ok(())
        }
    })();
    GuidedOutcome {
        verdict,
        ops,
        cost: 0,
    }
}

/// Phase 1: BFS-equivalence of violation verdicts on small configs.
/// Returns the gate's table rows; exits the process on a disagreement.
fn equivalence_gate(jobs: usize, fuzz_seed: u64) -> Table {
    let mut t = Table::new(
        "explorescale | equivalence gate".to_string(),
        &["config", "strategy", "runs", "verdict", "agrees with bfs"],
    );
    let mut gate = |label: &str,
                    opts: &ExploreOptions,
                    run: &(dyn Fn(ForcedSchedule) -> GuidedOutcome + Sync)| {
        let opts = ExploreOptions {
            stop_on_violation: false,
            jobs,
            ..opts.clone()
        };
        let bfs = explore_guided(&opts, Strategy::Bfs, run);
        for strategy in [Strategy::Bfs, Strategy::Dpor, Strategy::BestFirst] {
            let r = if strategy == Strategy::Bfs {
                // reuse, don't re-run
                &bfs
            } else {
                &explore_guided(&opts, strategy, run)
            };
            let same_verdict = bfs.violation.is_some() == r.violation.is_some();
            let same_witness = bfs.violation_canonical == r.violation_canonical;
            let agrees = same_verdict && same_witness;
            t.row(vec![
                label.into(),
                strategy.label().into(),
                r.runs.to_string(),
                match &r.violation {
                    None => "safe".into(),
                    Some((_, m)) => format!("violation: {m}"),
                },
                agrees.to_string(),
            ]);
            if !agrees {
                t.print();
                eprintln!(
                    "equivalence gate FAILED: {} disagrees with bfs on {label} \
                     (bfs witness {:?}, {} witness {:?})",
                    strategy.label(),
                    bfs.violation_canonical,
                    strategy.label(),
                    r.violation_canonical
                );
                std::process::exit(1);
            }
        }
        bfs.violation.is_some()
    };

    let safe_cell = ExploreCell {
        aborters: 1,
        ..ExploreCell::new(LockKind::OneShot { b: 4 }, 3)
    };
    let safe_opts = ExploreOptions {
        max_deviations: 2,
        max_runs: 20_000,
        max_branch_depth: 80,
        ..ExploreOptions::default()
    };
    let found = gate("one-shot n=3 a=1", &safe_opts, &|p| safe_cell.guided_run(p));
    if found {
        eprintln!("equivalence gate FAILED: the one-shot lock is supposed to be safe");
        std::process::exit(1);
    }

    let racy_opts = ExploreOptions {
        max_deviations: 1,
        max_runs: 20_000,
        max_branch_depth: 100,
        ..ExploreOptions::default()
    };
    let found = gate("racy test-then-set", &racy_opts, &broken_lock_guided);
    if !found {
        eprintln!("equivalence gate FAILED: nobody found the planted race");
        std::process::exit(1);
    }

    // The fuzzer is not verdict-equivalent by construction (it samples
    // outside the deviation bound), but it must find the planted race.
    let fuzz_opts = ExploreOptions {
        max_deviations: 2,
        max_runs: 2_000,
        max_branch_depth: 100,
        jobs,
        ..ExploreOptions::default()
    };
    let fuzz = explore_guided(
        &fuzz_opts,
        Strategy::Fuzz { seed: fuzz_seed },
        broken_lock_guided,
    );
    t.row(vec![
        "racy test-then-set".into(),
        "fuzz".into(),
        fuzz.runs.to_string(),
        match &fuzz.violation {
            None => "safe".into(),
            Some((_, m)) => format!("violation: {m}"),
        },
        "(gate: must find race)".into(),
    ]);
    if fuzz.violation.is_none() {
        t.print();
        eprintln!("equivalence gate FAILED: fuzzer missed the planted race");
        std::process::exit(1);
    }
    t
}

struct CellRun {
    cell_label: String,
    n: usize,
    aborters: usize,
    strategy: &'static str,
    result: ExplorationResult,
    secs: f64,
}

impl CellRun {
    fn states_per_sec(&self) -> f64 {
        self.result.distinct_states as f64 / self.secs.max(1e-9)
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("cell", self.cell_label.to_json()),
            ("n", Json::Int(self.n as i64)),
            ("aborters", Json::Int(self.aborters as i64)),
            ("strategy", self.strategy.to_json()),
            ("runs", Json::Int(self.result.runs as i64)),
            (
                "distinct_states",
                Json::Int(self.result.distinct_states as i64),
            ),
            ("secs", self.secs.to_json()),
            ("states_per_sec", self.states_per_sec().to_json()),
            ("pruned", Json::Int(self.result.pruned as i64)),
            ("deduped", Json::Int(self.result.deduped as i64)),
            (
                "truncated_runs",
                Json::Int(self.result.truncated_runs as i64),
            ),
            ("best_cost", Json::Int(self.result.best_cost as i64)),
            ("safe", self.result.violation.is_none().to_json()),
        ])
    }
}

fn main() {
    let p = cli().parse_env_or_exit();
    let smoke = p.smoke();
    let jobs = p.get_or("--jobs", 0).unwrap_or_else(bad);
    let deviations = p.get_or("--deviations", 2).unwrap_or_else(bad);
    let fuzz_seed: u64 = p.get_or("--seed", 1).unwrap_or_else(bad);
    let budget: usize = p
        .get_or("--runs", if smoke { 1_000 } else { 2_000 })
        .unwrap_or_else(bad);

    let gate_table = equivalence_gate(jobs, fuzz_seed);
    gate_table.print();

    // Phase 2: the timing grid. Same budget for every strategy of a
    // cell — the scored metric is distinct states per second.
    let cells: Vec<(String, ExploreCell)> = if smoke {
        vec![(
            "one-shot b=4 n=3 contended".into(),
            ExploreCell::contended(LockKind::OneShot { b: 4 }, 3),
        )]
    } else {
        vec![
            (
                "one-shot b=4 n=3 contended".into(),
                ExploreCell::contended(LockKind::OneShot { b: 4 }, 3),
            ),
            (
                "one-shot b=2 n=4 contended".into(),
                ExploreCell::contended(LockKind::OneShot { b: 2 }, 4),
            ),
        ]
    };

    let mut grid: Vec<CellRun> = Vec::new();
    let mut t = Table::new(
        format!("explorescale | grid (budget {budget} runs, deviations <= {deviations})"),
        &[
            "cell", "strategy", "runs", "states", "secs", "states/s", "pruned", "deduped",
        ],
    );
    for (label, cell) in &cells {
        for strategy in [
            Strategy::Bfs,
            Strategy::Dpor,
            Strategy::BestFirst,
            Strategy::Fuzz { seed: fuzz_seed },
        ] {
            let opts = ExploreOptions {
                max_deviations: deviations,
                max_runs: budget,
                max_branch_depth: 120,
                jobs,
                ..ExploreOptions::default()
            };
            let start = Instant::now();
            let result = explore_guided(&opts, strategy, |p| cell.guided_run(p));
            let secs = start.elapsed().as_secs_f64();
            if result.violation.is_some() {
                eprintln!(
                    "grid cell {label}/{} found a violation: {:?}",
                    strategy.label(),
                    result.violation
                );
                std::process::exit(1);
            }
            let run = CellRun {
                cell_label: label.clone(),
                n: cell.n,
                aborters: cell.aborters,
                strategy: strategy.label(),
                result,
                secs,
            };
            t.row(vec![
                label.clone(),
                run.strategy.into(),
                run.result.runs.to_string(),
                run.result.distinct_states.to_string(),
                format!("{:.3}", run.secs),
                format!("{:.0}", run.states_per_sec()),
                run.result.pruned.to_string(),
                run.result.deduped.to_string(),
            ]);
            grid.push(run);
        }
    }
    t.print();

    // Headline: best DPOR/BFS distinct-states-rate ratio across cells.
    let mut headline_ratio = 0.0f64;
    for (label, _) in &cells {
        let rate = |strat: &str| {
            grid.iter()
                .find(|r| &r.cell_label == label && r.strategy == strat)
                .map(CellRun::states_per_sec)
                .unwrap_or(0.0)
        };
        let bfs = rate("bfs");
        if bfs > 0.0 {
            headline_ratio = headline_ratio.max(rate("dpor") / bfs);
        }
    }

    // Witness hunt: best-first must reach the hand-crafted adversary's
    // RMR cost on the worst-case sweep shape.
    let witness_kind = LockKind::OneShot { b: 4 };
    let witness_n = if smoke { 4 } else { 5 };
    let reference = worst_case_sweep(witness_kind, witness_n, 3).expect("reference sweep");
    let hunt_cell = ExploreCell::contended(witness_kind, witness_n);
    let hunt_opts = ExploreOptions {
        max_deviations: 2,
        max_runs: if smoke { 250 } else { 600 },
        max_branch_depth: 120,
        jobs,
        ..ExploreOptions::default()
    };
    let start = Instant::now();
    let hunt = explore_guided(&hunt_opts, Strategy::BestFirst, |p| hunt_cell.guided_run(p));
    let hunt_secs = start.elapsed().as_secs_f64();
    let witness_met = hunt.best_cost >= reference.max_entered_rmrs;

    let mut w = Table::new(
        "explorescale | witness hunt (best-first vs worst_case_sweep)".to_string(),
        &["metric", "value"],
    );
    w.row(vec![
        format!("reference max entered RMRs (n={witness_n})"),
        reference.max_entered_rmrs.to_string(),
    ]);
    w.row(vec![
        "best-first max entered RMRs".into(),
        hunt.best_cost.to_string(),
    ]);
    w.row(vec!["best-first runs".into(), hunt.runs.to_string()]);
    w.row(vec!["witness_met".into(), witness_met.to_string()]);
    w.print();

    let available = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let mut caveats: Vec<Json> = Vec::new();
    if available == 1 {
        caveats.push(
            "single-CPU container: worker threads time-share one core, so the states/sec \
             ratio measures algorithmic pruning (fewer, more novel runs per unit work), \
             not parallel speedup"
                .to_json(),
        );
    }
    let ratio_met = headline_ratio >= 10.0;
    let target_met = ratio_met && witness_met;

    println!(
        "headline: dpor explores {headline_ratio:.1}x distinct states/sec vs bfs \
         (target >= 10x: {ratio_met}); witness hunt {} (best-first {} vs reference {})",
        if witness_met { "met" } else { "MISSED" },
        hunt.best_cost,
        reference.max_entered_rmrs
    );

    let out = Json::obj(vec![
        ("bench", "explorescale".to_json()),
        ("mode", if smoke { "smoke" } else { "full" }.to_json()),
        ("available_parallelism", Json::Int(available as i64)),
        ("jobs", Json::Int(jobs as i64)),
        ("budget_runs", Json::Int(budget as i64)),
        ("equivalence_ok", true.to_json()), // gate exits on failure
        ("headline_ratio", headline_ratio.to_json()),
        ("ratio_met", ratio_met.to_json()),
        (
            "witness",
            Json::obj(vec![
                ("lock", reference.lock.to_json()),
                ("n", Json::Int(witness_n as i64)),
                (
                    "reference_max_entered_rmrs",
                    Json::Int(reference.max_entered_rmrs as i64),
                ),
                ("best_first_cost", Json::Int(hunt.best_cost as i64)),
                ("runs", Json::Int(hunt.runs as i64)),
                ("secs", hunt_secs.to_json()),
                ("witness_met", witness_met.to_json()),
            ]),
        ),
        ("target_met", target_met.to_json()),
        ("caveats", Json::Arr(caveats)),
        (
            "cells",
            Json::Arr(grid.iter().map(CellRun::to_json).collect()),
        ),
    ]);

    // The acceptance artifact lives at the repo root (not
    // target/experiments): resolve it from the crate manifest so the
    // binary lands it there regardless of the invoking directory.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_explore.json");
    match std::fs::write(&path, out.render()) {
        Ok(()) => println!("(saved {})", path.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

fn bad<T>(e: String) -> T {
    eprintln!("error: {e}");
    std::process::exit(2);
}
