//! expscale — parallel experiment-engine scaling sweep.
//!
//! Runs a Table-1-shaped grid (lock kind × N × seed, each cell a full
//! `worst_case_sweep_probed` simulation recording into its own event
//! log) once serially and once per requested worker count, and reports
//! wall-clock speedup. Before timing anything it proves the point of
//! the deterministic gather: the *entire* output of a parallel pass —
//! points JSON plus the merged JSONL event stream — is byte-identical
//! to the serial pass at every worker count.
//!
//! ```text
//! cargo run --release -p sal-bench --bin expscale -- \
//!     [--workers 1,2,4,8] [--ns 16,32,64] [--seeds 1,2,3] [--reps 3] [--smoke]
//! ```
//!
//! `--smoke` shrinks the grid to a seconds-long CI-sized check.
//! Prints a table and saves `target/experiments/expscale.json`.

use sal_bench::{par_grid, save_json, worst_case_sweep_probed, LockKind, Table};
use sal_obs::{EventLog, Json, ToJson};
use std::time::Instant;

const B: usize = 16;

#[derive(Debug)]
struct Args {
    workers: Vec<usize>,
    ns: Vec<usize>,
    seeds: Vec<u64>,
    reps: usize,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            workers: vec![1, 2, 4, 8],
            ns: vec![16, 32, 64],
            seeds: vec![1, 2, 3],
            reps: 3,
        }
    }
}

fn parse() -> Result<Args, String> {
    let p = sal_bench::Cli::new("expscale", "parallel-grid determinism / scaling check")
        .opt("--workers", "1,2,4,8", "pool worker counts")
        .opt("--ns", "16,32,64", "process counts")
        .opt("--seeds", "1,2,3", "schedule seeds")
        .opt("--reps", "R", "repetitions per cell")
        .flag("--smoke", "CI-sized grid (explicit flags still override)")
        .parse_env_or_exit();
    // Smoke picks the small grid; explicit flags win over it whatever
    // their order on the command line.
    let mut args = if p.smoke() {
        Args {
            workers: vec![1, 2],
            ns: vec![8, 16],
            seeds: vec![1],
            reps: 1,
        }
    } else {
        Args::default()
    };
    if let Some(workers) = p.list("--workers")? {
        args.workers = workers;
    }
    if let Some(ns) = p.list("--ns")? {
        args.ns = ns;
    }
    if let Some(seeds) = p.seeds()? {
        args.seeds = seeds;
    }
    args.reps = p.get_or("--reps", args.reps)?;
    if args.workers.is_empty() || args.ns.is_empty() || args.seeds.is_empty() || args.reps == 0 {
        return Err("need at least one worker count, N, seed and rep".into());
    }
    if args.ns.iter().any(|&n| n < 2) {
        return Err("--ns entries must be >= 2".into());
    }
    Ok(args)
}

/// Evaluate the whole grid on `jobs` workers and render everything the
/// run produces into one string: points JSON + merged event JSONL.
/// Equal fingerprints ⇒ tables, JSON and JSONL exports are all
/// byte-identical.
fn run_grid(jobs: usize, cells: &[(LockKind, usize, u64)]) -> String {
    let results = par_grid(jobs, cells, |&(kind, n, seed)| {
        let cell_log = EventLog::unbounded();
        let p = worst_case_sweep_probed(kind, n, seed, cell_log.clone()).expect("sim failed");
        assert!(p.mutex_ok, "{} violated mutual exclusion", p.lock);
        (p, cell_log)
    });
    let log = EventLog::unbounded();
    let mut points = Vec::new();
    for (p, cell_log) in results {
        log.absorb(&cell_log);
        points.push(p);
    }
    format!("{}\n{}", points.to_json().render(), log.to_jsonl())
}

fn main() {
    let args = match parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("expscale: {e}");
            std::process::exit(2);
        }
    };

    let kinds = LockKind::table1_rows(B);
    let mut cells: Vec<(LockKind, usize, u64)> = Vec::new();
    for &kind in &kinds {
        for &n in &args.ns {
            for &seed in &args.seeds {
                cells.push((kind, n, seed));
            }
        }
    }
    println!(
        "expscale: {} cells ({} kinds x {} ns x {} seeds), reps={}",
        cells.len(),
        kinds.len(),
        args.ns.len(),
        args.seeds.len(),
        args.reps
    );

    // Serial reference pass: both the timing baseline and the
    // fingerprint every parallel pass must reproduce exactly.
    let t0 = Instant::now();
    let reference = run_grid(1, &cells);
    let mut serial_best = t0.elapsed().as_secs_f64();

    let mut table = Table::new(
        "expscale — experiment-engine scaling (same grid, more workers)",
        &["workers", "seconds (best of reps)", "speedup", "output"],
    );
    let mut rows = Vec::new();
    for &w in &args.workers {
        let mut best = f64::MAX;
        let mut identical = true;
        for _ in 0..args.reps {
            let t = Instant::now();
            let fp = run_grid(w, &cells);
            let dt = t.elapsed().as_secs_f64();
            best = best.min(dt);
            identical &= fp == reference;
            if w == 1 {
                serial_best = serial_best.min(dt);
            }
        }
        assert!(
            identical,
            "parallel output at {w} workers diverged from the serial reference"
        );
        let baseline = if serial_best > 0.0 { serial_best } else { best };
        let speedup = baseline / best;
        table.row(vec![
            w.to_string(),
            format!("{best:.3}"),
            format!("{speedup:.2}x"),
            "byte-identical".into(),
        ]);
        rows.push(Json::obj(vec![
            ("workers", Json::Int(w as i64)),
            ("seconds", Json::Float(best)),
            ("speedup", Json::Float(speedup)),
            ("byte_identical", Json::Bool(identical)),
        ]));
    }
    table.print();

    let out = Json::obj(vec![
        ("experiment", Json::Str("expscale".into())),
        ("cells", Json::Int(cells.len() as i64)),
        ("reps", Json::Int(args.reps as i64)),
        (
            "grid",
            Json::Str(format!(
                "table1_rows(B={B}) x ns={:?} x seeds={:?}, worst_case_sweep_probed",
                args.ns, args.seeds
            )),
        ),
        ("serial_seconds", Json::Float(serial_best)),
        ("rows", Json::Arr(rows)),
    ]);
    save_json("expscale", &out);
}
