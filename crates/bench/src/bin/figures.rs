//! Regenerate the behaviours depicted in the paper's figures.
//!
//! ```text
//! cargo run --release -p sal-bench --bin figures -- [fig2|fig4|fig5|logw|all] [--jobs N]
//! ```
//!
//! * `fig2` — the three `FindNext(p)` scenarios (successor / ⊥ / ⊤),
//!   produced on a live tree (E6).
//! * `fig4` — plain vs adaptive ascent cost on the Figure-4 geometry
//!   (E4): the sidestep turns an `Θ(log N)` climb into `O(1)`.
//! * `logw`  — the headline `O(log_W N)` family of curves (E5): passage
//!   cost vs `N` for branching factors 2..64.
//! * `fig5` — the one-shot→long-lived transformation (E7): simple vs
//!   bounded implementation, cost per passage across many instance
//!   switches.
//!
//! Independent grid cells run on the work-stealing pool (`--jobs N` /
//! `SAL_JOBS`, default = available parallelism); results are gathered
//! in cell order so all output is byte-identical to a serial run.

use sal_bench::{
    export_events, no_abort_sweep, par_grid, save_json, save_json_with_log, worst_case_sweep,
    LockKind, Table,
};
use sal_core::tree::{FindNextResult, Tree};
use sal_memory::{MemoryBuilder, RmrProbe};
use sal_obs::{EventLog, ObsEventKind};

/// E6: walk a live tree through the three Figure-2 scenarios.
fn fig2() {
    println!("\n== E6 — Figure 2: the three FindNext(p) scenarios ==");
    // (a) Normal successor.
    let mut b = MemoryBuilder::new();
    let tree = Tree::layout(&mut b, 8, 2);
    let mem = b.build_cc(8);
    tree.remove(&mem, 1, 1);
    tree.remove(&mem, 2, 2);
    let r = tree.find_next(&mem, 0, 0);
    println!("(a) leaves 1,2 removed → FindNext(0) = {r:?}  (first live slot to the right)");
    assert_eq!(r, FindNextResult::Next(3));

    // (b) ⊥ — everything to the right abandoned.
    let mut b = MemoryBuilder::new();
    let tree = Tree::layout(&mut b, 8, 2);
    let mem = b.build_cc(8);
    for q in 1..8 {
        tree.remove(&mem, q, q as u64);
    }
    let r = tree.find_next(&mem, 0, 0);
    println!("(b) leaves 1..7 removed → FindNext(0) = {r:?}  (⊥: queue exhausted)");
    assert_eq!(r, FindNextResult::Bottom);

    // (c) ⊤ — crossed paths with an in-flight Remove: leaf 3's Remove
    // has filled its level-1 node but not yet propagated to level 2. We
    // drive the interleaving through the deterministic scheduler.
    let r = demo_crossed_paths();
    println!("(c) Remove(3) in flight (level-1 done, level-2 pending) → FindNext(0) = {r:?}  (⊤: the remover owns the handoff)");
    assert_eq!(r, FindNextResult::Top);
}

/// Drive the ⊤ scenario through the deterministic scheduler: process 3
/// is suspended exactly between the two F&As of its `Remove`, while
/// process 0 runs `FindNext` to completion.
fn demo_crossed_paths() -> FindNextResult {
    use sal_runtime::{simulate, RoundRobin, Scripted, SimOptions};
    use std::sync::Mutex;

    let mut b = MemoryBuilder::new();
    let tree = Tree::layout(&mut b, 8, 2);
    let mem = b.build_cc(8);
    tree.remove(&mem, 1, 1);
    tree.remove(&mem, 2, 2);
    let result = Mutex::new(None);
    // Remove(3) needs two F&As (its level-1 node fills). Schedule: one
    // step of process 3 (the first F&A), then process 0's entire
    // FindNext (≤ 8 steps), then let everything drain.
    let script = vec![3, 0, 0, 0, 0, 0, 0, 0, 0];
    simulate(
        &mem,
        4,
        Box::new(Scripted::new(script, Box::new(RoundRobin::new()))),
        SimOptions::default(),
        |ctx| match ctx.pid {
            3 => tree.remove(ctx.mem, 3, 3),
            0 => {
                let r = tree.find_next(ctx.mem, 0, 0);
                *result.lock().unwrap() = Some(r);
            }
            _ => {}
        },
    )
    .expect("sim failed");
    let r = result.lock().unwrap().take().expect("FindNext ran");
    r
}

/// E4: Figure 4 — plain ascent climbs to the lowest common ancestor,
/// the adaptive ascent sidesteps to the right cousin.
fn fig4(jobs: usize) {
    let mut table = Table::new(
        "E4 — Figure 4: RMRs of FindNext(p) at the subtree boundary (successor adjacent, no aborts)",
        &["N", "B", "plain ascent", "adaptive ascent"],
    );
    let geoms = [
        (1usize << 8, 2usize),
        (1 << 12, 2),
        (1 << 16, 2),
        (1 << 20, 2),
        (1 << 12, 4),
        (1 << 12, 16),
        (1 << 12, 64),
    ];
    let points = par_grid(jobs, &geoms, |&(n, bf)| {
        let mut b = MemoryBuilder::new();
        let tree = Tree::layout(&mut b, n, bf);
        let mem = b.build_cc(2);
        // p = rightmost leaf of the leftmost half: its successor is the
        // adjacent leaf, but in a different top-level subtree.
        let p = (n / 2 - 1) as u64;
        let probe = RmrProbe::start(&mem, 0);
        assert_eq!(tree.find_next(&mem, 0, p), FindNextResult::Next(p + 1));
        let plain = probe.rmrs(&mem);
        let probe = RmrProbe::start(&mem, 1);
        assert_eq!(
            tree.adaptive_find_next(&mem, 1, p),
            FindNextResult::Next(p + 1)
        );
        let adaptive = probe.rmrs(&mem);
        (n, bf, plain, adaptive)
    });
    for &(n, bf, plain, adaptive) in &points {
        table.row(vec![
            n.to_string(),
            bf.to_string(),
            plain.to_string(),
            adaptive.to_string(),
        ]);
    }
    table.print();
    println!(
        "shape check: plain grows with log_B N; adaptive stays O(1) because no process aborted."
    );
    save_json("fig4_sidestep", &points);

    // Second panel: adaptive cost vs number of aborters (Claim 21).
    let mut table = Table::new(
        "E4b — adaptive FindNext cost vs A (N = 2^16, B = 2): O(log A), not O(log N)",
        &["A (leaves removed after p)", "adaptive RMRs", "plain RMRs"],
    );
    let ks = [0usize, 2, 4, 6, 8, 10, 12, 14];
    let points = par_grid(jobs, &ks, |&k| {
        let n = 1usize << 16;
        let mut b = MemoryBuilder::new();
        let tree = Tree::layout(&mut b, n, 2);
        let mem = b.build_cc(2);
        let a = (1usize << k) - 1;
        for q in 1..=a {
            tree.remove(&mem, 0, q as u64);
        }
        let probe = RmrProbe::start(&mem, 0);
        assert_eq!(
            tree.adaptive_find_next(&mem, 0, 0),
            FindNextResult::Next(a as u64 + 1)
        );
        let adaptive = probe.rmrs(&mem);
        let probe = RmrProbe::start(&mem, 1);
        assert_eq!(
            tree.find_next(&mem, 1, 0),
            FindNextResult::Next(a as u64 + 1)
        );
        let plain = probe.rmrs(&mem);
        (a, adaptive, plain)
    });
    for &(a, adaptive, plain) in &points {
        table.row(vec![a.to_string(), adaptive.to_string(), plain.to_string()]);
    }
    table.print();
    save_json("fig4_adaptive_vs_a", &points);
}

/// E5: the headline `O(log_W N)` family — worst-case lock passage cost
/// vs N for each branching factor.
fn logw(jobs: usize) {
    let ns = [16usize, 64, 256];
    let bs = [2usize, 4, 16, 64];
    let mut table = Table::new(
        "E5 — O(log_B N) family: worst-case passage RMRs of the one-shot lock (N−2 aborters)",
        &["B \\ N", "N=16", "N=64", "N=256"],
    );
    let cells: Vec<(usize, usize)> = bs
        .iter()
        .flat_map(|&bf| ns.iter().map(move |&n| (bf, n)))
        .collect();
    let points = par_grid(jobs, &cells, |&(bf, n)| {
        let p = worst_case_sweep(LockKind::OneShot { b: bf }, n, 3).expect("sim failed");
        assert!(p.mutex_ok);
        p
    });
    for (row, chunk) in points.chunks(ns.len()).enumerate() {
        let mut cells = vec![format!("B={}", bs[row])];
        cells.extend(chunk.iter().map(|p| p.max_entered_rmrs.to_string()));
        table.row(cells);
    }
    table.print();
    println!(
        "shape check: each row grows like log_B N — larger B flattens the curve; at B = 64 \
         (W = Θ(N^ε)) the cost is effectively constant, the paper's O(1) regime."
    );

    // Tree-level confirmation at large N, pure O(log_B N) geometry.
    let mut table = Table::new(
        "E5b — FindNext worst case on the bare tree (only leaf N−1 live)",
        &["B \\ N", "N=2^10", "N=2^14", "N=2^18"],
    );
    let es = [10u32, 14, 18];
    let cells: Vec<(usize, u32)> = bs
        .iter()
        .flat_map(|&bf| es.iter().map(move |&e| (bf, e)))
        .collect();
    let costs = par_grid(jobs, &cells, |&(bf, e)| {
        let n = 1usize << e;
        let mut b = MemoryBuilder::new();
        let tree = Tree::layout(&mut b, n, bf);
        let mem = b.build_cc(1);
        for q in 1..n - 1 {
            tree.remove(&mem, 0, q as u64);
        }
        let probe = RmrProbe::start(&mem, 0);
        assert_eq!(
            tree.find_next(&mem, 0, 0),
            FindNextResult::Next(n as u64 - 1)
        );
        probe.rmrs(&mem)
    });
    for (row, chunk) in costs.chunks(es.len()).enumerate() {
        let mut cells = vec![format!("B={}", bs[row])];
        cells.extend(chunk.iter().map(|c| c.to_string()));
        table.row(cells);
    }
    table.print();
    save_json("logw_family", &points);
}

/// E7: Figure 5 / §6 — the long-lived transformation across many
/// instance switches, simple vs bounded, with every other long-lived
/// abortable kind in the registry alongside for scale. The row set is
/// registry-driven: a newly registered kind shows up here without
/// touching this file (`switches` stays 0 for locks that are not
/// instance-switching wrappers).
fn fig5(jobs: usize) {
    let mut table = Table::new(
        "E7 — Figure 5: long-lived lock across instance switches (N = 8, 8 passages each, 2 aborters)",
        &["implementation", "max RMRs/passage", "mean RMRs/passage", "switches", "steps", "safe"],
    );
    let kinds: Vec<LockKind> = LockKind::all(16)
        .into_iter()
        .filter(|k| !k.one_shot() && k.abortable())
        .collect();
    // Each cell runs with its own export log + per-kind log (an owned
    // `(A, B)` probe pair observing the same run); the export logs are
    // absorbed in cell order afterwards.
    let results = par_grid(jobs, &kinds, |&kind| {
        let built = sal_bench::build_lock(kind, 8, 8 * 8 + 16);
        let mut plans = vec![sal_runtime::ProcPlan::normal(8); 6];
        plans.extend(vec![sal_runtime::ProcPlan::aborter(8, 60); 2]);
        let spec = sal_runtime::WorkloadSpec {
            plans,
            cs_ops: 2,
            max_steps: 60_000_000,
            lease: sal_runtime::default_lease(),
        };
        let cell_log = EventLog::unbounded();
        let kind_log = EventLog::unbounded();
        let report = sal_runtime::run_lock_probed(
            &*built.lock,
            &built.mem,
            built.cs_word,
            &spec,
            Box::new(sal_runtime::RandomSchedule::seeded(5)),
            (cell_log.clone(), kind_log.clone()),
        )
        .expect("sim failed");
        let switches = kind_log
            .events()
            .iter()
            .filter(|e| matches!(e.kind, ObsEventKind::Note("instance-switch", _)))
            .count();
        (
            kind.label(),
            report.max_entered_rmrs(),
            report.mean_entered_rmrs(),
            switches,
            report.steps,
            report.mutex_check.is_ok(),
            cell_log,
        )
    });
    let log = EventLog::unbounded();
    let mut points = Vec::new();
    for (label, max, mean, switches, steps, safe, cell_log) in results {
        log.absorb(&cell_log);
        table.row(vec![
            label.clone(),
            max.to_string(),
            format!("{mean:.1}"),
            switches.to_string(),
            steps.to_string(),
            safe.to_string(),
        ]);
        points.push((label, max, mean, switches));
    }
    table.print();
    println!(
        "shape check: the bounded (§6.2) implementation matches the simple (unbounded) \
         one up to the constant lazy-reset overhead, while using O(N²) space instead of \
         O(passages · N)."
    );

    // Cost stability across many recycles (single process, every passage
    // switches the instance).
    let p = no_abort_sweep(LockKind::LongLived { b: 16 }, 2, 50, 1).expect("sim failed");
    println!(
        "recycle stability: 50 passages/process, 2 processes → max {} RMRs/passage (no drift).",
        p.max_entered_rmrs
    );
    save_json_with_log("fig5_long_lived", &points, &log);
    export_events(&log, "fig5_events");
}

fn main() {
    let (positional, jobs) = match sal_bench::parse_jobs_args(std::env::args().skip(1)) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let arg = positional.first().map(String::as_str).unwrap_or("all");
    match arg {
        "fig2" => fig2(),
        "fig4" => fig4(jobs),
        "fig5" => fig5(jobs),
        "logw" => logw(jobs),
        "all" => {
            fig2();
            fig4(jobs);
            logw(jobs);
            fig5(jobs);
        }
        other => {
            eprintln!("unknown figure {other}; use fig2|fig4|fig5|logw|all");
            std::process::exit(2);
        }
    }
}
