//! hwscale — native hardware mono-vs-dyn contention benchmark (M4).
//!
//! ```text
//! cargo run --release -p sal-bench --bin hwscale -- \
//!     [--smoke] [--duration-ms N] [--lock NAME]
//! ```
//!
//! Real OS threads hammer each lock over bare [`RawMemory`] for a fixed
//! wall-clock duration per cell, once through the **monomorphized**
//! path (`LockCore<RawMemory, NoProbe>` — memory ops inline to direct
//! `AtomicU64` accesses) and once through the **dyn** path
//! ([`DynLock`] over `Box<dyn AbortableLock>` — every lock and memory
//! op takes a virtual call, exactly what erased registries pay). Both
//! flavours run the *same* generic driver, so the only difference
//! between the two runs of a cell is dispatch.
//!
//! Grid: lock kind × thread count × abort rate. Each cell reports
//! entered/aborted passage counts, throughput, an enter-latency
//! histogram (sampled, nanoseconds), and the mono/dyn speedup. The
//! lost-update invariant from `real_threads_stress` is asserted on
//! every cell: the CS increments an unprotected cell, which must match
//! the entered count.
//!
//! Results go to stdout as a table and to `BENCH_hwscale.json` at the
//! repo root (machine-readable, with caveat fields: single-CPU
//! containers serialize threads, so speedups there reflect code-path
//! cost, not parallel contention — see EXPERIMENTS.md M4).

use sal_baselines::{LeeLock, McsLock, ScottLock, TasLock, TicketLock, TournamentLock};
use sal_bench::{amortized_companion, LockKind, Table};
use sal_core::long_lived::{BoundedLongLivedLock, JjLock, SimpleLongLivedLock};
use sal_core::{AbortableLock, DynLock, Immediate, LockCore};
use sal_memory::{MemoryBuilder, NeverAbort, RawMemory};
use sal_obs::{AmortizedStats, Histogram, Json, NoProbe, ToJson};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Speedup bar the acceptance criterion asks about: mono should beat
/// dyn by at least this factor on some contended cell, else the JSON
/// records a measured caveat instead.
const TARGET_SPEEDUP: f64 = 1.2;

/// One dispatch flavour's run of a cell.
struct PathResult {
    entered: u64,
    aborted: u64,
    elapsed: Duration,
    /// Enter latency of entered passages, nanoseconds, sampled 1-in-16.
    lat: Histogram,
}

impl PathResult {
    fn throughput(&self) -> f64 {
        self.entered as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("entered", self.entered.to_json()),
            ("aborted", self.aborted.to_json()),
            ("elapsed_ns", (self.elapsed.as_nanos() as u64).to_json()),
            ("throughput_per_sec", self.throughput().to_json()),
            (
                "enter_ns",
                Json::obj(vec![
                    ("samples", self.lat.count().to_json()),
                    ("p50", self.lat.quantile(0.50).to_json()),
                    ("p95", self.lat.quantile(0.95).to_json()),
                    ("p99", self.lat.quantile(0.99).to_json()),
                    ("max", self.lat.max().to_json()),
                    ("mean", self.lat.mean().to_json()),
                ]),
            ),
        ])
    }
}

/// Per-cell knobs shared by both dispatch flavours.
struct CellCfg {
    duration: Duration,
    /// Every k-th attempt of a thread uses a pre-fired abort signal.
    abort_every: Option<usize>,
    /// Shared attempt cap for arena-based locks (their layouts hold
    /// exactly this many enter attempts); `None` = unbounded kinds.
    attempt_budget: Option<u64>,
}

/// The generic cell driver: `threads` real threads hammer `lock` over
/// `mem` until the deadline (or the shared attempt budget) runs out.
/// Monomorphized and dyn flavours both come through here — `L` is the
/// concrete lock type for the former and [`DynLock`] for the latter.
fn drive<L>(lock: &L, mem: &RawMemory, threads: usize, cfg: &CellCfg) -> PathResult
where
    L: LockCore<RawMemory, NoProbe> + Sync,
{
    // The protected counter lives outside the lock's memory: a
    // non-atomic cell only ever touched inside the CS, so any mutual
    // exclusion failure shows up as a lost update.
    struct Cell(std::cell::UnsafeCell<u64>);
    unsafe impl Sync for Cell {}
    let counter = Cell(std::cell::UnsafeCell::new(0));
    let entered = AtomicU64::new(0);
    let aborted = AtomicU64::new(0);
    let budget = cfg.attempt_budget.map(AtomicU64::new);
    // Main thread joins the barrier so the clock starts when the
    // workers are released, not when they are spawned.
    let barrier = Barrier::new(threads + 1);

    let (hists, elapsed) = std::thread::scope(|s| {
        let counter = &counter;
        let entered = &entered;
        let aborted = &aborted;
        let budget = budget.as_ref();
        let barrier = &barrier;
        let handles: Vec<_> = (0..threads)
            .map(|p| {
                s.spawn(move || {
                    let mut lat = Histogram::new();
                    barrier.wait();
                    let deadline = Instant::now() + cfg.duration;
                    let mut i = 0usize;
                    loop {
                        // Clock calls cost as much as a fast passage, so
                        // check the deadline and sample latency only on
                        // (staggered) 1-in-16 iterations.
                        if i & 15 == 0 && Instant::now() >= deadline {
                            break;
                        }
                        if let Some(b) = budget {
                            if b.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                                v.checked_sub(1)
                            })
                            .is_err()
                            {
                                break;
                            }
                        }
                        let want_abort = cfg
                            .abort_every
                            .map(|k| (i + p).is_multiple_of(k))
                            .unwrap_or(false);
                        let sample = i & 15 == 8;
                        let t0 = sample.then(Instant::now);
                        let ok = if want_abort {
                            // Pre-fired signal: abort at the first wait,
                            // succeed if handed the lock before it.
                            lock.enter_core(mem, p, &Immediate, &NoProbe).entered()
                        } else {
                            lock.enter_core(mem, p, &NeverAbort, &NoProbe).entered()
                        };
                        if ok {
                            if let Some(t0) = t0 {
                                lat.record(t0.elapsed().as_nanos() as u64);
                            }
                            // Critical section: read-modify-write on the
                            // unprotected cell.
                            unsafe {
                                let c = counter.0.get();
                                let v = c.read();
                                std::hint::black_box(v);
                                c.write(v + 1);
                            }
                            lock.exit_core(mem, p, &NoProbe);
                            entered.fetch_add(1, Ordering::Relaxed);
                        } else {
                            aborted.fetch_add(1, Ordering::Relaxed);
                        }
                        i += 1;
                    }
                    lat
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        let hists: Vec<Histogram> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        (hists, start.elapsed())
    });

    let entered = entered.load(Ordering::Relaxed);
    assert_eq!(
        unsafe { *counter.0.get() },
        entered,
        "lost update: mutual exclusion violated on real threads"
    );
    let mut lat = Histogram::new();
    for h in &hists {
        lat.merge_from(h);
    }
    PathResult {
        entered,
        aborted: aborted.load(Ordering::Relaxed),
        elapsed,
        lat,
    }
}

/// Build the lock twice from identical layouts and run the cell on
/// both dispatch flavours: once monomorphized over the concrete `L`,
/// once re-erased through [`DynLock`]. Returns `(mono, dyn)`.
fn bench_cell<L, F>(make: F, threads: usize, cfg: &CellCfg) -> (PathResult, PathResult)
where
    L: LockCore<RawMemory, NoProbe> + AbortableLock + Sized + 'static,
    F: Fn(&mut MemoryBuilder, usize, usize) -> L,
{
    let layout_attempts = cfg.attempt_budget.unwrap_or(0) as usize;
    let mono = {
        let mut mb = MemoryBuilder::new();
        let lock = make(&mut mb, threads, layout_attempts);
        let mem = mb.build_raw(threads);
        drive(&lock, &mem, threads, cfg)
    };
    let dynd = {
        let mut mb = MemoryBuilder::new();
        let boxed: Box<dyn AbortableLock> = Box::new(make(&mut mb, threads, layout_attempts));
        let mem = mb.build_raw(threads);
        drive(&DynLock(&*boxed), &mem, threads, cfg)
    };
    (mono, dynd)
}

/// Dispatch a [`LockKind`] to its concrete constructor (monomorphizing
/// [`bench_cell`] per kind). One-shot kinds are excluded from the grid:
/// each process may enter at most once, which cannot sustain a
/// fixed-duration throughput loop.
fn run_cell(kind: LockKind, threads: usize, cfg: &CellCfg) -> (PathResult, PathResult) {
    match kind {
        LockKind::LongLived { b } => bench_cell(
            |mb, n, _| BoundedLongLivedLock::layout(mb, n, b),
            threads,
            cfg,
        ),
        LockKind::LongLivedSimple { b } => bench_cell(
            |mb, n, a| SimpleLongLivedLock::layout(mb, n, b, a + 1),
            threads,
            cfg,
        ),
        LockKind::Mcs => bench_cell(|mb, n, _| McsLock::layout(mb, n), threads, cfg),
        LockKind::Ticket => bench_cell(|mb, _, _| TicketLock::layout(mb), threads, cfg),
        LockKind::Tas => bench_cell(|mb, _, _| TasLock::layout(mb), threads, cfg),
        LockKind::Tournament => bench_cell(|mb, n, _| TournamentLock::layout(mb, n), threads, cfg),
        LockKind::Scott => bench_cell(|mb, n, a| ScottLock::layout(mb, n, a + 1), threads, cfg),
        LockKind::Lee => bench_cell(|mb, n, a| LeeLock::layout(mb, n, a + 1), threads, cfg),
        LockKind::JjAmortized => bench_cell(|mb, n, _| JjLock::layout(mb, n), threads, cfg),
        LockKind::OneShot { .. } | LockKind::OneShotPlain { .. } | LockKind::OneShotDsm { .. } => {
            unreachable!("one-shot kinds are excluded from the hwscale grid")
        }
    }
}

/// Whether the kind consumes an arena slot per enter attempt (layout
/// must be sized to the attempt budget).
fn arena_based(kind: LockKind) -> bool {
    matches!(
        kind,
        LockKind::Scott | LockKind::Lee | LockKind::LongLivedSimple { .. }
    )
}

struct CellRow {
    lock: String,
    threads: usize,
    abort_every: Option<usize>,
    mono: PathResult,
    dynd: PathResult,
    /// Run-scoped amortized RMR accounting from the CC-instrumented
    /// companion run ([`amortized_companion`]).
    amortized: AmortizedStats,
    /// Companion probe totals == CC ground-truth counters, bit-exact.
    accounting_ok: bool,
}

impl CellRow {
    fn speedup(&self) -> f64 {
        self.mono.throughput() / self.dynd.throughput().max(1e-9)
    }

    /// A cell counts towards the acceptance bar only when it actually
    /// had lock contention (more than one thread).
    fn contended(&self) -> bool {
        self.threads > 1
    }
}

impl ToJson for CellRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("lock", self.lock.to_json()),
            ("threads", (self.threads as u64).to_json()),
            ("abort_every", self.abort_every.map(|k| k as u64).to_json()),
            ("mono", self.mono.to_json()),
            ("dyn", self.dynd.to_json()),
            ("speedup", self.speedup().to_json()),
            ("amortized", self.amortized.to_json()),
            ("accounting_ok", self.accounting_ok.to_json()),
        ])
    }
}

fn main() {
    let p = sal_bench::Cli::new("hwscale", "wall-clock lock scaling on real threads")
        .flag("--smoke", "CI-sized run (short cells, fewer locks)")
        .opt("--duration-ms", "N", "per-cell measurement window")
        .opt("--lock", "NAME", "measure only this lock kind")
        .parse_env_or_exit();
    let smoke = p.smoke();
    let duration_ms: Option<u64> = p.get("--duration-ms").unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    // The FromStr path shared with sweep/explore — same NAMES-listing
    // error on a bad name.
    let only: Option<LockKind> = p.lock().map(|name| {
        name.parse().unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        })
    });

    let duration = Duration::from_millis(duration_ms.unwrap_or(if smoke { 120 } else { 300 }));
    let budget: u64 = if smoke { 200_000 } else { 1_000_000 };
    let b = if smoke { 8 } else { 16 };
    let mut kinds: Vec<LockKind> = if smoke {
        vec![
            LockKind::Tas,
            LockKind::Mcs,
            LockKind::Scott,
            LockKind::LongLived { b },
            LockKind::JjAmortized,
        ]
    } else {
        // Registry-driven: every kind that can sustain a fixed-duration
        // loop (one-shot kinds cannot — each process enters at most
        // once). New kinds appear here automatically.
        LockKind::all(b)
            .into_iter()
            .filter(|k| !k.one_shot())
            .collect()
    };
    if let Some(k) = only {
        let k = k.with_branching(b);
        if k.one_shot() {
            eprintln!(
                "error: one-shot kinds cannot sustain a fixed-duration loop; \
                 pick a long-lived kind"
            );
            std::process::exit(2);
        }
        kinds = vec![k];
    }
    let thread_counts: &[usize] = if smoke { &[2, 4] } else { &[2, 4, 8] };
    let abort_rates: &[Option<usize>] = &[None, Some(4)];

    let nprocs = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mode = if smoke { "smoke" } else { "full" };
    println!(
        "hwscale ({mode}): {} kinds × {:?} threads × {:?} abort rates, \
         {}ms/cell × 2 dispatch flavours, {nprocs} CPUs",
        kinds.len(),
        thread_counts,
        abort_rates,
        duration.as_millis()
    );

    let mut rows: Vec<CellRow> = Vec::new();
    for &kind in &kinds {
        for &threads in thread_counts {
            for &abort_every in abort_rates {
                if abort_every.is_some() && !kind.abortable() {
                    continue; // mcs/ticket ignore signals; skip the abort cells
                }
                let cfg = CellCfg {
                    duration,
                    abort_every,
                    attempt_budget: arena_based(kind).then_some(budget),
                };
                let (mono, dynd) = run_cell(kind, threads, &cfg);
                let (amortized, accounting_ok) =
                    amortized_companion(kind, threads, abort_every, if smoke { 100 } else { 400 });
                rows.push(CellRow {
                    lock: kind.label(),
                    threads,
                    abort_every,
                    mono,
                    dynd,
                    amortized,
                    accounting_ok,
                });
            }
        }
    }

    let mut table = Table::new(
        "M4 — hwscale: mono vs dyn dispatch, real threads on RawMemory",
        &[
            "lock",
            "thr",
            "abort",
            "mono/s",
            "dyn/s",
            "speedup",
            "mono p99 ns",
            "dyn p99 ns",
            "amort rmr",
        ],
    );
    for r in &rows {
        assert!(
            r.accounting_ok,
            "{} @ {} threads: companion probe totals diverged from CC ground truth",
            r.lock, r.threads
        );
        table.row(vec![
            r.lock.clone(),
            r.threads.to_string(),
            r.abort_every.map_or("-".into(), |k| format!("1/{k}")),
            format!("{:.0}", r.mono.throughput()),
            format!("{:.0}", r.dynd.throughput()),
            format!("{:.2}x", r.speedup()),
            r.mono
                .lat
                .quantile(0.99)
                .map_or("-".into(), |v| v.to_string()),
            r.dynd
                .lat
                .quantile(0.99)
                .map_or("-".into(), |v| v.to_string()),
            format!("{:.1}", r.amortized.amortized_rmrs),
        ]);
    }
    table.print();

    let best = rows
        .iter()
        .filter(|r| r.contended())
        .map(|r| r.speedup())
        .fold(f64::NEG_INFINITY, f64::max);
    let target_met = best >= TARGET_SPEEDUP;
    let mut caveats: Vec<String> = Vec::new();
    if nprocs == 1 {
        caveats.push(format!(
            "single-CPU container: {thread} threads time-share one core, so contended \
             cells measure code-path cost under preemption, not parallel cache traffic",
            thread = thread_counts.last().unwrap()
        ));
    }
    if !target_met {
        caveats.push(format!(
            "no contended cell reached the {TARGET_SPEEDUP}x mono-over-dyn bar \
             (best: {best:.2}x); dispatch overhead is amortized by this hardware's \
             passage cost"
        ));
    }
    println!(
        "best contended speedup: {best:.2}x (target {TARGET_SPEEDUP}x: {})",
        if target_met { "met" } else { "NOT met" }
    );
    for c in &caveats {
        println!("caveat: {c}");
    }

    let out = Json::obj(vec![
        ("bench", "hwscale".to_json()),
        ("mode", mode.to_json()),
        ("available_parallelism", (nprocs as u64).to_json()),
        (
            "duration_ms_per_cell",
            (duration.as_millis() as u64).to_json(),
        ),
        ("target_speedup", TARGET_SPEEDUP.to_json()),
        ("best_contended_speedup", best.to_json()),
        ("target_met", target_met.to_json()),
        ("caveats", caveats.to_json()),
        ("cells", rows.to_json()),
    ]);
    // The acceptance artifact lives at the repo root (not
    // target/experiments): resolve it from the crate manifest so the
    // binary lands it there regardless of the invoking directory.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_hwscale.json");
    match std::fs::write(&path, out.render()) {
        Ok(()) => println!("(saved {})", path.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}
