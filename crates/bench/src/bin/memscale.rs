//! memscale — instrumented-substrate throughput sweep.
//!
//! Measures raw shared-memory operation throughput (Mops/s) of the three
//! memory flavours as a function of real-thread count:
//!
//! * `raw` — bare `AtomicU64`s, no accounting (upper bound),
//! * `sharded` — the lock-free `CcMemory` with exact CC accounting,
//! * `mutex` — the retained global-mutex reference `MutexCcMemory`.
//!
//! The workload models lock traffic: each thread mixes one contended F&A,
//! one write and two reads of a mostly-private word per round — identical
//! op sequences per substrate, so the column ratio is pure substrate
//! overhead. The point of the sweep: the measurement substrate must not
//! be the serialization point of the experiments, i.e. `sharded` must
//! strictly beat `mutex` once several threads are issuing operations.
//!
//! ```text
//! cargo run --release -p sal-bench --bin memscale -- \
//!     [--ops-per-thread 300000] [--reps 3] [--threads 1,2,4,8]
//! ```
//!
//! Prints a table and saves `target/experiments/memscale.json`.

use sal_bench::{save_json, Table};
use sal_memory::{Mem, MemoryBuilder};
use sal_obs::Json;
use std::sync::{Arc, Barrier};
use std::time::Instant;

#[derive(Debug)]
struct Args {
    ops_per_thread: u64,
    reps: usize,
    threads: Vec<usize>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            ops_per_thread: 300_000,
            reps: 3,
            threads: vec![1, 2, 4, 8],
        }
    }
}

fn parse() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--ops-per-thread" => {
                args.ops_per_thread = value()?
                    .parse()
                    .map_err(|e| format!("--ops-per-thread: {e}"))?;
            }
            "--reps" => args.reps = value()?.parse().map_err(|e| format!("--reps: {e}"))?,
            "--threads" => {
                args.threads = value()?
                    .split(',')
                    .map(|t| t.trim().parse().map_err(|e| format!("--threads: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--help" | "-h" => {
                println!("usage: memscale [--ops-per-thread N] [--reps R] [--threads 1,2,4,8]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.threads.is_empty() || args.ops_per_thread == 0 || args.reps == 0 {
        return Err("need at least one thread count, op and rep".into());
    }
    Ok(args)
}

/// Drive the mixed workload over `mem` with `threads` real threads and
/// return throughput in Mops/s (best of nothing — single measured run;
/// the caller repeats and keeps the best).
fn run_once<M: Mem + Send + Sync>(mem: &M, threads: usize, rounds: u64) -> f64 {
    let barrier = Arc::new(Barrier::new(threads + 1));
    let elapsed = std::thread::scope(|s| {
        for p in 0..threads {
            let barrier = Arc::clone(&barrier);
            s.spawn(move || {
                // Word 0 is the contended counter; word 1+p is "mine".
                let shared = sal_memory::WordId::from_index(0);
                let mine = sal_memory::WordId::from_index(1 + p);
                barrier.wait();
                for i in 0..rounds {
                    mem.faa(p, shared, 1);
                    mem.write(p, mine, i);
                    mem.read(p, mine);
                    mem.read(p, mine);
                }
            });
        }
        barrier.wait();
        // The scope joins all workers before returning, so `elapsed` on
        // this instant measures barrier-release → last thread done.
        Instant::now()
    })
    .elapsed();
    let total_ops = threads as u64 * rounds * 4;
    total_ops as f64 / elapsed.as_secs_f64() / 1e6
}

/// Best-of-`reps` throughput for one (substrate, threads) cell.
fn measure<M: Mem + Send + Sync>(
    build: impl Fn(usize) -> M,
    threads: usize,
    rounds: u64,
    reps: usize,
) -> f64 {
    (0..reps)
        .map(|_| run_once(&build(threads), threads, rounds))
        .fold(0.0, f64::max)
}

fn layout(threads: usize) -> MemoryBuilder {
    let mut b = MemoryBuilder::new();
    b.alloc(0); // the contended word
    b.alloc_array(threads, 0); // one scratch word per thread
    b
}

fn main() {
    let args = match parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("memscale: {e}");
            std::process::exit(2);
        }
    };

    let mut table = Table::new(
        "memscale — instrumented-memory throughput (Mops/s, best of reps)",
        &["threads", "raw", "sharded", "mutex", "sharded/mutex"],
    );
    let mut rows = Vec::new();
    for &threads in &args.threads {
        let rounds = args.ops_per_thread / 4;
        let raw = measure(|t| layout(t).build_raw(t), threads, rounds, args.reps);
        let sharded = measure(|t| layout(t).build_cc(t), threads, rounds, args.reps);
        let mutex = measure(|t| layout(t).build_cc_mutex(t), threads, rounds, args.reps);
        let speedup = sharded / mutex;
        table.row(vec![
            threads.to_string(),
            format!("{raw:.2}"),
            format!("{sharded:.2}"),
            format!("{mutex:.2}"),
            format!("{speedup:.2}x"),
        ]);
        rows.push(Json::obj(vec![
            ("threads", Json::Int(threads as i64)),
            ("raw_mops", Json::Float(raw)),
            ("sharded_mops", Json::Float(sharded)),
            ("mutex_mops", Json::Float(mutex)),
            ("sharded_over_mutex", Json::Float(speedup)),
        ]));
    }
    table.print();

    let out = Json::obj(vec![
        ("experiment", Json::Str("memscale".into())),
        ("ops_per_thread", Json::Int(args.ops_per_thread as i64)),
        ("reps", Json::Int(args.reps as i64)),
        (
            "workload",
            Json::Str("per round: faa(shared) + write(mine) + 2x read(mine)".into()),
        ),
        ("rows", Json::Arr(rows)),
    ]);
    save_json("memscale", &out);
}
