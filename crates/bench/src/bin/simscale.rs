//! simscale — step-lease scheduling speedup sweep.
//!
//! Runs a grid of contended cells (lock kind × N × schedule policy,
//! each cell a full multi-passage simulation) once per step-lease cap
//! and reports simulator throughput: shared-memory steps/sec and
//! entered passages/sec. Before timing anything it proves the point of
//! the lease protocol: the *entire* output of a leased run — step
//! count, per-process outcomes, per-passage RMR records, the
//! step-stamped event log and the safety verdicts — is byte-identical
//! to the legacy per-step path (`--lease 1`) at every cap.
//!
//! ```text
//! cargo run --release -p sal-bench --bin simscale -- \
//!     [--ns 2,8] [--leases 1,4,64,0] [--passages 64] [--reps 2] [--smoke]
//! ```
//!
//! Lease caps: `0` = unbounded, `1` = legacy per-step handoffs (spin
//! gate off — the exact pre-lease scheduler), `k` = capped at `k`
//! steps per grant. The headline cell is the contended 8-process
//! bursty run, where the policy's runs are long enough for leases to
//! collapse most condvar round-trips.
//!
//! `--smoke` shrinks the grid to a seconds-long CI-sized check.
//! Prints a table and saves `target/experiments/simscale.json`.

use sal_bench::{build_lock, save_json, LockKind, Table};
use sal_obs::{Json, ToJson};
use sal_runtime::{
    run_lock, BurstySchedule, ProcPlan, RoundRobin, SchedulePolicy, WorkloadReport, WorkloadSpec,
};
use std::time::Instant;

const B: usize = 16;
const SEED: u64 = 11;

#[derive(Debug)]
struct Args {
    ns: Vec<usize>,
    leases: Vec<u64>,
    passages: usize,
    reps: usize,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            ns: vec![2, 8],
            leases: vec![1, 4, 64, 0],
            passages: 64,
            reps: 2,
        }
    }
}

fn parse() -> Result<Args, String> {
    let p = sal_bench::Cli::new("simscale", "lease-cap scaling on the exact-cost simulator")
        .opt("--ns", "2,8", "process counts")
        .opt(
            "--leases",
            "1,4,64,0",
            "lease caps: 0 = unbounded, 1 = legacy per-step, k = capped",
        )
        .opt("--passages", "P", "passages per process")
        .opt("--reps", "R", "repetitions per cell")
        .flag("--smoke", "CI-sized grid (explicit flags still override)")
        .parse_env_or_exit();
    // Smoke picks the small grid; explicit flags win over it whatever
    // their order on the command line.
    let mut args = if p.smoke() {
        Args {
            ns: vec![4],
            leases: vec![1, 4, 0],
            passages: 8,
            reps: 1,
        }
    } else {
        Args::default()
    };
    if let Some(ns) = p.list("--ns")? {
        args.ns = ns;
    }
    if let Some(leases) = p.list("--leases")? {
        args.leases = leases;
    }
    args.passages = p.get_or("--passages", args.passages)?;
    args.reps = p.get_or("--reps", args.reps)?;
    if args.ns.is_empty() || args.leases.is_empty() || args.reps == 0 || args.passages == 0 {
        return Err("need at least one N, lease cap, rep and passage".into());
    }
    if args.ns.iter().any(|&n| n < 2) {
        return Err("--ns entries must be >= 2".into());
    }
    if !args.leases.contains(&1) {
        return Err("--leases must include 1 (the per-step reference)".into());
    }
    Ok(args)
}

/// Which schedule policy drives a cell.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Pol {
    /// Fair round-robin: runs of length 1 except at the drain tail, so
    /// leases barely engage — the honest "no free lunch" baseline.
    RoundRobin,
    /// Bursty (continue probability 0.9, expected run ≈ 10): the
    /// contended-schedule shape where leases collapse handoffs.
    Bursty,
}

impl Pol {
    fn label(self) -> &'static str {
        match self {
            Pol::RoundRobin => "round-robin",
            Pol::Bursty => "bursty",
        }
    }

    fn build(self) -> Box<dyn SchedulePolicy> {
        match self {
            Pol::RoundRobin => Box::new(RoundRobin::new()),
            Pol::Bursty => Box::new(BurstySchedule::seeded(SEED, 0.9)),
        }
    }
}

/// One grid cell: a lock at one `(N, policy)` configuration.
#[derive(Debug, Clone, Copy)]
struct Cell {
    kind: LockKind,
    n: usize,
    pol: Pol,
}

impl Cell {
    fn label(&self) -> String {
        format!("{} N={} {}", self.kind.label(), self.n, self.pol.label())
    }
}

/// Render everything a run produced into one string. Equal fingerprints
/// ⇒ schedules, RMR accounting, event logs and verdicts all match.
fn fingerprint(report: &WorkloadReport) -> String {
    format!(
        "steps={}\noutcomes={:?}\npassages={:?}\nevents={:?}\nmutex={:?}\nfcfs={:?}",
        report.steps,
        report.outcomes,
        report.passages,
        report.events,
        report.mutex_check,
        report.fcfs_check,
    )
}

/// Execute one cell at one lease cap; returns the output fingerprint,
/// the run's step count, entered passages, and wall-clock seconds of
/// the simulation itself (setup excluded).
fn run_cell(cell: &Cell, passages: usize, lease: u64) -> (String, u64, usize, f64) {
    let plans = vec![ProcPlan::normal(passages); cell.n];
    let attempts: usize = plans.iter().map(|p| p.passages).sum();
    let built = build_lock(cell.kind, cell.n, attempts);
    let spec = WorkloadSpec {
        plans,
        cs_ops: 2,
        max_steps: 200_000_000,
        lease,
    };
    let t = Instant::now();
    let report = run_lock(
        &*built.lock,
        &built.mem,
        built.cs_word,
        &spec,
        cell.pol.build(),
    )
    .expect("simulation failed");
    let secs = t.elapsed().as_secs_f64();
    assert!(
        report.mutex_check.is_ok(),
        "{} violated mutual exclusion",
        cell.label()
    );
    let entered = report.outcomes.iter().map(|&(e, _)| e).sum();
    (fingerprint(&report), report.steps, entered, secs)
}

fn main() {
    let args = match parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("simscale: {e}");
            std::process::exit(2);
        }
    };

    let kinds = [LockKind::LongLived { b: B }, LockKind::Tournament];
    let mut cells: Vec<Cell> = Vec::new();
    for &kind in &kinds {
        for &n in &args.ns {
            for pol in [Pol::RoundRobin, Pol::Bursty] {
                cells.push(Cell { kind, n, pol });
            }
        }
    }
    println!(
        "simscale: {} cells ({} kinds x {} ns x 2 policies), passages={}, reps={}, leases={:?}",
        cells.len(),
        kinds.len(),
        args.ns.len(),
        args.passages,
        args.reps,
        args.leases
    );

    let mut table = Table::new(
        "simscale — step-lease throughput (same cell, bigger grants)",
        &[
            "cell",
            "lease",
            "steps/sec",
            "passages/sec",
            "speedup",
            "output",
        ],
    );
    let mut rows = Vec::new();
    // The acceptance headline: the contended 8-process bursty cell's
    // best speedup over the legacy per-step scheduler.
    let mut headline: Option<(String, f64)> = None;

    for cell in &cells {
        // Per-step reference pass: both the timing baseline and the
        // fingerprint every leased pass must reproduce exactly.
        let (reference, _, _, ref_secs) = run_cell(cell, args.passages, 1);
        let mut per_step_best = ref_secs;

        for &lease in &args.leases {
            let mut best = f64::MAX;
            let mut steps = 0u64;
            let mut entered = 0usize;
            let mut identical = true;
            for _ in 0..args.reps {
                let (fp, s, e, dt) = run_cell(cell, args.passages, lease);
                best = best.min(dt);
                steps = s;
                entered = e;
                identical &= fp == reference;
                if lease == 1 {
                    per_step_best = per_step_best.min(dt);
                }
            }
            assert!(
                identical,
                "{} at lease cap {lease} diverged from the per-step reference",
                cell.label()
            );
            let baseline = if per_step_best > 0.0 {
                per_step_best
            } else {
                best
            };
            let speedup = baseline / best;
            let steps_per_sec = steps as f64 / best;
            let passages_per_sec = entered as f64 / best;
            table.row(vec![
                cell.label(),
                lease.to_string(),
                format!("{steps_per_sec:.0}"),
                format!("{passages_per_sec:.0}"),
                format!("{speedup:.2}x"),
                "byte-identical".into(),
            ]);
            rows.push(Json::obj(vec![
                ("cell", cell.label().to_json()),
                ("lock", cell.kind.label().to_json()),
                ("n", Json::Int(cell.n as i64)),
                ("policy", cell.pol.label().to_json()),
                ("lease", Json::Int(lease as i64)),
                ("steps", steps.to_json()),
                ("entered", Json::Int(entered as i64)),
                ("seconds", Json::Float(best)),
                ("steps_per_sec", Json::Float(steps_per_sec)),
                ("passages_per_sec", Json::Float(passages_per_sec)),
                ("speedup", Json::Float(speedup)),
                ("byte_identical", Json::Bool(identical)),
            ]));
            if cell.n == 8 && cell.pol == Pol::Bursty && lease != 1 {
                match &mut headline {
                    Some((_, s)) if *s >= speedup => {}
                    _ => headline = Some((format!("{} lease={lease}", cell.label()), speedup)),
                }
            }
        }
    }
    table.print();
    if let Some((label, speedup)) = &headline {
        println!("headline: contended 8-process cell [{label}] — {speedup:.2}x steps/sec vs legacy per-step");
    }

    let out = Json::obj(vec![
        ("experiment", Json::Str("simscale".into())),
        ("cells", Json::Int(cells.len() as i64)),
        ("passages", Json::Int(args.passages as i64)),
        ("reps", Json::Int(args.reps as i64)),
        (
            "grid",
            Json::Str(format!(
                "[long-lived(B={B}), tournament] x ns={:?} x [round-robin, bursty(0.9)], \
                 leases={:?}",
                args.ns, args.leases
            )),
        ),
        (
            "headline_speedup",
            headline.map_or(Json::Null, |(_, s)| Json::Float(s)),
        ),
        ("rows", Json::Arr(rows)),
    ]);
    save_json("simscale", &out);
}
