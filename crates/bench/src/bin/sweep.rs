//! Ad-hoc experiment CLI: run any lock × workload × schedule combination
//! and print the measured RMR statistics.
//!
//! ```text
//! cargo run --release -p sal-bench --bin sweep -- \
//!     --lock one-shot --b 16 --n 64 --aborters 10 --passages 1 \
//!     --seed 42 --policy random --cs-ops 2
//! ```
//!
//! Locks: every registry kind (`--lock` with a wrong name lists them
//! all, `jj-amortized` included). Policies: `random`, `round-robin`,
//! `bursty`.
//!
//! `--seeds a,b,c` runs the same configuration once per seed — fanned
//! out over the work-stealing pool (`--jobs N` / `SAL_JOBS`) and
//! gathered in seed order — printing one row per seed plus an
//! aggregate, so the output is identical at any worker count.
//!
//! `--strategy bfs|dpor|best-first|fuzz` switches from sampled
//! schedules to *guided search*: the same cell is explored under the
//! chosen strategy (ignoring `--policy`/`--seeds`) and the worst
//! schedule found is reported — keep `--n` small, the schedule space
//! is exponential.

use sal_bench::{build_lock, par_grid, ExploreCell, LockKind, Table};
use sal_runtime::{
    explore_guided, run_lock, run_one_shot, BurstySchedule, ExploreOptions, ProcPlan,
    RandomSchedule, RoundRobin, SchedulePolicy, Strategy, WorkloadSpec,
};

#[derive(Debug)]
struct Args {
    lock: String,
    b: usize,
    n: usize,
    aborters: usize,
    abort_after: u64,
    passages: usize,
    seed: u64,
    seeds: Vec<u64>,
    policy: String,
    cs_ops: usize,
    jobs: usize,
    lease: u64,
    strategy: Option<Strategy>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            lock: "one-shot".into(),
            b: 16,
            n: 16,
            aborters: 0,
            abort_after: 64,
            passages: 1,
            seed: 1,
            seeds: Vec::new(),
            policy: "random".into(),
            cs_ops: 2,
            jobs: 0,
            lease: sal_runtime::default_lease(),
            strategy: None,
        }
    }
}

fn cli() -> sal_bench::Cli {
    sal_bench::Cli::new(
        "sweep",
        "run one lock/workload/schedule combination under exact RMR accounting",
    )
    .opt(
        "--lock",
        "kind",
        "any registry kind, e.g. one-shot | long-lived | mcs | tournament | scott | lee | \
         jj-amortized (a wrong name lists them all)",
    )
    .opt(
        "--b",
        "2..=64",
        "tree branching factor for the paper's locks (default 16)",
    )
    .opt("--n", "procs", "number of processes (default 16)")
    .opt(
        "--aborters",
        "k",
        "how many processes play the aborter role (default 0)",
    )
    .opt(
        "--abort-after",
        "s",
        "abort after waiting this many global steps (default 64)",
    )
    .opt(
        "--passages",
        "k",
        "passages per process (forced to 1 for one-shot locks)",
    )
    .opt("--seed", "u64", "schedule seed (default 1)")
    .opt(
        "--seeds",
        "a,b,c",
        "run once per seed in parallel; one row per seed + aggregate",
    )
    .opt(
        "--policy",
        "p",
        "random | round-robin | bursty (default random)",
    )
    .opt("--cs-ops", "k", "shared ops inside the CS (default 2)")
    .opt(
        "--jobs",
        "k",
        "worker threads for --seeds fan-out (0 = auto; SAL_JOBS honoured)",
    )
    .lease_opt()
    .strategy_opt()
}

fn parse() -> Result<Args, String> {
    let p = cli().parse_env_or_exit();
    let mut args = Args::default();
    if let Some(lock) = p.lock() {
        args.lock = lock.to_string();
    }
    args.b = p.get_or("--b", args.b)?;
    args.n = p.get_or("--n", args.n)?;
    args.aborters = p.get_or("--aborters", args.aborters)?;
    args.abort_after = p.get_or("--abort-after", args.abort_after)?;
    args.passages = p.get_or("--passages", args.passages)?;
    args.seed = p.get_or("--seed", args.seed)?;
    if let Some(seeds) = p.seeds()? {
        args.seeds = seeds;
    }
    if let Some(policy) = p.value("--policy") {
        args.policy = policy.to_string();
    }
    args.cs_ops = p.get_or("--cs-ops", args.cs_ops)?;
    args.jobs = p.get_or("--jobs", args.jobs)?;
    args.lease = p.lease()?;
    args.strategy = p.strategy()?;
    Ok(args)
}

fn policy(args: &Args, seed: u64) -> Result<Box<dyn SchedulePolicy>, String> {
    Ok(match args.policy.as_str() {
        "random" => Box::new(RandomSchedule::seeded(seed)),
        "round-robin" => Box::new(RoundRobin::new()),
        "bursty" => Box::new(BurstySchedule::seeded(seed, 0.9)),
        other => return Err(format!("unknown policy {other}")),
    })
}

/// The per-seed metrics a multi-seed sweep reports.
struct SeedPoint {
    seed: u64,
    steps: u64,
    entered: usize,
    aborted: usize,
    max_entered_rmrs: u64,
    mean_entered_rmrs: f64,
    max_aborted_rmrs: u64,
    mutex_ok: bool,
}

/// Run one (lock, workload, seed) cell and extract the row metrics.
fn run_seed(kind: LockKind, args: &Args, seed: u64) -> Result<SeedPoint, String> {
    let passages = if kind.one_shot() { 1 } else { args.passages };
    let mut plans = vec![ProcPlan::normal(passages); args.n - args.aborters];
    plans.extend(vec![
        ProcPlan::aborter(passages, args.abort_after);
        args.aborters
    ]);
    let attempts: usize = plans.iter().map(|p| p.passages).sum();
    let built = build_lock(kind, args.n, attempts);
    let spec = WorkloadSpec {
        plans,
        cs_ops: args.cs_ops,
        max_steps: 200_000_000,
        lease: args.lease,
    };
    let pol = policy(args, seed)?;
    let report = if kind.one_shot() {
        run_one_shot(&*built.lock, &built.mem, built.cs_word, &spec, pol)
    } else {
        run_lock(&*built.lock, &built.mem, built.cs_word, &spec, pol)
    }
    .map_err(|e| e.to_string())?;
    Ok(SeedPoint {
        seed,
        steps: report.steps,
        entered: report.total_entered(),
        aborted: attempts - report.total_entered(),
        max_entered_rmrs: report.max_entered_rmrs(),
        mean_entered_rmrs: report.mean_entered_rmrs(),
        max_aborted_rmrs: report.max_aborted_rmrs(),
        mutex_ok: report.mutex_check.is_ok(),
    })
}

/// `--seeds a,b,c`: one simulation per seed on the pool, gathered in
/// seed-list order.
fn multi_seed(kind: LockKind, args: &Args) {
    let points = par_grid(args.jobs, &args.seeds, |&seed| run_seed(kind, args, seed));
    let mut t = Table::new(
        format!(
            "{} | N={} aborters={} policy={} | {} seeds",
            kind.label(),
            args.n,
            args.aborters,
            args.policy,
            args.seeds.len()
        ),
        &[
            "seed",
            "steps",
            "entered",
            "aborted",
            "max RMRs",
            "mean RMRs",
            "max aborted RMRs",
            "mutex",
        ],
    );
    let mut maxima = Vec::new();
    for point in points {
        let p = match point {
            Ok(p) => p,
            Err(e) => {
                eprintln!("simulation failed: {e}");
                std::process::exit(1);
            }
        };
        t.row(vec![
            p.seed.to_string(),
            p.steps.to_string(),
            p.entered.to_string(),
            p.aborted.to_string(),
            p.max_entered_rmrs.to_string(),
            format!("{:.2}", p.mean_entered_rmrs),
            p.max_aborted_rmrs.to_string(),
            if p.mutex_ok {
                "held".into()
            } else {
                "VIOLATED".into()
            },
        ]);
        maxima.push(p.max_entered_rmrs);
    }
    t.print();
    if let Some(summary) = sal_bench::report::RmrSummary::of(&maxima) {
        println!("aggregate max-RMRs-per-seed: {}", summary.render());
    }
}

/// `--strategy`: explore schedules for the configured cell instead of
/// sampling them, and report the worst one found. The same cell fields
/// (`--lock --b --n --aborters --abort-after --passages --cs-ops
/// --lease`) define the workload; the strategy defines the search.
fn guided(kind: LockKind, args: &Args, strategy: Strategy) {
    let cell = ExploreCell {
        kind,
        n: args.n,
        aborters: args.aborters,
        abort_after: args.abort_after,
        passages: args.passages,
        cs_ops: args.cs_ops,
        max_steps: 200_000,
        lease: args.lease,
    };
    let opts = ExploreOptions {
        jobs: args.jobs,
        ..ExploreOptions::default()
    };
    let result = explore_guided(&opts, strategy, |policy| cell.guided_run(policy));
    let mut t = Table::new(
        format!(
            "sweep --strategy {} | {} N={} aborters={} lease={}",
            strategy.label(),
            kind.label(),
            args.n,
            args.aborters,
            args.lease
        ),
        &["metric", "value"],
    );
    t.row(vec!["schedules executed".into(), result.runs.to_string()]);
    t.row(vec![
        "worst max RMRs/passage found".into(),
        result.best_cost.to_string(),
    ]);
    t.row(vec![
        "truncated (unexecuted prefixes)".into(),
        result.truncated_runs.to_string(),
    ]);
    t.row(vec![
        "verdict".into(),
        match &result.violation {
            None => "all explored schedules safe".into(),
            Some((_, msg)) => format!("VIOLATION: {msg}"),
        },
    ]);
    t.print();
    if let Some(rec) = result.violation_recording() {
        println!("witness recording (replayable): {}", rec.serialize());
        std::process::exit(1);
    }
}

fn main() {
    let args = match parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    // The FromStr path shared by sweep/explore/hwscale, re-targeted to
    // the CLI branching factor.
    let kind = match args.lock.parse::<LockKind>() {
        Ok(k) => k.with_branching(args.b),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if !(2..=64).contains(&args.b) {
        eprintln!("error: --b must be in 2..=64 (got {})", args.b);
        std::process::exit(2);
    }
    if args.aborters >= args.n {
        eprintln!("error: --aborters must be < --n");
        std::process::exit(2);
    }
    if args.aborters > 0 && !kind.abortable() {
        eprintln!("error: {} is not abortable", kind.label());
        std::process::exit(2);
    }
    if let Some(strategy) = args.strategy {
        guided(kind, &args, strategy);
        return;
    }
    if !args.seeds.is_empty() {
        multi_seed(kind, &args);
        return;
    }
    let passages = if kind.one_shot() { 1 } else { args.passages };
    let mut plans = vec![ProcPlan::normal(passages); args.n - args.aborters];
    plans.extend(vec![
        ProcPlan::aborter(passages, args.abort_after);
        args.aborters
    ]);
    let attempts: usize = plans.iter().map(|p| p.passages).sum();
    let built = build_lock(kind, args.n, attempts);
    let spec = WorkloadSpec {
        plans,
        cs_ops: args.cs_ops,
        max_steps: 200_000_000,
        lease: args.lease,
    };
    let pol = match policy(&args, args.seed) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let report = if kind.one_shot() {
        run_one_shot(&*built.lock, &built.mem, built.cs_word, &spec, pol)
    } else {
        run_lock(&*built.lock, &built.mem, built.cs_word, &spec, pol)
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simulation failed: {e}");
            std::process::exit(1);
        }
    };
    let mut t = Table::new(
        format!(
            "{} | N={} aborters={} passages={passages} seed={} policy={}",
            kind.label(),
            args.n,
            args.aborters,
            args.seed,
            args.policy
        ),
        &["metric", "value"],
    );
    t.row(vec!["steps".into(), report.steps.to_string()]);
    t.row(vec![
        "entered passages".into(),
        report.total_entered().to_string(),
    ]);
    t.row(vec![
        "aborted attempts".into(),
        (attempts - report.total_entered()).to_string(),
    ]);
    t.row(vec![
        "max RMRs (complete passage)".into(),
        report.max_entered_rmrs().to_string(),
    ]);
    t.row(vec![
        "mean RMRs (complete passage)".into(),
        format!("{:.2}", report.mean_entered_rmrs()),
    ]);
    t.row(vec![
        "max RMRs (aborted attempt)".into(),
        report.max_aborted_rmrs().to_string(),
    ]);
    let entered_samples: Vec<u64> = report
        .passages
        .iter()
        .filter(|p| p.entered)
        .map(|p| p.rmrs)
        .collect();
    if let Some(summary) = sal_bench::report::RmrSummary::of(&entered_samples) {
        t.row(vec!["RMR distribution (entered)".into(), summary.render()]);
    }
    t.row(vec![
        "mutual exclusion".into(),
        if report.mutex_check.is_ok() {
            "held".into()
        } else {
            format!("{:?}", report.mutex_check)
        },
    ]);
    t.row(vec![
        "FCFS".into(),
        match (&report.fcfs_check, kind.one_shot()) {
            (Ok(()), true) => "held".into(),
            (Err(v), true) => format!("{v:?}"),
            _ => "n/a (not checked for long-lived locks)".into(),
        },
    ]);
    t.row(vec!["shared words".into(), built.words.to_string()]);
    t.print();
}
