//! Regenerate Table 1 of the paper from measured RMR counts.
//!
//! ```text
//! cargo run --release -p sal-bench --bin table1 -- \
//!     [worst-case|no-abort|adaptive|space|fairness|amortized|all] \
//!     [--smoke] [--jobs N]
//! ```
//!
//! Each subcommand regenerates one column of Table 1 (see DESIGN.md
//! experiment ids E1–E3, E8–E10, and M9 for `amortized`); `all` runs
//! everything. Numbers are exact RMR counts under the paper's CC cost
//! model (§2), measured by `sal-memory`, with schedules driven by
//! `sal-runtime`. Row sets are registry-driven
//! ([`LockKind::table1_rows`] / [`LockKind::all`]), so new kinds appear
//! automatically.
//!
//! `--smoke` is the CI shape: it runs the `amortized` experiment on a
//! reduced grid, which still regenerates the acceptance artifact
//! `BENCH_table1.json` at the repo root (amortized column for every
//! kind + the measured `target_met` verdict: the Jayanti–Jayanti lock
//! flat across N while a per-passage tree lock grows).
//!
//! Grid cells are independent simulations, so they fan out over the
//! work-stealing pool (`--jobs N`, or `SAL_JOBS`, default = available
//! parallelism) and are gathered in cell order — tables, JSON and
//! JSONL exports are byte-identical at any worker count.

use sal_bench::{
    adaptive_sweep_probed, amortized_sweep, export_events, no_abort_sweep, no_abort_sweep_probed,
    par_grid, save_json, save_json_with_log, space_row, worst_case_sweep, AmortizedPoint, LockKind,
    Table,
};
use sal_obs::{EventLog, Json, ToJson};
use sal_runtime::{run_one_shot, ProcPlan, RandomSchedule, WorkloadSpec};

const B: usize = 16; // branching factor for "our" locks in the comparison

/// E1: Table 1 "Worst-case" column — all but two processes abort while
/// queued; report the worst complete passage.
fn worst_case(jobs: usize) {
    let ns = [8usize, 16, 32, 64, 128, 256];
    let mut table = Table::new(
        "E1 — Table 1 'Worst-case': max RMRs of a complete passage, N−2 aborters",
        &["lock", "N=8", "N=16", "N=32", "N=64", "N=128", "N=256"],
    );
    let kinds = LockKind::table1_rows(B);
    let cells: Vec<(LockKind, usize)> = kinds
        .iter()
        .flat_map(|&kind| ns.iter().map(move |&n| (kind, n)))
        .collect();
    let points = par_grid(jobs, &cells, |&(kind, n)| {
        let p = worst_case_sweep(kind, n, 42).expect("sim failed");
        assert!(p.mutex_ok, "{} violated mutual exclusion", p.lock);
        p
    });
    for (row, chunk) in points.chunks(ns.len()).enumerate() {
        let mut cells = vec![kinds[row].label()];
        cells.extend(chunk.iter().map(|p| p.max_entered_rmrs.to_string()));
        table.row(cells);
    }
    table.print();
    println!(
        "shape check: ours grows ~log_{B} N; tournament ~log2 N; \
         scott/lee pay per aborted predecessor (linear-family in N here)."
    );
    save_json("table1_worst_case", &points);
}

/// E2 + E10: Table 1 "No aborts" column — clean passages only.
fn no_abort(jobs: usize) {
    let ns = [8usize, 16, 32, 64, 128, 256];
    let mut table = Table::new(
        "E2/E10 — Table 1 'No aborts': max RMRs of a passage, zero aborters",
        &["lock", "N=8", "N=16", "N=32", "N=64", "N=128", "N=256"],
    );
    let mut kinds = LockKind::table1_rows(B);
    kinds.push(LockKind::Mcs); // the classic O(1) yardstick
    let cells: Vec<(LockKind, usize)> = kinds
        .iter()
        .flat_map(|&kind| ns.iter().map(move |&n| (kind, n)))
        .collect();
    // Each cell records into its own unbounded log; the driver absorbs
    // them in cell order, so the JSONL export never silently overflows
    // and is identical at any worker count.
    let results = par_grid(jobs, &cells, |&(kind, n)| {
        let cell_log = EventLog::unbounded();
        let passages = if kind.one_shot() { 1 } else { 2 };
        let p = no_abort_sweep_probed(kind, n, passages, 7, cell_log.clone()).expect("sim failed");
        assert!(p.mutex_ok, "{} violated mutual exclusion", p.lock);
        (p, cell_log)
    });
    let log = EventLog::unbounded();
    let mut points = Vec::new();
    for (p, cell_log) in results {
        log.absorb(&cell_log);
        points.push(p);
    }
    for (row, chunk) in points.chunks(ns.len()).enumerate() {
        let mut cells = vec![kinds[row].label()];
        cells.extend(chunk.iter().map(|p| p.max_entered_rmrs.to_string()));
        table.row(cells);
    }
    table.print();
    println!(
        "shape check: ours, scott, lee and mcs stay flat (O(1)); tournament grows with log2 N."
    );
    // E10 close-up: the whole per-passage distribution of the paper's
    // lock is flat at N = 256, not just the max.
    let built = sal_bench::build_lock(LockKind::OneShot { b: B }, 256, 256);
    let spec = WorkloadSpec {
        plans: vec![ProcPlan::normal(1); 256],
        cs_ops: 2,
        max_steps: 60_000_000,
        lease: sal_runtime::default_lease(),
    };
    let report = sal_runtime::run_lock(
        &*built.lock,
        &built.mem,
        built.cs_word,
        &spec,
        Box::new(RandomSchedule::seeded(7)),
    )
    .expect("sim failed");
    let samples: Vec<u64> = report
        .passages
        .iter()
        .filter(|p| p.entered)
        .map(|p| p.rmrs)
        .collect();
    if let Some(s) = sal_bench::RmrSummary::of(&samples) {
        println!(
            "E10 — one-shot(B={B}) per-passage RMR distribution at N=256, zero aborts: {}",
            s.render()
        );
    }
    save_json_with_log("table1_no_abort", &points, &log);
    export_events(&log, "table1_no_abort_events");
}

/// E3: Table 1 "Adaptive bound" column — fixed N, sweep the number of
/// aborters A.
fn adaptive(jobs: usize) {
    let n = 256;
    let aborters = [0usize, 1, 4, 16, 64, 254];
    let mut table = Table::new(
        format!("E3 — Table 1 'Adaptive bound': max RMRs of a complete passage, N = {n}"),
        &["lock", "A=0", "A=1", "A=4", "A=16", "A=64", "A=254"],
    );
    let kinds = LockKind::table1_rows(B);
    let cells: Vec<(LockKind, usize)> = kinds
        .iter()
        .flat_map(|&kind| aborters.iter().map(move |&a| (kind, a)))
        .collect();
    let results = par_grid(jobs, &cells, |&(kind, a)| {
        let cell_log = EventLog::unbounded();
        let p = adaptive_sweep_probed(kind, n, a, 11, cell_log.clone()).expect("sim failed");
        assert!(p.mutex_ok, "{} violated mutual exclusion", p.lock);
        (p, cell_log)
    });
    let log = EventLog::unbounded();
    let mut points = Vec::new();
    for (p, cell_log) in results {
        log.absorb(&cell_log);
        points.push(p);
    }
    for (row, chunk) in points.chunks(aborters.len()).enumerate() {
        let mut cells = vec![kinds[row].label()];
        cells.extend(chunk.iter().map(|p| p.max_entered_rmrs.to_string()));
        table.row(cells);
    }
    table.print();
    println!(
        "shape check: ours tracks log_{B} A (stays flat until A is large); tournament is \
         pinned at log2 N regardless; scott tracks A; lee grows fastest."
    );
    save_json_with_log("table1_adaptive", &points, &log);
    export_events(&log, "table1_adaptive_events");
}

/// E8: Table 1 "Space" column — measured shared words vs N.
fn space(jobs: usize) {
    let ns = [8usize, 16, 32, 64, 128, 256];
    let mut table = Table::new(
        "E8 — Table 1 'Space': shared words allocated (attempts = N)",
        &["lock", "N=8", "N=16", "N=32", "N=64", "N=128", "N=256"],
    );
    let kinds = LockKind::table1_rows(B);
    let cells: Vec<(LockKind, usize)> = kinds
        .iter()
        .flat_map(|&kind| ns.iter().map(move |&n| (kind, n)))
        .collect();
    let rows = par_grid(jobs, &cells, |&(kind, n)| {
        (kind.label(), n, space_row(kind, n, n))
    });
    for (row, chunk) in rows.chunks(ns.len()).enumerate() {
        let mut cells = vec![kinds[row].label()];
        cells.extend(chunk.iter().map(|(_, _, w)| w.to_string()));
        table.row(cells);
    }
    table.print();
    println!(
        "shape check: one-shot is O(N); long-lived is O(N²); scott/lee arenas scale \
         with attempts (unbounded over an execution's lifetime)."
    );
    save_json("table1_space", &rows);
}

/// E9: Table 1 "Fairness" column — FCFS witness for the one-shot lock,
/// starvation-freedom witness for the long-lived lock.
fn fairness(jobs: usize) {
    let n = 16;
    let seeds: Vec<u64> = (0..200).collect();
    let verdicts = par_grid(jobs, &seeds, |&seed| {
        let built = sal_bench::build_lock(LockKind::OneShot { b: B }, n, n);
        let mut plans = vec![ProcPlan::normal(1); n];
        // A third of the crowd aborts; FCFS must hold among the rest.
        for p in plans.iter_mut().take(n).skip(2).step_by(3) {
            *p = ProcPlan::aborter(1, 40);
        }
        let spec = WorkloadSpec {
            plans,
            cs_ops: 2,
            max_steps: 10_000_000,
            lease: sal_runtime::default_lease(),
        };
        let report = run_one_shot(
            &*built.lock,
            &built.mem,
            built.cs_word,
            &spec,
            Box::new(RandomSchedule::seeded(seed)),
        )
        .expect("sim failed");
        assert!(report.mutex_check.is_ok(), "mutual exclusion violated");
        assert!(
            report.fcfs_check.is_ok(),
            "FCFS violated at seed {seed}: {:?}",
            report.fcfs_check
        );
        true
    });
    let fcfs_ok = verdicts.iter().filter(|&&ok| ok).count();
    println!(
        "\n== E9 — Table 1 'Fairness' ==\none-shot: FCFS held in {fcfs_ok}/{} random \
         schedules ({n} processes, 1/3 aborting).",
        seeds.len()
    );

    // Long-lived: starvation freedom — every process completes all its
    // passages under fair random schedules.
    let seeds: Vec<u64> = (0..50).collect();
    let completed = par_grid(jobs, &seeds, |&seed| {
        let p = no_abort_sweep(LockKind::LongLived { b: B }, 8, 4, seed).expect("sim failed");
        assert!(p.mutex_ok);
        true
    })
    .len();
    println!(
        "long-lived: all 8 processes completed 4 passages in {completed}/50 random \
         schedules (starvation-free, not FCFS — Theorem 23)."
    );
}

/// M9: Table 1 "Amortized" column — run-scoped accounting for *every*
/// registered kind at small N, with the worst-case (max single-passage
/// debt) column retained next to it. Also writes the acceptance
/// artifact `BENCH_table1.json` at the repo root, with a measured
/// `target_met` verdict: the Jayanti–Jayanti lock's amortized RMR flat
/// (within noise) across N ∈ {2, 4, 8} while the tournament tree
/// lock's grows.
fn amortized(jobs: usize, smoke: bool) {
    let ns = [2usize, 4, 8];
    let (rounds, passages) = if smoke { (3, 3) } else { (12, 6) };
    // Every kind, registry-driven — the amortized column is the one
    // place non-contenders (mcs, ticket, tas, ablation variants) show
    // up too, since run-scoped accounting is defined for all of them.
    let kinds = LockKind::all(B);
    let cells: Vec<(LockKind, usize)> = kinds
        .iter()
        .flat_map(|&kind| ns.iter().map(move |&n| (kind, n)))
        .collect();
    let points: Vec<AmortizedPoint> = par_grid(jobs, &cells, |&(kind, n)| {
        let p = amortized_sweep(kind, n, rounds, passages, 42).expect("sim failed");
        assert!(p.mutex_ok, "{} violated mutual exclusion", p.lock);
        assert!(
            p.accounting_ok,
            "{} probe totals diverged from memory ground truth",
            p.lock
        );
        p
    });
    let mut table = Table::new(
        "M9 — Table 1 'Amortized': total RMRs / total passages, half the crowd aborting",
        &["lock", "N=2", "N=4", "N=8", "worst debt", "worst entered"],
    );
    for (row, chunk) in points.chunks(ns.len()).enumerate() {
        let mut cells = vec![kinds[row].label()];
        cells.extend(
            chunk
                .iter()
                .map(|p| format!("{:.2}", p.stats.amortized_rmrs)),
        );
        cells.push(
            chunk
                .iter()
                .map(|p| p.stats.max_passage_rmrs)
                .max()
                .unwrap_or(0)
                .to_string(),
        );
        cells.push(
            chunk
                .iter()
                .map(|p| p.max_entered_rmrs)
                .max()
                .unwrap_or(0)
                .to_string(),
        );
        table.row(cells);
    }
    table.print();

    // The measured verdict, from the data just gathered — not from
    // asymptotic claims. "Flat" allows sim noise (different schedules
    // at different N); "grows" requires a clearly super-constant climb.
    let row_of = |kind: LockKind| -> Vec<f64> {
        let row = kinds.iter().position(|&k| k == kind).expect("kind in grid");
        points[row * ns.len()..(row + 1) * ns.len()]
            .iter()
            .map(|p| p.stats.amortized_rmrs)
            .collect()
    };
    let jj = row_of(LockKind::JjAmortized);
    let tournament = row_of(LockKind::Tournament);
    let jj_flat = jj[2] <= jj[0] * 1.5 + 1.0;
    let tree_grows = tournament[2] >= tournament[0] + 1.0;
    let target_met = jj_flat && tree_grows;
    let mut caveats: Vec<String> = Vec::new();
    if !jj_flat {
        caveats.push(format!(
            "jj-amortized amortized RMRs not flat across N: {jj:?}"
        ));
    }
    if !tree_grows {
        caveats.push(format!(
            "tournament amortized RMRs did not grow with N: {tournament:?}"
        ));
    }
    println!(
        "shape check: jj-amortized flat across N ({}: {:.2} → {:.2}), tournament grows \
         ({}: {:.2} → {:.2}); target_met: {target_met}",
        if jj_flat { "ok" } else { "NOT FLAT" },
        jj[0],
        jj[2],
        if tree_grows { "ok" } else { "NOT GROWING" },
        tournament[0],
        tournament[2],
    );
    save_json("table1_amortized", &points);

    // The acceptance artifact at the repo root, resolved from the crate
    // manifest so any invoking directory lands it there.
    let rows: Vec<Json> = kinds
        .iter()
        .zip(points.chunks(ns.len()))
        .map(|(kind, chunk)| {
            Json::obj(vec![
                ("lock", kind.label().to_json()),
                (
                    "cells",
                    Json::Arr(chunk.iter().map(ToJson::to_json).collect()),
                ),
            ])
        })
        .collect();
    let out = Json::obj(vec![
        ("bench", "table1".to_json()),
        ("mode", if smoke { "smoke" } else { "full" }.to_json()),
        ("branching", (B as u64).to_json()),
        (
            "ns",
            Json::Arr(ns.iter().map(|&n| (n as u64).to_json()).collect()),
        ),
        ("rounds", (rounds as u64).to_json()),
        ("passages", (passages as u64).to_json()),
        (
            "jj_amortized_rmrs",
            Json::Arr(jj.iter().map(|v| v.to_json()).collect()),
        ),
        (
            "tournament_amortized_rmrs",
            Json::Arr(tournament.iter().map(|v| v.to_json()).collect()),
        ),
        ("jj_flat", jj_flat.to_json()),
        ("tree_grows", tree_grows.to_json()),
        ("target_met", target_met.to_json()),
        ("caveats", caveats.to_json()),
        ("rows", Json::Arr(rows)),
    ]);
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_table1.json");
    match std::fs::write(&path, out.render()) {
        Ok(()) => println!("(saved {})", path.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

fn main() {
    // One optional positional subcommand, then declarative flags — the
    // shared `Cli` vocabulary (`--smoke`, `--jobs`) like every other
    // driver in this crate.
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let sub = if args.first().is_some_and(|a| !a.starts_with('-')) {
        args.remove(0)
    } else {
        "all".to_string()
    };
    let cli = sal_bench::Cli::new(
        "table1 [worst-case|no-abort|adaptive|space|fairness|amortized|all]",
        "regenerate Table 1 of the paper from measured RMR counts",
    )
    .flag(
        "--smoke",
        "CI-sized run: the amortized column only, reduced grid (still writes BENCH_table1.json)",
    )
    .opt(
        "--jobs",
        "k",
        "worker threads (0 = auto; SAL_JOBS honoured)",
    );
    let p = match cli.parse(args.into_iter()) {
        Ok(p) if p.help_requested() => {
            println!("{}", cli.usage());
            return;
        }
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n{}", cli.usage());
            std::process::exit(2);
        }
    };
    let jobs = p.jobs().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    if p.smoke() {
        amortized(jobs, true);
        return;
    }
    match sub.as_str() {
        "worst-case" => worst_case(jobs),
        "no-abort" => no_abort(jobs),
        "adaptive" => adaptive(jobs),
        "space" => space(jobs),
        "fairness" => fairness(jobs),
        "amortized" => amortized(jobs, false),
        "all" => {
            worst_case(jobs);
            no_abort(jobs);
            adaptive(jobs);
            space(jobs);
            fairness(jobs);
            amortized(jobs, false);
        }
        other => {
            eprintln!(
                "unknown experiment {other}; use \
                 worst-case|no-abort|adaptive|space|fairness|amortized|all"
            );
            std::process::exit(2);
        }
    }
}
