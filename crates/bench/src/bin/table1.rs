//! Regenerate Table 1 of the paper from measured RMR counts.
//!
//! ```text
//! cargo run --release -p sal-bench --bin table1 -- \
//!     [worst-case|no-abort|adaptive|space|fairness|all] [--jobs N]
//! ```
//!
//! Each subcommand regenerates one column of Table 1 (see DESIGN.md
//! experiment ids E1–E3, E8–E10); `all` runs everything. Numbers are
//! exact RMR counts under the paper's CC cost model (§2), measured by
//! `sal-memory`, with schedules driven by `sal-runtime`.
//!
//! Grid cells are independent simulations, so they fan out over the
//! work-stealing pool (`--jobs N`, or `SAL_JOBS`, default = available
//! parallelism) and are gathered in cell order — tables, JSON and
//! JSONL exports are byte-identical at any worker count.

use sal_bench::{
    adaptive_sweep_probed, export_events, no_abort_sweep, no_abort_sweep_probed, par_grid,
    save_json, save_json_with_log, space_row, worst_case_sweep, LockKind, Table,
};
use sal_obs::EventLog;
use sal_runtime::{run_one_shot, ProcPlan, RandomSchedule, WorkloadSpec};

const B: usize = 16; // branching factor for "our" locks in the comparison

/// E1: Table 1 "Worst-case" column — all but two processes abort while
/// queued; report the worst complete passage.
fn worst_case(jobs: usize) {
    let ns = [8usize, 16, 32, 64, 128, 256];
    let mut table = Table::new(
        "E1 — Table 1 'Worst-case': max RMRs of a complete passage, N−2 aborters",
        &["lock", "N=8", "N=16", "N=32", "N=64", "N=128", "N=256"],
    );
    let kinds = LockKind::table1_rows(B);
    let cells: Vec<(LockKind, usize)> = kinds
        .iter()
        .flat_map(|&kind| ns.iter().map(move |&n| (kind, n)))
        .collect();
    let points = par_grid(jobs, &cells, |&(kind, n)| {
        let p = worst_case_sweep(kind, n, 42).expect("sim failed");
        assert!(p.mutex_ok, "{} violated mutual exclusion", p.lock);
        p
    });
    for (row, chunk) in points.chunks(ns.len()).enumerate() {
        let mut cells = vec![kinds[row].label()];
        cells.extend(chunk.iter().map(|p| p.max_entered_rmrs.to_string()));
        table.row(cells);
    }
    table.print();
    println!(
        "shape check: ours grows ~log_{B} N; tournament ~log2 N; \
         scott/lee pay per aborted predecessor (linear-family in N here)."
    );
    save_json("table1_worst_case", &points);
}

/// E2 + E10: Table 1 "No aborts" column — clean passages only.
fn no_abort(jobs: usize) {
    let ns = [8usize, 16, 32, 64, 128, 256];
    let mut table = Table::new(
        "E2/E10 — Table 1 'No aborts': max RMRs of a passage, zero aborters",
        &["lock", "N=8", "N=16", "N=32", "N=64", "N=128", "N=256"],
    );
    let mut kinds = LockKind::table1_rows(B);
    kinds.push(LockKind::Mcs); // the classic O(1) yardstick
    let cells: Vec<(LockKind, usize)> = kinds
        .iter()
        .flat_map(|&kind| ns.iter().map(move |&n| (kind, n)))
        .collect();
    // Each cell records into its own unbounded log; the driver absorbs
    // them in cell order, so the JSONL export never silently overflows
    // and is identical at any worker count.
    let results = par_grid(jobs, &cells, |&(kind, n)| {
        let cell_log = EventLog::unbounded();
        let passages = if kind.one_shot() { 1 } else { 2 };
        let p = no_abort_sweep_probed(kind, n, passages, 7, cell_log.clone()).expect("sim failed");
        assert!(p.mutex_ok, "{} violated mutual exclusion", p.lock);
        (p, cell_log)
    });
    let log = EventLog::unbounded();
    let mut points = Vec::new();
    for (p, cell_log) in results {
        log.absorb(&cell_log);
        points.push(p);
    }
    for (row, chunk) in points.chunks(ns.len()).enumerate() {
        let mut cells = vec![kinds[row].label()];
        cells.extend(chunk.iter().map(|p| p.max_entered_rmrs.to_string()));
        table.row(cells);
    }
    table.print();
    println!(
        "shape check: ours, scott, lee and mcs stay flat (O(1)); tournament grows with log2 N."
    );
    // E10 close-up: the whole per-passage distribution of the paper's
    // lock is flat at N = 256, not just the max.
    let built = sal_bench::build_lock(LockKind::OneShot { b: B }, 256, 256);
    let spec = WorkloadSpec {
        plans: vec![ProcPlan::normal(1); 256],
        cs_ops: 2,
        max_steps: 60_000_000,
        lease: sal_runtime::default_lease(),
    };
    let report = sal_runtime::run_lock(
        &*built.lock,
        &built.mem,
        built.cs_word,
        &spec,
        Box::new(RandomSchedule::seeded(7)),
    )
    .expect("sim failed");
    let samples: Vec<u64> = report
        .passages
        .iter()
        .filter(|p| p.entered)
        .map(|p| p.rmrs)
        .collect();
    if let Some(s) = sal_bench::RmrSummary::of(&samples) {
        println!(
            "E10 — one-shot(B={B}) per-passage RMR distribution at N=256, zero aborts: {}",
            s.render()
        );
    }
    save_json_with_log("table1_no_abort", &points, &log);
    export_events(&log, "table1_no_abort_events");
}

/// E3: Table 1 "Adaptive bound" column — fixed N, sweep the number of
/// aborters A.
fn adaptive(jobs: usize) {
    let n = 256;
    let aborters = [0usize, 1, 4, 16, 64, 254];
    let mut table = Table::new(
        format!("E3 — Table 1 'Adaptive bound': max RMRs of a complete passage, N = {n}"),
        &["lock", "A=0", "A=1", "A=4", "A=16", "A=64", "A=254"],
    );
    let kinds = LockKind::table1_rows(B);
    let cells: Vec<(LockKind, usize)> = kinds
        .iter()
        .flat_map(|&kind| aborters.iter().map(move |&a| (kind, a)))
        .collect();
    let results = par_grid(jobs, &cells, |&(kind, a)| {
        let cell_log = EventLog::unbounded();
        let p = adaptive_sweep_probed(kind, n, a, 11, cell_log.clone()).expect("sim failed");
        assert!(p.mutex_ok, "{} violated mutual exclusion", p.lock);
        (p, cell_log)
    });
    let log = EventLog::unbounded();
    let mut points = Vec::new();
    for (p, cell_log) in results {
        log.absorb(&cell_log);
        points.push(p);
    }
    for (row, chunk) in points.chunks(aborters.len()).enumerate() {
        let mut cells = vec![kinds[row].label()];
        cells.extend(chunk.iter().map(|p| p.max_entered_rmrs.to_string()));
        table.row(cells);
    }
    table.print();
    println!(
        "shape check: ours tracks log_{B} A (stays flat until A is large); tournament is \
         pinned at log2 N regardless; scott tracks A; lee grows fastest."
    );
    save_json_with_log("table1_adaptive", &points, &log);
    export_events(&log, "table1_adaptive_events");
}

/// E8: Table 1 "Space" column — measured shared words vs N.
fn space(jobs: usize) {
    let ns = [8usize, 16, 32, 64, 128, 256];
    let mut table = Table::new(
        "E8 — Table 1 'Space': shared words allocated (attempts = N)",
        &["lock", "N=8", "N=16", "N=32", "N=64", "N=128", "N=256"],
    );
    let kinds = LockKind::table1_rows(B);
    let cells: Vec<(LockKind, usize)> = kinds
        .iter()
        .flat_map(|&kind| ns.iter().map(move |&n| (kind, n)))
        .collect();
    let rows = par_grid(jobs, &cells, |&(kind, n)| {
        (kind.label(), n, space_row(kind, n, n))
    });
    for (row, chunk) in rows.chunks(ns.len()).enumerate() {
        let mut cells = vec![kinds[row].label()];
        cells.extend(chunk.iter().map(|(_, _, w)| w.to_string()));
        table.row(cells);
    }
    table.print();
    println!(
        "shape check: one-shot is O(N); long-lived is O(N²); scott/lee arenas scale \
         with attempts (unbounded over an execution's lifetime)."
    );
    save_json("table1_space", &rows);
}

/// E9: Table 1 "Fairness" column — FCFS witness for the one-shot lock,
/// starvation-freedom witness for the long-lived lock.
fn fairness(jobs: usize) {
    let n = 16;
    let seeds: Vec<u64> = (0..200).collect();
    let verdicts = par_grid(jobs, &seeds, |&seed| {
        let built = sal_bench::build_lock(LockKind::OneShot { b: B }, n, n);
        let mut plans = vec![ProcPlan::normal(1); n];
        // A third of the crowd aborts; FCFS must hold among the rest.
        for p in plans.iter_mut().take(n).skip(2).step_by(3) {
            *p = ProcPlan::aborter(1, 40);
        }
        let spec = WorkloadSpec {
            plans,
            cs_ops: 2,
            max_steps: 10_000_000,
            lease: sal_runtime::default_lease(),
        };
        let report = run_one_shot(
            &*built.lock,
            &built.mem,
            built.cs_word,
            &spec,
            Box::new(RandomSchedule::seeded(seed)),
        )
        .expect("sim failed");
        assert!(report.mutex_check.is_ok(), "mutual exclusion violated");
        assert!(
            report.fcfs_check.is_ok(),
            "FCFS violated at seed {seed}: {:?}",
            report.fcfs_check
        );
        true
    });
    let fcfs_ok = verdicts.iter().filter(|&&ok| ok).count();
    println!(
        "\n== E9 — Table 1 'Fairness' ==\none-shot: FCFS held in {fcfs_ok}/{} random \
         schedules ({n} processes, 1/3 aborting).",
        seeds.len()
    );

    // Long-lived: starvation freedom — every process completes all its
    // passages under fair random schedules.
    let seeds: Vec<u64> = (0..50).collect();
    let completed = par_grid(jobs, &seeds, |&seed| {
        let p = no_abort_sweep(LockKind::LongLived { b: B }, 8, 4, seed).expect("sim failed");
        assert!(p.mutex_ok);
        true
    })
    .len();
    println!(
        "long-lived: all 8 processes completed 4 passages in {completed}/50 random \
         schedules (starvation-free, not FCFS — Theorem 23)."
    );
}

fn main() {
    let (positional, jobs) = match sal_bench::parse_jobs_args(std::env::args().skip(1)) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let arg = positional.first().map(String::as_str).unwrap_or("all");
    match arg {
        "worst-case" => worst_case(jobs),
        "no-abort" => no_abort(jobs),
        "adaptive" => adaptive(jobs),
        "space" => space(jobs),
        "fairness" => fairness(jobs),
        "all" => {
            worst_case(jobs);
            no_abort(jobs);
            adaptive(jobs);
            space(jobs);
            fairness(jobs);
        }
        other => {
            eprintln!(
                "unknown experiment {other}; use worst-case|no-abort|adaptive|space|fairness|all"
            );
            std::process::exit(2);
        }
    }
}
