//! Shared flag parsing for the experiment binaries.
//!
//! Every `--smoke`-style driver in this crate used to hand-roll the
//! same twenty-line `std::env::args()` loop, each with its own
//! slightly different error wording and its own idea of whether
//! `--jobs=3` works. This module is the one copy: a binary *declares*
//! its flags (boolean [`Cli::flag`]s and valued [`Cli::opt`]s), and
//! gets back
//!
//! * `--name value` **and** `--name=value` forms,
//! * `--help`/`-h` with a usage block generated from the declarations,
//! * unknown-flag errors that list every valid flag (the same
//!   discoverability rule the lock registry applies to `--lock` names),
//! * typed accessors ([`Parsed::get`], [`Parsed::list`]) plus
//!   convenience readers for the cross-binary vocabulary:
//!   [`Parsed::smoke`], [`Parsed::jobs`], [`Parsed::lock`],
//!   [`Parsed::seeds`].
//!
//! ```
//! use sal_bench::cli::Cli;
//! let cli = Cli::new("demo", "demo driver")
//!     .flag("--smoke", "CI-sized run")
//!     .opt("--seeds", "a,b,c", "one run per seed");
//! let p = cli
//!     .parse(["--smoke", "--seeds=1,2"].iter().map(|s| s.to_string()))
//!     .unwrap();
//! assert!(p.smoke());
//! assert_eq!(p.seeds().unwrap(), Some(vec![1, 2]));
//! ```

use crate::grid::parse_list;
use sal_runtime::{pool, Strategy};

/// One declared flag: `--name` (boolean when `placeholder` is `None`,
/// valued otherwise) plus its help line.
struct Spec {
    name: &'static str,
    placeholder: Option<&'static str>,
    help: &'static str,
}

/// A declarative CLI: construct with [`Cli::new`], declare flags with
/// [`Cli::flag`] / [`Cli::opt`], then [`Cli::parse_env_or_exit`] (in
/// binaries) or [`Cli::parse`] (in tests).
pub struct Cli {
    bin: &'static str,
    about: &'static str,
    specs: Vec<Spec>,
}

impl Cli {
    /// Start declaring a binary's flags. `bin` is the executable name
    /// used in usage output, `about` a one-line description.
    pub fn new(bin: &'static str, about: &'static str) -> Self {
        Cli {
            bin,
            about,
            specs: Vec::new(),
        }
    }

    /// Declare a boolean flag (present or absent), e.g. `--smoke`.
    pub fn flag(mut self, name: &'static str, help: &'static str) -> Self {
        assert!(name.starts_with("--"), "flag names start with --");
        self.specs.push(Spec {
            name,
            placeholder: None,
            help,
        });
        self
    }

    /// Declare a valued flag, e.g. `--seeds a,b,c`. Accepts both
    /// `--name value` and `--name=value` on the command line;
    /// `placeholder` is only for the usage text.
    pub fn opt(
        mut self,
        name: &'static str,
        placeholder: &'static str,
        help: &'static str,
    ) -> Self {
        assert!(name.starts_with("--"), "flag names start with --");
        self.specs.push(Spec {
            name,
            placeholder: Some(placeholder),
            help,
        });
        self
    }

    /// Declare the shared `--strategy` flag with the standard help
    /// text: guided schedule search, read back by
    /// [`Parsed::strategy`]. Declare `--seed` separately if the binary
    /// wants a non-default fuzzer seed.
    pub fn strategy_opt(self) -> Self {
        self.opt(
            "--strategy",
            "s",
            "guided schedule search: bfs | dpor | best-first | fuzz (--seed seeds the fuzzer)",
        )
    }

    /// Declare the shared `--lease` flag with the standard help text,
    /// read back by [`Parsed::lease`].
    pub fn lease_opt(self) -> Self {
        self.opt(
            "--lease",
            "k",
            "step-lease cap: 0 = unbounded, 1 = legacy per-step, k = capped \
             (default from SAL_LEASE, else 0; same results at any value)",
        )
    }

    /// The generated usage block: one summary line plus one line per
    /// declared flag.
    pub fn usage(&self) -> String {
        let mut one_line = format!("usage: {}", self.bin);
        for s in &self.specs {
            match s.placeholder {
                None => one_line.push_str(&format!(" [{}]", s.name)),
                Some(p) => one_line.push_str(&format!(" [{} <{}>]", s.name, p)),
            }
        }
        let mut out = format!("{one_line}\n{}\n\nflags:\n", self.about);
        let left: Vec<String> = self
            .specs
            .iter()
            .map(|s| match s.placeholder {
                None => s.name.to_string(),
                Some(p) => format!("{} <{}>", s.name, p),
            })
            .collect();
        let width = left.iter().map(String::len).max().unwrap_or(0);
        for (l, s) in left.iter().zip(&self.specs) {
            out.push_str(&format!("  {l:width$}  {}\n", s.help));
        }
        out.push_str(&format!("  {:width$}  print this help\n", "--help"));
        out
    }

    /// The `valid flags:` suffix appended to unknown-flag errors.
    fn valid_flags(&self) -> String {
        let mut names: Vec<&str> = self.specs.iter().map(|s| s.name).collect();
        names.push("--help");
        names.join(", ")
    }

    /// Parse an argument stream (exclusive of the binary name).
    ///
    /// # Errors
    ///
    /// On an unknown flag (the message lists every valid flag), a
    /// valued flag without a value, a value for a boolean flag
    /// (`--smoke=yes`), or a stray positional argument.
    pub fn parse(&self, args: impl Iterator<Item = String>) -> Result<Parsed, String> {
        let mut parsed = Parsed {
            set: Vec::new(),
            values: Vec::new(),
            help: false,
        };
        let mut it = args;
        while let Some(arg) = it.next() {
            if arg == "--help" || arg == "-h" {
                parsed.help = true;
                continue;
            }
            // Split --name=value once, up front.
            let (name, inline) = match arg.split_once('=') {
                Some((n, v)) => (n.to_string(), Some(v.to_string())),
                None => (arg.clone(), None),
            };
            let Some(spec) = self.specs.iter().find(|s| s.name == name) else {
                if name.starts_with('-') {
                    return Err(format!(
                        "unknown flag {name}; valid flags: {}",
                        self.valid_flags()
                    ));
                }
                return Err(format!(
                    "unexpected argument {name}; valid flags: {}",
                    self.valid_flags()
                ));
            };
            match (spec.placeholder, inline) {
                (None, None) => parsed.set.push(spec.name),
                (None, Some(_)) => {
                    return Err(format!("flag {name} takes no value"));
                }
                (Some(_), Some(v)) => parsed.values.push((spec.name, v)),
                (Some(_), None) => {
                    let v = it
                        .next()
                        .ok_or_else(|| format!("flag {name} needs a value"))?;
                    parsed.values.push((spec.name, v));
                }
            }
        }
        Ok(parsed)
    }

    /// Parse the process arguments; print usage and exit 0 on
    /// `--help`, print the error plus usage to stderr and exit 2 on a
    /// bad command line. The binaries' one-liner.
    pub fn parse_env_or_exit(&self) -> Parsed {
        match self.parse(std::env::args().skip(1)) {
            Ok(p) if p.help => {
                // `println!` panics on EPIPE (e.g. `… --help | head`);
                // help output should just stop quietly.
                use std::io::Write;
                let _ = writeln!(std::io::stdout(), "{}", self.usage());
                std::process::exit(0);
            }
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {e}\n{}", self.usage());
                std::process::exit(2);
            }
        }
    }
}

/// The result of a successful parse: which boolean flags were set,
/// which valued flags got what, and whether `--help` appeared.
#[derive(Debug)]
pub struct Parsed {
    set: Vec<&'static str>,
    values: Vec<(&'static str, String)>,
    help: bool,
}

impl Parsed {
    /// Was the boolean flag `name` present?
    pub fn is_set(&self, name: &str) -> bool {
        self.set.contains(&name)
    }

    /// Raw value of the valued flag `name` (last occurrence wins).
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Typed value of `name`, or `None` when the flag is absent.
    ///
    /// # Errors
    ///
    /// When the value fails to parse as `T`.
    pub fn get<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String>
    where
        T::Err: std::fmt::Display,
    {
        self.value(name)
            .map(|v| v.parse().map_err(|e| format!("{name}: {e}")))
            .transpose()
    }

    /// Typed value of `name`, falling back to `default` when absent.
    ///
    /// # Errors
    ///
    /// When the value fails to parse as `T`.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        Ok(self.get(name)?.unwrap_or(default))
    }

    /// Comma-separated list value of `name` (`--seeds 1,2,3`), or
    /// `None` when absent.
    ///
    /// # Errors
    ///
    /// When any element fails to parse, or the list is empty.
    pub fn list<T: std::str::FromStr>(&self, name: &str) -> Result<Option<Vec<T>>, String>
    where
        T::Err: std::fmt::Display,
    {
        self.value(name).map(|v| parse_list(name, v)).transpose()
    }

    /// Did `--help` appear? ([`Cli::parse_env_or_exit`] handles this
    /// before returning; the accessor exists for tests.)
    pub fn help_requested(&self) -> bool {
        self.help
    }

    // ---- the cross-binary vocabulary ----

    /// `--smoke`: CI-sized run.
    pub fn smoke(&self) -> bool {
        self.is_set("--smoke")
    }

    /// `--jobs N` resolved to a concrete worker count: `--jobs 0`, or
    /// the flag absent, resolves through `SAL_JOBS` / available
    /// parallelism exactly like [`crate::grid::parse_jobs_args`].
    ///
    /// # Errors
    ///
    /// When the value is not an integer.
    pub fn jobs(&self) -> Result<usize, String> {
        Ok(pool::resolve_jobs(self.get_or("--jobs", 0)?))
    }

    /// `--lock NAME`, unparsed — feed it to the lock registry, whose
    /// error already lists the valid kinds.
    pub fn lock(&self) -> Option<&str> {
        self.value("--lock")
    }

    /// `--seeds a,b,c` as integers, or `None` when absent.
    ///
    /// # Errors
    ///
    /// When any element fails to parse, or the list is empty.
    pub fn seeds(&self) -> Result<Option<Vec<u64>>, String> {
        self.list("--seeds")
    }

    /// `--strategy s` as a guided-search [`Strategy`], or `None` when
    /// absent. The fuzz strategy picks up `--seed` (default 1) so
    /// every binary seeds it the same way.
    ///
    /// # Errors
    ///
    /// When the strategy name or the seed fails to parse.
    pub fn strategy(&self) -> Result<Option<Strategy>, String> {
        match self.get::<Strategy>("--strategy")? {
            Some(Strategy::Fuzz { .. }) => Ok(Some(Strategy::Fuzz {
                seed: self.get_or("--seed", 1)?,
            })),
            s => Ok(s),
        }
    }

    /// `--lease k`, defaulting through `SAL_LEASE` exactly like
    /// [`sal_runtime::default_lease`] — so an absent flag and the
    /// environment agree across every binary.
    ///
    /// # Errors
    ///
    /// When the value is not an integer.
    pub fn lease(&self) -> Result<u64, String> {
        self.get_or("--lease", sal_runtime::default_lease())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> impl Iterator<Item = String> {
        v.iter()
            .map(|s| (*s).to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    fn demo() -> Cli {
        Cli::new("demo", "demo driver")
            .flag("--smoke", "CI-sized run")
            .opt("--seeds", "a,b,c", "one run per seed")
            .opt("--jobs", "k", "worker threads (0 = auto)")
            .opt("--lock", "kind", "lock under test")
    }

    #[test]
    fn both_value_forms_parse() {
        let p = demo().parse(args(&["--seeds", "1,2", "--smoke"])).unwrap();
        assert!(p.smoke());
        assert_eq!(p.seeds().unwrap(), Some(vec![1, 2]));
        let p = demo().parse(args(&["--seeds=3,4"])).unwrap();
        assert_eq!(p.seeds().unwrap(), Some(vec![3, 4]));
        assert!(!p.smoke());
    }

    #[test]
    fn unknown_flag_error_lists_valid_flags() {
        let e = demo().parse(args(&["--bogus"])).unwrap_err();
        assert!(e.contains("unknown flag --bogus"), "{e}");
        for f in ["--smoke", "--seeds", "--jobs", "--lock", "--help"] {
            assert!(e.contains(f), "error should list {f}: {e}");
        }
    }

    #[test]
    fn missing_and_malformed_values_fail_loudly() {
        assert!(demo().parse(args(&["--seeds"])).is_err());
        assert!(demo().parse(args(&["--smoke=yes"])).is_err());
        let p = demo().parse(args(&["--seeds", "1,x"])).unwrap();
        assert!(p.seeds().is_err(), "list elements must parse");
        assert!(demo().parse(args(&["stray"])).is_err());
    }

    #[test]
    fn help_is_collected_not_fatal_in_pure_parse() {
        let p = demo().parse(args(&["-h"])).unwrap();
        assert!(p.help_requested());
        let u = demo().usage();
        assert!(u.contains("usage: demo"), "{u}");
        assert!(u.contains("--seeds <a,b,c>"), "{u}");
        assert!(u.contains("--help"), "{u}");
    }

    #[test]
    fn jobs_resolves_like_parse_jobs_args() {
        let p = demo().parse(args(&["--jobs", "3"])).unwrap();
        assert_eq!(p.jobs().unwrap(), 3);
        let p = demo().parse(args(&[])).unwrap();
        assert!(p.jobs().unwrap() >= 1, "absent flag resolves to auto");
        let p = demo().parse(args(&["--jobs", "x"])).unwrap();
        assert!(p.jobs().is_err());
    }

    #[test]
    fn shared_strategy_and_lease_vocabulary() {
        let shared = || {
            Cli::new("demo", "demo driver")
                .strategy_opt()
                .lease_opt()
                .opt("--seed", "u64", "fuzzer seed")
        };
        let p = shared().parse(args(&[])).unwrap();
        assert_eq!(p.strategy().unwrap(), None);
        assert_eq!(p.lease().unwrap(), sal_runtime::default_lease());
        let p = shared().parse(args(&["--strategy", "dpor"])).unwrap();
        assert_eq!(p.strategy().unwrap(), Some(Strategy::Dpor));
        let p = shared()
            .parse(args(&["--strategy=fuzz", "--seed=9", "--lease", "4"]))
            .unwrap();
        assert_eq!(p.strategy().unwrap(), Some(Strategy::Fuzz { seed: 9 }));
        assert_eq!(p.lease().unwrap(), 4);
        let p = shared().parse(args(&["--strategy", "bogus"])).unwrap();
        assert!(p.strategy().is_err(), "unknown strategy must fail loudly");
    }

    #[test]
    fn last_occurrence_of_a_valued_flag_wins() {
        let p = demo()
            .parse(args(&["--lock", "mcs", "--lock", "tas"]))
            .unwrap();
        assert_eq!(p.lock(), Some("tas"));
        assert_eq!(p.get::<String>("--lock").unwrap().as_deref(), Some("tas"));
    }
}
