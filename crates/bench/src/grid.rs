//! Parallel grid evaluation for the experiment drivers.
//!
//! Every table and figure in this crate is a grid of *mutually
//! independent* cells — (lock × N × seed) configurations that each
//! build their own `CcMemory` and share nothing. [`par_grid`] fans the
//! cells out over the work-stealing pool in `sal-runtime` and gathers
//! results **by cell index**, so the driver consumes them in exactly
//! the order a serial loop would have produced: tables, JSON exports
//! and absorbed JSONL event logs come out byte-identical whatever the
//! worker count.
//!
//! The module also owns the experiment binaries' shared `--jobs N`
//! knob ([`parse_jobs_args`]): `--jobs 0` (or the flag absent with no
//! `SAL_JOBS` override) means available parallelism.

use sal_runtime::pool;

/// Evaluate `eval` over every cell of `cells` on `jobs` workers (`0` =
/// auto) and return the results in cell order. Cells must be
/// independent: each one builds its own memory/lock/sinks. With
/// `jobs == 1` this is exactly the serial loop (same code path, no
/// threads), which is what makes the parallel output provably
/// comparable.
pub fn par_grid<C, T, F>(jobs: usize, cells: &[C], eval: F) -> Vec<T>
where
    C: Sync,
    T: Send,
    F: Fn(&C) -> T + Sync,
{
    pool::par_map_indexed(jobs, cells.len(), |i| eval(&cells[i]))
}

/// Extract a `--jobs N` flag from a CLI argument stream. Returns the
/// remaining (positional) arguments and the *resolved* worker count:
/// `--jobs 0`, or no flag at all, resolves through `SAL_JOBS` /
/// available parallelism ([`pool::resolve_jobs`]).
///
/// # Errors
///
/// When `--jobs` is present without a value or with a non-integer one.
pub fn parse_jobs_args(args: impl Iterator<Item = String>) -> Result<(Vec<String>, usize), String> {
    let mut positional = Vec::new();
    let mut jobs = 0usize;
    let mut it = args;
    while let Some(arg) = it.next() {
        if arg == "--jobs" {
            let v = it.next().ok_or("flag --jobs needs a value")?;
            jobs = v.parse().map_err(|e| format!("--jobs: {e}"))?;
        } else if let Some(v) = arg.strip_prefix("--jobs=") {
            jobs = v.parse().map_err(|e| format!("--jobs: {e}"))?;
        } else {
            positional.push(arg);
        }
    }
    Ok((positional, pool::resolve_jobs(jobs)))
}

/// Parse a comma-separated list flag value (`--seeds 1,2,3`,
/// `--workers 1,2,4,8`) into integers.
///
/// # Errors
///
/// When any element fails to parse, or the list is empty.
pub fn parse_list<T: std::str::FromStr>(flag: &str, value: &str) -> Result<Vec<T>, String>
where
    T::Err: std::fmt::Display,
{
    let out: Vec<T> = value
        .split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| s.trim().parse::<T>().map_err(|e| format!("{flag}: {e}")))
        .collect::<Result<_, _>>()?;
    if out.is_empty() {
        return Err(format!("{flag}: empty list"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_grid_preserves_cell_order() {
        let cells: Vec<usize> = (0..50).collect();
        for jobs in [1, 4] {
            let out = par_grid(jobs, &cells, |&c| c * 3);
            assert_eq!(out, cells.iter().map(|c| c * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn jobs_flag_is_extracted_anywhere() {
        let args = |v: &[&str]| {
            v.iter()
                .map(|s| (*s).to_string())
                .collect::<Vec<_>>()
                .into_iter()
        };
        let (pos, jobs) = parse_jobs_args(args(&["all", "--jobs", "3"])).unwrap();
        assert_eq!(pos, vec!["all"]);
        assert_eq!(jobs, 3);
        let (pos, jobs) = parse_jobs_args(args(&["--jobs=7", "worst-case"])).unwrap();
        assert_eq!(pos, vec!["worst-case"]);
        assert_eq!(jobs, 7);
        let (_, jobs) = parse_jobs_args(args(&["all"])).unwrap();
        assert!(jobs >= 1, "absent flag resolves to auto");
        assert!(parse_jobs_args(args(&["--jobs"])).is_err());
        assert!(parse_jobs_args(args(&["--jobs", "x"])).is_err());
    }

    #[test]
    fn lists_parse_or_fail_loudly() {
        assert_eq!(
            parse_list::<usize>("--workers", "1, 2,4,8").unwrap(),
            vec![1, 2, 4, 8]
        );
        assert!(parse_list::<usize>("--workers", "1,x").is_err());
        assert!(parse_list::<usize>("--workers", "").is_err());
    }
}
