//! # sal-bench — experiment machinery regenerating the paper's tables & figures
//!
//! The paper's evaluation artifacts are **Table 1** (complexity / fairness
//! comparison of abortable locks) and **Figures 1–5** (the algorithms and
//! their cost behaviours). This crate measures all of them on the exact
//! CC cost model via `sal-memory`/`sal-runtime`:
//!
//! * `cargo run -p sal-bench --bin table1 -- <worst-case|no-abort|adaptive|space|fairness|all>`
//! * `cargo run -p sal-bench --bin figures -- <fig2|fig4|fig5|logw|all>`
//! * `cargo bench -p sal-bench` — wall-clock sanity benches of the real
//!   `AbortableMutex` against classic locks.
//!
//! The library half provides the lock registry (build any lock in the
//! workspace by kind), the workload builders, and plain-text/JSON result
//! rendering. `EXPERIMENTS.md` at the repo root records paper-vs-measured
//! for every experiment id (E1–E10, W1) defined in `DESIGN.md`.

#![warn(missing_docs)]

pub mod cli;
pub mod grid;
pub mod registry;
pub mod report;
pub mod workloads;

pub use cli::Cli;
pub use grid::{par_grid, parse_jobs_args};
pub use registry::{build_lock, LockKind};
pub use report::{export_events, save_json, save_json_with_log, RmrSummary, Table};
pub use workloads::{
    adaptive_sweep, adaptive_sweep_probed, amortized_companion, amortized_sweep, no_abort_sweep,
    no_abort_sweep_probed, space_row, worst_case_sweep, worst_case_sweep_probed, AmortizedPoint,
    ExploreCell, SweepPoint,
};
