//! Build any lock in the workspace by kind, with its memory.

use sal_baselines::{LeeLock, McsLock, ScottLock, TasLock, TicketLock, TournamentLock};
use sal_core::long_lived::{BoundedLongLivedLock, JjLock, SimpleLongLivedLock};
use sal_core::one_shot::{DsmOneShotLock, OneShotLock};
use sal_core::tree::Ascent;
use sal_core::AbortableLock;
use sal_memory::{CcMemory, MemoryBuilder, WordId};

/// Every lock the experiments can drive. `b` is the tree branching
/// factor (the paper's `W`) where applicable.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum LockKind {
    /// The paper's one-shot lock (Figure 1) with the adaptive ascent.
    OneShot {
        /// Tree branching factor.
        b: usize,
    },
    /// The one-shot lock with the non-adaptive ascent of Algorithm 4.1.
    OneShotPlain {
        /// Tree branching factor.
        b: usize,
    },
    /// The DSM variant of the one-shot lock (§3).
    OneShotDsm {
        /// Tree branching factor.
        b: usize,
    },
    /// Figure-5 transformation over never-reused pools.
    LongLivedSimple {
        /// Tree branching factor.
        b: usize,
    },
    /// The final algorithm: §6.2 bounded-space long-lived lock.
    LongLived {
        /// Tree branching factor.
        b: usize,
    },
    /// MCS queue lock (classic, not abortable).
    Mcs,
    /// Ticket lock (classic, not abortable).
    Ticket,
    /// Test-and-test-and-set (abortable, unbounded RMR).
    Tas,
    /// Abortable Peterson tournament — the `O(log N)` Jayanti-row shape.
    Tournament,
    /// Scott-style abortable CLH queue lock.
    Scott,
    /// Lee-style F&A+SWAP abortable array lock.
    Lee,
    /// Jayanti–Jayanti-style constant-amortized-RMR abortable queue
    /// lock (abandon-on-abort + promotion walk).
    JjAmortized,
}

impl LockKind {
    /// The CLI names [`parse`](LockKind::parse) accepts, one per kind.
    pub const NAMES: &'static [&'static str] = &[
        "one-shot",
        "one-shot-plain",
        "one-shot-dsm",
        "long-lived",
        "long-lived-simple",
        "mcs",
        "ticket",
        "tas",
        "tournament",
        "scott",
        "lee",
        "jj-amortized",
    ];

    /// Short label for tables.
    pub fn label(self) -> String {
        match self {
            LockKind::OneShot { b } => format!("one-shot(B={b})"),
            LockKind::OneShotPlain { b } => format!("one-shot-plain(B={b})"),
            LockKind::OneShotDsm { b } => format!("one-shot-dsm(B={b})"),
            LockKind::LongLivedSimple { b } => format!("long-lived-simple(B={b})"),
            LockKind::LongLived { b } => format!("long-lived(B={b})"),
            LockKind::Mcs => "mcs".into(),
            LockKind::Ticket => "ticket".into(),
            LockKind::Tas => "tas".into(),
            LockKind::Tournament => "tournament".into(),
            LockKind::Scott => "scott".into(),
            LockKind::Lee => "lee".into(),
            LockKind::JjAmortized => "jj-amortized".into(),
        }
    }

    /// Whether the kind honours abort signals.
    pub fn abortable(self) -> bool {
        !matches!(self, LockKind::Mcs | LockKind::Ticket)
    }

    /// Whether each process may enter at most once.
    pub fn one_shot(self) -> bool {
        matches!(
            self,
            LockKind::OneShot { .. } | LockKind::OneShotPlain { .. } | LockKind::OneShotDsm { .. }
        )
    }

    /// Parse a CLI lock name (`one-shot`, `long-lived`, `mcs`, …) at
    /// branching factor `b` for the tree-based kinds.
    ///
    /// # Errors
    ///
    /// When the name matches no known lock kind; the message lists the
    /// valid names.
    pub fn parse(name: &str, b: usize) -> Result<LockKind, String> {
        Ok(match name {
            "one-shot" => LockKind::OneShot { b },
            "one-shot-plain" => LockKind::OneShotPlain { b },
            "one-shot-dsm" => LockKind::OneShotDsm { b },
            "long-lived" => LockKind::LongLived { b },
            "long-lived-simple" => LockKind::LongLivedSimple { b },
            "mcs" => LockKind::Mcs,
            "ticket" => LockKind::Ticket,
            "tas" => LockKind::Tas,
            "tournament" => LockKind::Tournament,
            "scott" => LockKind::Scott,
            "lee" => LockKind::Lee,
            "jj-amortized" => LockKind::JjAmortized,
            other => {
                return Err(format!(
                    "unknown lock {other}; valid kinds: {}",
                    LockKind::NAMES.join(", ")
                ))
            }
        })
    }

    /// Re-target the tree branching factor of the tree-based kinds
    /// (no-op for the others). Lets [`FromStr`](std::str::FromStr)
    /// parsing — which has no way to receive `b` — compose with a CLI
    /// `--b` flag: `name.parse::<LockKind>()?.with_branching(b)`.
    pub fn with_branching(self, b: usize) -> LockKind {
        match self {
            LockKind::OneShot { .. } => LockKind::OneShot { b },
            LockKind::OneShotPlain { .. } => LockKind::OneShotPlain { b },
            LockKind::OneShotDsm { .. } => LockKind::OneShotDsm { b },
            LockKind::LongLivedSimple { .. } => LockKind::LongLivedSimple { b },
            LockKind::LongLived { .. } => LockKind::LongLived { b },
            other => other,
        }
    }

    /// Every registered kind, in [`NAMES`](Self::NAMES) order, at
    /// branching factor `b` for the tree-based kinds — the single
    /// registry-driven source for "run this over everything" loops
    /// (`table1`'s amortized column, `figures`, conformance grids).
    pub fn all(b: usize) -> Vec<LockKind> {
        Self::NAMES
            .iter()
            .map(|name| LockKind::parse(name, b).expect("every NAMES entry parses"))
            .collect()
    }

    /// Whether the kind is a row of the Table-1 comparison: the
    /// abortable contenders, minus the ablation/model variants
    /// (`one-shot-plain`, `one-shot-dsm`, the unbounded-pool
    /// `long-lived-simple`) and the unbounded-RMR `tas` strawman.
    /// New kinds appear in `table1`/`figures` automatically unless
    /// they opt out here.
    pub fn in_table1(self) -> bool {
        self.abortable()
            && !matches!(
                self,
                LockKind::OneShotPlain { .. }
                    | LockKind::OneShotDsm { .. }
                    | LockKind::LongLivedSimple { .. }
                    | LockKind::Tas
            )
    }

    /// The abortable contenders of Table 1 (rows of the comparison), at
    /// a given branching factor for our algorithms — derived from
    /// [`NAMES`](Self::NAMES) via [`in_table1`](Self::in_table1), never
    /// hand-listed.
    pub fn table1_rows(b: usize) -> Vec<LockKind> {
        Self::all(b).into_iter().filter(|k| k.in_table1()).collect()
    }
}

/// The single CLI parse path shared by `sweep`, `explore` and
/// `hwscale`: delegates to [`LockKind::parse`] at the paper's default
/// branching factor (`W = 16`); apply a CLI-supplied factor afterwards
/// with [`LockKind::with_branching`]. The error lists
/// [`LockKind::NAMES`].
impl std::str::FromStr for LockKind {
    type Err = String;

    fn from_str(name: &str) -> Result<LockKind, String> {
        LockKind::parse(name, 16)
    }
}

/// A built lock plus the memory and scratch word the harness needs.
pub struct BuiltLock {
    /// The lock, behind the uniform [`AbortableLock`] surface.
    pub lock: Box<dyn AbortableLock>,
    /// CC memory holding the lock's words.
    pub mem: CcMemory,
    /// Scratch word the CS body hammers.
    pub cs_word: WordId,
    /// Shared words the lock's layout occupies (Table-1 space column).
    pub words: usize,
}

impl std::fmt::Debug for BuiltLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuiltLock")
            .field("words", &self.words)
            .finish()
    }
}

/// Build `kind` for `n` processes, budgeting for `attempts` total enter
/// attempts (relevant for the arena-based baselines and the simple
/// long-lived lock).
pub fn build_lock(kind: LockKind, n: usize, attempts: usize) -> BuiltLock {
    let mut b = MemoryBuilder::new();
    let lock: Box<dyn AbortableLock> = match kind {
        LockKind::OneShot { b: w } => Box::new(OneShotLock::layout(&mut b, n, w)),
        LockKind::OneShotPlain { b: w } => {
            Box::new(OneShotLock::layout_with(&mut b, n, w, Ascent::Plain))
        }
        LockKind::OneShotDsm { b: w } => Box::new(DsmOneShotLock::layout(&mut b, n, w)),
        LockKind::LongLivedSimple { b: w } => {
            Box::new(SimpleLongLivedLock::layout(&mut b, n, w, attempts + 1))
        }
        LockKind::LongLived { b: w } => Box::new(BoundedLongLivedLock::layout(&mut b, n, w)),
        LockKind::Mcs => Box::new(McsLock::layout(&mut b, n)),
        LockKind::Ticket => Box::new(TicketLock::layout(&mut b)),
        LockKind::Tas => Box::new(TasLock::layout(&mut b)),
        LockKind::Tournament => Box::new(TournamentLock::layout(&mut b, n)),
        LockKind::Scott => Box::new(ScottLock::layout(&mut b, n, attempts + 1)),
        LockKind::Lee => Box::new(LeeLock::layout(&mut b, n, attempts + 1)),
        LockKind::JjAmortized => Box::new(JjLock::layout(&mut b, n)),
    };
    let words = b.words_allocated();
    let cs_word = b.alloc(0);
    BuiltLock {
        lock,
        mem: b.build_cc(n),
        cs_word,
        words,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sal_memory::NeverAbort;

    #[test]
    fn every_kind_builds_and_takes_a_passage() {
        // Registry-driven: every NAMES entry must build and run.
        for kind in LockKind::all(4) {
            let built = build_lock(kind, 4, 16);
            let outcome = built
                .lock
                .enter(&built.mem, 0, &NeverAbort, &sal_obs::NoProbe);
            assert!(outcome.entered(), "{kind:?}");
            built.lock.exit(&built.mem, 0, &sal_obs::NoProbe);
            assert!(built.words > 0);
            assert!(!kind.label().is_empty());
        }
    }

    #[test]
    fn metadata_matches_kind() {
        assert!(!LockKind::Mcs.abortable());
        assert!(!LockKind::Ticket.abortable());
        assert!(LockKind::Scott.abortable());
        assert!(LockKind::JjAmortized.abortable());
        assert!(!LockKind::JjAmortized.one_shot());
        assert!(LockKind::OneShot { b: 2 }.one_shot());
        assert!(!LockKind::LongLived { b: 2 }.one_shot());
        assert_eq!(LockKind::all(8).len(), LockKind::NAMES.len());
        // Table-1 rows are registry-driven: the abortable contenders,
        // in NAMES order, with the ablation variants and tas opted out.
        let rows = LockKind::table1_rows(8);
        assert_eq!(
            rows,
            vec![
                LockKind::OneShot { b: 8 },
                LockKind::LongLived { b: 8 },
                LockKind::Tournament,
                LockKind::Scott,
                LockKind::Lee,
                LockKind::JjAmortized,
            ]
        );
        assert!(rows.iter().all(|k| k.abortable() && k.in_table1()));
    }

    #[test]
    fn parse_covers_every_kind() {
        for (name, want) in [
            ("one-shot", LockKind::OneShot { b: 8 }),
            ("one-shot-plain", LockKind::OneShotPlain { b: 8 }),
            ("one-shot-dsm", LockKind::OneShotDsm { b: 8 }),
            ("long-lived", LockKind::LongLived { b: 8 }),
            ("long-lived-simple", LockKind::LongLivedSimple { b: 8 }),
            ("mcs", LockKind::Mcs),
            ("ticket", LockKind::Ticket),
            ("tas", LockKind::Tas),
            ("tournament", LockKind::Tournament),
            ("scott", LockKind::Scott),
            ("lee", LockKind::Lee),
            ("jj-amortized", LockKind::JjAmortized),
        ] {
            assert_eq!(LockKind::parse(name, 8).unwrap(), want);
        }
        assert!(LockKind::parse("bogus", 8).is_err());
    }

    #[test]
    fn fromstr_shares_the_parse_path_and_rebranches() {
        let kind: LockKind = "long-lived".parse().unwrap();
        assert_eq!(kind, LockKind::LongLived { b: 16 });
        assert_eq!(kind.with_branching(4), LockKind::LongLived { b: 4 });
        // Non-tree kinds ignore the branching factor.
        let mcs: LockKind = "mcs".parse().unwrap();
        assert_eq!(mcs.with_branching(4), LockKind::Mcs);
        // Every NAMES entry round-trips through FromStr, and the error
        // is the same NAMES-listing message parse produces.
        for name in LockKind::NAMES {
            assert!(name.parse::<LockKind>().is_ok(), "{name}");
        }
        assert_eq!(
            "bogus".parse::<LockKind>().unwrap_err(),
            LockKind::parse("bogus", 16).unwrap_err()
        );
    }

    #[test]
    fn parse_error_lists_every_valid_kind() {
        let err = LockKind::parse("bogus", 8).unwrap_err();
        assert!(err.contains("bogus"), "{err}");
        for name in LockKind::NAMES {
            assert!(err.contains(name), "error should list {name:?}: {err}");
        }
        // NAMES and parse agree: every listed name parses.
        for name in LockKind::NAMES {
            assert!(LockKind::parse(name, 8).is_ok(), "{name}");
        }
    }
}
