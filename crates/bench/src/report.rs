//! Plain-text table rendering and JSON result persistence.

use sal_obs::{Json, ToJson};
use std::fmt::Write as _;
use std::path::Path;

/// A simple aligned-text table (the bench binaries print the same rows
/// the paper's Table 1 reports, with measured numbers).
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column names.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(s, "{:<w$}  ", c, w = widths[i]);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Summary statistics over a set of per-passage RMR counts: the
/// distributional view the sweep CLI prints alongside the max.
#[derive(Debug, Clone)]
pub struct RmrSummary {
    /// Number of samples.
    pub count: usize,
    /// Minimum.
    pub min: u64,
    /// Median (lower of the middle pair for even counts).
    pub p50: u64,
    /// 95th percentile (nearest-rank).
    pub p95: u64,
    /// Maximum.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl RmrSummary {
    /// Summarize a set of counts; `None` if empty.
    pub fn of(samples: &[u64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let rank = |q: f64| -> u64 {
            let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
            sorted[idx]
        };
        Some(RmrSummary {
            count: sorted.len(),
            min: sorted[0],
            p50: rank(0.50),
            p95: rank(0.95),
            max: *sorted.last().unwrap(),
            mean: sorted.iter().sum::<u64>() as f64 / sorted.len() as f64,
        })
    }

    /// One-line rendering, e.g. `n=24 min=6 p50=8 p95=11 max=12 mean=8.3`.
    pub fn render(&self) -> String {
        format!(
            "n={} min={} p50={} p95={} max={} mean={:.1}",
            self.count, self.min, self.p50, self.p95, self.max, self.mean
        )
    }
}

impl ToJson for RmrSummary {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", Json::Int(self.count as i64)),
            ("min", self.min.to_json()),
            ("p50", self.p50.to_json()),
            ("p95", self.p95.to_json()),
            ("max", self.max.to_json()),
            ("mean", self.mean.to_json()),
        ])
    }
}

/// Persist any [`ToJson`] experiment result as JSON under
/// `target/experiments/<name>.json` (best-effort; failures are printed,
/// not fatal — the text output is the primary artifact).
pub fn save_json<T: ToJson + ?Sized>(name: &str, value: &T) {
    let dir = Path::new("target/experiments");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("(could not create {dir:?}: {e})");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Err(e) = std::fs::write(&path, value.to_json().render()) {
        eprintln!("(could not write {path:?}: {e})");
    } else {
        println!("(saved {})", path.display());
    }
}

/// [`save_json`], wrapping the result with the event-log truncation
/// count of the run that produced it: the artifact becomes
/// `{"dropped_events": N, "results": <value>}`, so a bounded log that
/// overflowed is visible in the JSON itself, not only on the console.
/// `N == 0` is written too — downstream tooling can rely on the field.
pub fn save_json_with_log<T: ToJson + ?Sized>(name: &str, value: &T, log: &sal_obs::EventLog) {
    let wrapped = Json::obj(vec![
        ("dropped_events", log.dropped().to_json()),
        ("results", value.to_json()),
    ]);
    save_json(name, &wrapped);
}

/// Export an [`EventLog`](sal_obs::EventLog) as JSONL under
/// `target/experiments/<name>.jsonl` and verify the file parses back to
/// the same events — the replay-schema contract the exports promise.
pub fn export_events(log: &sal_obs::EventLog, name: &str) {
    match log.export_jsonl(name) {
        Ok(path) => {
            let round_trip = std::fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|text| sal_obs::EventLog::parse_jsonl(&text));
            match round_trip {
                Ok(parsed) if parsed == log.events() => println!(
                    "(saved {} — {} events, {} dropped, replay round-trip ok)",
                    path.display(),
                    parsed.len(),
                    log.dropped()
                ),
                Ok(_) => eprintln!("(export {name}: replay round-trip mismatch)"),
                Err(e) => eprintln!("(export {name}: replay parse failed: {e})"),
            }
        }
        Err(e) => eprintln!("(could not export {name}: {e})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("demo", &["lock", "N", "rmrs"]);
        t.row(vec!["mcs".into(), "8".into(), "5".into()]);
        t.row(vec!["one-shot(B=16)".into(), "128".into(), "7".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("one-shot(B=16)"));
        // Title, header, separator and both rows present.
        assert_eq!(s.trim_start().lines().count(), 5);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_rows_are_rejected() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn summary_percentiles_are_nearest_rank() {
        let s = RmrSummary::of(&[5, 1, 3, 2, 4]).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1);
        assert_eq!(s.p50, 3);
        assert_eq!(s.p95, 5);
        assert_eq!(s.max, 5);
        assert!((s.mean - 3.0).abs() < 1e-9);
        assert!(s.render().contains("p50=3"));
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert!(RmrSummary::of(&[]).is_none());
    }

    #[test]
    fn summary_of_singleton() {
        let s = RmrSummary::of(&[7]).unwrap();
        assert_eq!((s.min, s.p50, s.p95, s.max), (7, 7, 7, 7));
    }
}
