//! The workload builders behind every Table-1 column.

use crate::registry::{build_lock, LockKind};
use sal_memory::Layered;
use sal_obs::{Json, NoProbe, Probe, ToJson};
use sal_runtime::{
    run_lock, run_lock_probed, run_one_shot, run_one_shot_probed, ForcedSchedule, GuidedOutcome,
    OpTraceSink, ProcPlan, RandomSchedule, SimError, WorkloadSpec,
};

/// One measured point of a sweep (a lock at one `(N, A)` configuration).
///
/// Every RMR figure comes from the run's [`sal_obs::PassageStats`] sink —
/// the sweep layer reads the probe, never the raw memory counters.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Lock label.
    pub lock: String,
    /// Number of processes.
    pub n: usize,
    /// Number of processes playing the aborter role.
    pub aborters: usize,
    /// Maximum RMRs over entered (complete) passages.
    pub max_entered_rmrs: u64,
    /// Mean RMRs over entered passages.
    pub mean_entered_rmrs: f64,
    /// Maximum RMRs over aborted attempts.
    pub max_aborted_rmrs: u64,
    /// 99th-percentile RMRs over entered passages.
    pub p99_entered_rmrs: u64,
    /// Total RMRs over all passages divided by total passages.
    pub amortized_rmrs: f64,
    /// Total shared-memory steps of the run.
    pub steps: u64,
    /// Whether mutual exclusion held (it must).
    pub mutex_ok: bool,
    /// Whether FCFS held (checked only for one-shot runs).
    pub fcfs_ok: Option<bool>,
}

impl ToJson for SweepPoint {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("lock", self.lock.to_json()),
            ("n", Json::Int(self.n as i64)),
            ("aborters", Json::Int(self.aborters as i64)),
            ("max_entered_rmrs", self.max_entered_rmrs.to_json()),
            ("mean_entered_rmrs", self.mean_entered_rmrs.to_json()),
            ("max_aborted_rmrs", self.max_aborted_rmrs.to_json()),
            ("p99_entered_rmrs", self.p99_entered_rmrs.to_json()),
            ("amortized_rmrs", self.amortized_rmrs.to_json()),
            ("steps", self.steps.to_json()),
            ("mutex_ok", self.mutex_ok.to_json()),
            ("fcfs_ok", self.fcfs_ok.to_json()),
        ])
    }
}

fn run_point(
    kind: LockKind,
    n: usize,
    plans: Vec<ProcPlan>,
    seed: u64,
    probe: impl Probe + 'static,
) -> Result<SweepPoint, SimError> {
    let attempts: usize = plans.iter().map(|p| p.passages).sum();
    let built = build_lock(kind, n, attempts);
    let spec = WorkloadSpec {
        plans,
        cs_ops: 2,
        max_steps: 60_000_000,
        lease: sal_runtime::default_lease(),
    };
    let aborters = spec
        .plans
        .iter()
        .filter(|p| !matches!(p.role, sal_runtime::Role::Normal))
        .count();
    let report = if kind.one_shot() {
        run_one_shot_probed(
            &*built.lock,
            &built.mem,
            built.cs_word,
            &spec,
            Box::new(RandomSchedule::seeded(seed)),
            probe,
        )?
    } else {
        run_lock_probed(
            &*built.lock,
            &built.mem,
            built.cs_word,
            &spec,
            Box::new(RandomSchedule::seeded(seed)),
            probe,
        )?
    };
    let summary = report.stats.summary();
    Ok(SweepPoint {
        lock: kind.label(),
        n,
        aborters,
        max_entered_rmrs: summary.max_entered_rmrs,
        mean_entered_rmrs: summary.mean_entered_rmrs,
        max_aborted_rmrs: summary.max_aborted_rmrs,
        p99_entered_rmrs: summary.p99_entered_rmrs,
        amortized_rmrs: summary.amortized_rmrs,
        steps: report.steps,
        mutex_ok: report.mutex_check.is_ok(),
        fcfs_ok: if kind.one_shot() {
            Some(report.fcfs_check.is_ok())
        } else {
            None
        },
    })
}

/// Table 1, "Worst-case" column: one passage per process; all but two
/// processes abort while queued, so the surviving handoffs must skip the
/// whole abandoned crowd. The abort deadline scales with `n` so aborters
/// have taken their queue positions before giving up.
pub fn worst_case_sweep(kind: LockKind, n: usize, seed: u64) -> Result<SweepPoint, SimError> {
    worst_case_sweep_probed(kind, n, seed, NoProbe)
}

/// [`worst_case_sweep`] with an extra probe sink attached to the run
/// (e.g. a clone of an [`sal_obs::EventLog`] for JSONL export).
pub fn worst_case_sweep_probed(
    kind: LockKind,
    n: usize,
    seed: u64,
    probe: impl Probe + 'static,
) -> Result<SweepPoint, SimError> {
    assert!(n >= 2);
    let wait = 8 * n as u64;
    let mut plans = vec![ProcPlan::normal(1)];
    plans.extend(vec![ProcPlan::aborter(1, wait); n - 2]);
    plans.push(ProcPlan::normal(1));
    run_point(kind, n, plans, seed, probe)
}

/// Table 1, "No aborts" column (and the paper's headline `O(1)` claim,
/// E10): every process completes `passages` clean passages.
pub fn no_abort_sweep(
    kind: LockKind,
    n: usize,
    passages: usize,
    seed: u64,
) -> Result<SweepPoint, SimError> {
    no_abort_sweep_probed(kind, n, passages, seed, NoProbe)
}

/// [`no_abort_sweep`] with an extra probe sink attached to the run.
pub fn no_abort_sweep_probed(
    kind: LockKind,
    n: usize,
    passages: usize,
    seed: u64,
    probe: impl Probe + 'static,
) -> Result<SweepPoint, SimError> {
    run_point(kind, n, vec![ProcPlan::normal(passages); n], seed, probe)
}

/// Table 1, "Adaptive bound" column: fixed `n`, exactly `a` aborters.
/// The completing passages' cost should track `a`, not `n`.
pub fn adaptive_sweep(
    kind: LockKind,
    n: usize,
    a: usize,
    seed: u64,
) -> Result<SweepPoint, SimError> {
    adaptive_sweep_probed(kind, n, a, seed, NoProbe)
}

/// [`adaptive_sweep`] with an extra probe sink attached to the run.
pub fn adaptive_sweep_probed(
    kind: LockKind,
    n: usize,
    a: usize,
    seed: u64,
    probe: impl Probe + 'static,
) -> Result<SweepPoint, SimError> {
    assert!(a + 2 <= n, "need at least two normal processes");
    let wait = 8 * n as u64;
    let mut plans = vec![ProcPlan::normal(1)];
    plans.extend(vec![ProcPlan::aborter(1, wait); a]);
    plans.extend(vec![ProcPlan::normal(1); n - 1 - a]);
    run_point(kind, n, plans, seed, probe)
}

/// Table 1, "Space" column: shared words the layout allocates for `n`
/// processes (and `attempts` total attempts, for the arena-based locks).
pub fn space_row(kind: LockKind, n: usize, attempts: usize) -> usize {
    build_lock(kind, n, attempts).words
}

/// One guided-exploration configuration: a registry lock plus a
/// deterministic workload, runnable under any forced schedule.
///
/// This is the bridge between the lock registry and
/// [`sal_runtime::explore_guided`]: [`guided_run`](Self::guided_run)
/// rebuilds the whole workload from scratch, drives it under the given
/// [`ForcedSchedule`], and reports the safety verdict together with the
/// guidance signals — the op trace (captured by an [`OpTraceSink`]
/// layered *under* the step gate, so it is step-aligned with the
/// schedule) and the run's max per-passage RMR count as the search
/// cost.
#[derive(Debug, Clone)]
pub struct ExploreCell {
    /// Which registry lock to build.
    pub kind: LockKind,
    /// Number of processes.
    pub n: usize,
    /// How many processes play the aborter role.
    pub aborters: usize,
    /// Aborters give up after waiting this many global steps.
    pub abort_after: u64,
    /// Passages per process (forced to 1 for one-shot locks).
    pub passages: usize,
    /// Shared ops inside each critical section.
    pub cs_ops: usize,
    /// Per-run step limit (livelock detector).
    pub max_steps: u64,
    /// Step-lease cap for the run (0 = unbounded).
    pub lease: u64,
}

impl ExploreCell {
    /// An uncontended cell: `n` normal processes, one passage each.
    #[must_use]
    pub fn new(kind: LockKind, n: usize) -> Self {
        ExploreCell {
            kind,
            n,
            aborters: 0,
            abort_after: 8 * n as u64,
            passages: 1,
            cs_ops: 2,
            max_steps: 200_000,
            lease: sal_runtime::default_lease(),
        }
    }

    /// The contended worst-case shape of [`worst_case_sweep`]: all but
    /// two processes abort while queued (deadline `8n`, long enough to
    /// take a queue position first).
    #[must_use]
    pub fn contended(kind: LockKind, n: usize) -> Self {
        assert!(n >= 2);
        ExploreCell {
            aborters: n - 2,
            ..ExploreCell::new(kind, n)
        }
    }

    /// The process plans, in [`adaptive_sweep`] order: one normal, then
    /// the aborters, then the remaining normals.
    #[must_use]
    pub fn plans(&self) -> Vec<ProcPlan> {
        assert!(self.aborters < self.n, "need at least one normal process");
        let passages = if self.kind.one_shot() {
            1
        } else {
            self.passages
        };
        let mut plans = vec![ProcPlan::normal(passages)];
        plans.extend(vec![
            ProcPlan::aborter(passages, self.abort_after);
            self.aborters
        ]);
        plans.extend(vec![ProcPlan::normal(passages); self.n - 1 - self.aborters]);
        plans
    }

    /// Total passage attempts across all plans.
    #[must_use]
    pub fn attempts(&self) -> usize {
        self.plans().iter().map(|p| p.passages).sum()
    }

    /// Execute the cell once under `policy` and judge the run: mutual
    /// exclusion, FCFS (one-shot locks only) and every attempt
    /// resolved. The returned [`GuidedOutcome`] carries the op trace
    /// and the run's max entered-passage RMRs as cost.
    #[must_use]
    pub fn guided_run(&self, policy: ForcedSchedule) -> GuidedOutcome {
        let plans = self.plans();
        let attempts: usize = plans.iter().map(|p| p.passages).sum();
        let built = build_lock(self.kind, self.n, attempts);
        let traced = Layered::over(&built.mem, OpTraceSink::new());
        let spec = WorkloadSpec {
            plans,
            cs_ops: self.cs_ops,
            max_steps: self.max_steps,
            lease: self.lease,
        };
        let report = if self.kind.one_shot() {
            run_one_shot(&*built.lock, &traced, built.cs_word, &spec, Box::new(policy))
        } else {
            run_lock(&*built.lock, &traced, built.cs_word, &spec, Box::new(policy))
        };
        // Take the trace before anything else touches the memory — the
        // sink keeps recording after the gate closes.
        let ops = traced.into_layer().take();
        let report = match report {
            Ok(r) => r,
            Err(e) => {
                return GuidedOutcome {
                    verdict: Err(e.to_string()),
                    ops,
                    cost: 0,
                }
            }
        };
        let verdict = (|| {
            report
                .mutex_check
                .as_ref()
                .map_err(|v| format!("mutual exclusion violated: {v:?}"))?;
            if self.kind.one_shot() {
                report
                    .fcfs_check
                    .as_ref()
                    .map_err(|v| format!("FCFS violated: {v:?}"))?;
            }
            let resolved: usize = report.outcomes.iter().map(|&(e, a)| e + a).sum();
            if resolved != attempts {
                return Err(format!("only {resolved}/{attempts} attempts resolved"));
            }
            Ok(())
        })();
        GuidedOutcome {
            verdict,
            ops,
            cost: report.stats.summary().max_entered_rmrs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_case_point_runs_and_is_safe() {
        let p = worst_case_sweep(LockKind::OneShot { b: 4 }, 8, 1).unwrap();
        assert!(p.mutex_ok);
        assert_eq!(p.fcfs_ok, Some(true));
        assert_eq!(p.n, 8);
        assert_eq!(p.aborters, 6);
        assert!(p.max_entered_rmrs > 0);
    }

    #[test]
    fn no_abort_point_has_no_aborted_passages() {
        let p = no_abort_sweep(LockKind::LongLived { b: 4 }, 4, 2, 3).unwrap();
        assert!(p.mutex_ok);
        assert_eq!(p.aborters, 0);
        assert_eq!(p.max_aborted_rmrs, 0);
    }

    #[test]
    fn adaptive_point_controls_aborter_count() {
        let p = adaptive_sweep(LockKind::OneShot { b: 2 }, 8, 3, 7).unwrap();
        assert_eq!(p.aborters, 3);
        assert!(p.mutex_ok);
    }

    #[test]
    fn space_rows_scale_as_documented() {
        // One-shot: O(N). Long-lived bounded: O(N²).
        let s64 = space_row(LockKind::OneShot { b: 8 }, 64, 64);
        let s128 = space_row(LockKind::OneShot { b: 8 }, 128, 128);
        assert!(s128 < s64 * 3, "one-shot space should be linear");
        let l16 = space_row(LockKind::LongLived { b: 8 }, 16, 16);
        let l32 = space_row(LockKind::LongLived { b: 8 }, 32, 32);
        assert!(
            l32 as f64 >= l16 as f64 * 2.5,
            "bounded long-lived space should be quadratic: {l16} → {l32}"
        );
    }

    #[test]
    fn baselines_run_the_same_workloads() {
        for kind in [LockKind::Scott, LockKind::Lee, LockKind::Tournament] {
            let p = worst_case_sweep(kind, 6, 2).unwrap();
            assert!(p.mutex_ok, "{kind:?}");
        }
    }
}
