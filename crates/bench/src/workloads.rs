//! The workload builders behind every Table-1 column.

use crate::registry::{build_lock, LockKind};
use sal_core::Immediate;
use sal_memory::{Layered, Mem, NeverAbort};
use sal_obs::{AmortizedStats, Json, NoProbe, PassageStats, Probe, ToJson};
use sal_runtime::{
    run_lock, run_lock_probed, run_one_shot, run_one_shot_probed, ForcedSchedule, GuidedOutcome,
    OpTraceSink, ProcPlan, RandomSchedule, SimError, WorkloadSpec,
};

/// One measured point of a sweep (a lock at one `(N, A)` configuration).
///
/// Every RMR figure comes from the run's [`sal_obs::PassageStats`] sink —
/// the sweep layer reads the probe, never the raw memory counters.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Lock label.
    pub lock: String,
    /// Number of processes.
    pub n: usize,
    /// Number of processes playing the aborter role.
    pub aborters: usize,
    /// Maximum RMRs over entered (complete) passages.
    pub max_entered_rmrs: u64,
    /// Mean RMRs over entered passages.
    pub mean_entered_rmrs: f64,
    /// Maximum RMRs over aborted attempts.
    pub max_aborted_rmrs: u64,
    /// 99th-percentile RMRs over entered passages.
    pub p99_entered_rmrs: u64,
    /// Total RMRs over all passages divided by total passages.
    pub amortized_rmrs: f64,
    /// Total shared-memory steps of the run.
    pub steps: u64,
    /// Whether mutual exclusion held (it must).
    pub mutex_ok: bool,
    /// Whether FCFS held (checked only for one-shot runs).
    pub fcfs_ok: Option<bool>,
}

impl ToJson for SweepPoint {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("lock", self.lock.to_json()),
            ("n", Json::Int(self.n as i64)),
            ("aborters", Json::Int(self.aborters as i64)),
            ("max_entered_rmrs", self.max_entered_rmrs.to_json()),
            ("mean_entered_rmrs", self.mean_entered_rmrs.to_json()),
            ("max_aborted_rmrs", self.max_aborted_rmrs.to_json()),
            ("p99_entered_rmrs", self.p99_entered_rmrs.to_json()),
            ("amortized_rmrs", self.amortized_rmrs.to_json()),
            ("steps", self.steps.to_json()),
            ("mutex_ok", self.mutex_ok.to_json()),
            ("fcfs_ok", self.fcfs_ok.to_json()),
        ])
    }
}

fn run_point(
    kind: LockKind,
    n: usize,
    plans: Vec<ProcPlan>,
    seed: u64,
    probe: impl Probe + 'static,
) -> Result<SweepPoint, SimError> {
    let attempts: usize = plans.iter().map(|p| p.passages).sum();
    let built = build_lock(kind, n, attempts);
    let spec = WorkloadSpec {
        plans,
        cs_ops: 2,
        max_steps: 60_000_000,
        lease: sal_runtime::default_lease(),
    };
    let aborters = spec
        .plans
        .iter()
        .filter(|p| !matches!(p.role, sal_runtime::Role::Normal))
        .count();
    let report = if kind.one_shot() {
        run_one_shot_probed(
            &*built.lock,
            &built.mem,
            built.cs_word,
            &spec,
            Box::new(RandomSchedule::seeded(seed)),
            probe,
        )?
    } else {
        run_lock_probed(
            &*built.lock,
            &built.mem,
            built.cs_word,
            &spec,
            Box::new(RandomSchedule::seeded(seed)),
            probe,
        )?
    };
    let summary = report.stats.summary();
    Ok(SweepPoint {
        lock: kind.label(),
        n,
        aborters,
        max_entered_rmrs: summary.max_entered_rmrs,
        mean_entered_rmrs: summary.mean_entered_rmrs,
        max_aborted_rmrs: summary.max_aborted_rmrs,
        p99_entered_rmrs: summary.p99_entered_rmrs,
        amortized_rmrs: summary.amortized_rmrs,
        steps: report.steps,
        mutex_ok: report.mutex_check.is_ok(),
        fcfs_ok: if kind.one_shot() {
            Some(report.fcfs_check.is_ok())
        } else {
            None
        },
    })
}

/// Table 1, "Worst-case" column: one passage per process; all but two
/// processes abort while queued, so the surviving handoffs must skip the
/// whole abandoned crowd. The abort deadline scales with `n` so aborters
/// have taken their queue positions before giving up.
pub fn worst_case_sweep(kind: LockKind, n: usize, seed: u64) -> Result<SweepPoint, SimError> {
    worst_case_sweep_probed(kind, n, seed, NoProbe)
}

/// [`worst_case_sweep`] with an extra probe sink attached to the run
/// (e.g. a clone of an [`sal_obs::EventLog`] for JSONL export).
pub fn worst_case_sweep_probed(
    kind: LockKind,
    n: usize,
    seed: u64,
    probe: impl Probe + 'static,
) -> Result<SweepPoint, SimError> {
    assert!(n >= 2);
    let wait = 8 * n as u64;
    let mut plans = vec![ProcPlan::normal(1)];
    plans.extend(vec![ProcPlan::aborter(1, wait); n - 2]);
    plans.push(ProcPlan::normal(1));
    run_point(kind, n, plans, seed, probe)
}

/// Table 1, "No aborts" column (and the paper's headline `O(1)` claim,
/// E10): every process completes `passages` clean passages.
pub fn no_abort_sweep(
    kind: LockKind,
    n: usize,
    passages: usize,
    seed: u64,
) -> Result<SweepPoint, SimError> {
    no_abort_sweep_probed(kind, n, passages, seed, NoProbe)
}

/// [`no_abort_sweep`] with an extra probe sink attached to the run.
pub fn no_abort_sweep_probed(
    kind: LockKind,
    n: usize,
    passages: usize,
    seed: u64,
    probe: impl Probe + 'static,
) -> Result<SweepPoint, SimError> {
    run_point(kind, n, vec![ProcPlan::normal(passages); n], seed, probe)
}

/// Table 1, "Adaptive bound" column: fixed `n`, exactly `a` aborters.
/// The completing passages' cost should track `a`, not `n`.
pub fn adaptive_sweep(
    kind: LockKind,
    n: usize,
    a: usize,
    seed: u64,
) -> Result<SweepPoint, SimError> {
    adaptive_sweep_probed(kind, n, a, seed, NoProbe)
}

/// [`adaptive_sweep`] with an extra probe sink attached to the run.
pub fn adaptive_sweep_probed(
    kind: LockKind,
    n: usize,
    a: usize,
    seed: u64,
    probe: impl Probe + 'static,
) -> Result<SweepPoint, SimError> {
    assert!(a + 2 <= n, "need at least two normal processes");
    let wait = 8 * n as u64;
    let mut plans = vec![ProcPlan::normal(1)];
    plans.extend(vec![ProcPlan::aborter(1, wait); a]);
    plans.extend(vec![ProcPlan::normal(1); n - 1 - a]);
    run_point(kind, n, plans, seed, probe)
}

/// Table 1, "Space" column: shared words the layout allocates for `n`
/// processes (and `attempts` total attempts, for the arena-based locks).
pub fn space_row(kind: LockKind, n: usize, attempts: usize) -> usize {
    build_lock(kind, n, attempts).words
}

/// One run-scoped amortized accounting cell: a lock kind at one `N`,
/// measured over several merged runs (see [`amortized_sweep`]).
#[derive(Debug, Clone)]
pub struct AmortizedPoint {
    /// Lock label.
    pub lock: String,
    /// Number of processes.
    pub n: usize,
    /// Aborters per run (half the crowd for abortable kinds).
    pub aborters: usize,
    /// Independent runs merged into the totals.
    pub rounds: usize,
    /// Max RMRs over *entered* passages — the retained worst-case
    /// column of Table 1.
    pub max_entered_rmrs: u64,
    /// The run-scoped totals: cumulative RMRs, passage/abort counts,
    /// max single-passage debt, amortized per-passage cost.
    pub stats: AmortizedStats,
    /// Whether mutual exclusion held in every run (it must).
    pub mutex_ok: bool,
    /// Whether every run's probe-side cumulative RMRs matched the
    /// memory's ground-truth counters bit-exactly (it must).
    pub accounting_ok: bool,
}

impl ToJson for AmortizedPoint {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("lock", self.lock.to_json()),
            ("n", Json::Int(self.n as i64)),
            ("aborters", Json::Int(self.aborters as i64)),
            ("rounds", Json::Int(self.rounds as i64)),
            ("max_entered_rmrs", self.max_entered_rmrs.to_json()),
            ("amortized", self.stats.to_json()),
            ("mutex_ok", self.mutex_ok.to_json()),
            ("accounting_ok", self.accounting_ok.to_json()),
        ])
    }
}

/// Table 1, "Amortized" column (M9): run-scoped accounting for any
/// kind. Each of the `rounds` runs gives every process `passages`
/// attempts (1 for one-shot kinds) with half the crowd aborting when
/// the kind is abortable — the abandonment-heavy shape under which a
/// constant-amortized lock stays flat while per-passage-bounded tree
/// locks grow with `N`. Per-run [`sal_obs::PassageStats`] sinks are
/// folded with `merge_from`, and every run's cumulative probe-side
/// RMRs are cross-checked bit-exactly against the memory's ground
/// truth ([`AmortizedPoint::accounting_ok`]).
///
/// # Errors
///
/// Propagates any [`SimError`] from the underlying runs.
pub fn amortized_sweep(
    kind: LockKind,
    n: usize,
    rounds: usize,
    passages: usize,
    seed: u64,
) -> Result<AmortizedPoint, SimError> {
    assert!(n >= 2);
    let aborters = if kind.abortable() {
        (n / 2).min(n - 2)
    } else {
        0
    };
    let per_proc = if kind.one_shot() { 1 } else { passages };
    let wait = 8 * n as u64;
    let master = PassageStats::new();
    let mut mutex_ok = true;
    let mut accounting_ok = true;
    for round in 0..rounds {
        let mut plans = vec![ProcPlan::normal(per_proc)];
        plans.extend(vec![ProcPlan::aborter(per_proc, wait); aborters]);
        plans.extend(vec![ProcPlan::normal(per_proc); n - 1 - aborters]);
        let attempts: usize = plans.iter().map(|p| p.passages).sum();
        let built = build_lock(kind, n, attempts);
        let spec = WorkloadSpec {
            plans,
            cs_ops: 2,
            max_steps: 60_000_000,
            lease: sal_runtime::default_lease(),
        };
        let schedule = Box::new(RandomSchedule::seeded(seed.wrapping_add(round as u64)));
        let report = if kind.one_shot() {
            run_one_shot(&*built.lock, &built.mem, built.cs_word, &spec, schedule)?
        } else {
            run_lock(&*built.lock, &built.mem, built.cs_word, &spec, schedule)?
        };
        mutex_ok &= report.mutex_check.is_ok();
        // Every shared-memory op of a run happens inside some passage,
        // so the run's amortized total must equal the cost model's own
        // cumulative counter exactly — not approximately.
        accounting_ok &= report.stats.amortized().total_rmrs == built.mem.total_rmrs();
        master.merge_from(&report.stats);
    }
    Ok(AmortizedPoint {
        lock: kind.label(),
        n,
        aborters,
        rounds,
        max_entered_rmrs: master.summary().max_entered_rmrs,
        stats: master.amortized(),
        mutex_ok,
        accounting_ok,
    })
}

/// CC-instrumented companion of a real-thread benchmark cell: the same
/// kind at the same thread count and abort pattern, driven by real OS
/// threads over [`CcMemory`](sal_memory::CcMemory) with a
/// [`PassageStats`] sink for `attempts_per_thread` attempts per
/// thread. RMRs do not exist on the raw hardware path, so this is
/// where a cell's run-scoped amortized cost comes from; the returned
/// flag records whether the probe-side total matched the cost model's
/// own counters bit-exactly (it must — each pid's ops run on its own
/// thread, so per-pid attribution is exact even without the
/// simulator's step gate). `hwscale` and `arenascale` both surface
/// this per cell.
#[must_use]
pub fn amortized_companion(
    kind: LockKind,
    threads: usize,
    abort_every: Option<usize>,
    attempts_per_thread: usize,
) -> (AmortizedStats, bool) {
    let built = build_lock(kind, threads, threads * attempts_per_thread);
    let stats = PassageStats::new();
    std::thread::scope(|s| {
        for p in 0..threads {
            let lock = &built.lock;
            let mem = &built.mem;
            let stats = stats.clone();
            s.spawn(move || {
                for i in 0..attempts_per_thread {
                    let want_abort = abort_every
                        .map(|k| (i + p).is_multiple_of(k))
                        .unwrap_or(false);
                    let ok = if want_abort {
                        lock.enter(mem, p, &Immediate, &stats).entered()
                    } else {
                        lock.enter(mem, p, &NeverAbort, &stats).entered()
                    };
                    if ok {
                        lock.exit(mem, p, &stats);
                    }
                }
            });
        }
    });
    let a = stats.amortized();
    let ok = a.total_rmrs == built.mem.total_rmrs();
    (a, ok)
}

/// One guided-exploration configuration: a registry lock plus a
/// deterministic workload, runnable under any forced schedule.
///
/// This is the bridge between the lock registry and
/// [`sal_runtime::explore_guided`]: [`guided_run`](Self::guided_run)
/// rebuilds the whole workload from scratch, drives it under the given
/// [`ForcedSchedule`], and reports the safety verdict together with the
/// guidance signals — the op trace (captured by an [`OpTraceSink`]
/// layered *under* the step gate, so it is step-aligned with the
/// schedule) and the run's max per-passage RMR count as the search
/// cost.
#[derive(Debug, Clone)]
pub struct ExploreCell {
    /// Which registry lock to build.
    pub kind: LockKind,
    /// Number of processes.
    pub n: usize,
    /// How many processes play the aborter role.
    pub aborters: usize,
    /// Aborters give up after waiting this many global steps.
    pub abort_after: u64,
    /// Passages per process (forced to 1 for one-shot locks).
    pub passages: usize,
    /// Shared ops inside each critical section.
    pub cs_ops: usize,
    /// Per-run step limit (livelock detector).
    pub max_steps: u64,
    /// Step-lease cap for the run (0 = unbounded).
    pub lease: u64,
}

impl ExploreCell {
    /// An uncontended cell: `n` normal processes, one passage each.
    #[must_use]
    pub fn new(kind: LockKind, n: usize) -> Self {
        ExploreCell {
            kind,
            n,
            aborters: 0,
            abort_after: 8 * n as u64,
            passages: 1,
            cs_ops: 2,
            max_steps: 200_000,
            lease: sal_runtime::default_lease(),
        }
    }

    /// The contended worst-case shape of [`worst_case_sweep`]: all but
    /// two processes abort while queued (deadline `8n`, long enough to
    /// take a queue position first).
    #[must_use]
    pub fn contended(kind: LockKind, n: usize) -> Self {
        assert!(n >= 2);
        ExploreCell {
            aborters: n - 2,
            ..ExploreCell::new(kind, n)
        }
    }

    /// The process plans, in [`adaptive_sweep`] order: one normal, then
    /// the aborters, then the remaining normals.
    #[must_use]
    pub fn plans(&self) -> Vec<ProcPlan> {
        assert!(self.aborters < self.n, "need at least one normal process");
        let passages = if self.kind.one_shot() {
            1
        } else {
            self.passages
        };
        let mut plans = vec![ProcPlan::normal(passages)];
        plans.extend(vec![
            ProcPlan::aborter(passages, self.abort_after);
            self.aborters
        ]);
        plans.extend(vec![ProcPlan::normal(passages); self.n - 1 - self.aborters]);
        plans
    }

    /// Total passage attempts across all plans.
    #[must_use]
    pub fn attempts(&self) -> usize {
        self.plans().iter().map(|p| p.passages).sum()
    }

    /// Execute the cell once under `policy` and judge the run: mutual
    /// exclusion, FCFS (one-shot locks only) and every attempt
    /// resolved. The returned [`GuidedOutcome`] carries the op trace
    /// and the run's max entered-passage RMRs as cost.
    #[must_use]
    pub fn guided_run(&self, policy: ForcedSchedule) -> GuidedOutcome {
        let plans = self.plans();
        let attempts: usize = plans.iter().map(|p| p.passages).sum();
        let built = build_lock(self.kind, self.n, attempts);
        let traced = Layered::over(&built.mem, OpTraceSink::new());
        let spec = WorkloadSpec {
            plans,
            cs_ops: self.cs_ops,
            max_steps: self.max_steps,
            lease: self.lease,
        };
        let report = if self.kind.one_shot() {
            run_one_shot(
                &*built.lock,
                &traced,
                built.cs_word,
                &spec,
                Box::new(policy),
            )
        } else {
            run_lock(
                &*built.lock,
                &traced,
                built.cs_word,
                &spec,
                Box::new(policy),
            )
        };
        // Take the trace before anything else touches the memory — the
        // sink keeps recording after the gate closes.
        let ops = traced.into_layer().take();
        let report = match report {
            Ok(r) => r,
            Err(e) => {
                return GuidedOutcome {
                    verdict: Err(e.to_string()),
                    ops,
                    cost: 0,
                }
            }
        };
        let verdict = (|| {
            report
                .mutex_check
                .as_ref()
                .map_err(|v| format!("mutual exclusion violated: {v:?}"))?;
            if self.kind.one_shot() {
                report
                    .fcfs_check
                    .as_ref()
                    .map_err(|v| format!("FCFS violated: {v:?}"))?;
            }
            let resolved: usize = report.outcomes.iter().map(|&(e, a)| e + a).sum();
            if resolved != attempts {
                return Err(format!("only {resolved}/{attempts} attempts resolved"));
            }
            Ok(())
        })();
        GuidedOutcome {
            verdict,
            ops,
            cost: report.stats.summary().max_entered_rmrs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_case_point_runs_and_is_safe() {
        let p = worst_case_sweep(LockKind::OneShot { b: 4 }, 8, 1).unwrap();
        assert!(p.mutex_ok);
        assert_eq!(p.fcfs_ok, Some(true));
        assert_eq!(p.n, 8);
        assert_eq!(p.aborters, 6);
        assert!(p.max_entered_rmrs > 0);
    }

    #[test]
    fn no_abort_point_has_no_aborted_passages() {
        let p = no_abort_sweep(LockKind::LongLived { b: 4 }, 4, 2, 3).unwrap();
        assert!(p.mutex_ok);
        assert_eq!(p.aborters, 0);
        assert_eq!(p.max_aborted_rmrs, 0);
    }

    #[test]
    fn adaptive_point_controls_aborter_count() {
        let p = adaptive_sweep(LockKind::OneShot { b: 2 }, 8, 3, 7).unwrap();
        assert_eq!(p.aborters, 3);
        assert!(p.mutex_ok);
    }

    #[test]
    fn space_rows_scale_as_documented() {
        // One-shot: O(N). Long-lived bounded: O(N²).
        let s64 = space_row(LockKind::OneShot { b: 8 }, 64, 64);
        let s128 = space_row(LockKind::OneShot { b: 8 }, 128, 128);
        assert!(s128 < s64 * 3, "one-shot space should be linear");
        let l16 = space_row(LockKind::LongLived { b: 8 }, 16, 16);
        let l32 = space_row(LockKind::LongLived { b: 8 }, 32, 32);
        assert!(
            l32 as f64 >= l16 as f64 * 2.5,
            "bounded long-lived space should be quadratic: {l16} → {l32}"
        );
    }

    #[test]
    fn amortized_point_merges_rounds_and_matches_ground_truth() {
        let p = amortized_sweep(LockKind::JjAmortized, 4, 3, 2, 5).unwrap();
        assert!(p.mutex_ok);
        assert!(p.accounting_ok, "probe totals must equal memory counters");
        assert_eq!(p.aborters, 2);
        // 3 rounds × (2 normal procs × 2 passages + 2 aborters × 2
        // attempts) = 24 finalized passages.
        assert_eq!(p.stats.passages, 24);
        assert_eq!(p.stats.entered + p.stats.aborted, p.stats.passages);
        assert!(p.stats.total_rmrs > 0);
        assert!(p.stats.amortized_rmrs > 0.0);
        assert!(p.stats.max_passage_rmrs as f64 >= p.stats.amortized_rmrs);
    }

    #[test]
    fn amortized_point_handles_one_shot_and_non_abortable_kinds() {
        let p = amortized_sweep(LockKind::OneShot { b: 2 }, 4, 2, 3, 9).unwrap();
        assert!(p.mutex_ok && p.accounting_ok);
        assert_eq!(p.stats.passages, 8, "one-shot: 1 attempt per process");
        let p = amortized_sweep(LockKind::Mcs, 4, 2, 2, 9).unwrap();
        assert_eq!(p.aborters, 0, "non-abortable kinds run clean");
        assert_eq!(p.stats.aborted, 0);
        assert!(p.accounting_ok);
    }

    #[test]
    fn baselines_run_the_same_workloads() {
        for kind in [LockKind::Scott, LockKind::Lee, LockKind::Tournament] {
            let p = worst_case_sweep(kind, 6, 2).unwrap();
            assert!(p.mutex_ok, "{kind:?}");
        }
    }
}
