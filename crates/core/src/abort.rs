//! Abort vocabulary shared by every consumer of the bounded-RMR abort
//! path: the always-fired [`Immediate`] signal and the [`AbortReason`]
//! a failed acquisition reports.
//!
//! The paper's `Enter` takes an external abort signal and promises to
//! honour it within a bounded number of the caller's own steps
//! ([`sal_memory::AbortSignal`]). Production callers fire that signal
//! for exactly two reasons — a deadline passed, or the caller itself
//! cancelled — and [`AbortReason`] is how the `sal-sync` API reports
//! which one ended an attempt.

use sal_memory::AbortSignal;

/// An abort signal that is always set: "make one attempt, never wait".
///
/// Passing `Immediate` to an abortable `enter` turns it into the
/// classic `try_lock`: the algorithm runs its doorway, observes the
/// signal at its first wait, and takes the bounded abort path. Per the
/// paper's `Enter` semantics the acquisition can still *succeed* — if
/// the lock is free (or handed over before the first wait), the caller
/// enters the critical section even though the signal is set.
///
/// ```
/// use sal_core::abort::Immediate;
/// use sal_memory::AbortSignal;
///
/// assert!(Immediate.is_set());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Immediate;

impl AbortSignal for Immediate {
    #[inline]
    fn is_set(&self) -> bool {
        true
    }
}

/// Why an abortable acquisition gave up.
///
/// Returned in the `Err` position by the timed and cancellable entry
/// points of `sal-sync` (`lock_when_for`, `lock_when_abortable`, …) so
/// callers can distinguish "ran out of time" from "was cancelled"
/// without re-deriving it from the signal they passed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// The attempt's deadline passed before the predicate/lock was
    /// obtained (a [`sal_memory::Deadline`] signal fired).
    Deadline,
    /// The caller-supplied abort signal fired (cancellation).
    Caller,
}

impl std::fmt::Display for AbortReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbortReason::Deadline => f.write_str("deadline expired"),
            AbortReason::Caller => f.write_str("aborted by caller signal"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_is_always_set() {
        assert!(Immediate.is_set());
        // And through the reference/Arc forwarding impls.
        assert!(Immediate.is_set());
        assert!(std::sync::Arc::new(Immediate).is_set());
    }

    #[test]
    fn reasons_display_and_compare() {
        assert_ne!(AbortReason::Deadline, AbortReason::Caller);
        assert_eq!(AbortReason::Deadline.to_string(), "deadline expired");
        assert_eq!(AbortReason::Caller.to_string(), "aborted by caller signal");
    }
}
