//! The inline-word state protocol for keyed lock arenas.
//!
//! A keyed arena (`sal_sync::Arena`) gives every logical lock a single
//! `u64` **inline word**. While a key is uncontended, the word *is* the
//! lock: acquisition is one CAS (`UNLOCKED → LOCKED_INLINE`), release is
//! one CAS back. Only when a second thread observes the word held does
//! the key **materialize** — a real lock core (the paper's bounded
//! long-lived lock) is drawn from a bounded pool and the word becomes a
//! tagged pointer to it. When the last participant leaves, the key
//! **demotes** back to the inline encoding and the core returns to the
//! pool, so resident lock-core memory is proportional to *currently
//! contended* keys, not to the key space (the practical analogue of the
//! §6.2 bounded-space schemes).
//!
//! This module owns the word encoding and the pure transition rules.
//! `sal_sync::arena` executes them over real atomics; the exhaustive
//! interleaving model in `tests/arena_protocol.rs` executes the *same*
//! encode/decode and rule functions over a modelled memory, which is
//! what makes that model a check of the shipped protocol rather than of
//! a re-implementation.
//!
//! ## Word states
//!
//! ```text
//! 0                         UNLOCKED        (inline, free)
//! 1                         LOCKED_INLINE   (inline, held; no core)
//! (idx << 2) | 2            MATERIALIZED    (all traffic routes through core idx)
//! ```
//!
//! ## The transitions
//!
//! * **Fast lock**: CAS `UNLOCKED → LOCKED_INLINE`. Failure re-reads the
//!   word and re-dispatches.
//! * **Fast unlock**: CAS `LOCKED_INLINE → UNLOCKED`. Failure means the
//!   key was promoted *while held* — the unlock must route through the
//!   core (see the proxy rule below).
//! * **Promotion**: a thread that observes `LOCKED_INLINE` allocates a
//!   pooled core, acquires it with the reserved **proxy pid** (the core
//!   then models "held by the current inline holder"), and publishes
//!   with CAS `LOCKED_INLINE → MATERIALIZED(idx)`. A failed publish
//!   (the holder released first, or another promoter won) is undone
//!   completely: proxy exit, core back to the pool.
//! * **Proxy unlock**: an inline holder whose fast unlock CAS fails
//!   reads `MATERIALIZED(idx)` and releases by exiting the core's
//!   reserved pid — the core's queue then hands the lock to the first
//!   materialized waiter by the paper's own protocol.
//! * **Demotion**: every participant of a materialized key is counted
//!   in the core's **users** counter (waiters, holders, and the proxy
//!   while it stands in for the inline holder). A departing participant
//!   that finds `users == 1` — itself alone, which implies the core's
//!   lock is free — swaps `users` to the [`USERS_DEMOTING`] sentinel
//!   (excluding late joiners, who must increment `users` and then
//!   revalidate the word), writes the word back to `UNLOCKED`, and
//!   returns the core to the pool.
//!
//! The join/demote race is resolved by ordering: joiners increment
//! `users` *before* re-reading the word, demoters change the word
//! *before* releasing the core, and both sides use sequentially
//! consistent operations — so either the joiner sees the demoted word
//! and backs off (decrementing its transient count), or the demoter's
//! `users` CAS fails and demotion is abandoned.

/// Inline word value: key free, no core.
pub const UNLOCKED: u64 = 0;

/// Inline word value: key held through the fast path, no core.
pub const LOCKED_INLINE: u64 = 1;

/// Tag bits distinguishing the three encodings.
const TAG_BITS: u32 = 2;

/// Tag of the materialized encoding.
const TAG_MATERIALIZED: u64 = 2;

/// Largest pool index the word can carry.
pub const MAX_CORE_INDEX: usize = ((u64::MAX >> TAG_BITS) - 1) as usize;

/// Sentinel for a core's `users` counter while a demotion is in flight:
/// joiners observing it spin on re-reading the *word* (which the
/// demoter changes before releasing the core) instead of incrementing.
pub const USERS_DEMOTING: usize = usize::MAX;

/// Decoded state of an arena inline word; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WordState {
    /// Key free; acquire with CAS [`UNLOCKED`] → [`LOCKED_INLINE`].
    Unlocked,
    /// Key held inline; a second arrival promotes.
    LockedInline,
    /// Key routes through pooled core `idx` for every operation.
    Materialized(usize),
}

/// Encode the materialized state for pool slot `idx`.
///
/// # Panics
///
/// Panics when `idx` exceeds [`MAX_CORE_INDEX`] (unreachable for any
/// realistic pool).
pub fn materialized(idx: usize) -> u64 {
    assert!(idx <= MAX_CORE_INDEX, "core index {idx} out of word range");
    ((idx as u64) << TAG_BITS) | TAG_MATERIALIZED
}

/// Decode an inline word.
///
/// # Panics
///
/// Panics on an encoding no transition produces (corruption guard).
pub fn decode(word: u64) -> WordState {
    match word {
        UNLOCKED => WordState::Unlocked,
        LOCKED_INLINE => WordState::LockedInline,
        w if w & ((1 << TAG_BITS) - 1) == TAG_MATERIALIZED => {
            WordState::Materialized((w >> TAG_BITS) as usize)
        }
        w => unreachable!("invalid arena word encoding {w:#x}"),
    }
}

/// The join rule: given an observed `users` value, the count a joiner
/// should CAS it to — or `None` while a demotion holds the sentinel
/// (the joiner then re-reads the *word* rather than spinning on the
/// counter; the demoter changes the word before it releases the core).
pub fn join_users(users: usize) -> Option<usize> {
    if users == USERS_DEMOTING {
        None
    } else {
        Some(users + 1)
    }
}

/// The demotion rule: a departing participant may reclaim the core only
/// when it is the sole remaining user — `users == 1` implies no other
/// waiter, holder, or proxy exists, hence the core's lock is free.
pub fn may_demote(users: usize) -> bool {
    users == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_states_round_trip() {
        assert_eq!(decode(UNLOCKED), WordState::Unlocked);
        assert_eq!(decode(LOCKED_INLINE), WordState::LockedInline);
        for idx in [0usize, 1, 63, 4095, MAX_CORE_INDEX] {
            assert_eq!(decode(materialized(idx)), WordState::Materialized(idx));
        }
    }

    #[test]
    fn encodings_are_disjoint() {
        // The materialized tag can never collide with the two inline
        // values, whatever the index.
        for idx in 0..1024 {
            let w = materialized(idx);
            assert_ne!(w, UNLOCKED);
            assert_ne!(w, LOCKED_INLINE);
        }
    }

    #[test]
    #[should_panic(expected = "out of word range")]
    fn oversized_index_is_rejected() {
        let _ = materialized(MAX_CORE_INDEX + 1);
    }

    #[test]
    fn join_rule_respects_the_demotion_sentinel() {
        assert_eq!(join_users(0), Some(1));
        assert_eq!(join_users(7), Some(8));
        assert_eq!(join_users(USERS_DEMOTING), None);
    }

    #[test]
    fn demotion_requires_a_sole_user() {
        assert!(may_demote(1));
        assert!(!may_demote(0));
        assert!(!may_demote(2));
        assert!(!may_demote(USERS_DEMOTING));
    }
}
