//! # sal-core — deterministic abortable mutual exclusion with sublogarithmic adaptive RMR complexity
//!
//! A complete implementation of the algorithms of Alon & Morrison,
//! *Deterministic Abortable Mutual Exclusion with Sublogarithmic Adaptive
//! RMR Complexity* (PODC 2018):
//!
//! * [`tree`] — the `W`-ary [`Tree`](tree::Tree) ordered-set structure
//!   (Figure 3), including the adaptive sidestepping ascent of
//!   Algorithm 4.3, which gives `FindNext` an RMR cost of
//!   `O(log_W A)` where `A` is the number of aborters.
//! * [`one_shot`] — the one-shot abortable queue lock of Figure 1, in its
//!   cache-coherent form ([`one_shot::OneShotLock`]) and its DSM form with
//!   local spin-bit indirection ([`one_shot::DsmOneShotLock`], §3).
//! * [`long_lived`] — the one-shot → long-lived transformation of Figure 5,
//!   as the literal pseudo-code over pre-allocated instance pools
//!   ([`long_lived::SimpleLongLivedLock`]) and as the bounded-space version
//!   of §6.2 with instance recycling, versioned lazy reset, and spin-node
//!   reclamation ([`long_lived::BoundedLongLivedLock`]).
//! * [`abort`] / [`park`] — the production-surface support layer: the
//!   always-fired [`abort::Immediate`] signal, the
//!   [`abort::AbortReason`] vocabulary (deadline vs caller abort), and
//!   the adaptive spin-then-park [`park::Waiter`] slot that `sal-sync`'s
//!   conditional critical sections block on.
//! * [`arena_word`] — the inline-word promotion/demotion protocol that
//!   lets a keyed arena (`sal_sync::Arena`) run millions of logical
//!   locks as single CAS words, materializing a real lock core from a
//!   bounded pool only for keys that observe contention.
//! * [`resume`] — the enter protocol as resumable, sans-IO state
//!   machines ([`resume::EnterMachine`]): every blocking wait becomes an
//!   [`resume::EnterStep::Pending`] poll result, making the spinning
//!   entry points one driver among several (spin, park, or async
//!   wakers — `sal_sync::AsyncAbortableMutex` turns future cancellation
//!   into the paper's bounded abort through this interface).
//!
//! All algorithms are written once, generically over the
//! [`sal_memory::Mem`] primitive set (`read`/`write`/`CAS`/`F&A`), so they
//! run identically under exact RMR accounting, under a deterministic
//! scheduler, or over bare atomics.
//!
//! ## Quick example (one-shot lock under RMR accounting)
//!
//! ```
//! use sal_core::one_shot::{EnterOutcome, OneShotLock};
//! use sal_memory::{Mem, MemoryBuilder, NeverAbort};
//!
//! let mut b = MemoryBuilder::new();
//! let lock = OneShotLock::layout(&mut b, 4, 4); // 4 processes, branching 4
//! let mem = b.build_cc(4);
//!
//! // Process 0 acquires (ticket 0 spins on go[0], initially set).
//! let outcome = lock.enter(&mem, 0, &NeverAbort);
//! assert!(matches!(outcome, EnterOutcome::Entered { .. }));
//! lock.exit(&mem, 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod abort;
pub mod arena_word;
pub mod lock;
pub mod long_lived;
pub mod one_shot;
pub mod park;
pub mod resume;
pub mod tree;

pub use abort::{AbortReason, Immediate};
pub use lock::{AbortableLock, DynLock, LockCore, LockMeta, Outcome};
pub use park::{ParkResult, Waiter};
pub use resume::{EnterMachine, EnterStep, OneShotEnterMachine, WaitKind, WaitToken};
