//! The [`AbortableLock`] trait: one public interface over every lock in
//! the workspace, with passage observability built in.
//!
//! The runtime harness, the Table-1 benchmarks and the sweep binaries
//! all drive locks through this trait; `sal-baselines` and `sal-sync`
//! implement it too, so one registry entry per lock suffices. This is
//! the **stable surface** of the workspace: additions happen through
//! defaulted methods, and the [`Probe`] parameter is how instrumentation
//! attaches without forking the call path.
//!
//! The trait is generic over the probe (`AbortableLock<P>`) with a
//! `dyn Probe` default, giving both worlds at once:
//!
//! * `Box<dyn AbortableLock>` (= `dyn AbortableLock<dyn Probe>`) is
//!   object-safe — heterogeneous lock registries work.
//! * A concrete `P` (e.g. [`NoProbe`](sal_obs::NoProbe)) monomorphizes
//!   every hook away — `sal-sync`'s uninstrumented path keeps its
//!   codegen.

use sal_memory::{AbortSignal, Mem, Pid};
use sal_obs::Probe;
use std::fmt::Debug;

/// Result of an [`AbortableLock::enter`] attempt.
///
/// `ticket` carries the FCFS doorway ticket when the algorithm has one
/// (the one-shot locks' `F&A(Tail)` index); locks without a doorway
/// report `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The process acquired the lock and entered the critical section;
    /// it must eventually call [`AbortableLock::exit`].
    Entered {
        /// FCFS doorway ticket, if the algorithm has a doorway.
        ticket: Option<u64>,
    },
    /// The process abandoned the attempt in response to the abort
    /// signal.
    Aborted {
        /// Doorway ticket of the abandoned attempt, if any.
        ticket: Option<u64>,
    },
}

impl Outcome {
    /// Whether the lock was acquired.
    pub fn entered(&self) -> bool {
        matches!(self, Outcome::Entered { .. })
    }

    /// Whether the attempt aborted.
    pub fn aborted(&self) -> bool {
        !self.entered()
    }

    /// The doorway ticket of this attempt, if the algorithm has one.
    pub fn ticket(&self) -> Option<u64> {
        match *self {
            Outcome::Entered { ticket } | Outcome::Aborted { ticket } => ticket,
        }
    }
}

/// An (abortable) mutual-exclusion lock driven through a [`Mem`], with
/// passage-lifecycle observability.
///
/// `enter` reports [`Outcome::Entered`] iff the process acquired the
/// lock and entered the critical section, in which case it must
/// eventually call `exit`. [`Outcome::Aborted`] means the attempt was
/// abandoned in response to `signal` (only possible when
/// [`is_abortable`](AbortableLock::is_abortable)). Note that, per the
/// problem statement (§2), `enter` *may* report `Entered` even after
/// the signal fires — a process can be handed the lock before noticing
/// the signal.
///
/// Implementations call the probe's passage hooks
/// ([`enter_begin`](Probe::enter_begin) /
/// [`enter_end`](Probe::enter_end) / [`abort`](Probe::abort) from
/// `enter`, [`cs_exit`](Probe::cs_exit) from `exit`) and route their
/// shared-memory operations through a
/// [`ProbedMem`](sal_obs::ProbedMem) so `op`/`rmr` hooks fire per
/// operation.
///
/// Implementations keep any per-process local state internally, keyed
/// by `p`; `p` must be in `0..mem.num_procs()` and each process must
/// obey the usual protocol (no `exit` without a preceding successful
/// `enter`).
pub trait AbortableLock<P: Probe + ?Sized = dyn Probe>: Send + Sync + Debug {
    /// Short machine-readable name, e.g. `"one-shot(B=8)"`.
    fn name(&self) -> String;

    /// Whether `enter` honours the abort signal. Classic locks (MCS,
    /// ticket, …) return `false` and ignore `signal`.
    fn is_abortable(&self) -> bool {
        true
    }

    /// Whether each process may acquire this lock at most once (the
    /// paper's one-shot locks). The harness uses this to size workloads.
    fn is_one_shot(&self) -> bool {
        false
    }

    /// Attempt to acquire the lock as process `p`, reporting passage
    /// events to `probe`.
    fn enter(&self, mem: &dyn Mem, p: Pid, signal: &dyn AbortSignal, probe: &P) -> Outcome;

    /// Release the lock as process `p` (which must be in the CS),
    /// reporting the passage completion to `probe`.
    fn exit(&self, mem: &dyn Mem, p: Pid, probe: &P);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sal_obs::NoProbe;

    #[test]
    fn abortable_lock_trait_is_object_safe() {
        fn _takes(_l: &dyn AbortableLock) {}
        fn _takes_boxed(_l: Box<dyn AbortableLock>) {}
    }

    #[test]
    fn outcome_accessors() {
        let e = Outcome::Entered { ticket: Some(3) };
        assert!(e.entered() && !e.aborted());
        assert_eq!(e.ticket(), Some(3));
        let a = Outcome::Aborted { ticket: None };
        assert!(a.aborted() && !a.entered());
        assert_eq!(a.ticket(), None);
    }

    #[test]
    fn no_probe_coerces_to_dyn_probe() {
        // The default type parameter means `&NoProbe` is accepted at
        // `&dyn Probe` positions via unsize coercion.
        fn _call(l: &dyn AbortableLock, mem: &dyn Mem, sig: &dyn AbortSignal) {
            let _ = l.enter(mem, 0, sig, &NoProbe);
        }
    }
}
