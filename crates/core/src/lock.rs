//! The [`AbortableLock`] trait: one public interface over every lock in
//! the workspace, with passage observability built in.
//!
//! The runtime harness, the Table-1 benchmarks and the sweep binaries
//! all drive locks through this trait; `sal-baselines` and `sal-sync`
//! implement it too, so one registry entry per lock suffices. This is
//! the **stable surface** of the workspace: additions happen through
//! defaulted methods, and the [`Probe`] parameter is how instrumentation
//! attaches without forking the call path.
//!
//! The trait is generic over the probe (`AbortableLock<P>`) with a
//! `dyn Probe` default, giving both worlds at once:
//!
//! * `Box<dyn AbortableLock>` (= `dyn AbortableLock<dyn Probe>`) is
//!   object-safe — heterogeneous lock registries work.
//! * A concrete `P` (e.g. [`NoProbe`](sal_obs::NoProbe)) monomorphizes
//!   every hook away — `sal-sync`'s uninstrumented path keeps its
//!   codegen.
//!
//! # Facade vs. core
//!
//! [`AbortableLock`] is the *facade*: object-safe, memory-erased
//! (`&dyn Mem`), stable. The algorithms themselves implement the
//! *core* pair instead:
//!
//! * [`LockMeta`] — memory-independent metadata (name, abortability).
//! * [`LockCore<M, P>`] — `enter_core`/`exit_core` generic over the
//!   concrete memory type `M` (and abort-signal type), so that on
//!   [`RawMemory`](sal_memory::RawMemory) with
//!   [`NoProbe`](sal_obs::NoProbe) the whole passage compiles down to
//!   direct atomic instructions: no vtables, no probe hooks, no
//!   erased word table.
//!
//! A blanket impl derives the facade from the core at `M = dyn Mem`
//! (references forward `Mem`, so every `LockCore` implementor covers
//! `dyn Mem` automatically), which is why converting a lock to
//! `LockCore` cannot change the behaviour observed through
//! `Box<dyn AbortableLock>` registries: the facade *is* the core,
//! instantiated at the erased types. [`DynLock`] closes the loop in
//! the other direction — it adapts any `&dyn AbortableLock` back into
//! a `LockCore` over every memory type — so generic drivers (the
//! harness, the `hwscale` bench) run both dispatch flavours through
//! one code path.
//!
//! # Blocking vs. resumable
//!
//! `enter_core` blocks (busy-waits) until the passage resolves — that
//! is the model the RMR bounds are stated in. Underneath, the paper
//! locks express the same protocol as resumable state machines
//! ([`crate::resume`]): `enter_core` is the tight-loop driver of
//! [`poll_enter`](crate::long_lived::BoundedLongLivedLock::poll_enter),
//! and non-blocking drivers (async tasks parking on wakers, the
//! spin-then-park [`Waiter`](crate::park::Waiter)) poll the identical
//! machine at their own cadence. Equivalence of the two is pinned by
//! `tests/mono_equivalence.rs`: the routing through the machine leaves
//! every simulator artifact byte-identical.

use sal_memory::{AbortSignal, Mem, Pid};
use sal_obs::Probe;
use std::fmt::Debug;

/// Result of an [`AbortableLock::enter`] attempt.
///
/// `ticket` carries the FCFS doorway ticket when the algorithm has one
/// (the one-shot locks' `F&A(Tail)` index); locks without a doorway
/// report `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The process acquired the lock and entered the critical section;
    /// it must eventually call [`AbortableLock::exit`].
    Entered {
        /// FCFS doorway ticket, if the algorithm has a doorway.
        ticket: Option<u64>,
    },
    /// The process abandoned the attempt in response to the abort
    /// signal.
    Aborted {
        /// Doorway ticket of the abandoned attempt, if any.
        ticket: Option<u64>,
    },
}

impl Outcome {
    /// Whether the lock was acquired.
    pub fn entered(&self) -> bool {
        matches!(self, Outcome::Entered { .. })
    }

    /// Whether the attempt aborted.
    pub fn aborted(&self) -> bool {
        !self.entered()
    }

    /// The doorway ticket of this attempt, if the algorithm has one.
    pub fn ticket(&self) -> Option<u64> {
        match *self {
            Outcome::Entered { ticket } | Outcome::Aborted { ticket } => ticket,
        }
    }
}

/// An (abortable) mutual-exclusion lock driven through a [`Mem`], with
/// passage-lifecycle observability.
///
/// `enter` reports [`Outcome::Entered`] iff the process acquired the
/// lock and entered the critical section, in which case it must
/// eventually call `exit`. [`Outcome::Aborted`] means the attempt was
/// abandoned in response to `signal` (only possible when
/// [`is_abortable`](AbortableLock::is_abortable)). Note that, per the
/// problem statement (§2), `enter` *may* report `Entered` even after
/// the signal fires — a process can be handed the lock before noticing
/// the signal.
///
/// Implementations call the probe's passage hooks
/// ([`enter_begin`](Probe::enter_begin) /
/// [`enter_end`](Probe::enter_end) / [`abort`](Probe::abort) from
/// `enter`, [`cs_exit`](Probe::cs_exit) from `exit`) and route their
/// shared-memory operations through a
/// [`ProbedMem`](sal_obs::ProbedMem) so `op`/`rmr` hooks fire per
/// operation.
///
/// Implementations keep any per-process local state internally, keyed
/// by `p`; `p` must be in `0..mem.num_procs()` and each process must
/// obey the usual protocol (no `exit` without a preceding successful
/// `enter`).
pub trait AbortableLock<P: Probe + ?Sized = dyn Probe>: Send + Sync + Debug {
    /// Short machine-readable name, e.g. `"one-shot(B=8)"`.
    fn name(&self) -> String;

    /// Whether `enter` honours the abort signal. Classic locks (MCS,
    /// ticket, …) return `false` and ignore `signal`.
    fn is_abortable(&self) -> bool {
        true
    }

    /// Whether each process may acquire this lock at most once (the
    /// paper's one-shot locks). The harness uses this to size workloads.
    fn is_one_shot(&self) -> bool {
        false
    }

    /// Attempt to acquire the lock as process `p`, reporting passage
    /// events to `probe`.
    fn enter(&self, mem: &dyn Mem, p: Pid, signal: &dyn AbortSignal, probe: &P) -> Outcome;

    /// Release the lock as process `p` (which must be in the CS),
    /// reporting the passage completion to `probe`.
    fn exit(&self, mem: &dyn Mem, p: Pid, probe: &P);
}

/// Memory-independent lock metadata, shared by every instantiation of
/// [`LockCore`].
///
/// Split out of `LockCore` so that `name()` can be asked of a lock
/// without naming a memory type, and so each algorithm states its
/// metadata exactly once.
pub trait LockMeta: Send + Sync + Debug {
    /// Short machine-readable name, e.g. `"one-shot(B=8)"`.
    fn name(&self) -> String;

    /// Whether `enter_core` honours the abort signal.
    fn is_abortable(&self) -> bool {
        true
    }

    /// Whether each process may acquire this lock at most once.
    fn is_one_shot(&self) -> bool {
        false
    }
}

/// The generic core of a lock: [`AbortableLock`] with the memory,
/// probe *and* signal types as compile-time parameters.
///
/// Algorithms implement this once, generically
/// (`impl<M: Mem + ?Sized, P: Probe + ?Sized> LockCore<M, P> for X`),
/// and get three call paths for the price of one:
///
/// * **Monomorphized** — `M = RawMemory`, `P = NoProbe`: every memory
///   op inlines to a direct `AtomicU64` access; probe hooks vanish.
/// * **Instrumented** — `M = CcMemory`, `P = PassageStats`: full RMR
///   accounting, still statically dispatched.
/// * **Erased** — the blanket [`AbortableLock`] impl below
///   instantiates the core at `M = dyn Mem`, `S = dyn AbortSignal`,
///   recovering the object-safe facade unchanged.
///
/// `enter_core` is generic over the signal type and therefore not
/// object-safe; that is fine — type erasure is the facade's job.
pub trait LockCore<M: Mem + ?Sized, P: Probe + ?Sized>: LockMeta {
    /// Attempt to acquire the lock as process `p`, reporting passage
    /// events to `probe`. Semantics are those of
    /// [`AbortableLock::enter`].
    fn enter_core<S: AbortSignal + ?Sized>(
        &self,
        mem: &M,
        p: Pid,
        signal: &S,
        probe: &P,
    ) -> Outcome;

    /// Release the lock as process `p` (which must be in the CS).
    /// Semantics are those of [`AbortableLock::exit`].
    fn exit_core(&self, mem: &M, p: Pid, probe: &P);
}

/// The facade derived from the core: any lock whose `LockCore` covers
/// `dyn Mem` (which every generic implementor does, via the `Mem`
/// forwarding impl for references) is an `AbortableLock` with
/// identical behaviour — the facade methods *are* the core methods at
/// the erased types, so `Box<dyn AbortableLock>` registries and the
/// simulator observe exactly the code they did before the split.
impl<P, L> AbortableLock<P> for L
where
    P: Probe + ?Sized,
    L: for<'m> LockCore<dyn Mem + 'm, P>,
{
    fn name(&self) -> String {
        LockMeta::name(self)
    }

    fn is_abortable(&self) -> bool {
        LockMeta::is_abortable(self)
    }

    fn is_one_shot(&self) -> bool {
        LockMeta::is_one_shot(self)
    }

    fn enter(&self, mem: &dyn Mem, p: Pid, signal: &dyn AbortSignal, probe: &P) -> Outcome {
        self.enter_core(mem, p, signal, probe)
    }

    fn exit(&self, mem: &dyn Mem, p: Pid, probe: &P) {
        self.exit_core(mem, p, probe)
    }
}

/// Adapter running a type-erased lock through the generic [`LockCore`]
/// interface: the inverse of the blanket facade impl.
///
/// `DynLock(&lock)` implements `LockCore<M, P>` for *every* memory and
/// probe type by re-erasing the arguments at the call boundary
/// (`&&M → &dyn Mem`, etc.), so it costs exactly one virtual call per
/// lock operation — no more, no less. Generic drivers written against
/// `LockCore` (the harness, `hwscale`) accept `DynLock` to exercise
/// the dynamic-dispatch flavour through the very same driver code that
/// runs the monomorphized flavour, which is what makes mono-vs-dyn
/// comparisons and equivalence tests fair.
#[derive(Debug, Clone, Copy)]
pub struct DynLock<'l>(pub &'l dyn AbortableLock);

impl LockMeta for DynLock<'_> {
    fn name(&self) -> String {
        self.0.name()
    }

    fn is_abortable(&self) -> bool {
        self.0.is_abortable()
    }

    fn is_one_shot(&self) -> bool {
        self.0.is_one_shot()
    }
}

/// `P: 'static` (rather than `?Sized`) because the wrapped facade
/// fixes its probe parameter at `dyn Probe + 'static`, so the probe is
/// the one argument that cannot be re-erased at an arbitrary lifetime.
/// Every generic driver uses a concrete owned probe type, so this
/// costs nothing in practice.
impl<M: Mem + ?Sized, P: Probe + 'static> LockCore<M, P> for DynLock<'_> {
    fn enter_core<S: AbortSignal + ?Sized>(
        &self,
        mem: &M,
        p: Pid,
        signal: &S,
        probe: &P,
    ) -> Outcome {
        self.0.enter(&mem, p, &signal, probe)
    }

    fn exit_core(&self, mem: &M, p: Pid, probe: &P) {
        self.0.exit(&mem, p, probe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sal_obs::NoProbe;

    #[test]
    fn abortable_lock_trait_is_object_safe() {
        fn _takes(_l: &dyn AbortableLock) {}
        fn _takes_boxed(_l: Box<dyn AbortableLock>) {}
    }

    #[test]
    fn outcome_accessors() {
        let e = Outcome::Entered { ticket: Some(3) };
        assert!(e.entered() && !e.aborted());
        assert_eq!(e.ticket(), Some(3));
        let a = Outcome::Aborted { ticket: None };
        assert!(a.aborted() && !a.entered());
        assert_eq!(a.ticket(), None);
    }

    #[test]
    fn no_probe_coerces_to_dyn_probe() {
        // The default type parameter means `&NoProbe` is accepted at
        // `&dyn Probe` positions via unsize coercion.
        fn _call(l: &dyn AbortableLock, mem: &dyn Mem, sig: &dyn AbortSignal) {
            let _ = l.enter(mem, 0, sig, &NoProbe);
        }
    }
}
