//! A common object-safe interface over every lock in the workspace, so
//! the runtime harness and the Table-1 benchmarks can drive the paper's
//! locks and all baselines uniformly.

use sal_memory::{AbortSignal, Mem, Pid};
use std::fmt::Debug;

/// An (abortable) mutual-exclusion lock driven through a [`Mem`].
///
/// `enter` returns `true` iff the process acquired the lock and entered
/// the critical section, in which case it must eventually call `exit`.
/// `enter` returns `false` iff the attempt was abandoned in response to
/// `signal` (only possible when [`is_abortable`](Lock::is_abortable)).
/// Note that, per the problem statement (§2), `enter` *may* return `true`
/// even after the signal fires — a process can be handed the lock before
/// noticing the signal.
///
/// Implementations keep any per-process local state internally, keyed by
/// `p`; `p` must be in `0..mem.num_procs()` and each process must obey the
/// usual protocol (no `exit` without a preceding successful `enter`).
pub trait Lock: Send + Sync + Debug {
    /// Short machine-readable name, e.g. `"one-shot(B=8)"`.
    fn name(&self) -> String;

    /// Whether `enter` honours the abort signal. Classic locks (MCS,
    /// ticket, …) return `false` and ignore `signal`.
    fn is_abortable(&self) -> bool {
        true
    }

    /// Whether each process may acquire this lock at most once (the
    /// paper's one-shot locks). The harness uses this to size workloads.
    fn is_one_shot(&self) -> bool {
        false
    }

    /// Attempt to acquire the lock as process `p`.
    fn enter(&self, mem: &dyn Mem, p: Pid, signal: &dyn AbortSignal) -> bool;

    /// Like [`enter`](Lock::enter), but additionally reports the FCFS
    /// doorway ticket when the algorithm has one (the one-shot locks'
    /// `F&A(Tail)` index). Locks without a doorway return `None`; the
    /// harness uses the ticket to verify first-come-first-served order.
    fn enter_ticketed(
        &self,
        mem: &dyn Mem,
        p: Pid,
        signal: &dyn AbortSignal,
    ) -> (bool, Option<u64>) {
        (self.enter(mem, p, signal), None)
    }

    /// Release the lock as process `p` (which must be in the CS).
    fn exit(&self, mem: &dyn Mem, p: Pid);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_trait_is_object_safe() {
        fn _takes(_l: &dyn Lock) {}
    }
}
