//! The bounded-space long-lived lock of §6.2.
//!
//! Combines the Figure-5 transformation with the two memory-management
//! schemes of §6.2:
//!
//! * **Instance recycling** — `N + 1` one-shot instances total. A process
//!   that switches the descriptor away from instance `l` keeps `l` as its
//!   private spare and uses it to satisfy its next allocation, bumping
//!   the instance *version*; the words of the instance are lazily reset
//!   through the [`VersionedInstance`] scheme, so re-initialization never
//!   costs `s(N)` RMRs at once.
//! * **Spin-node reclamation** — per-process pools of `N + 1` nodes with
//!   announce-and-validate pinning ([`SpinNodePool`]).
//!
//! Space: `O(N · s(N))` for the instances plus `O(N²)` spin nodes, with
//! `s(N) = O(N)` for the one-shot lock — the `O(N · s(N) + N²) = O(N²)`
//! bound of Claim 28.
//!
//! ### Deviations from the paper (documented per DESIGN.md §1)
//!
//! The paper's descriptor is a pointer pair; ours is index-based, and —
//! because indices (unlike fresh pointers) recur — the descriptor carries
//! a 20-bit switch sequence number that (a) makes the line-76 CAS immune
//! to ABA and (b) lets a process detect that the spin node saved in
//! `oldSpn` belongs to a *past* epoch (a recycled node paired with a new
//! instance must not be waited on, or the process could sleep through an
//! idle system). Sequence wraparound needs 2²⁰ switches within one
//! process's absence; like all bounded-tag schemes this is a practical,
//! not absolute, guarantee.

use super::desc::TaggedDesc;
use super::spin_pool::SpinNodePool;
use super::versioned::VersionedInstance;
use crate::lock::{LockCore, LockMeta, Outcome};
use crate::one_shot::OneShotLock;
use crate::resume::{BoundedEnterState, EnterMachine, EnterStep, WaitKind, WaitToken};
use crate::tree::Ascent;
use sal_memory::{AbortSignal, Mem, MemoryBuilder, Pid, WordId};
use sal_obs::{probed, NoProbe, Probe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Execution-path counters (Rust-side diagnostics, not shared-memory
/// state): how often each interesting branch of the protocol ran.
/// Used by stress tests to prove the rare paths are actually exercised,
/// and handy when tuning.
#[derive(Debug, Default)]
pub struct PathStats {
    /// Entries that found `spn == oldSpn` and waited on the spin node.
    pub spin_waits: AtomicU64,
    /// Spin-path entries whose re-validation found the epoch already
    /// switched (no wait needed).
    pub spin_revalidation_skips: AtomicU64,
    /// Successful descriptor switches (line 76 CAS succeeded).
    pub switches: AtomicU64,
    /// Failed descriptor switches (another process raced in).
    pub switch_cas_failures: AtomicU64,
}

impl PathStats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot as `(spin_waits, revalidation_skips, switches, cas_failures)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.spin_waits.load(Ordering::Relaxed),
            self.spin_revalidation_skips.load(Ordering::Relaxed),
            self.switches.load(Ordering::Relaxed),
            self.switch_cas_failures.load(Ordering::Relaxed),
        )
    }
}

/// Per-process local state (process-private, no RMRs).
#[derive(Debug)]
struct Local {
    /// Epoch `(seq, spn)` recorded by the last Cleanup; the paper's
    /// `oldSpn`, strengthened with the switch sequence number.
    old_epoch: Option<(u32, u32)>,
    /// The instance this process holds as its private spare.
    spare: u32,
}

/// The final algorithm of the paper: a starvation-free, abortable,
/// long-lived mutual-exclusion lock with `O(log_B A_i)` RMRs per passage
/// and `O(N²)` space.
#[derive(Debug)]
pub struct BoundedLongLivedLock {
    desc: WordId,
    /// The one-shot lock's *logical* layout — shared by every instance;
    /// instances differ only in their physical backing region.
    proto: OneShotLock,
    instances: Vec<VersionedInstance>,
    spins: SpinNodePool,
    locals: Vec<Mutex<Local>>,
    /// Words eagerly freshened per instance reuse (wraparound guard).
    eager_resets: usize,
    stats: PathStats,
    n: usize,
}

impl BoundedLongLivedLock {
    /// Lay out the bounded lock for `n ≤ 1022` processes with one-shot
    /// tree branching `branching`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n` exceeds the descriptor field capacities
    /// ([`TaggedDesc`]).
    pub fn layout(b: &mut MemoryBuilder, n: usize, branching: usize) -> Self {
        Self::layout_with(b, n, branching, Ascent::Adaptive, 1)
    }

    /// Lay out choosing the `FindNext` ascent and the eager-reset quota
    /// (`0` disables the wraparound guard entirely).
    pub fn layout_with(
        b: &mut MemoryBuilder,
        n: usize,
        branching: usize,
        ascent: Ascent,
        eager_resets: usize,
    ) -> Self {
        assert!(n >= 1, "lock needs at least one process");
        assert!(
            n < TaggedDesc::MAX_LOCK as usize && n * (n + 1) < TaggedDesc::MAX_SPN as usize,
            "too many processes for the descriptor layout (max 1022)"
        );
        assert!(
            n < TaggedDesc::MAX_REFCNT as usize,
            "refcount field too small"
        );
        let desc = b.alloc(
            TaggedDesc {
                seq: 0,
                lock: 0,
                spn: 0,
                refcnt: 0,
            }
            .pack(),
        );
        // Lay the one-shot lock out once in a scratch address space; its
        // initial values define what "reset" means for every instance.
        let mut scratch = MemoryBuilder::new();
        let proto = OneShotLock::layout_with(&mut scratch, n, branching, ascent);
        let inits = Arc::new(scratch.initial_values());
        let instances = (0..=n)
            .map(|_| VersionedInstance::layout(b, Arc::clone(&inits)))
            .collect();
        let spins = SpinNodePool::layout(b, n);
        let locals = (0..n)
            .map(|p| {
                Mutex::new(Local {
                    old_epoch: None,
                    // Instance 0 is installed; p's initial spare is p + 1.
                    spare: p as u32 + 1,
                })
            })
            .collect();
        BoundedLongLivedLock {
            desc,
            proto,
            instances,
            spins,
            locals,
            eager_resets,
            stats: PathStats::default(),
            n,
        }
    }

    /// Execution-path counters (diagnostic; see [`PathStats`]).
    pub fn stats(&self) -> &PathStats {
        &self.stats
    }

    /// Number of processes the lock supports.
    pub fn capacity(&self) -> usize {
        self.n
    }

    /// Tree branching factor of the underlying one-shot lock.
    pub fn branching(&self) -> usize {
        self.proto.tree().branching()
    }

    /// `Enter()` (Algorithm 6.1 + §6.2 spin-node pinning). Returns `true`
    /// iff the lock was acquired.
    pub fn enter<M, S>(&self, mem: &M, pid: Pid, signal: &S) -> bool
    where
        M: Mem + ?Sized,
        S: AbortSignal + ?Sized,
    {
        self.enter_impl(mem, pid, signal, &NoProbe)
    }

    /// [`enter`](Self::enter) with passage observability: lifecycle
    /// hooks, per-operation `op`/`rmr` hooks via [`ProbedMem`](sal_obs::ProbedMem), and an
    /// `"instance-switch"` [`note`](Probe::note) when this process's
    /// Cleanup wins the line-76 descriptor CAS. The nested one-shot
    /// `enter` is *not* treated as a passage of its own — only its
    /// memory operations are observed.
    pub fn enter_probed<M, S, P>(&self, mem: &M, pid: Pid, signal: &S, probe: &P) -> bool
    where
        M: Mem + ?Sized,
        S: AbortSignal + ?Sized,
        P: Probe + ?Sized,
    {
        probe.enter_begin(pid);
        let pm = probed(mem, probe);
        let completed = self.enter_impl(&pm, pid, signal, probe);
        if completed {
            probe.enter_end(pid, None);
        } else {
            probe.abort(pid, None);
        }
        completed
    }

    fn enter_impl<M, S, P>(&self, mem: &M, pid: Pid, signal: &S, probe: &P) -> bool
    where
        M: Mem + ?Sized,
        S: AbortSignal + ?Sized,
        P: Probe + ?Sized,
    {
        // Tight-loop driver of the resumable machine: a Pending poll
        // performed exactly one watched-word read (plus one signal
        // check), so re-polling immediately reproduces the blocking
        // spin loops of Figure 5 / Figure 1 operation for operation.
        let mut machine = self.begin_enter();
        loop {
            match self.poll_enter(&mut machine, mem, pid, signal, probe) {
                EnterStep::Acquired { .. } => return true,
                EnterStep::Aborted { .. } => return false,
                EnterStep::Pending(_) => {}
            }
        }
    }

    /// Begin a resumable `Enter`: no shared-memory operation happens
    /// until the first [`poll_enter`](Self::poll_enter) call. See
    /// [`crate::resume`] for the machine contract — in particular the
    /// obligation to drive a machine past the doorway
    /// ([`EnterMachine::in_queue`]) to resolution.
    pub fn begin_enter(&self) -> EnterMachine {
        EnterMachine::new()
    }

    /// Advance a resumable `Enter` by one poll.
    ///
    /// A poll runs as much of Algorithm 6.1 (+ §6.2 spin-node pinning)
    /// as it can without waiting: the first poll reads the descriptor,
    /// performs the epoch announce/re-validate when it applies, and —
    /// when no wait blocks it — continues straight through the doorway
    /// F&A into the one-shot instance. At either blocking point
    /// ([`WaitKind::EpochSpin`], [`WaitKind::QueueSpin`]) a poll
    /// performs one read of the watched word, then one signal check if
    /// it was zero, and returns [`EnterStep::Pending`]. Abort paths
    /// (epoch-wait unpinning; one-shot abort + `Cleanup`) run to
    /// completion within the poll that observes the signal, so an
    /// [`EnterStep::Aborted`] machine has released every queue node and
    /// reference it took — the paper's bounded abort.
    ///
    /// `probe` receives the `"instance-switch"` note if this poll's
    /// cleanup wins the descriptor CAS; per-operation observability is
    /// the memory's business (pass a [`probed`] wrapper as `mem`), and
    /// passage lifecycle hooks are the driver's (as in
    /// [`enter_probed`](Self::enter_probed)).
    ///
    /// # Panics
    ///
    /// Panics if polled again after resolving.
    pub fn poll_enter<M, S, P>(
        &self,
        machine: &mut EnterMachine,
        mem: &M,
        pid: Pid,
        signal: &S,
        probe: &P,
    ) -> EnterStep
    where
        M: Mem + ?Sized,
        S: AbortSignal + ?Sized,
        P: Probe + ?Sized,
    {
        loop {
            match machine.st {
                BoundedEnterState::Start => {
                    let old_epoch = self.locals[pid].lock().unwrap().old_epoch;
                    let d = TaggedDesc::unpack(mem.read(pid, self.desc)); // line 57
                    if Some(d.epoch()) == old_epoch {
                        // lines 58–61, with hazard-style pinning:
                        // announce the node, re-validate the epoch, and
                        // only then spin.
                        self.spins.announce(mem, pid, d.spn);
                        let d2 = TaggedDesc::unpack(mem.read(pid, self.desc));
                        if d2.epoch() == d.epoch() {
                            PathStats::bump(&self.stats.spin_waits);
                            machine.st = BoundedEnterState::EpochWait { spn: d.spn };
                        } else {
                            PathStats::bump(&self.stats.spin_revalidation_skips);
                            self.spins.clear_announce(mem, pid);
                            machine.st = BoundedEnterState::Doorway;
                        }
                    } else {
                        machine.st = BoundedEnterState::Doorway;
                    }
                }
                BoundedEnterState::EpochWait { spn } => {
                    let go = self.spins.go_word(spn);
                    if mem.read(pid, go) == 0 {
                        if signal.is_set() {
                            self.spins.clear_announce(mem, pid);
                            machine.st = BoundedEnterState::Done;
                            return EnterStep::Aborted { ticket: None };
                        }
                        return EnterStep::Pending(WaitToken::new(go, WaitKind::EpochSpin));
                    }
                    self.spins.clear_announce(mem, pid);
                    machine.st = BoundedEnterState::Doorway;
                }
                BoundedEnterState::Doorway => {
                    let d = TaggedDesc::unpack(mem.faa(pid, self.desc, 1)); // line 62
                    machine.st = BoundedEnterState::Queue {
                        inst: d.lock,
                        inner: self.proto.begin_enter(),
                    };
                }
                BoundedEnterState::Queue {
                    inst,
                    ref mut inner,
                } => {
                    // Recreate the instance view each poll: machines
                    // hold indices, not memory borrows.
                    let view = self.instances[inst as usize].view(mem);
                    // line 63, one poll at a time.
                    match self.proto.poll_enter(inner, &view, pid, signal) {
                        EnterStep::Acquired { .. } => {
                            machine.st = BoundedEnterState::Done;
                            return EnterStep::Acquired { ticket: None };
                        }
                        EnterStep::Aborted { .. } => {
                            self.cleanup(mem, pid, probe); // lines 64–65
                            machine.st = BoundedEnterState::Done;
                            return EnterStep::Aborted { ticket: None };
                        }
                        EnterStep::Pending(token) => return EnterStep::Pending(token),
                    }
                }
                BoundedEnterState::Done => {
                    panic!("bounded enter machine polled after resolving")
                }
            }
        }
    }

    /// `Exit()` (Algorithm 6.2).
    pub fn exit<M: Mem + ?Sized>(&self, mem: &M, pid: Pid) {
        self.exit_impl(mem, pid, &NoProbe);
    }

    /// [`exit`](Self::exit) with passage observability; fires
    /// [`Probe::cs_exit`] once the passage completes.
    pub fn exit_probed<M, P>(&self, mem: &M, pid: Pid, probe: &P)
    where
        M: Mem + ?Sized,
        P: Probe + ?Sized,
    {
        let pm = probed(mem, probe);
        self.exit_impl(&pm, pid, probe);
        probe.cs_exit(pid);
    }

    fn exit_impl<M, P>(&self, mem: &M, pid: Pid, probe: &P)
    where
        M: Mem + ?Sized,
        P: Probe + ?Sized,
    {
        let d = TaggedDesc::unpack(mem.read(pid, self.desc)); // line 67
        let inst = self.instances[d.lock as usize].view(mem);
        self.proto.exit(&inst, pid); // line 68
        self.cleanup(mem, pid, probe); // line 69
    }

    /// `Cleanup()` (Algorithm 6.3 + §6.2 recycling).
    fn cleanup<M, P>(&self, mem: &M, pid: Pid, probe: &P)
    where
        M: Mem + ?Sized,
        P: Probe + ?Sized,
    {
        let d = TaggedDesc::unpack(mem.faa(pid, self.desc, 1u64.wrapping_neg())); // line 70
        {
            let mut local = self.locals[pid].lock().unwrap();
            local.old_epoch = Some(d.epoch());
        }
        if d.refcnt != 1 {
            return;
        }
        // lines 71–75: allocate from private holdings.
        let new_lock = self.locals[pid].lock().unwrap().spare;
        let inst = &self.instances[new_lock as usize];
        inst.bump_version(mem, pid);
        inst.eager_reset(mem, pid, self.eager_resets);
        let new_spn = self.spins.allocate(mem, pid);
        let old = TaggedDesc {
            seq: d.seq,
            lock: d.lock,
            spn: d.spn,
            refcnt: 0,
        };
        let new = TaggedDesc {
            seq: (d.seq + 1) % TaggedDesc::SEQ_MOD,
            lock: new_lock,
            spn: new_spn,
            refcnt: 0,
        };
        if mem.cas(pid, self.desc, old.pack(), new.pack()) {
            // line 76 succeeded: wake the waiters, take the replaced
            // instance as our next spare, retire the replaced spin node.
            PathStats::bump(&self.stats.switches);
            probe.note(pid, "instance-switch", u64::from(new_lock));
            mem.write(pid, self.spins.go_word(d.spn), 1); // line 77
            self.locals[pid].lock().unwrap().spare = d.lock;
            self.spins.retire(mem, pid, d.spn);
        } else {
            PathStats::bump(&self.stats.switch_cas_failures);
            // Someone incremented Refcnt (or raced the switch): keep our
            // allocations for next time.
            self.spins.unallocate(pid, new_spn);
            // `spare` still holds new_lock (the extra version bump on a
            // never-installed instance is harmless).
        }
    }
}

impl LockMeta for BoundedLongLivedLock {
    fn name(&self) -> String {
        format!("long-lived(B={})", self.branching())
    }
}

impl<M: Mem + ?Sized, P: Probe + ?Sized> LockCore<M, P> for BoundedLongLivedLock {
    fn enter_core<S: AbortSignal + ?Sized>(
        &self,
        mem: &M,
        p: Pid,
        signal: &S,
        probe: &P,
    ) -> Outcome {
        if self.enter_probed(mem, p, signal, probe) {
            Outcome::Entered { ticket: None }
        } else {
            Outcome::Aborted { ticket: None }
        }
    }

    fn exit_core(&self, mem: &M, p: Pid, probe: &P) {
        self.exit_probed(mem, p, probe);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sal_memory::{AbortFlag, NeverAbort};

    fn build(n: usize) -> (BoundedLongLivedLock, sal_memory::CcMemory) {
        let mut b = MemoryBuilder::new();
        let lock = BoundedLongLivedLock::layout(&mut b, n, 4);
        (lock, b.build_cc(n))
    }

    #[test]
    fn unbounded_number_of_acquisitions() {
        let (lock, mem) = build(2);
        // Far more passages than instances exist: recycling must work.
        for round in 0..200 {
            let pid = round % 2;
            assert!(lock.enter(&mem, pid, &NeverAbort), "round {round}");
            lock.exit(&mem, pid);
        }
    }

    #[test]
    fn recycled_instances_are_properly_reset() {
        let (lock, mem) = build(3);
        // Generate aborts so tree state gets dirty, then keep cycling;
        // if lazy reset failed, a recycled instance would hand out stale
        // tickets or see a poisoned tree and panic/deadlock.
        for round in 0..100 {
            let owner = round % 3;
            assert!(lock.enter(&mem, owner, &NeverAbort));
            let sig = AbortFlag::new();
            sig.set();
            let aborter = (owner + 1) % 3;
            assert!(!lock.enter(&mem, aborter, &sig));
            lock.exit(&mem, owner);
        }
    }

    #[test]
    fn space_is_bounded_regardless_of_acquisition_count() {
        let mut b = MemoryBuilder::new();
        let _lock = BoundedLongLivedLock::layout(&mut b, 8, 4);
        let words = b.words_allocated();
        // O(N · s(N) + N²): generous sanity ceiling for N = 8.
        assert!(words < 2500, "space blow-up: {words} words for N = 8");
        // And it does not grow with use (all state pre-allocated).
    }

    #[test]
    fn per_passage_rmrs_stay_flat_over_many_recycles() {
        let (lock, mem) = build(2);
        let mut costs = Vec::new();
        for _ in 0..50 {
            let probe = sal_memory::RmrProbe::start(&mem, 0);
            assert!(lock.enter(&mem, 0, &NeverAbort));
            lock.exit(&mem, 0);
            costs.push(probe.rmrs(&mem));
        }
        let max = *costs.iter().max().unwrap();
        // Constant overhead: Figure-5 bookkeeping + lazy-reset resolves.
        assert!(max <= 40, "passage cost grew under recycling: {costs:?}");
        // And no upward drift: the last ten passages cost no more than
        // the first ten.
        let early: u64 = costs[..10].iter().sum();
        let late: u64 = costs[40..].iter().sum();
        assert!(late <= early + 10, "per-passage cost drifts: {costs:?}");
    }

    #[test]
    fn aborts_leave_the_lock_usable_across_switches() {
        let (lock, mem) = build(4);
        let sig = AbortFlag::new();
        sig.set();
        for round in 0..40 {
            let owner = round % 4;
            assert!(lock.enter(&mem, owner, &NeverAbort));
            for offset in 1..4 {
                let p = (owner + offset) % 4;
                assert!(!lock.enter(&mem, p, &sig));
            }
            lock.exit(&mem, owner);
        }
    }

    #[test]
    fn eager_resets_zero_also_works() {
        let mut b = MemoryBuilder::new();
        let lock = BoundedLongLivedLock::layout_with(&mut b, 2, 2, Ascent::Plain, 0);
        let mem = b.build_cc(2);
        for _ in 0..30 {
            assert!(lock.enter(&mem, 0, &NeverAbort));
            lock.exit(&mem, 0);
        }
    }

    #[test]
    fn lock_trait_object_usage() {
        let (lock, mem) = build(2);
        let l: &dyn crate::AbortableLock = &lock;
        assert!(!l.is_one_shot());
        assert!(l.enter(&mem, 1, &NeverAbort, &NoProbe).entered());
        l.exit(&mem, 1, &NoProbe);
        assert!(l.name().contains("long-lived"));
    }

    #[test]
    fn instance_switches_are_noted_to_the_probe() {
        let (lock, mem) = build(2);
        let log = sal_obs::EventLog::new(256);
        // Solo passages: every exit drops refcnt to 0 and switches.
        for _ in 0..5 {
            assert!(lock.enter_probed(&mem, 0, &NeverAbort, &log));
            lock.exit_probed(&mem, 0, &log);
        }
        let switches = log
            .events()
            .iter()
            .filter(|e| matches!(e.kind, sal_obs::ObsEventKind::Note("instance-switch", _)))
            .count() as u64;
        assert_eq!(
            switches,
            lock.stats().snapshot().2,
            "probe notes must mirror the PathStats switch counter"
        );
        assert!(switches >= 4);
    }
}
