//! Packing of the `LockDesc` tuple `(Lock, Spn, Refcnt)` into one word.
//!
//! §6 stores the whole descriptor in a single memory word so that F&A can
//! increment the reference count while atomically snapshotting the lock
//! and spin-node pointers, and CAS can switch all three fields at once.
//! The reference count sits in the **low** bits so `F&A(LockDesc, ±1)`
//! touches only it.
//!
//! Two layouts are provided:
//!
//! * [`SimpleDesc`] for the literal Figure-5 transformation over
//!   bump-allocated (never reused) pools — indices are monotone, so the
//!   CAS at line 76 cannot suffer ABA.
//! * [`TaggedDesc`] for the bounded-space version of §6.2, where both
//!   instance and spin-node indices *are* reused. A 20-bit switch
//!   sequence number (incremented by every successful descriptor CAS)
//!   tags each epoch, preventing descriptor ABA and letting a process
//!   recognise whether the spin node it saved as `oldSpn` still belongs
//!   to the epoch it was saved in.

/// Figure-5 layout: `[lock:24 | spn:24 | refcnt:16]`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct SimpleDesc {
    /// Index of the current one-shot lock instance.
    pub lock: u32,
    /// Index of the spin node associated with this instance.
    pub spn: u32,
    /// Number of processes currently accessing the instance.
    pub refcnt: u32,
}

impl SimpleDesc {
    /// Maximum representable index for both `lock` and `spn`.
    pub const MAX_INDEX: u32 = (1 << 24) - 1;
    /// Maximum representable reference count.
    pub const MAX_REFCNT: u32 = (1 << 16) - 1;

    /// Pack into a word.
    #[inline]
    pub fn pack(self) -> u64 {
        debug_assert!(self.lock <= Self::MAX_INDEX);
        debug_assert!(self.spn <= Self::MAX_INDEX);
        debug_assert!(self.refcnt <= Self::MAX_REFCNT);
        (u64::from(self.lock) << 40) | (u64::from(self.spn) << 16) | u64::from(self.refcnt)
    }

    /// Unpack from a word.
    #[inline]
    pub fn unpack(w: u64) -> Self {
        SimpleDesc {
            lock: (w >> 40) as u32 & Self::MAX_INDEX,
            spn: (w >> 16) as u32 & Self::MAX_INDEX,
            refcnt: w as u32 & u32::from(u16::MAX),
        }
    }
}

/// §6.2 layout: `[seq:20 | lock:12 | spn:20 | refcnt:12]`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct TaggedDesc {
    /// Switch sequence number (modulo 2²⁰), bumped on every successful
    /// instance switch.
    pub seq: u32,
    /// Index of the current one-shot lock instance (`0..=N`).
    pub lock: u32,
    /// Index of the spin node associated with this epoch.
    pub spn: u32,
    /// Number of processes currently accessing the instance.
    pub refcnt: u32,
}

impl TaggedDesc {
    /// Sequence numbers live modulo this.
    pub const SEQ_MOD: u32 = 1 << 20;
    /// Maximum instance index (so `N + 1 ≤ 4096` instances).
    pub const MAX_LOCK: u32 = (1 << 12) - 1;
    /// Maximum spin-node index (so up to `2²⁰` nodes ≥ `N(N+1) + 1` for
    /// `N ≤ 1022`).
    pub const MAX_SPN: u32 = (1 << 20) - 1;
    /// Maximum reference count (`N ≤ 4095`).
    pub const MAX_REFCNT: u32 = (1 << 12) - 1;

    /// Pack into a word.
    #[inline]
    pub fn pack(self) -> u64 {
        debug_assert!(self.seq < Self::SEQ_MOD);
        debug_assert!(self.lock <= Self::MAX_LOCK);
        debug_assert!(self.spn <= Self::MAX_SPN);
        debug_assert!(self.refcnt <= Self::MAX_REFCNT);
        (u64::from(self.seq) << 44)
            | (u64::from(self.lock) << 32)
            | (u64::from(self.spn) << 12)
            | u64::from(self.refcnt)
    }

    /// Unpack from a word.
    #[inline]
    pub fn unpack(w: u64) -> Self {
        TaggedDesc {
            seq: (w >> 44) as u32 & (Self::SEQ_MOD - 1),
            lock: (w >> 32) as u32 & Self::MAX_LOCK,
            spn: (w >> 12) as u32 & Self::MAX_SPN,
            refcnt: w as u32 & Self::MAX_REFCNT,
        }
    }

    /// The epoch identity `(seq, spn)` a process saves as its `oldSpn`.
    #[inline]
    pub fn epoch(self) -> (u32, u32) {
        (self.seq, self.spn)
    }
}

/// Version-descriptor word `V_w = (version, incarnation bit)` of the
/// lazy-reset scheme (§6.2): bit 0 is the incarnation currently in use,
/// bits 1..64 are the instance version the word was last reset for.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct VersionDesc {
    /// Version of the instance this word was last brought current for.
    pub version: u64,
    /// Incarnation (`w₀` or `w₁`) in use for that version. The *other*
    /// incarnation always holds the word's initial value.
    pub bit: u8,
}

impl VersionDesc {
    /// Pack into a word.
    #[inline]
    pub fn pack(self) -> u64 {
        debug_assert!(self.bit <= 1);
        debug_assert!(self.version < (1 << 63));
        (self.version << 1) | u64::from(self.bit)
    }

    /// Unpack from a word.
    #[inline]
    pub fn unpack(w: u64) -> Self {
        VersionDesc {
            version: w >> 1,
            bit: (w & 1) as u8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_desc_round_trips() {
        for d in [
            SimpleDesc {
                lock: 0,
                spn: 0,
                refcnt: 0,
            },
            SimpleDesc {
                lock: 1,
                spn: 2,
                refcnt: 3,
            },
            SimpleDesc {
                lock: SimpleDesc::MAX_INDEX,
                spn: SimpleDesc::MAX_INDEX,
                refcnt: SimpleDesc::MAX_REFCNT,
            },
        ] {
            assert_eq!(SimpleDesc::unpack(d.pack()), d);
        }
    }

    #[test]
    fn simple_refcnt_faa_only_touches_refcnt() {
        let d = SimpleDesc {
            lock: 7,
            spn: 9,
            refcnt: 5,
        };
        let w = d.pack() + 1;
        assert_eq!(
            SimpleDesc::unpack(w),
            SimpleDesc {
                lock: 7,
                spn: 9,
                refcnt: 6
            }
        );
        let w = d.pack().wrapping_sub(1);
        assert_eq!(
            SimpleDesc::unpack(w),
            SimpleDesc {
                lock: 7,
                spn: 9,
                refcnt: 4
            }
        );
    }

    #[test]
    fn tagged_desc_round_trips() {
        for d in [
            TaggedDesc {
                seq: 0,
                lock: 0,
                spn: 0,
                refcnt: 0,
            },
            TaggedDesc {
                seq: 12345,
                lock: 99,
                spn: 54321,
                refcnt: 77,
            },
            TaggedDesc {
                seq: TaggedDesc::SEQ_MOD - 1,
                lock: TaggedDesc::MAX_LOCK,
                spn: TaggedDesc::MAX_SPN,
                refcnt: TaggedDesc::MAX_REFCNT,
            },
        ] {
            assert_eq!(TaggedDesc::unpack(d.pack()), d);
        }
    }

    #[test]
    fn tagged_refcnt_faa_only_touches_refcnt() {
        let d = TaggedDesc {
            seq: 3,
            lock: 4,
            spn: 5,
            refcnt: 6,
        };
        assert_eq!(
            TaggedDesc::unpack(d.pack() + 1),
            TaggedDesc {
                seq: 3,
                lock: 4,
                spn: 5,
                refcnt: 7
            }
        );
    }

    #[test]
    fn epochs_distinguish_recycled_spin_nodes() {
        let a = TaggedDesc {
            seq: 1,
            lock: 0,
            spn: 5,
            refcnt: 0,
        };
        let b = TaggedDesc {
            seq: 8,
            lock: 0,
            spn: 5,
            refcnt: 0,
        };
        assert_ne!(a.epoch(), b.epoch());
    }

    #[test]
    fn version_desc_round_trips() {
        for d in [
            VersionDesc { version: 0, bit: 0 },
            VersionDesc { version: 1, bit: 1 },
            VersionDesc {
                version: (1 << 62),
                bit: 0,
            },
        ] {
            assert_eq!(VersionDesc::unpack(d.pack()), d);
        }
    }
}
