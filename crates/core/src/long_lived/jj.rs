//! Constant-*amortized*-RMR abortable mutual exclusion in the style of
//! Jayanti & Jayanti (arXiv 1809.04561).
//!
//! The source paper's headline bound is *worst-case per passage*; its
//! natural successor trades the per-passage guarantee for a stronger
//! amortized one: a deterministic abortable lock whose **total** RMR
//! bill over any execution is `O(1)` per passage, even though a single
//! passage may occasionally pay for a crowd of earlier aborts. This
//! module implements that scheme's core over the [`Mem`] primitive set,
//! CC-model exact:
//!
//! * **Queue with abandonment.** Waiters enqueue MCS-style behind a
//!   `tail` word (one `SWAP` — the doorway). An aborting waiter does
//!   *not* unlink itself (unlinking is what costs Ω(log) elsewhere): it
//!   CASes its queue node from `WAITING` to `ABORTED` and leaves — an
//!   `O(1)` passage that deposits one *token* on the node.
//! * **Promotion walk.** The exiting holder walks the queue, promoting
//!   the first `WAITING` node to `GRANTED` (one CAS arbitrates every
//!   abort/promotion race) and *consuming* every `ABORTED` node it
//!   skips. Each skip withdraws exactly the one token its abort
//!   deposited, so the potential function Φ = #aborted-unconsumed
//!   nodes pays for the whole walk: total RMRs ≤ `c · passages + b`
//!   for constants `c`, `b`, while one exit may individually bill
//!   Θ(#skipped) RMRs — the measured `max_passage_rmrs` spike.
//! * **Token recycling.** Each process owns [`POOL`] nodes used round-
//!   robin; a consumed (or self-retired) node's `reclaim` bit hands it
//!   back to its owner, bounding space at `O(N)` words total. Spin
//!   words (`go`, `reclaim`) are homed at their owner for DSM
//!   friendliness.
//!
//! The measured counterpart of the amortization argument lives in
//! `tests/rmr_bounds.rs` (debt-ledger suite) and the `table1`
//! "amortized" experiment; `AmortizedStats` in `sal-obs` is the
//! accounting instrument.

use crate::lock::{LockCore, LockMeta, Outcome};
use sal_memory::{AbortSignal, Mem, MemoryBuilder, Pid, WordArray, WordId};
use sal_obs::{probed, NoProbe, Probe};
use std::sync::Mutex;

/// Queue nodes per process. Two suffice: a process re-using a slot has
/// either retired it itself (entered passages) or waits for the
/// promotion walk to consume it (an aborted slot two attempts back).
pub const POOL: usize = 2;

const NIL: u64 = 0;
const WAITING: u64 = 0;
const GRANTED: u64 = 1;
const ABORTED: u64 = 2;

/// Per-process local state (never shared memory).
#[derive(Debug, Default)]
struct Local {
    /// Round-robin index of the next pool slot to use.
    slot: usize,
    /// The node carried from a successful `enter` to its `exit`.
    active: Option<usize>,
}

/// The Jayanti–Jayanti-style constant-amortized-RMR abortable lock.
///
/// Long-lived, starvation-free for non-aborting processes (grants
/// follow queue order), abortable in `O(1)` RMRs per aborted attempt.
/// Not FCFS across aborted attempts (an aborter re-enqueues at the
/// tail). Space is `O(N)` shared words.
#[derive(Debug)]
pub struct JjLock {
    tail: WordId,
    /// Per-node words, indexed `pid * POOL + slot`.
    status: WordArray,
    next: WordArray,
    go: WordArray,
    reclaim: WordArray,
    locals: Vec<Mutex<Local>>,
    n: usize,
}

impl JjLock {
    /// Lay out the lock for `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn layout(b: &mut MemoryBuilder, n: usize) -> Self {
        assert!(n >= 1, "lock needs at least one process");
        let tail = b.alloc(NIL);
        let home = |i: usize| i / POOL;
        // Spin words (`go`, `reclaim`) homed at their owning process;
        // `status`/`next` are only ever touched a constant number of
        // times per passage, plus once per consumed token.
        let status = b.alloc_array_with(n * POOL, |i| (home(i), WAITING));
        let next = b.alloc_array_with(n * POOL, |i| (home(i), NIL));
        let go = b.alloc_array_with(n * POOL, |i| (home(i), 0));
        let reclaim = b.alloc_array_with(n * POOL, |i| (home(i), 1));
        JjLock {
            tail,
            status,
            next,
            go,
            reclaim,
            locals: (0..n).map(|_| Mutex::new(Local::default())).collect(),
            n,
        }
    }

    /// Number of processes the lock supports.
    pub fn capacity(&self) -> usize {
        self.n
    }

    /// Encode a node index as a non-`NIL` queue word.
    fn enc(node: usize) -> u64 {
        node as u64 + 1
    }

    /// Decode a non-`NIL` queue word back to a node index.
    fn dec(word: u64) -> usize {
        (word - 1) as usize
    }

    /// `Enter()`: returns `true` iff the lock was acquired; `false` iff
    /// the attempt aborted in response to `signal`.
    pub fn enter<M, S>(&self, mem: &M, pid: Pid, signal: &S) -> bool
    where
        M: Mem + ?Sized,
        S: AbortSignal + ?Sized,
    {
        self.enter_impl(mem, pid, signal, &NoProbe)
    }

    /// [`enter`](Self::enter) with passage observability.
    pub fn enter_probed<M, S, P>(&self, mem: &M, pid: Pid, signal: &S, probe: &P) -> bool
    where
        M: Mem + ?Sized,
        S: AbortSignal + ?Sized,
        P: Probe + ?Sized,
    {
        probe.enter_begin(pid);
        let pm = probed(mem, probe);
        let completed = self.enter_impl(&pm, pid, signal, probe);
        if completed {
            probe.enter_end(pid, None);
        } else {
            probe.abort(pid, None);
        }
        completed
    }

    fn enter_impl<M, S, P>(&self, mem: &M, pid: Pid, signal: &S, probe: &P) -> bool
    where
        M: Mem + ?Sized,
        S: AbortSignal + ?Sized,
        P: Probe + ?Sized,
    {
        let slot = self.locals[pid].lock().unwrap().slot;
        let node = pid * POOL + slot;
        // Wait for our round-robin node to come back from its last use.
        // Entered passages retire their node before returning from
        // `exit`, so only a process whose recent attempts aborted can
        // wait here — and it waits on a word homed at itself that is
        // written exactly once, by the walk consuming the old abort.
        while mem.read(pid, self.reclaim.at(node)) == 0 {
            if signal.is_set() {
                return false;
            }
        }
        mem.write(pid, self.reclaim.at(node), 0);
        mem.write(pid, self.status.at(node), WAITING);
        mem.write(pid, self.next.at(node), NIL);
        mem.write(pid, self.go.at(node), 0);
        {
            let mut local = self.locals[pid].lock().unwrap();
            local.slot = (slot + 1) % POOL;
            local.active = Some(node);
        }
        // Doorway: one SWAP takes our queue position.
        let pred = mem.swap(pid, self.tail, Self::enc(node));
        if pred == NIL {
            return true; // the queue was empty: we hold the lock
        }
        mem.write(pid, self.next.at(Self::dec(pred)), Self::enc(node));
        loop {
            if mem.read(pid, self.go.at(node)) == 1 {
                return true;
            }
            if signal.is_set() {
                // One CAS arbitrates the abort/promotion race.
                if mem.cas(pid, self.status.at(node), WAITING, ABORTED) {
                    // Deposit the token and leave; the node stays in the
                    // queue until a promotion walk consumes it.
                    self.locals[pid].lock().unwrap().active = None;
                    probe.note(pid, "jj-abandon", Self::enc(node));
                    return false;
                }
                // Promoted concurrently: the grant is already ours.
                while mem.read(pid, self.go.at(node)) == 0 {}
                return true;
            }
        }
    }

    /// `Exit()`: hand the lock to the first still-waiting successor,
    /// consuming every abandoned node on the way (the promotion walk).
    pub fn exit<M: Mem + ?Sized>(&self, mem: &M, pid: Pid) {
        self.exit_impl(mem, pid, &NoProbe);
    }

    /// [`exit`](Self::exit) with passage observability.
    pub fn exit_probed<M, P>(&self, mem: &M, pid: Pid, probe: &P)
    where
        M: Mem + ?Sized,
        P: Probe + ?Sized,
    {
        let pm = probed(mem, probe);
        self.exit_impl(&pm, pid, probe);
        probe.cs_exit(pid);
    }

    fn exit_impl<M, P>(&self, mem: &M, pid: Pid, probe: &P)
    where
        M: Mem + ?Sized,
        P: Probe + ?Sized,
    {
        let node = self.locals[pid]
            .lock()
            .unwrap()
            .active
            .take()
            .expect("exit without a matching enter");
        let mut cur = node;
        loop {
            // Find cur's successor, or retire the whole queue.
            let mut nxt = mem.read(pid, self.next.at(cur));
            if nxt == NIL {
                if mem.cas(pid, self.tail, Self::enc(cur), NIL) {
                    // cur was the tail: the queue is empty. Hand the
                    // node back to its owner (ourselves, or the aborter
                    // whose token we just consumed).
                    mem.write(pid, self.reclaim.at(cur), 1);
                    return;
                }
                // A successor won the SWAP but has not linked in yet;
                // its very next step is the `next` write.
                while nxt == NIL {
                    nxt = mem.read(pid, self.next.at(cur));
                }
            }
            let succ = Self::dec(nxt);
            // cur is fully read out: consume it (return it to its
            // owner's pool) before touching the successor.
            mem.write(pid, self.reclaim.at(cur), 1);
            if mem.cas(pid, self.status.at(succ), WAITING, GRANTED) {
                mem.write(pid, self.go.at(succ), 1);
                return;
            }
            // succ aborted: its token pays for this extra iteration.
            probe.note(pid, "jj-consume", Self::enc(succ));
            cur = succ;
        }
    }
}

impl LockMeta for JjLock {
    fn name(&self) -> String {
        "jj-amortized".into()
    }
}

impl<M: Mem + ?Sized, P: Probe + ?Sized> LockCore<M, P> for JjLock {
    fn enter_core<S: AbortSignal + ?Sized>(
        &self,
        mem: &M,
        p: Pid,
        signal: &S,
        probe: &P,
    ) -> Outcome {
        if self.enter_probed(mem, p, signal, probe) {
            Outcome::Entered { ticket: None }
        } else {
            Outcome::Aborted { ticket: None }
        }
    }

    fn exit_core(&self, mem: &M, p: Pid, probe: &P) {
        self.exit_probed(mem, p, probe);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sal_memory::{AbortFlag, NeverAbort, RmrProbe};

    fn build(n: usize) -> (JjLock, sal_memory::CcMemory) {
        let mut b = MemoryBuilder::new();
        let lock = JjLock::layout(&mut b, n);
        (lock, b.build_cc(n))
    }

    #[test]
    fn repeated_acquisitions_by_one_process() {
        let (lock, mem) = build(2);
        for _ in 0..20 {
            assert!(lock.enter(&mem, 0, &NeverAbort));
            lock.exit(&mem, 0);
        }
    }

    #[test]
    fn processes_alternate_through_the_queue() {
        let (lock, mem) = build(3);
        for round in 0..8 {
            for pid in 0..3 {
                assert!(
                    lock.enter(&mem, pid, &NeverAbort),
                    "round {round} pid {pid}"
                );
                lock.exit(&mem, pid);
            }
        }
    }

    #[test]
    fn pre_fired_signal_aborts_in_constant_ops_when_held() {
        let (lock, mem) = build(3);
        assert!(lock.enter(&mem, 0, &NeverAbort));
        let sig = AbortFlag::new();
        sig.set();
        let probe = RmrProbe::start(&mem, 1);
        assert!(!lock.enter(&mem, 1, &sig));
        assert!(
            probe.rmrs(&mem) <= 10,
            "abort should be O(1): {} RMRs",
            probe.rmrs(&mem)
        );
        // The holder's exit consumes the abandoned node; the lock stays
        // usable by everyone, including the aborter.
        lock.exit(&mem, 0);
        assert!(lock.enter(&mem, 2, &NeverAbort));
        lock.exit(&mem, 2);
        assert!(lock.enter(&mem, 1, &NeverAbort));
        lock.exit(&mem, 1);
    }

    #[test]
    fn exit_walk_skips_a_crowd_of_aborters() {
        let n = 8;
        let (lock, mem) = build(n);
        assert!(lock.enter(&mem, 0, &NeverAbort));
        // Processes 1..n enqueue behind the holder, then all abort.
        let sig = AbortFlag::new();
        sig.set();
        for pid in 1..n {
            assert!(!lock.enter(&mem, pid, &sig));
        }
        // The exit walk consumes every abandoned node and empties the
        // queue; afterwards every pool slot is reusable.
        lock.exit(&mem, 0);
        for round in 0..POOL + 1 {
            for pid in 0..n {
                assert!(
                    lock.enter(&mem, pid, &NeverAbort),
                    "round {round} pid {pid}"
                );
                lock.exit(&mem, pid);
            }
        }
    }

    #[test]
    fn clean_passages_cost_constant_rmrs() {
        let (lock, mem) = build(2);
        let mut max = 0;
        for _ in 0..20 {
            let probe = RmrProbe::start(&mem, 0);
            assert!(lock.enter(&mem, 0, &NeverAbort));
            lock.exit(&mem, 0);
            max = max.max(probe.rmrs(&mem));
        }
        assert!(max <= 12, "uncontended passage too costly: {max} RMRs");
    }

    #[test]
    fn amortized_ledger_balances_under_heavy_aborts() {
        // Interleave entered passages with O(1) aborts; the cumulative
        // RMR bill must stay linear in the passage count even though
        // individual exits pay for whole crowds.
        let n = 6;
        let (lock, mem) = build(n);
        let mut passages = 0u64;
        for round in 0..12 {
            assert!(lock.enter(&mem, 0, &NeverAbort));
            passages += 1;
            let sig = AbortFlag::new();
            sig.set();
            for pid in 1..n {
                assert!(!lock.enter(&mem, pid, &sig), "round {round} pid {pid}");
                passages += 1;
            }
            lock.exit(&mem, 0);
        }
        let total = mem.total_rmrs();
        assert!(
            total <= 14 * passages + 20,
            "amortized bound violated: {total} RMRs over {passages} passages"
        );
    }

    #[test]
    fn granted_while_aborting_still_enters() {
        // p1 queues behind p0; p0 exits (granting p1) before p1 looks
        // at its signal. p1's abort CAS must lose and p1 must enter.
        let (lock, mem) = build(2);
        let sig = AbortFlag::new();
        assert!(lock.enter(&mem, 0, &NeverAbort));
        // Enqueue p1 by hand up to its waiting loop: simplest is to let
        // the grant land before the signal fires, which we emulate by
        // firing the signal only after p0's exit. Single-threaded, the
        // waiting loop will observe go=1 on its first check.
        std::thread::scope(|s| {
            let lock = &lock;
            let mem = &mem;
            let sig2 = &sig;
            let t = s.spawn(move || {
                assert!(lock.enter(mem, 1, sig2));
                lock.exit(mem, 1);
            });
            std::thread::sleep(std::time::Duration::from_millis(10));
            lock.exit(&mem, 0);
            t.join().unwrap();
            sig.set();
        });
        // Lock still consistent.
        assert!(lock.enter(&mem, 0, &NeverAbort));
        lock.exit(&mem, 0);
    }
}
