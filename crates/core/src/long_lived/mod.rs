//! The one-shot → long-lived transformation of §6 (Figure 5) and the
//! bounded-space memory-management schemes of §6.2.
//!
//! The transformation wraps a one-shot lock instance behind a single-word
//! descriptor `LockDesc = (Lock, Spn, Refcnt)`:
//!
//! * acquiring processes F&A the refcount, atomically snapshotting which
//!   instance to use;
//! * the process that drops the refcount to zero CASes in a fresh
//!   instance, so no process ever `Enter`s the same instance twice;
//! * a per-process `oldSpn` plus a one-bit *spin node* per instance lets
//!   a returning process wait out an epoch it already used in `O(1)`
//!   RMRs (without it, watching `LockDesc` itself could cost `N − 1`
//!   RMRs, since the refcount changes up to `N` times per switch).
//!
//! Preserves starvation freedom but not FCFS (Theorem 23). Two
//! implementations:
//!
//! * [`SimpleLongLivedLock`] — Figure 5 verbatim over never-reused pools
//!   (the paper's "unbounded memory, free allocation" simplification);
//! * [`BoundedLongLivedLock`] — §6.2: `N + 1` recycled instances with
//!   versioned lazy reset ([`VersionedInstance`]) and reclaimed spin
//!   nodes ([`SpinNodePool`]), for `O(N²)` total space (Claim 28).
//!
//! The module also hosts [`JjLock`] ([`jj`]), a natively long-lived
//! abortable lock in the Jayanti–Jayanti constant-*amortized*-RMR
//! style — a different trade-off from the paper's worst-case bound,
//! measured by the run-scoped `AmortizedStats` accounting in `sal-obs`.

mod bounded;
mod desc;
pub mod jj;
mod simple;
mod spin_pool;
mod versioned;

pub use bounded::{BoundedLongLivedLock, PathStats};
pub use desc::{SimpleDesc, TaggedDesc, VersionDesc};
pub use jj::JjLock;
pub use simple::SimpleLongLivedLock;
pub use spin_pool::SpinNodePool;
pub use versioned::{VersionedInstance, VersionedMem};
