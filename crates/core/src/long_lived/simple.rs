//! The literal Figure-5 transformation over bump-allocated pools.
//!
//! §6 first presents the transformation "for simplicity … in a system
//! with unbounded word and memory size, in which allocating a new (and
//! initialized) instance of the one-shot lock L is free of charge". This
//! module is that algorithm, verbatim: instances and spin nodes come from
//! pre-allocated pools and are **never reused**, so the pool capacity
//! bounds the number of instance switches. Use
//! [`BoundedLongLivedLock`](super::BoundedLongLivedLock) for the
//! bounded-space version of §6.2.

use super::desc::SimpleDesc;
use crate::lock::{LockCore, LockMeta, Outcome};
use crate::one_shot::OneShotLock;
use sal_memory::{AbortSignal, Mem, MemoryBuilder, Pid, WordArray, WordId};
use sal_obs::{probed, NoProbe, Probe};
use std::sync::Mutex;

/// Per-process local variable of Figure 5 (`oldSpn`).
#[derive(Debug, Default)]
struct Local {
    /// The spin-node index saved at the last Cleanup; `None` is the
    /// paper's `⊥`.
    old_spn: Option<u32>,
}

/// Long-lived abortable lock: Figure 5 applied to the one-shot lock of
/// Figure 1, with free (bump) allocation.
///
/// The pool holds `switches + 1` one-shot instances; acquiring more than
/// `switches` *quiescent periods* (moments where the reference count hits
/// zero and the instance is switched) exhausts it. Space is
/// `O(switches · N)` — the price of the simplified allocation story.
///
/// Starvation-free but not FCFS (Theorem 23).
#[derive(Debug)]
pub struct SimpleLongLivedLock {
    desc: WordId,
    next_lock: WordId,
    next_spn: WordId,
    instances: Vec<OneShotLock>,
    spin_nodes: WordArray,
    locals: Vec<Mutex<Local>>,
    n: usize,
}

impl SimpleLongLivedLock {
    /// Lay out the lock for `n` processes, supporting up to `switches`
    /// instance switches, with one-shot tree branching `branching`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, or if `n` or `switches` exceed the descriptor
    /// field capacities ([`SimpleDesc`]).
    pub fn layout(b: &mut MemoryBuilder, n: usize, branching: usize, switches: usize) -> Self {
        assert!(n >= 1, "lock needs at least one process");
        assert!(n < SimpleDesc::MAX_REFCNT as usize, "too many processes");
        let pool = switches + 1;
        assert!(
            pool <= SimpleDesc::MAX_INDEX as usize,
            "switch capacity exceeds descriptor field"
        );
        let desc = b.alloc(
            SimpleDesc {
                lock: 0,
                spn: 0,
                refcnt: 0,
            }
            .pack(),
        );
        let next_lock = b.alloc(1);
        let next_spn = b.alloc(1);
        let instances = (0..pool)
            .map(|_| OneShotLock::layout(b, n, branching))
            .collect();
        let spin_nodes = b.alloc_array(pool, 0);
        SimpleLongLivedLock {
            desc,
            next_lock,
            next_spn,
            instances,
            spin_nodes,
            locals: (0..n).map(|_| Mutex::new(Local::default())).collect(),
            n,
        }
    }

    /// Number of processes the lock supports.
    pub fn capacity(&self) -> usize {
        self.n
    }

    /// `Enter()` (Algorithm 6.1). Returns `true` iff the lock was
    /// acquired; `false` iff the attempt aborted in response to `signal`.
    pub fn enter<M, S>(&self, mem: &M, pid: Pid, signal: &S) -> bool
    where
        M: Mem + ?Sized,
        S: AbortSignal + ?Sized,
    {
        self.enter_impl(mem, pid, signal, &NoProbe)
    }

    /// [`enter`](Self::enter) with passage observability (see
    /// [`BoundedLongLivedLock::enter_probed`](super::BoundedLongLivedLock::enter_probed)).
    pub fn enter_probed<M, S, P>(&self, mem: &M, pid: Pid, signal: &S, probe: &P) -> bool
    where
        M: Mem + ?Sized,
        S: AbortSignal + ?Sized,
        P: Probe + ?Sized,
    {
        probe.enter_begin(pid);
        let pm = probed(mem, probe);
        let completed = self.enter_impl(&pm, pid, signal, probe);
        if completed {
            probe.enter_end(pid, None);
        } else {
            probe.abort(pid, None);
        }
        completed
    }

    fn enter_impl<M, S, P>(&self, mem: &M, pid: Pid, signal: &S, probe: &P) -> bool
    where
        M: Mem + ?Sized,
        S: AbortSignal + ?Sized,
        P: Probe + ?Sized,
    {
        let old_spn = self.locals[pid].lock().unwrap().old_spn;
        let d = SimpleDesc::unpack(mem.read(pid, self.desc)); // line 57
        if Some(d.spn) == old_spn {
            // lines 58–61: we already used this instance; wait for the
            // switch.
            while mem.read(pid, self.spin_nodes.at(d.spn as usize)) == 0 {
                if signal.is_set() {
                    return false;
                }
            }
        }
        // line 62: snapshot Lock & Spn while incrementing Refcnt.
        let d = SimpleDesc::unpack(mem.faa(pid, self.desc, 1));
        let completed = self.instances[d.lock as usize]
            .enter(mem, pid, signal)
            .entered(); // line 63
        if !completed {
            self.cleanup(mem, pid, probe); // lines 64–65
        }
        completed // line 66
    }

    /// `Exit()` (Algorithm 6.2).
    pub fn exit<M: Mem + ?Sized>(&self, mem: &M, pid: Pid) {
        self.exit_impl(mem, pid, &NoProbe);
    }

    /// [`exit`](Self::exit) with passage observability.
    pub fn exit_probed<M, P>(&self, mem: &M, pid: Pid, probe: &P)
    where
        M: Mem + ?Sized,
        P: Probe + ?Sized,
    {
        let pm = probed(mem, probe);
        self.exit_impl(&pm, pid, probe);
        probe.cs_exit(pid);
    }

    fn exit_impl<M, P>(&self, mem: &M, pid: Pid, probe: &P)
    where
        M: Mem + ?Sized,
        P: Probe + ?Sized,
    {
        let d = SimpleDesc::unpack(mem.read(pid, self.desc)); // line 67
        self.instances[d.lock as usize].exit(mem, pid); // line 68
        self.cleanup(mem, pid, probe); // line 69
    }

    /// `Cleanup()` (Algorithm 6.3).
    fn cleanup<M, P>(&self, mem: &M, pid: Pid, probe: &P)
    where
        M: Mem + ?Sized,
        P: Probe + ?Sized,
    {
        // line 70: decrement Refcnt, snapshotting the tuple.
        let d = SimpleDesc::unpack(mem.faa(pid, self.desc, 1u64.wrapping_neg()));
        self.locals[pid].lock().unwrap().old_spn = Some(d.spn);
        if d.refcnt == 1 {
            // lines 71–75: we might be the last user — prepare fresh
            // instances and try to switch.
            let new_lock = mem.faa(pid, self.next_lock, 1) as u32;
            let new_spn = mem.faa(pid, self.next_spn, 1) as u32;
            assert!(
                (new_lock as usize) < self.instances.len(),
                "simple long-lived lock exhausted its {} pre-allocated instances",
                self.instances.len()
            );
            let old = SimpleDesc {
                lock: d.lock,
                spn: d.spn,
                refcnt: 0,
            };
            let new = SimpleDesc {
                lock: new_lock,
                spn: new_spn,
                refcnt: 0,
            };
            // line 76–77
            if mem.cas(pid, self.desc, old.pack(), new.pack()) {
                probe.note(pid, "instance-switch", u64::from(new_lock));
                mem.write(pid, self.spin_nodes.at(d.spn as usize), 1);
            }
        }
    }
}

impl LockMeta for SimpleLongLivedLock {
    fn name(&self) -> String {
        format!(
            "long-lived-simple(B={})",
            self.instances[0].tree().branching()
        )
    }
}

impl<M: Mem + ?Sized, P: Probe + ?Sized> LockCore<M, P> for SimpleLongLivedLock {
    fn enter_core<S: AbortSignal + ?Sized>(
        &self,
        mem: &M,
        p: Pid,
        signal: &S,
        probe: &P,
    ) -> Outcome {
        if self.enter_probed(mem, p, signal, probe) {
            Outcome::Entered { ticket: None }
        } else {
            Outcome::Aborted { ticket: None }
        }
    }

    fn exit_core(&self, mem: &M, p: Pid, probe: &P) {
        self.exit_probed(mem, p, probe);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sal_memory::{AbortFlag, NeverAbort};

    fn build(n: usize, switches: usize) -> (SimpleLongLivedLock, sal_memory::CcMemory) {
        let mut b = MemoryBuilder::new();
        let lock = SimpleLongLivedLock::layout(&mut b, n, 4, switches);
        (lock, b.build_cc(n))
    }

    #[test]
    fn repeated_acquisitions_by_one_process() {
        let (lock, mem) = build(2, 16);
        for _ in 0..10 {
            assert!(lock.enter(&mem, 0, &NeverAbort));
            lock.exit(&mem, 0);
        }
    }

    #[test]
    fn processes_alternate_across_instance_switches() {
        let (lock, mem) = build(3, 32);
        for round in 0..8 {
            for pid in 0..3 {
                assert!(
                    lock.enter(&mem, pid, &NeverAbort),
                    "round {round} pid {pid}"
                );
                lock.exit(&mem, pid);
            }
        }
    }

    #[test]
    fn abort_before_doorway_returns_false_quickly() {
        let (lock, mem) = build(2, 8);
        // p0 acquires and releases, making p0's oldSpn equal the (still
        // current, since nobody else was active... actually refcnt hit 0
        // so p0 switched). Second acquisition proceeds on the new
        // instance.
        assert!(lock.enter(&mem, 0, &NeverAbort));
        lock.exit(&mem, 0);
        assert!(lock.enter(&mem, 0, &NeverAbort));
        lock.exit(&mem, 0);
        // Aborting inside the one-shot enter: pre-set signal while the
        // lock is held by p0.
        assert!(lock.enter(&mem, 0, &NeverAbort));
        let sig = AbortFlag::new();
        sig.set();
        assert!(!lock.enter(&mem, 1, &sig));
        lock.exit(&mem, 0);
        // Lock remains usable.
        assert!(lock.enter(&mem, 1, &NeverAbort));
        lock.exit(&mem, 1);
    }

    #[test]
    fn solo_process_switches_instance_every_passage() {
        // With a single process, every exit drops refcnt to 0 and
        // switches; the pool bounds the number of passages.
        let (lock, mem) = build(1, 5);
        for _ in 0..5 {
            assert!(lock.enter(&mem, 0, &NeverAbort));
            lock.exit(&mem, 0);
        }
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn pool_exhaustion_panics_with_context() {
        let (lock, mem) = build(1, 2);
        for _ in 0..10 {
            assert!(lock.enter(&mem, 0, &NeverAbort));
            lock.exit(&mem, 0);
        }
    }

    #[test]
    fn per_passage_rmr_cost_stays_constant_without_aborts() {
        let (lock, mem) = build(2, 64);
        let mut max = 0;
        for _ in 0..20 {
            let probe = sal_memory::RmrProbe::start(&mem, 0);
            assert!(lock.enter(&mem, 0, &NeverAbort));
            lock.exit(&mem, 0);
            max = max.max(probe.rmrs(&mem));
        }
        // Figure-5 overhead is a constant number of RMRs on top of the
        // one-shot passage (desc reads/F&As, allocation F&As, CAS, spin
        // node write).
        assert!(max <= 20, "long-lived no-abort passage too costly: {max}");
    }
}
