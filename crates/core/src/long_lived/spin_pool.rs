//! Spin-node pools with safe, RMR-cheap reclamation (§6.2).
//!
//! A spin node may be busy-waited on by a process even after `LockDesc`
//! stopped pointing to it, so nodes can only be recycled once no process
//! spins on them. The paper uses the scheme of Aghazadeh, Golab & Woelfel
//! (PODC'13), whose full pseudo-code is not reproduced in the paper; we
//! implement a scheme in its spirit with the same structure — per-process
//! pools of `N + 1` nodes and an announce array — and the following cost
//! profile: `O(1)` *amortized* RMRs per retire/allocate via incremental
//! scanning, with an `O(N)` worst-case fallback scan when the free list
//! is empty (the paper's scheme is `O(1)` worst-case). Safety is
//! identical: a node is reclaimed only after a full announce-array scan,
//! performed entirely after the node's retirement, observed no process
//! announcing it.
//!
//! Protocol (hazard-pointer-style):
//!
//! * A process that wants to spin on node `s` first *announces* it
//!   (`announce[p] = s + 1`), then re-validates that `LockDesc` still
//!   carries `s`'s epoch; only then does it spin. Because a node is
//!   retired only after the descriptor switched away from it, a
//!   validated announcement is always visible to every scan that could
//!   reclaim the node.
//! * The retirer enqueues the node; scans (incremental on every
//!   [`SpinNodePool::retire`]/[`SpinNodePool::allocate`], full on demand)
//!   walk the announce array and move un-announced nodes to the free
//!   list, resetting their `go` word.

use sal_memory::{Mem, MemoryBuilder, Pid, WordArray};
use std::collections::VecDeque;
use std::sync::Mutex;

/// How many announce slots each incremental scan step inspects.
const SCAN_STRIDE: usize = 4;

/// Per-process local bookkeeping (process-private: costs no RMRs).
#[derive(Debug, Default)]
struct PoolLocal {
    /// Verified-free node indices owned by this process.
    free: Vec<u32>,
    /// Retired nodes awaiting a clean scan.
    retired: VecDeque<u32>,
    /// Incremental scan state: the node being verified and the next
    /// announce slot to inspect.
    scan: Option<(u32, usize)>,
}

/// Pools of one-word spin nodes for `n` processes, `n + 1` nodes each,
/// plus the genesis node (index 0) installed in the initial `LockDesc`.
#[derive(Debug)]
pub struct SpinNodePool {
    /// `go` word of every node; index = node id.
    nodes: WordArray,
    /// `announce[p] = s + 1` ⇔ process `p` may be spinning on node `s`.
    announce: WordArray,
    locals: Vec<Mutex<PoolLocal>>,
    n: usize,
}

impl SpinNodePool {
    /// Lay out pools for `n` processes: `n(n+1) + 1` node words and `n`
    /// announce words — the `O(N²)` component of the final space bound.
    pub fn layout(b: &mut MemoryBuilder, n: usize) -> Self {
        let nodes = b.alloc_array(n * (n + 1) + 1, 0);
        let announce = b.alloc_array(n, 0);
        let locals = (0..n)
            .map(|p| {
                let base = 1 + p as u32 * (n as u32 + 1);
                Mutex::new(PoolLocal {
                    free: (base..base + n as u32 + 1).collect(),
                    retired: VecDeque::new(),
                    scan: None,
                })
            })
            .collect();
        SpinNodePool {
            nodes,
            announce,
            locals,
            n,
        }
    }

    /// Total number of spin nodes managed.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The `go` word of node `s`.
    pub fn go_word(&self, s: u32) -> sal_memory::WordId {
        self.nodes.at(s as usize)
    }

    /// Announce that process `p` is about to spin on node `s`. The caller
    /// **must** re-validate its reason for spinning (re-read `LockDesc`)
    /// after this call and before actually spinning, and must call
    /// [`clear_announce`](Self::clear_announce) when done.
    pub fn announce<M: Mem + ?Sized>(&self, mem: &M, p: Pid, s: u32) {
        mem.write(p, self.announce.at(p), u64::from(s) + 1);
    }

    /// Withdraw process `p`'s announcement.
    pub fn clear_announce<M: Mem + ?Sized>(&self, mem: &M, p: Pid) {
        mem.write(p, self.announce.at(p), 0);
    }

    /// Retire node `s`: it will be reclaimed into process `p`'s pool once
    /// a clean scan proves no process spins on it. Performs `O(1)` scan
    /// work.
    pub fn retire<M: Mem + ?Sized>(&self, mem: &M, p: Pid, s: u32) {
        let mut local = self.locals[p].lock().unwrap();
        local.retired.push_back(s);
        self.advance_scan(mem, p, &mut local);
    }

    /// Return an *unused* node (allocated but never installed, e.g.
    /// because the descriptor CAS failed) straight to the free list.
    pub fn unallocate(&self, p: Pid, s: u32) {
        self.locals[p].lock().unwrap().free.push(s);
    }

    /// Allocate a node from process `p`'s pool, with its `go` word reset
    /// to 0. Performs `O(1)` amortized scan work; falls back to a full
    /// `O(N)` scan of the retired queue when the free list is empty —
    /// guaranteed to succeed because at most `N` of the `N + 1` owned
    /// nodes can be announced at any time.
    ///
    /// # Panics
    ///
    /// Panics if the pool invariant is violated (more nodes pinned than
    /// processes exist) — indicates protocol misuse.
    pub fn allocate<M: Mem + ?Sized>(&self, mem: &M, p: Pid) -> u32 {
        let mut local = self.locals[p].lock().unwrap();
        self.advance_scan(mem, p, &mut local);
        if let Some(s) = local.free.pop() {
            return s;
        }
        // Fallback: full scans over the retired queue.
        let candidates = local.retired.len();
        for _ in 0..candidates {
            let s = local.retired.pop_front().expect("non-empty");
            // Abandon any in-flight incremental scan of s (it is covered
            // by this full scan) or of another node (it stays queued).
            if let Some((scanning, _)) = local.scan {
                if scanning == s {
                    local.scan = None;
                }
            }
            if self.full_scan_clean(mem, p, s) {
                mem.write(p, self.nodes.at(s as usize), 0); // reset go
                return s;
            }
            local.retired.push_back(s);
        }
        panic!(
            "spin-node pool of process {p} exhausted: {candidates} retired nodes all pinned \
             — protocol violation (a process must announce at most one node)"
        );
    }

    /// One increment of background scanning: verify up to [`SCAN_STRIDE`]
    /// announce slots of the node at the head of the retired queue.
    fn advance_scan<M: Mem + ?Sized>(&self, mem: &M, p: Pid, local: &mut PoolLocal) {
        let (s, mut next) = match local.scan.take() {
            Some(state) => state,
            None => match local.retired.pop_front() {
                Some(s) => (s, 0),
                None => return,
            },
        };
        for _ in 0..SCAN_STRIDE {
            if next >= self.n {
                // Clean scan completed: reclaim.
                mem.write(p, self.nodes.at(s as usize), 0);
                local.free.push(s);
                return;
            }
            if mem.read(p, self.announce.at(next)) == u64::from(s) + 1 {
                // Pinned: requeue and restart the scan later from slot 0
                // (announcements can move between slots over time only by
                // being dropped and re-made, so a later full pass is
                // still sound).
                local.retired.push_back(s);
                return;
            }
            next += 1;
        }
        if next >= self.n {
            mem.write(p, self.nodes.at(s as usize), 0);
            local.free.push(s);
        } else {
            local.scan = Some((s, next));
        }
    }

    /// Scan every announce slot for node `s`; `true` if nobody announces
    /// it.
    fn full_scan_clean<M: Mem + ?Sized>(&self, mem: &M, p: Pid, s: u32) -> bool {
        (0..self.n).all(|q| mem.read(p, self.announce.at(q)) != u64::from(s) + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sal_memory::Mem;

    fn pool(n: usize) -> (SpinNodePool, sal_memory::CcMemory) {
        let mut b = MemoryBuilder::new();
        let pool = SpinNodePool::layout(&mut b, n);
        (pool, b.build_cc(n))
    }

    #[test]
    fn pool_sizes_are_quadratic() {
        let (pool, _) = pool(8);
        assert_eq!(pool.num_nodes(), 8 * 9 + 1);
    }

    #[test]
    fn allocate_retire_cycle_recycles_nodes() {
        let (pool, mem) = pool(2);
        let mut seen = std::collections::HashSet::new();
        // Each process owns 3 nodes; cycling allocate→retire many times
        // must keep succeeding (reclamation works) and stay within the
        // owned id range.
        for _ in 0..20 {
            let s = pool.allocate(&mem, 0);
            seen.insert(s);
            assert!((1..=3).contains(&s), "node {s} outside p0's pool");
            // Simulate an install/switch: go gets set, node retired.
            mem.write(0, pool.go_word(s), 1);
            pool.retire(&mem, 0, s);
        }
        assert!(!seen.is_empty());
    }

    #[test]
    fn allocated_nodes_have_reset_go() {
        let (pool, mem) = pool(1);
        for _ in 0..6 {
            let s = pool.allocate(&mem, 0);
            assert_eq!(mem.read(0, pool.go_word(s)), 0);
            mem.write(0, pool.go_word(s), 1);
            pool.retire(&mem, 0, s);
        }
    }

    #[test]
    fn announced_nodes_are_not_reclaimed() {
        let (pool, mem) = pool(2);
        let s = pool.allocate(&mem, 0);
        mem.write(0, pool.go_word(s), 1);
        // Process 1 announces s (as if about to spin on it).
        pool.announce(&mem, 1, s);
        pool.retire(&mem, 0, s);
        // Drain p0's free list; s must never be handed back while pinned.
        let mut handed = Vec::new();
        for _ in 0..2 {
            // p0 started with 3 nodes, one (s) is retired+pinned.
            let t = pool.allocate(&mem, 0);
            assert_ne!(t, s, "pinned node was reclaimed");
            handed.push(t);
        }
        // Un-pin and verify s becomes allocatable again.
        pool.clear_announce(&mem, 1);
        let t = pool.allocate(&mem, 0);
        assert_eq!(t, s);
        assert_eq!(mem.read(0, pool.go_word(t)), 0, "go reset on reclaim");
        let _ = handed;
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn all_pinned_pool_panics_cleanly() {
        // 1 process, 2 nodes. Pin both (protocol violation: one process
        // announcing two nodes is impossible in the real protocol, we
        // fake it by never clearing) and exhaust.
        let (pool, mem) = pool(1);
        let a = pool.allocate(&mem, 0);
        let b = pool.allocate(&mem, 0);
        pool.announce(&mem, 0, a);
        pool.retire(&mem, 0, a);
        // Announce can only hold one value; move it to b after retiring a
        // — but allocate scans fresh, so pin b via the single slot and
        // retire it too, then re-pin a... With one slot we can only pin
        // one node, so instead never retire b at all: free list empty,
        // retired = [a] pinned → exhausted.
        let _ = b;
        let _ = pool.allocate(&mem, 0);
    }

    #[test]
    fn incremental_scan_reclaims_without_full_fallback() {
        let (pool, mem) = pool(4);
        // Retire a node, then let unrelated retire/allocate calls advance
        // the scan until it is reclaimed into the free list.
        let s = pool.allocate(&mem, 0);
        mem.write(0, pool.go_word(s), 1);
        pool.retire(&mem, 0, s);
        // Each advance covers SCAN_STRIDE = 4 announce slots, so for
        // n = 4 the retire above already completed a clean pass and s is
        // back on the free list with go reset — no fallback scans needed.
        let mut got = false;
        for _ in 0..10 {
            let u = pool.allocate(&mem, 0);
            if u == s {
                got = true;
                break;
            }
            pool.unallocate(0, u);
        }
        assert!(got, "retired node was never reclaimed");
        assert_eq!(mem.read(0, pool.go_word(s)), 0, "go reset on reclaim");
    }

    #[test]
    fn unallocate_returns_node_without_scan() {
        let (pool, mem) = pool(1);
        let s = pool.allocate(&mem, 0);
        pool.unallocate(0, s);
        assert_eq!(pool.allocate(&mem, 0), s);
    }
}
