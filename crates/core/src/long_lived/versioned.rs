//! The lazy-reset scheme of §6.2: versioned, recyclable word regions.
//!
//! Resetting all `s(N)` words of a one-shot instance on reuse would cost
//! `s(N)` RMRs in one operation. Instead, every *logical* word `w` of an
//! instance is represented by three physical words:
//!
//! * `V_w` — a [`VersionDesc`] `(v_w, b_w)`: the instance version the word
//!   was last brought current for, and the incarnation in use then;
//! * `w₀`, `w₁` — the two incarnations. Invariant: `w_{1−b_w}` always
//!   holds the word's initial value.
//!
//! On first touching `w` in an instance of version `v`: if `V_w` is
//! current (`v_w = v`), use `w_{b_w}`. Otherwise CAS `V_w` to
//! `(v, 1−b_w)` — racing processes agree via the CAS — and the winner
//! resets the stale incarnation `w_{b_w}` to the initial value (it is
//! untouched by versions `v` and `v+1`-to-be, so the reset races with
//! nothing). Everyone then uses `w_{1−b_w}`, which held the initial value
//! by the invariant. Cost: `O(1)` extra RMRs per access.
//!
//! Unlike Aghazadeh et al. [1, §4], no bits are stolen from the data
//! words themselves. Version wraparound would need 2⁶³ reuses of a single
//! instance; we nevertheless implement the paper's eager-reset backstop
//! ([`VersionedInstance::eager_reset`]) that freshens a configurable
//! number of words on every reuse.

use super::desc::VersionDesc;
use sal_memory::{Mem, MemoryBuilder, Pid, WordArray, WordId};
use std::sync::Arc;

/// One recyclable instance region: the physical backing for a set of
/// logical words laid out in a scratch [`MemoryBuilder`].
#[derive(Clone, Debug)]
pub struct VersionedInstance {
    /// Current version of this instance; bumped by the (exclusive) owner
    /// on reuse, read (and cached) by everyone during use.
    ver: WordId,
    /// `V_w` descriptors, one per logical word.
    vws: WordArray,
    /// Incarnation 0 of every logical word.
    w0: WordArray,
    /// Incarnation 1 of every logical word.
    w1: WordArray,
    /// Cursor for eager wraparound resets.
    cursor: WordId,
    /// Initial value of every logical word (shared across instances).
    inits: Arc<Vec<u64>>,
}

impl VersionedInstance {
    /// Allocate the physical words backing one instance whose logical
    /// layout has the given initial values. Space: `3s + 2` words for `s`
    /// logical words.
    pub fn layout(b: &mut MemoryBuilder, inits: Arc<Vec<u64>>) -> Self {
        let s = inits.len();
        let ver = b.alloc(0);
        let vws = b.alloc_array(s, VersionDesc { version: 0, bit: 0 }.pack());
        let w0 = b.alloc_array_with(s, |i| (0, inits[i]));
        let w1 = b.alloc_array_with(s, |i| (0, inits[i]));
        let cursor = b.alloc(0);
        VersionedInstance {
            ver,
            vws,
            w0,
            w1,
            cursor,
            inits,
        }
    }

    /// Number of logical words.
    pub fn logical_words(&self) -> usize {
        self.inits.len()
    }

    /// Bump the instance to a fresh version. Must only be called by a
    /// process holding the instance exclusively (the §6.2 recycling
    /// protocol guarantees this: an instance is re-allocated only by the
    /// process that retired it, after its reference count hit zero).
    pub fn bump_version<M: Mem + ?Sized>(&self, mem: &M, p: Pid) {
        let v = mem.read(p, self.ver);
        mem.write(p, self.ver, v + 1);
    }

    /// Eagerly freshen `count` logical words (round-robin over the
    /// region) to the current version — the paper's guard against version
    /// wraparound making a stale word look current. Exclusive-owner only.
    pub fn eager_reset<M: Mem + ?Sized>(&self, mem: &M, p: Pid, count: usize) {
        if count == 0 || self.inits.is_empty() {
            return;
        }
        let v = mem.read(p, self.ver);
        let s = self.inits.len();
        let start = mem.read(p, self.cursor) as usize;
        for k in 0..count.min(s) {
            let i = (start + k) % s;
            let vd = VersionDesc::unpack(mem.read(p, self.vws.at(i)));
            if vd.version != v {
                let flipped = VersionDesc {
                    version: v,
                    bit: 1 - vd.bit,
                };
                mem.write(p, self.vws.at(i), flipped.pack());
                // The previously-in-use incarnation becomes the clean
                // next incarnation.
                let stale = if vd.bit == 0 {
                    self.w0.at(i)
                } else {
                    self.w1.at(i)
                };
                mem.write(p, stale, self.inits[i]);
            }
        }
        mem.write(p, self.cursor, ((start + count.min(s)) % s) as u64);
    }

    /// Resolve logical word `w` to the physical incarnation current for
    /// this instance's version, running the lazy-reset protocol if the
    /// word is stale. Wait-free: the CAS can fail at most once per word
    /// per version (the loop runs at most twice).
    fn resolve<M: Mem + ?Sized>(&self, mem: &M, p: Pid, w: WordId) -> WordId {
        let i = w.index();
        debug_assert!(i < self.inits.len(), "logical word out of region");
        let v = mem.read(p, self.ver);
        loop {
            let raw = mem.read(p, self.vws.at(i));
            let vd = VersionDesc::unpack(raw);
            if vd.version == v {
                return if vd.bit == 0 {
                    self.w0.at(i)
                } else {
                    self.w1.at(i)
                };
            }
            let flipped = VersionDesc {
                version: v,
                bit: 1 - vd.bit,
            };
            if mem.cas(p, self.vws.at(i), raw, flipped.pack()) {
                // Reset the stale incarnation for the version after next.
                let stale = if vd.bit == 0 {
                    self.w0.at(i)
                } else {
                    self.w1.at(i)
                };
                mem.write(p, stale, self.inits[i]);
                return if flipped.bit == 0 {
                    self.w0.at(i)
                } else {
                    self.w1.at(i)
                };
            }
            // Another process flipped the word; the reread sees the
            // current version.
        }
    }

    /// View this instance as a [`Mem`] over its logical words, backed by
    /// `mem`.
    pub fn view<'a, M: Mem + ?Sized>(&'a self, mem: &'a M) -> VersionedMem<'a, M> {
        VersionedMem {
            inner: mem,
            inst: self,
        }
    }
}

/// A [`Mem`] implementation that transparently applies the lazy-reset
/// protocol: algorithm code written against logical [`WordId`]s (laid out
/// in a scratch builder) runs unchanged over a recycled instance.
#[derive(Debug)]
pub struct VersionedMem<'a, M: ?Sized> {
    inner: &'a M,
    inst: &'a VersionedInstance,
}

impl<M: Mem + ?Sized> Mem for VersionedMem<'_, M> {
    fn read(&self, p: Pid, w: WordId) -> u64 {
        let phys = self.inst.resolve(self.inner, p, w);
        self.inner.read(p, phys)
    }

    fn write(&self, p: Pid, w: WordId, v: u64) {
        let phys = self.inst.resolve(self.inner, p, w);
        self.inner.write(p, phys, v);
    }

    fn cas(&self, p: Pid, w: WordId, old: u64, new: u64) -> bool {
        let phys = self.inst.resolve(self.inner, p, w);
        self.inner.cas(p, phys, old, new)
    }

    fn faa(&self, p: Pid, w: WordId, add: u64) -> u64 {
        let phys = self.inst.resolve(self.inner, p, w);
        self.inner.faa(p, phys, add)
    }

    fn swap(&self, p: Pid, w: WordId, v: u64) -> u64 {
        let phys = self.inst.resolve(self.inner, p, w);
        self.inner.swap(p, phys, v)
    }

    fn rmrs(&self, p: Pid) -> u64 {
        self.inner.rmrs(p)
    }

    fn total_rmrs(&self) -> u64 {
        self.inner.total_rmrs()
    }

    fn ops(&self, p: Pid) -> u64 {
        self.inner.ops(p)
    }

    fn num_words(&self) -> usize {
        self.inst.logical_words()
    }

    fn num_procs(&self) -> usize {
        self.inner.num_procs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sal_memory::Mem;

    fn region(inits: Vec<u64>) -> (VersionedInstance, sal_memory::CcMemory) {
        let mut b = MemoryBuilder::new();
        let inst = VersionedInstance::layout(&mut b, Arc::new(inits));
        (inst, b.build_cc(4))
    }

    fn logical(i: usize) -> WordId {
        WordId::from_index(i)
    }

    #[test]
    fn fresh_instance_reads_initial_values() {
        let (inst, mem) = region(vec![10, 20, 30]);
        let v = inst.view(&mem);
        assert_eq!(v.read(0, logical(0)), 10);
        assert_eq!(v.read(1, logical(2)), 30);
        assert_eq!(v.num_words(), 3);
    }

    #[test]
    fn all_primitives_operate_on_the_current_incarnation() {
        let (inst, mem) = region(vec![5]);
        let v = inst.view(&mem);
        assert_eq!(v.faa(0, logical(0), 3), 5);
        assert!(v.cas(0, logical(0), 8, 9));
        assert!(!v.cas(0, logical(0), 8, 10));
        assert_eq!(v.swap(0, logical(0), 11), 9);
        v.write(0, logical(0), 12);
        assert_eq!(v.read(0, logical(0)), 12);
    }

    #[test]
    fn bump_version_lazily_resets_every_word() {
        let (inst, mem) = region(vec![1, 2, 3]);
        {
            let v = inst.view(&mem);
            v.write(0, logical(0), 100);
            v.write(0, logical(1), 200);
            // logical(2) untouched.
        }
        inst.bump_version(&mem, 0);
        let v = inst.view(&mem);
        assert_eq!(v.read(1, logical(0)), 1, "reset to initial");
        assert_eq!(v.read(2, logical(1)), 2);
        assert_eq!(v.read(3, logical(2)), 3);
        // And the new incarnation is writable independently.
        v.write(1, logical(0), 777);
        assert_eq!(v.read(1, logical(0)), 777);
    }

    #[test]
    fn many_reuse_cycles_stay_clean() {
        let (inst, mem) = region(vec![42]);
        for round in 0..10u64 {
            let v = inst.view(&mem);
            assert_eq!(v.read(0, logical(0)), 42, "round {round}");
            v.faa(0, logical(0), round + 1);
            assert_eq!(v.read(0, logical(0)), 42 + round + 1);
            inst.bump_version(&mem, 0);
        }
    }

    #[test]
    fn resolve_overhead_is_constant_rmrs() {
        let (inst, mem) = region(vec![0; 16]);
        inst.bump_version(&mem, 0); // make every word stale
        let v = inst.view(&mem);
        let probe = sal_memory::RmrProbe::start(&mem, 0);
        v.write(0, logical(3), 1); // stale path: ver read + V_w read + CAS + reset + write
        assert!(probe.rmrs(&mem) <= 5);
        let probe = sal_memory::RmrProbe::start(&mem, 0);
        v.write(0, logical(3), 2); // current path: cached ver + cached V_w + write
        assert_eq!(probe.rmrs(&mem), 1);
    }

    #[test]
    fn racing_flips_agree_on_one_incarnation() {
        // Simulate the race: both processes observe the stale descriptor;
        // p0 wins the CAS, p1's CAS fails and its retry sees the current
        // version — both end up using the same physical word.
        let (inst, mem) = region(vec![7]);
        inst.bump_version(&mem, 0);
        let v = inst.view(&mem);
        // Both processes write; whatever the interleaving (here
        // sequential), they address the same incarnation.
        v.faa(0, logical(0), 1);
        v.faa(1, logical(0), 1);
        assert_eq!(v.read(0, logical(0)), 9);
    }

    #[test]
    fn eager_reset_freshens_stale_words() {
        let (inst, mem) = region(vec![1, 2, 3, 4]);
        {
            let v = inst.view(&mem);
            for i in 0..4 {
                v.write(0, logical(i), 99);
            }
        }
        inst.bump_version(&mem, 0);
        inst.eager_reset(&mem, 0, 4);
        // After the eager pass every V_w is current; reads take the fast
        // path and see initial values.
        let v = inst.view(&mem);
        for i in 0..4 {
            assert_eq!(v.read(1, logical(i)), (i + 1) as u64);
        }
    }

    #[test]
    fn eager_reset_cursor_wraps_round_robin() {
        let (inst, mem) = region(vec![0; 3]);
        inst.eager_reset(&mem, 0, 2);
        inst.eager_reset(&mem, 0, 2); // wraps past the end
        inst.eager_reset(&mem, 0, 0); // no-op
                                      // No assertion beyond "does not panic and stays within bounds";
                                      // the cursor value is internal.
    }

    #[test]
    fn physical_space_is_three_words_per_logical_plus_two() {
        let mut b = MemoryBuilder::new();
        let before = b.words_allocated();
        let _inst = VersionedInstance::layout(&mut b, Arc::new(vec![0; 10]));
        assert_eq!(b.words_allocated() - before, 3 * 10 + 2);
    }
}
