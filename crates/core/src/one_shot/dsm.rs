//! The DSM variant of the one-shot lock (§3, "DSM variant").
//!
//! In the DSM model a process's `go` slot is chosen at run time by the
//! doorway F&A, so it cannot be guaranteed local and spinning on it could
//! cost unboundedly many RMRs. The variant adds one level of indirection:
//! process `q` spins on a *spin bit* that is statically homed at `q`, and
//! publishes it in `announce[ticket]`. A handoff writes `go[i] = 1`,
//! reads `announce[i]`, and — if published — sets the spin bit.

use crate::lock::{LockCore, LockMeta, Outcome};
use crate::tree::{Ascent, FindNextResult, Tree};
use sal_memory::{AbortSignal, Mem, MemoryBuilder, Pid, WordArray, WordId};
use sal_obs::{probed, Probe};

use super::{EnterOutcome, NO_ONE};

/// DSM flavour of [`OneShotLock`](super::OneShotLock): identical queue +
/// tree protocol, but the busy-wait loop spins on a process-local bit so
/// that waiting is RMR-free in the DSM cost model.
///
/// Layout: `spin[q]` is homed at process `q` (allocate the memory with
/// [`MemoryBuilder::build_dsm`]); `announce`, `go`, the scalars and the
/// tree are homed at process 0 — every access to them is a bounded number
/// of RMRs for everyone else, which is fine because all accesses outside
/// the spin loop are wait-free.
#[derive(Clone, Debug)]
pub struct DsmOneShotLock {
    tail: WordId,
    head: WordId,
    last_exited: WordId,
    go: WordArray,
    /// `announce[i] = q + 1` means the process holding ticket `i` is `q`
    /// and spins on `spin[q]`; `0` means not yet published (the paper's
    /// `⊥`).
    announce: WordArray,
    /// `spin[q]`, homed at process `q`.
    spin: WordArray,
    tree: Tree,
    ascent: Ascent,
    n: usize,
}

impl DsmOneShotLock {
    /// Lay out the DSM one-shot lock for `n` processes with tree
    /// branching `branching`.
    pub fn layout(b: &mut MemoryBuilder, n: usize, branching: usize) -> Self {
        Self::layout_with(b, n, branching, Ascent::Adaptive)
    }

    /// Lay out choosing the `FindNext` ascent flavour.
    pub fn layout_with(b: &mut MemoryBuilder, n: usize, branching: usize, ascent: Ascent) -> Self {
        assert!(n >= 1, "lock needs at least one process");
        let tail = b.alloc(0);
        let head = b.alloc(0);
        let last_exited = b.alloc(NO_ONE);
        let go = b.alloc_array_with(n, |i| (0, u64::from(i == 0)));
        let announce = b.alloc_array(n, 0);
        // The whole point: spin[q] lives at q.
        let spin = b.alloc_array_with(n, |q| (q, 0));
        let tree = Tree::layout(b, n, branching);
        DsmOneShotLock {
            tail,
            head,
            last_exited,
            go,
            announce,
            spin,
            tree,
            ascent,
            n,
        }
    }

    /// Number of processes the lock supports.
    pub fn capacity(&self) -> usize {
        self.n
    }

    /// `Enter()`, executed by process `pid`.
    ///
    /// # Panics
    ///
    /// Panics if more than `capacity` enter attempts are made.
    pub fn enter<M, S>(&self, mem: &M, pid: Pid, signal: &S) -> EnterOutcome
    where
        M: Mem + ?Sized,
        S: AbortSignal + ?Sized,
    {
        let i = mem.faa(pid, self.tail, 1);
        assert!(
            (i as usize) < self.n,
            "one-shot lock capacity {} exceeded (ticket {i})",
            self.n
        );
        // Publish the spin bit, then check go[i]; the signaller writes
        // go[i] *before* reading announce[i], so exactly one of the two
        // sides observes the other.
        mem.write(pid, self.announce.at(i as usize), pid as u64 + 1);
        if mem.read(pid, self.go.at(i as usize)) != 1 {
            while mem.read(pid, self.spin.at(pid)) != 1 {
                // Local spin: free in the DSM cost model.
                if signal.is_set() {
                    self.abort(mem, pid, i);
                    return EnterOutcome::Aborted { ticket: i };
                }
            }
        }
        mem.write(pid, self.head, i);
        EnterOutcome::Entered { ticket: i }
    }

    /// [`enter`](Self::enter) with passage observability (see
    /// [`OneShotLock::enter_probed`](super::OneShotLock::enter_probed)).
    pub fn enter_probed<M, S, P>(&self, mem: &M, pid: Pid, signal: &S, probe: &P) -> EnterOutcome
    where
        M: Mem + ?Sized,
        S: AbortSignal + ?Sized,
        P: Probe + ?Sized,
    {
        probe.enter_begin(pid);
        let pm = probed(mem, probe);
        let outcome = self.enter(&pm, pid, signal);
        match outcome {
            EnterOutcome::Entered { ticket } => probe.enter_end(pid, Some(ticket)),
            EnterOutcome::Aborted { ticket } => probe.abort(pid, Some(ticket)),
        }
        outcome
    }

    /// `Exit()`, executed by the process in the CS.
    pub fn exit<M: Mem + ?Sized>(&self, mem: &M, pid: Pid) {
        let head = mem.read(pid, self.head);
        mem.write(pid, self.last_exited, head);
        self.signal_next(mem, pid, head);
    }

    /// [`exit`](Self::exit) with passage observability.
    pub fn exit_probed<M, P>(&self, mem: &M, pid: Pid, probe: &P)
    where
        M: Mem + ?Sized,
        P: Probe + ?Sized,
    {
        let pm = probed(mem, probe);
        self.exit(&pm, pid);
        probe.cs_exit(pid);
    }

    fn abort<M: Mem + ?Sized>(&self, mem: &M, pid: Pid, i: u64) {
        self.tree.remove(mem, pid, i);
        let head = mem.read(pid, self.head);
        if head != mem.read(pid, self.last_exited) {
            return;
        }
        self.signal_next(mem, pid, head);
    }

    fn signal_next<M: Mem + ?Sized>(&self, mem: &M, pid: Pid, head: u64) {
        match self.tree.find_next_with(mem, pid, head, self.ascent) {
            FindNextResult::Bottom | FindNextResult::Top => {}
            FindNextResult::Next(j) => {
                mem.write(pid, self.go.at(j as usize), 1);
                let s = mem.read(pid, self.announce.at(j as usize));
                if s != 0 {
                    mem.write(pid, self.spin.at(s as usize - 1), 1);
                }
            }
        }
    }
}

impl LockMeta for DsmOneShotLock {
    fn name(&self) -> String {
        format!("one-shot-dsm(B={})", self.tree.branching())
    }

    fn is_one_shot(&self) -> bool {
        true
    }
}

impl<M: Mem + ?Sized, P: Probe + ?Sized> LockCore<M, P> for DsmOneShotLock {
    fn enter_core<S: AbortSignal + ?Sized>(
        &self,
        mem: &M,
        p: Pid,
        signal: &S,
        probe: &P,
    ) -> Outcome {
        self.enter_probed(mem, p, signal, probe).into()
    }

    fn exit_core(&self, mem: &M, p: Pid, probe: &P) {
        self.exit_probed(mem, p, probe);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sal_memory::{AbortFlag, DsmMemory, Mem, NeverAbort, RmrProbe};

    fn build(n: usize) -> (DsmOneShotLock, DsmMemory) {
        let mut b = MemoryBuilder::new();
        let lock = DsmOneShotLock::layout(&mut b, n, 4);
        (lock, b.build_dsm(n))
    }

    #[test]
    fn sequential_passages_in_ticket_order() {
        let (lock, mem) = build(4);
        for pid in 0..4 {
            assert!(lock.enter(&mem, pid, &NeverAbort).entered());
            lock.exit(&mem, pid);
        }
    }

    #[test]
    fn aborters_are_skipped() {
        let (lock, mem) = build(4);
        assert!(lock.enter(&mem, 0, &NeverAbort).entered());
        let sig = AbortFlag::new();
        sig.set();
        assert!(!lock.enter(&mem, 1, &sig).entered());
        assert!(!lock.enter(&mem, 2, &sig).entered());
        lock.exit(&mem, 0);
        assert!(lock.enter(&mem, 3, &NeverAbort).entered());
        lock.exit(&mem, 3);
    }

    #[test]
    fn waiting_incurs_bounded_rmrs_in_dsm() {
        // Process 1 takes its ticket *before* process 0 exits and spins.
        // In the DSM model the spin is on spin[1], homed at 1 — free. We
        // simulate "spinning" by bounding the RMRs of the whole passage:
        // take the ticket, poll the local bit many times via enter's loop
        // — here we simply check that a passage that was signalled while
        // spinning has O(1) RMRs.
        let (lock, mem) = build(2);
        assert!(lock.enter(&mem, 0, &NeverAbort).entered());
        // Hand off before p1 even arrives: p1's go is set during exit.
        lock.exit(&mem, 0);
        let probe = RmrProbe::start(&mem, 1);
        assert!(lock.enter(&mem, 1, &NeverAbort).entered());
        lock.exit(&mem, 1);
        assert!(probe.rmrs(&mem) <= 12, "got {}", probe.rmrs(&mem));
    }

    #[test]
    fn spin_bit_is_set_through_the_announce_indirection() {
        let (lock, mem) = build(3);
        assert!(lock.enter(&mem, 0, &NeverAbort).entered());
        // p1 publishes its announce entry by taking a ticket in a thread
        // that will block; we emulate the interleaving sequentially: take
        // the ticket by hand.
        let i = mem.faa(1, lock.tail, 1);
        assert_eq!(i, 1);
        mem.write(1, lock.announce.at(1), 2); // pid 1 + 1
        assert_eq!(mem.read(1, lock.go.at(1)), 0);
        // p0 exits: should set go[1], read announce[1] = 2, set spin[1].
        lock.exit(&mem, 0);
        assert_eq!(mem.read(1, lock.go.at(1)), 1);
        assert_eq!(mem.read(1, lock.spin.at(1)), 1);
    }

    #[test]
    fn works_under_cc_memory_too() {
        // The DSM variant is also correct (just not necessary) under CC.
        let mut b = MemoryBuilder::new();
        let lock = DsmOneShotLock::layout(&mut b, 3, 2);
        let mem = b.build_cc(3);
        for pid in 0..3 {
            assert!(lock.enter(&mem, pid, &NeverAbort).entered());
            lock.exit(&mem, pid);
        }
    }
}
