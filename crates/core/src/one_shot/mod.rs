//! The one-shot abortable lock of §3 (Figure 1).
//!
//! An array-based queue lock augmented with the [`Tree`] of §4, which
//! tracks the queue slots abandoned by aborting processes. Each process
//! may attempt to acquire the lock **at most once** (the long-lived
//! transformation of [`crate::long_lived`] lifts this restriction).
//!
//! Protocol summary:
//!
//! * `Enter` (Algorithm 3.1): F&A on `Tail` is the FCFS doorway and hands
//!   the process its queue slot `i`; the process spins on `go[i]`
//!   (initially only `go[0]` is set), and on acquiring writes `Head ← i`.
//! * `Exit` (Algorithm 3.2): record `LastExited ← Head`, then
//!   `SignalNext(Head)`.
//! * `Abort` (Algorithm 3.3): remove the slot from the `Tree`, and if the
//!   process currently in the CS is also the last to have exited
//!   (`Head = LastExited`), its handoff may have crossed paths with our
//!   removal — re-run `SignalNext(Head)` on its behalf.
//! * `SignalNext(h)` (Algorithm 3.4): `FindNext(h)` in the tree; on a
//!   successor `j`, set `go[j]`. On `⊥` the queue is exhausted; on `⊤`
//!   some aborting process has assumed responsibility for the handoff.
//!
//! The module also provides the DSM variant ([`DsmOneShotLock`]) that
//! spins on a process-local bit published through an `announce` array.

mod dsm;

pub use dsm::DsmOneShotLock;

use crate::lock::{LockCore, LockMeta, Outcome};
use crate::resume::{EnterStep, OneShotEnterMachine, OneShotEnterState, WaitKind, WaitToken};
use crate::tree::{Ascent, FindNextResult, Tree};
use sal_memory::{AbortSignal, Mem, MemoryBuilder, Pid, WordArray, WordId};
use sal_obs::{probed, Probe};

/// Sentinel for `LastExited = −1` (no process has exited yet).
const NO_ONE: u64 = u64::MAX;

/// Outcome of a one-shot [`OneShotLock::enter`] call.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum EnterOutcome {
    /// The process acquired the lock; it must call
    /// [`exit`](OneShotLock::exit). `ticket` is the queue slot obtained
    /// from the doorway F&A.
    Entered {
        /// The queue slot obtained from the doorway F&A on `Tail`.
        ticket: u64,
    },
    /// The process aborted its attempt in response to the signal.
    Aborted {
        /// The queue slot the process abandoned.
        ticket: u64,
    },
}

impl EnterOutcome {
    /// Whether the lock was acquired.
    pub fn entered(&self) -> bool {
        matches!(self, EnterOutcome::Entered { .. })
    }

    /// The doorway ticket of this attempt.
    pub fn ticket(&self) -> u64 {
        match *self {
            EnterOutcome::Entered { ticket } | EnterOutcome::Aborted { ticket } => ticket,
        }
    }
}

impl From<EnterOutcome> for Outcome {
    fn from(o: EnterOutcome) -> Outcome {
        match o {
            EnterOutcome::Entered { ticket } => Outcome::Entered {
                ticket: Some(ticket),
            },
            EnterOutcome::Aborted { ticket } => Outcome::Aborted {
                ticket: Some(ticket),
            },
        }
    }
}

/// The one-shot abortable lock of Figure 1 (cache-coherent variant).
///
/// Space: `N` `go` words + `O(N/B)` tree words + 3 scalars = `O(N)`.
///
/// RMR cost (Theorem 2): a complete passage incurs `O(log_B A_i)` RMRs
/// where `A_i` is the number of processes that abort during the passage —
/// in particular `O(1)` if none do; an aborted attempt incurs
/// `O(log_B A_t)` where `A_t` is the number of aborts in the execution.
#[derive(Clone, Debug)]
pub struct OneShotLock {
    tail: WordId,
    head: WordId,
    last_exited: WordId,
    go: WordArray,
    tree: Tree,
    ascent: Ascent,
    n: usize,
}

impl OneShotLock {
    /// Lay out a lock for `n` processes with tree branching factor
    /// `branching` (the paper's `W`), using the adaptive ascent.
    pub fn layout(b: &mut MemoryBuilder, n: usize, branching: usize) -> Self {
        Self::layout_with(b, n, branching, Ascent::Adaptive)
    }

    /// Lay out a lock choosing the `FindNext` ascent flavour explicitly
    /// (the plain ascent is exposed for the Figure-4 experiments).
    pub fn layout_with(b: &mut MemoryBuilder, n: usize, branching: usize, ascent: Ascent) -> Self {
        assert!(n >= 1, "lock needs at least one process");
        let tail = b.alloc(0);
        let head = b.alloc(0);
        let last_exited = b.alloc(NO_ONE);
        // go = [1, 0, …, 0]: slot 0 holds the lock from the start.
        let go = b.alloc_array_with(n, |i| (0, u64::from(i == 0)));
        let tree = Tree::layout(b, n, branching);
        OneShotLock {
            tail,
            head,
            last_exited,
            go,
            tree,
            ascent,
            n,
        }
    }

    /// Number of processes (= queue slots) the lock supports.
    pub fn capacity(&self) -> usize {
        self.n
    }

    /// The augmenting tree (exposed for experiments and diagnostics).
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// `Enter()` (Algorithm 3.1), executed by process `pid`.
    ///
    /// Returns [`EnterOutcome::Entered`] when the process acquired the
    /// lock (it must then run its critical section and call
    /// [`exit`](Self::exit)), or [`EnterOutcome::Aborted`] if it
    /// abandoned the attempt in response to `signal`.
    ///
    /// # Panics
    ///
    /// Panics if more than `capacity` enter attempts are made (each
    /// process may attempt at most one passage — well-formedness, §5.1).
    pub fn enter<M, S>(&self, mem: &M, pid: Pid, signal: &S) -> EnterOutcome
    where
        M: Mem + ?Sized,
        S: AbortSignal + ?Sized,
    {
        // The blocking enter is the tight-loop driver of the resumable
        // machine: a Pending poll performed exactly one `go` read (and
        // one signal check), so this loop IS the paper's spin wait,
        // operation for operation.
        let mut machine = self.begin_enter();
        loop {
            match self.poll_enter(&mut machine, mem, pid, signal) {
                EnterStep::Acquired { ticket } => {
                    return EnterOutcome::Entered {
                        ticket: ticket.expect("one-shot machine reports its ticket"),
                    }
                }
                EnterStep::Aborted { ticket } => {
                    return EnterOutcome::Aborted {
                        ticket: ticket.expect("one-shot machine reports its ticket"),
                    }
                }
                EnterStep::Pending(_) => {}
            }
        }
    }

    /// Begin a resumable `Enter`: no shared-memory operation happens
    /// until the first [`poll_enter`](Self::poll_enter) call. See
    /// [`crate::resume`] for the machine contract.
    pub fn begin_enter(&self) -> OneShotEnterMachine {
        OneShotEnterMachine::new()
    }

    /// Advance a resumable `Enter` by one poll: runs the doorway F&A on
    /// the first call, then one `go`-word check per call (lines 1–6 of
    /// Algorithm 3.1, with the line-2 spin cut at every iteration).
    /// Aborts (lines 3–5) run to completion within the poll that
    /// observes the signal — an [`EnterStep::Aborted`] machine has
    /// nothing left to clean up.
    ///
    /// # Panics
    ///
    /// Panics on capacity overflow (as [`enter`](Self::enter)) and if
    /// polled again after resolving.
    pub fn poll_enter<M, S>(
        &self,
        machine: &mut OneShotEnterMachine,
        mem: &M,
        pid: Pid,
        signal: &S,
    ) -> EnterStep
    where
        M: Mem + ?Sized,
        S: AbortSignal + ?Sized,
    {
        let ticket = match machine.st {
            OneShotEnterState::Doorway => {
                let i = mem.faa(pid, self.tail, 1); // line 1: the FCFS doorway
                assert!(
                    (i as usize) < self.n,
                    "one-shot lock capacity {} exceeded (ticket {i})",
                    self.n
                );
                machine.st = OneShotEnterState::Waiting { ticket: i };
                i
            }
            OneShotEnterState::Waiting { ticket } => ticket,
            OneShotEnterState::Done => panic!("one-shot enter machine polled after resolving"),
        };
        let go = self.go.at(ticket as usize);
        if mem.read(pid, go) == 0 {
            // line 2
            if signal.is_set() {
                // lines 3–5
                self.abort(mem, pid, ticket);
                machine.st = OneShotEnterState::Done;
                return EnterStep::Aborted {
                    ticket: Some(ticket),
                };
            }
            return EnterStep::Pending(WaitToken::new(go, WaitKind::QueueSpin));
        }
        mem.write(pid, self.head, ticket); // line 6
        machine.st = OneShotEnterState::Done;
        EnterStep::Acquired {
            ticket: Some(ticket),
        }
    }

    /// [`enter`](Self::enter) with passage observability: fires
    /// [`Probe::enter_begin`], routes every shared-memory operation
    /// through a [`ProbedMem`](sal_obs::ProbedMem) (so `op`/`rmr` hooks fire), and closes
    /// the attempt with [`Probe::enter_end`] or [`Probe::abort`].
    pub fn enter_probed<M, S, P>(&self, mem: &M, pid: Pid, signal: &S, probe: &P) -> EnterOutcome
    where
        M: Mem + ?Sized,
        S: AbortSignal + ?Sized,
        P: Probe + ?Sized,
    {
        probe.enter_begin(pid);
        let pm = probed(mem, probe);
        let outcome = self.enter(&pm, pid, signal);
        match outcome {
            EnterOutcome::Entered { ticket } => probe.enter_end(pid, Some(ticket)),
            EnterOutcome::Aborted { ticket } => probe.abort(pid, Some(ticket)),
        }
        outcome
    }

    /// `Exit()` (Algorithm 3.2), executed by the process in the CS.
    pub fn exit<M: Mem + ?Sized>(&self, mem: &M, pid: Pid) {
        let head = mem.read(pid, self.head); // line 8
        mem.write(pid, self.last_exited, head); // line 9
        self.signal_next(mem, pid, head); // line 10
    }

    /// [`exit`](Self::exit) with passage observability: routes the exit
    /// protocol through a [`ProbedMem`](sal_obs::ProbedMem) and fires [`Probe::cs_exit`]
    /// once the passage is complete.
    pub fn exit_probed<M, P>(&self, mem: &M, pid: Pid, probe: &P)
    where
        M: Mem + ?Sized,
        P: Probe + ?Sized,
    {
        let pm = probed(mem, probe);
        self.exit(&pm, pid);
        probe.cs_exit(pid);
    }

    /// `Abort(i)` (Algorithm 3.3).
    fn abort<M: Mem + ?Sized>(&self, mem: &M, pid: Pid, i: u64) {
        self.tree.remove(mem, pid, i); // line 11
        let head = mem.read(pid, self.head); // line 12
        if head != mem.read(pid, self.last_exited) {
            // line 13
            return;
        }
        // line 15: the exiting process's FindNext may have crossed paths
        // with our Remove; assume responsibility for its handoff.
        self.signal_next(mem, pid, head);
    }

    /// `SignalNext(head)` (Algorithm 3.4).
    fn signal_next<M: Mem + ?Sized>(&self, mem: &M, pid: Pid, head: u64) {
        match self.tree.find_next_with(mem, pid, head, self.ascent) {
            // line 17–18: ⊥ — queue exhausted; ⊤ — an aborter has assumed
            // responsibility for this handoff.
            FindNextResult::Bottom | FindNextResult::Top => {}
            FindNextResult::Next(j) => {
                mem.write(pid, self.go.at(j as usize), 1); // line 19
            }
        }
    }
}

impl LockMeta for OneShotLock {
    fn name(&self) -> String {
        let flavour = match self.ascent {
            Ascent::Plain => "plain",
            Ascent::Adaptive => "adaptive",
        };
        format!("one-shot(B={},{})", self.tree.branching(), flavour)
    }

    fn is_one_shot(&self) -> bool {
        true
    }
}

impl<M: Mem + ?Sized, P: Probe + ?Sized> LockCore<M, P> for OneShotLock {
    fn enter_core<S: AbortSignal + ?Sized>(
        &self,
        mem: &M,
        p: Pid,
        signal: &S,
        probe: &P,
    ) -> Outcome {
        self.enter_probed(mem, p, signal, probe).into()
    }

    fn exit_core(&self, mem: &M, p: Pid, probe: &P) {
        self.exit_probed(mem, p, probe);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sal_memory::{AbortFlag, NeverAbort};

    fn build(n: usize, branching: usize) -> (OneShotLock, sal_memory::CcMemory) {
        let mut b = MemoryBuilder::new();
        let lock = OneShotLock::layout(&mut b, n, branching);
        (lock, b.build_cc(n))
    }

    #[test]
    fn sequential_passages_in_ticket_order() {
        let (lock, mem) = build(4, 2);
        for pid in 0..4 {
            let o = lock.enter(&mem, pid, &NeverAbort);
            assert_eq!(o, EnterOutcome::Entered { ticket: pid as u64 });
            lock.exit(&mem, pid);
        }
    }

    #[test]
    fn aborted_slot_is_skipped_in_handoff() {
        let (lock, mem) = build(4, 2);
        // p0 acquires; p1's attempt aborts (signal pre-set, go[1] clear).
        assert!(lock.enter(&mem, 0, &NeverAbort).entered());
        let sig = AbortFlag::new();
        sig.set();
        let o = lock.enter(&mem, 1, &sig);
        assert_eq!(o, EnterOutcome::Aborted { ticket: 1 });
        // p0 exits: handoff must skip slot 1 and go to slot 2.
        lock.exit(&mem, 0);
        assert!(lock.enter(&mem, 2, &NeverAbort).entered());
        lock.exit(&mem, 2);
        assert!(lock.enter(&mem, 3, &NeverAbort).entered());
        lock.exit(&mem, 3);
    }

    #[test]
    fn abort_after_exit_rescues_the_handoff() {
        // The crossed-paths scenario at lock level: p1 aborts *after* p0
        // already exited and its FindNext returned slot 1 is impossible
        // sequentially, but aborting after p0's exit must still leave the
        // lock usable for p2: the aborter re-runs SignalNext(0).
        let (lock, mem) = build(4, 2);
        assert!(lock.enter(&mem, 0, &NeverAbort).entered());
        // p1 takes its ticket but has not started spinning yet.
        // (Simulate by having p1 enter with a pre-set signal *after* p0
        // exits; ticket order is still 1.)
        lock.exit(&mem, 0); // FindNext(0) → 1, sets go[1]
        let sig = AbortFlag::new();
        sig.set();
        // p1 aborts even though go[1] is set? No: enter checks go first;
        // go[1] is already 1, so p1 actually acquires. This matches the
        // paper: a process handed the lock before noticing the signal may
        // still return true.
        let o = lock.enter(&mem, 1, &sig);
        assert!(o.entered());
        lock.exit(&mem, 1);
        assert!(lock.enter(&mem, 2, &NeverAbort).entered());
    }

    #[test]
    fn all_later_processes_abort_lock_exhausts_cleanly() {
        let (lock, mem) = build(4, 2);
        assert!(lock.enter(&mem, 0, &NeverAbort).entered());
        let sig = AbortFlag::new();
        sig.set();
        for pid in 1..4 {
            assert!(!lock.enter(&mem, pid, &sig).entered());
        }
        // p0 exits into an exhausted queue: FindNext(0) = ⊥, no panic.
        lock.exit(&mem, 0);
    }

    #[test]
    fn no_abort_passage_costs_o1_rmrs() {
        let n = 256;
        let (lock, mem) = build(n, 8);
        let mut max_rmrs = 0;
        for pid in 0..n {
            let probe = sal_memory::RmrProbe::start(&mem, pid);
            assert!(lock.enter(&mem, pid, &NeverAbort).entered());
            lock.exit(&mem, pid);
            max_rmrs = max_rmrs.max(probe.rmrs(&mem));
        }
        // Enter: F&A + go-spin (≤2 RMR) + Head; Exit: Head + LastExited +
        // FindNext (O(1) with no aborts) + go[j]. Comfortably ≤ 12.
        assert!(
            max_rmrs <= 12,
            "no-abort passage should be O(1) RMRs, got {max_rmrs}"
        );
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn more_enters_than_capacity_panic() {
        let (lock, mem) = build(2, 2);
        let _ = lock.enter(&mem, 0, &NeverAbort);
        lock.exit(&mem, 0);
        let _ = lock.enter(&mem, 1, &NeverAbort);
        lock.exit(&mem, 1);
        let _ = lock.enter(&mem, 0, &NeverAbort); // third ticket: overflow
    }

    #[test]
    fn lock_trait_round_trip() {
        let (lock, mem) = build(2, 2);
        let l: &dyn crate::AbortableLock = &lock;
        assert!(l.is_one_shot());
        assert!(l.is_abortable());
        assert!(l.name().contains("one-shot"));
        assert!(l.enter(&mem, 0, &NeverAbort, &sal_obs::NoProbe).entered());
        l.exit(&mem, 0, &sal_obs::NoProbe);
    }

    #[test]
    fn probed_passages_report_lifecycle_and_ground_truth_rmrs() {
        let (lock, mem) = build(3, 2);
        let stats = sal_obs::PassageStats::new();
        let before = mem.rmrs(0);
        assert!(lock.enter_probed(&mem, 0, &NeverAbort, &stats).entered());
        lock.exit_probed(&mem, 0, &stats);
        let rec = stats.records()[0];
        assert!(rec.entered);
        assert_eq!(rec.ticket, Some(0));
        assert_eq!(rec.rmrs, mem.rmrs(0) - before, "probe view == cost model");

        // An aborted attempt closes the passage with entered = false.
        assert!(lock.enter_probed(&mem, 1, &NeverAbort, &stats).entered());
        let sig = AbortFlag::new();
        sig.set();
        assert!(!lock.enter_probed(&mem, 2, &sig, &stats).entered());
        let recs = stats.records();
        assert_eq!(recs.len(), 2);
        assert!(!recs[1].entered);
        assert_eq!(recs[1].ticket, Some(2));
    }
}
