//! [`Waiter`]: a one-slot spin-then-park primitive for blocking
//! synchronization layers built over the raw lock path.
//!
//! The raw algorithms busy-wait (that is the model the RMR bounds are
//! stated in); a production API wants contended waiters to *block*
//! instead of burning a core. `Waiter` is the parking half: each
//! waiting context owns one slot, a waker calls [`Waiter::unpark`]
//! (Waiter::unpark), and the waiter [`park_until`](Waiter::park_until)s
//! with an optional deadline.
//!
//! ## Adaptive spin-then-park
//!
//! Before touching its condvar, a parking waiter first spins on the
//! notification word for an adaptive budget, using the same calibration
//! as the simulator's step-lease spin gate (`sal-runtime`): the budget
//! **doubles** (capped) when spinning observed the wakeup — the waker
//! responded within the spin window, so spinning is paying for itself —
//! and **halves** (floored) when the waiter had to park anyway. Fast
//! producer/consumer handoffs therefore stay off the condvar entirely,
//! while long waits decay to plain parking within a few misses.
//!
//! ## Token semantics
//!
//! A `Waiter` carries at most one pending notification token.
//! [`Waiter::unpark`](Waiter::unpark) sets it (idempotently); `park_until`
//! consumes it. A token delivered while nobody is parked wakes the
//! *next* park immediately — so a wakeup racing a timeout is never
//! lost, it just surfaces as a spurious early return of a later park.
//! Callers must treat any park return as a hint and re-check their real
//! condition (all of `sal-sync`'s waits do).

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU8, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// No token pending, nobody parked.
const EMPTY: u8 = 0;
/// A waiter is (about to be) blocked on the condvar.
const PARKED: u8 = 1;
/// A notification token is pending.
const NOTIFIED: u8 = 2;

/// Initial spin budget of an [`AdaptiveBudget`] — matches the step-lease
/// gate's calibration (DESIGN.md §9).
const SPIN_INIT: u32 = 64;
/// Budget ceiling: a handful of µs of spinning at most.
const SPIN_MAX: u32 = 1 << 12;
/// Budget floor: keeps the probe alive so budgets can regrow when the
/// workload changes phase.
const SPIN_MIN: u32 = 4;

/// The doubling/halving spin budget shared with the simulator's spin
/// gate (same constants, same growth rule); see the module docs.
#[derive(Debug)]
struct AdaptiveBudget {
    budget: AtomicU32,
    enabled: AtomicBool,
}

impl AdaptiveBudget {
    const fn new() -> Self {
        AdaptiveBudget {
            budget: AtomicU32::new(SPIN_INIT),
            enabled: AtomicBool::new(true),
        }
    }

    /// Spin until `observed` returns true or the budget runs out;
    /// returns whether the condition was observed. Hitting doubles the
    /// budget (capped), missing halves it (floored).
    fn spin(&self, observed: impl Fn() -> bool) -> bool {
        if !self.enabled.load(Ordering::Relaxed) {
            return false;
        }
        let budget = self.budget.load(Ordering::Relaxed);
        for _ in 0..budget {
            if observed() {
                self.budget
                    .store(((budget << 1) | 1).min(SPIN_MAX), Ordering::Relaxed);
                return true;
            }
            std::hint::spin_loop();
        }
        self.budget
            .store((budget / 2).max(SPIN_MIN), Ordering::Relaxed);
        false
    }
}

/// Outcome of a [`Waiter::park_until`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParkResult {
    /// A notification token was consumed (possibly one delivered before
    /// the park began — see the module docs on token semantics).
    Notified,
    /// The deadline passed with no token delivered.
    TimedOut,
}

impl ParkResult {
    /// Whether the park consumed a notification.
    pub fn notified(self) -> bool {
        matches!(self, ParkResult::Notified)
    }
}

/// A single-owner parking slot with adaptive spin-then-park; see the
/// module docs.
///
/// One context parks at a time (enforced by the owning structure — e.g.
/// `sal-sync` keys slots by process id); any number of contexts may
/// [`Waiter::unpark`](Waiter::unpark) concurrently.
#[derive(Debug)]
pub struct Waiter {
    /// EMPTY / PARKED / NOTIFIED — the single source of truth.
    state: AtomicU8,
    /// Guards the condvar sleep; held by the waiter from the PARKED
    /// transition until the wait, so a waker that saw PARKED and then
    /// locks it cannot slip its notify between the two.
    lock: Mutex<()>,
    cv: Condvar,
    spin: AdaptiveBudget,
}

impl Default for Waiter {
    fn default() -> Self {
        Self::new()
    }
}

impl Waiter {
    /// A fresh slot with no pending token.
    pub const fn new() -> Self {
        Waiter {
            state: AtomicU8::new(EMPTY),
            lock: Mutex::new(()),
            cv: Condvar::new(),
            spin: AdaptiveBudget::new(),
        }
    }

    /// Enable or disable the adaptive spin phase (enabled by default).
    /// Disabled, every park goes straight to the condvar.
    pub fn set_spin(&self, enabled: bool) {
        self.spin.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Deliver a notification token and wake the parked waiter, if any.
    /// Idempotent: delivering on top of a pending token is a no-op.
    pub fn unpark(&self) {
        if self.state.swap(NOTIFIED, Ordering::Release) == PARKED {
            // The waiter is parked (or committed to parking while
            // holding `lock`): acquiring the mutex orders us after its
            // wait, so the notify cannot be lost.
            let _guard = self.lock.lock().unwrap();
            self.cv.notify_one();
        }
    }

    /// Block until a token is delivered or `deadline` passes
    /// (`None` = wait indefinitely). Consumes the token on
    /// [`ParkResult::Notified`].
    pub fn park_until(&self, deadline: Option<Instant>) -> ParkResult {
        // Adaptive spin phase: watch the state word without the mutex.
        if self
            .spin
            .spin(|| self.state.load(Ordering::Acquire) == NOTIFIED)
        {
            self.state.store(EMPTY, Ordering::Relaxed);
            return ParkResult::Notified;
        }
        let mut guard = self.lock.lock().unwrap();
        loop {
            // Consume a token that arrived before (or during) the spin
            // phase; otherwise announce that we are about to sleep.
            match self
                .state
                .compare_exchange(EMPTY, PARKED, Ordering::Acquire, Ordering::Acquire)
            {
                Err(s) if s == NOTIFIED => {
                    self.state.store(EMPTY, Ordering::Relaxed);
                    return ParkResult::Notified;
                }
                _ => {}
            }
            match deadline {
                None => guard = self.cv.wait(guard).unwrap(),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        // Deadline already passed: clear PARKED, but a
                        // token that raced in wins.
                        return if self.state.swap(EMPTY, Ordering::Acquire) == NOTIFIED {
                            ParkResult::Notified
                        } else {
                            ParkResult::TimedOut
                        };
                    }
                    guard = self.cv.wait_timeout(guard, d - now).unwrap().0;
                }
            }
            if self.state.load(Ordering::Acquire) == NOTIFIED {
                self.state.store(EMPTY, Ordering::Relaxed);
                return ParkResult::Notified;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn pre_delivered_token_wakes_immediately() {
        let w = Waiter::new();
        w.unpark();
        assert_eq!(w.park_until(None), ParkResult::Notified);
        // Token was consumed: the next timed park times out.
        assert_eq!(
            w.park_until(Some(Instant::now() + Duration::from_millis(1))),
            ParkResult::TimedOut
        );
    }

    #[test]
    fn unpark_is_idempotent() {
        let w = Waiter::new();
        w.unpark();
        w.unpark();
        assert!(w.park_until(None).notified());
        assert_eq!(
            w.park_until(Some(Instant::now() + Duration::from_millis(1))),
            ParkResult::TimedOut
        );
    }

    #[test]
    fn cross_thread_unpark_wakes_a_parked_waiter() {
        let w = Arc::new(Waiter::new());
        let t = {
            let w = Arc::clone(&w);
            std::thread::spawn(move || w.park_until(None))
        };
        // Give the waiter a chance to actually park (spin budget is
        // tiny; a few ms vastly exceeds it).
        std::thread::sleep(Duration::from_millis(5));
        w.unpark();
        assert_eq!(t.join().unwrap(), ParkResult::Notified);
    }

    #[test]
    fn timed_park_respects_the_deadline() {
        let w = Waiter::new();
        let start = Instant::now();
        let r = w.park_until(Some(start + Duration::from_millis(10)));
        assert_eq!(r, ParkResult::TimedOut);
        assert!(start.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn spin_disabled_still_parks_and_wakes() {
        let w = Arc::new(Waiter::new());
        w.set_spin(false);
        let t = {
            let w = Arc::clone(&w);
            std::thread::spawn(move || w.park_until(Some(Instant::now() + Duration::from_secs(5))))
        };
        std::thread::sleep(Duration::from_millis(5));
        w.unpark();
        assert_eq!(t.join().unwrap(), ParkResult::Notified);
    }

    #[test]
    fn hammered_handoffs_never_lose_a_token() {
        // Ping-pong N rounds: each round the main thread unparks, the
        // waiter must observe exactly one notification.
        let w = Arc::new(Waiter::new());
        let done = Arc::new(AtomicU32::new(0));
        let rounds = 10_000u32;
        let t = {
            let w = Arc::clone(&w);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                for _ in 0..rounds {
                    while !w.park_until(None).notified() {}
                    done.fetch_add(1, Ordering::SeqCst);
                }
            })
        };
        for i in 0..rounds {
            w.unpark();
            // Lock-step: wait for the round to be consumed so tokens
            // never coalesce (unpark is idempotent, so two unparks
            // without an intervening park would count once).
            while done.load(Ordering::SeqCst) <= i {
                std::hint::spin_loop();
            }
        }
        t.join().unwrap();
        assert_eq!(done.load(Ordering::SeqCst), rounds);
    }
}
