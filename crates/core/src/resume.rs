//! Resumable enter-protocol state machines — the sans-IO core that
//! async drivers poll.
//!
//! The paper's `Enter` has exactly two blocking points, and both have
//! the same shape: *spin until a shared word becomes nonzero, checking
//! the abort signal between reads*. The bounded long-lived lock waits
//! on its epoch spin node (`lines 58–61`), and the embedded one-shot
//! lock waits on its queue slot's `go` word (`line 2`). Everything else
//! in a passage is a finite sequence of shared-memory operations.
//!
//! This module factors that observation into explicit machines:
//!
//! * [`OneShotEnterMachine`] — the one-shot `Enter` of Figure 1 as a
//!   `Doorway → Waiting → Done` machine;
//! * [`EnterMachine`] — the bounded long-lived `Enter` of Figure 5 +
//!   §6.2, embedding a one-shot machine for the queue phase:
//!
//! ```text
//!  Start ──epoch unchanged──▶ EpochWait ──go ≠ 0──▶ Doorway
//!    │                           │ signal ──▶ Done (Aborted)
//!    └──────fresh epoch──────────┼──────────────────▶ Doorway
//!                                             Doorway ──F&A──▶ Queue
//!  Queue(one-shot: Doorway ──F&A──▶ Waiting ──go ≠ 0──▶ Done/Acquired
//!                                      │ signal ──▶ Abort ──▶ Done/Aborted)
//! ```
//!
//! Each `poll_enter` call (on [`OneShotLock`](crate::one_shot::OneShotLock)
//! or [`BoundedLongLivedLock`](crate::long_lived::BoundedLongLivedLock))
//! advances the machine until it either resolves — [`EnterStep::Acquired`]
//! or [`EnterStep::Aborted`] — or reaches a blocking point, returning
//! [`EnterStep::Pending`] with a [`WaitToken`] naming the watched word.
//! A poll at a blocking point performs exactly one read of the watched
//! word (plus one signal check when the word is still zero), so a driver
//! that polls in a tight loop reproduces, operation for operation, the
//! blocking spin loops the machines replaced — that equivalence is what
//! keeps every simulator artifact byte-identical (`tests/mono_equivalence.rs`).
//!
//! Drivers decide what "pending" means: the sync entry points spin
//! (re-poll immediately, preserving the paper's busy-wait cost model);
//! `sal_sync::AsyncAbortableMutex` parks the task and re-polls on waker
//! hints; a future recoverable-lock layer can persist the machine state
//! across a crash. The machines themselves hold only plain indices — no
//! memory borrows, no waker knowledge, no clocks.

use crate::lock::Outcome;
use sal_memory::WordId;

/// Which of the protocol's two blocking points a [`WaitToken`] names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitKind {
    /// The bounded lock's epoch wait: a process that already completed a
    /// passage in the current epoch spins on the epoch's spin node until
    /// the next instance switch (Figure 5 lines 58–61).
    EpochSpin,
    /// The one-shot queue wait: the process spins on its queue slot's
    /// `go` word until a predecessor's handoff sets it (Figure 1 line 2).
    QueueSpin,
}

/// Names the blocking point an [`EnterStep::Pending`] machine is parked
/// at: the passage cannot progress until the watched word becomes
/// nonzero.
///
/// The token is advisory — a driver may simply re-poll on any hint (the
/// async mutex does; wakeups are hints there exactly as they are for
/// the CCS layer). Note that for [`WaitKind::QueueSpin`] under the
/// bounded lock the word id is *instance-relative* (the one-shot
/// machine runs over a
/// [`VersionedInstance`](crate::long_lived) view), so it identifies the
/// wait for diagnostics but is not an address in the outer memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitToken {
    word: WordId,
    kind: WaitKind,
}

impl WaitToken {
    pub(crate) fn new(word: WordId, kind: WaitKind) -> Self {
        WaitToken { word, kind }
    }

    /// The word the passage is waiting on (see the type docs for the
    /// address space caveat).
    pub fn word(&self) -> WordId {
        self.word
    }

    /// Which blocking point of the protocol this is.
    pub fn kind(&self) -> WaitKind {
        self.kind
    }
}

/// Result of advancing an enter machine by one poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnterStep {
    /// The lock was acquired; the passage continues with the critical
    /// section and `exit_core`. One-shot machines report their doorway
    /// ticket; the bounded lock reports `None` (matching
    /// [`Outcome::Entered`] for it).
    Acquired {
        /// Doorway ticket (one-shot machines only).
        ticket: Option<u64>,
    },
    /// The attempt was abandoned in response to the abort signal; the
    /// abort protocol (tree removal, handoff rescue, cleanup) has
    /// already run to completion — nothing is leaked.
    Aborted {
        /// Doorway ticket of the abandoned slot (one-shot machines only).
        ticket: Option<u64>,
    },
    /// The passage is blocked: the watched word is still zero and the
    /// signal has not fired. Poll again (after the driver's idea of
    /// waiting) to re-check.
    Pending(WaitToken),
}

impl EnterStep {
    /// `Some(outcome)` when the machine resolved, `None` while pending.
    pub fn outcome(&self) -> Option<Outcome> {
        match *self {
            EnterStep::Acquired { ticket } => Some(Outcome::Entered { ticket }),
            EnterStep::Aborted { ticket } => Some(Outcome::Aborted { ticket }),
            EnterStep::Pending(_) => None,
        }
    }

    /// Whether this step acquired the lock.
    pub fn acquired(&self) -> bool {
        matches!(self, EnterStep::Acquired { .. })
    }

    /// Whether this step is still pending.
    pub fn pending(&self) -> bool {
        matches!(self, EnterStep::Pending(_))
    }
}

/// Resumable state of a one-shot `Enter` (Figure 1); create with
/// [`OneShotLock::begin_enter`](crate::one_shot::OneShotLock::begin_enter),
/// advance with
/// [`OneShotLock::poll_enter`](crate::one_shot::OneShotLock::poll_enter).
///
/// Holds only the protocol position and the doorway ticket — no memory
/// borrows — so it can be parked indefinitely between polls.
#[derive(Debug, Clone)]
pub struct OneShotEnterMachine {
    pub(crate) st: OneShotEnterState,
}

#[derive(Debug, Clone)]
pub(crate) enum OneShotEnterState {
    /// The doorway F&A on `Tail` has not executed yet.
    Doorway,
    /// Holds queue slot `ticket`, watching `go[ticket]`.
    Waiting {
        /// The doorway ticket.
        ticket: u64,
    },
    /// Resolved (acquired or aborted); polling again is a logic error.
    Done,
}

impl OneShotEnterMachine {
    pub(crate) fn new() -> Self {
        OneShotEnterMachine {
            st: OneShotEnterState::Doorway,
        }
    }

    /// The doorway ticket, once the F&A has executed.
    pub fn ticket(&self) -> Option<u64> {
        match self.st {
            OneShotEnterState::Waiting { ticket } => Some(ticket),
            _ => None,
        }
    }

    /// Whether the machine has resolved (acquired or aborted).
    pub fn is_done(&self) -> bool {
        matches!(self.st, OneShotEnterState::Done)
    }
}

/// Resumable state of a bounded long-lived `Enter` (Figure 5 + §6.2);
/// create with
/// [`BoundedLongLivedLock::begin_enter`](crate::long_lived::BoundedLongLivedLock::begin_enter),
/// advance with
/// [`BoundedLongLivedLock::poll_enter`](crate::long_lived::BoundedLongLivedLock::poll_enter).
///
/// Once a poll executes the doorway F&A (refcount increment), the
/// machine *must* be driven to resolution — either keep polling, or
/// poll with a pre-fired signal such as
/// [`Immediate`](crate::abort::Immediate) to run the bounded abort path
/// — otherwise the lock's reference count leaks. This is exactly the
/// drop-guard obligation `sal_sync`'s lock futures discharge on
/// cancellation.
#[derive(Debug, Clone)]
pub struct EnterMachine {
    pub(crate) st: BoundedEnterState,
}

#[derive(Debug, Clone)]
pub(crate) enum BoundedEnterState {
    /// Nothing executed yet: next poll reads the descriptor and decides
    /// whether the epoch wait applies.
    Start,
    /// Announced spin node `spn` and validated the epoch: watching the
    /// node's go word.
    EpochWait {
        /// The pinned spin node index.
        spn: u32,
    },
    /// Past any epoch wait; next poll performs the doorway F&A.
    Doorway,
    /// Inside the one-shot instance `inst` (doorway F&A done — the
    /// refcount is held; see the type docs).
    Queue {
        /// Index of the one-shot instance this passage entered.
        inst: u32,
        /// The embedded one-shot machine.
        inner: OneShotEnterMachine,
    },
    /// Resolved (acquired or aborted); polling again is a logic error.
    Done,
}

impl EnterMachine {
    pub(crate) fn new() -> Self {
        EnterMachine {
            st: BoundedEnterState::Start,
        }
    }

    /// Whether the machine has resolved (acquired or aborted).
    pub fn is_done(&self) -> bool {
        matches!(self.st, BoundedEnterState::Done)
    }

    /// Whether the doorway F&A has executed — from this point on the
    /// machine must be driven to resolution (see the type docs).
    pub fn in_queue(&self) -> bool {
        matches!(self.st, BoundedEnterState::Queue { .. })
    }
}
