//! Bit-scanning helpers of Figure 3.
//!
//! A tree node stores `B` bits in one word; the *`o`-th most significant
//! bit* (offset `o`, counting from the left starting at 0) is associated
//! with the node's `o`-th child from the left. We map offset `o` to
//! machine bit position `B − 1 − o` inside the low `B` bits of the word,
//! so "left" (small offsets) means high bit positions and "right of
//! offset" means lower bit positions.
//!
//! The paper's helpers (caption of Figure 3):
//! * `HasZeroToTheRight(snap, offset)` — is there a zero bit strictly to
//!   the right of `offset`?
//! * `GetFirstZeroToTheRight(snap, offset)` — offset of the leftmost such
//!   zero bit.
//! * `GetFirstZero(snap)` — offset of the leftmost zero bit.
//! * `EMPTY` — the all-ones word.
//!
//! `offset` may be `-1` (the sidestep case of Algorithm 4.3, line 47), in
//! which case "to the right of `offset`" means *all* `B` bits.

/// The all-ones word for branching factor `b`: every child abandoned.
#[inline]
pub fn empty_word(b: usize) -> u64 {
    debug_assert!((2..=64).contains(&b));
    if b == 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// Machine bit mask for child offset `o` (the `o`-th MSB of the `b` bits).
#[inline]
pub fn offset_mask(b: usize, o: usize) -> u64 {
    debug_assert!(o < b);
    1u64 << (b - 1 - o)
}

/// Mask covering all bits strictly to the right of `offset`
/// (`offset == -1` covers the whole word).
#[inline]
fn right_of(b: usize, offset: isize) -> u64 {
    debug_assert!(offset >= -1 && (offset as i64) < b as i64);
    if offset < 0 {
        empty_word(b)
    } else {
        offset_mask(b, offset as usize).wrapping_sub(1)
    }
}

/// `HasZeroToTheRight(snap, offset)`: true iff some bit strictly to the
/// right of `offset` is zero.
#[inline]
pub fn has_zero_to_the_right(b: usize, snap: u64, offset: isize) -> bool {
    let m = right_of(b, offset);
    snap & m != m
}

/// `GetFirstZeroToTheRight(snap, offset)`: offset of the first (leftmost)
/// zero bit strictly to the right of `offset`.
///
/// # Panics
///
/// Panics (in debug builds) if no such zero exists; callers must check
/// [`has_zero_to_the_right`] first, as the pseudo-code does.
#[inline]
pub fn get_first_zero_to_the_right(b: usize, snap: u64, offset: isize) -> usize {
    let zeros = !snap & right_of(b, offset);
    debug_assert!(zeros != 0, "no zero to the right of {offset}");
    // Leftmost zero = most significant set bit of `zeros`.
    let pos = 63 - zeros.leading_zeros() as usize;
    b - 1 - pos
}

/// `GetFirstZero(snap)`: offset of the leftmost zero bit in the word.
#[inline]
pub fn get_first_zero(b: usize, snap: u64) -> usize {
    get_first_zero_to_the_right(b, snap, -1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_word_is_all_ones_over_b_bits() {
        assert_eq!(empty_word(2), 0b11);
        assert_eq!(empty_word(4), 0b1111);
        assert_eq!(empty_word(64), u64::MAX);
    }

    #[test]
    fn offset_zero_is_the_most_significant_bit() {
        assert_eq!(offset_mask(4, 0), 0b1000);
        assert_eq!(offset_mask(4, 3), 0b0001);
        assert_eq!(offset_mask(64, 0), 1u64 << 63);
    }

    #[test]
    fn zero_to_the_right_detection() {
        // B = 4, word 1011: offsets 0,2,3 set; offset 1 clear.
        let snap = 0b1011;
        assert!(has_zero_to_the_right(4, snap, 0)); // offset 1 is to the right of 0
        assert!(!has_zero_to_the_right(4, snap, 1)); // offsets 2,3 are both set
        assert!(!has_zero_to_the_right(4, snap, 3)); // nothing right of the last bit
        assert!(has_zero_to_the_right(4, snap, -1)); // whole word has a zero
    }

    #[test]
    fn no_zero_in_empty_word() {
        for b in [2, 3, 8, 64] {
            assert!(!has_zero_to_the_right(b, empty_word(b), -1));
        }
    }

    #[test]
    fn first_zero_to_the_right_is_leftmost_zero_after_offset() {
        // B = 8, bits (offsets 0..8): 1 1 0 1 0 1 1 0
        let snap = 0b1101_0110;
        assert_eq!(get_first_zero_to_the_right(8, snap, -1), 2);
        assert_eq!(get_first_zero_to_the_right(8, snap, 0), 2);
        assert_eq!(get_first_zero_to_the_right(8, snap, 2), 4);
        assert_eq!(get_first_zero_to_the_right(8, snap, 4), 7);
        assert_eq!(get_first_zero(8, snap), 2);
    }

    #[test]
    fn full_width_word_scans() {
        // B = 64: only offset 63 (least significant) clear.
        let snap = u64::MAX << 1;
        assert!(has_zero_to_the_right(64, snap, 0));
        assert_eq!(get_first_zero_to_the_right(64, snap, 0), 63);
        // Only offset 0 (MSB) clear.
        let snap = u64::MAX >> 1;
        assert_eq!(get_first_zero(64, snap), 0);
        assert!(!has_zero_to_the_right(64, snap, 0));
    }

    #[test]
    fn exhaustive_against_naive_reference_small_b() {
        for b in 2..=8usize {
            for snap in 0..(1u64 << b) {
                for offset in -1..(b as isize) {
                    let naive: Option<usize> =
                        ((offset + 1) as usize..b).find(|&o| snap & offset_mask(b, o) == 0);
                    assert_eq!(
                        has_zero_to_the_right(b, snap, offset),
                        naive.is_some(),
                        "b={b} snap={snap:b} offset={offset}"
                    );
                    if let Some(o) = naive {
                        assert_eq!(get_first_zero_to_the_right(b, snap, offset), o);
                    }
                }
            }
        }
    }
}
