//! A CAS-only variant of `Remove` — the §7 counterfactual.
//!
//! The paper's related-work section argues that F&A is what makes the
//! `W`-ary tree cheap: one F&A both *sets* a process's bit and *reads*
//! every sibling bit in a single RMR, whereas "the LL/SC-based f-array
//! requires O(#children) RMRs" — and more generally, read+CAS emulation
//! of the same update pays a retry loop under contention.
//!
//! [`Tree::remove_with_cas`] is Algorithm 4.2 with the F&A replaced by a
//! read/CAS retry loop. It is linearizably equivalent (each iteration
//! atomically sets the same bit and observes the node), but under `k`
//! concurrent removers of one node the CAS version costs up to
//! `Θ(k)` RMRs *per remover* (every concurrent success invalidates and
//! fails the others' CAS), versus exactly one F&A each. The
//! `ablations -- faa` bench measures the gap.

use super::bits::{empty_word, offset_mask};
use super::Tree;
use sal_memory::{Mem, Pid};

impl Tree {
    /// `Remove(p)` implemented with read + CAS instead of F&A —
    /// functionally identical to [`Tree::remove`], kept for the §7
    /// primitive-strength ablation. Lock-free, not wait-free: a remover
    /// can retry while concurrent removers keep succeeding.
    ///
    /// # Panics
    ///
    /// Debug builds panic if `p`'s bit was already set (well-formedness,
    /// as for [`Tree::remove`]).
    pub fn remove_with_cas<M: Mem + ?Sized>(&self, mem: &M, caller: Pid, p: u64) {
        debug_assert!((p as usize) < self.geometry().leaves());
        let b = self.geometry().branching();
        for lvl in 1..=self.geometry().height() {
            let node = self.geometry().node(p, lvl);
            let j = offset_mask(b, self.geometry().offset(p, lvl));
            let word = self.word(node);
            let mut snap;
            loop {
                snap = mem.read(caller, word);
                debug_assert_eq!(snap & j, 0, "Remove({p}) set an already-set bit");
                if mem.cas(caller, word, snap, snap | j) {
                    break;
                }
                // A concurrent remover changed the node; retry — this is
                // exactly the contention cost F&A avoids.
            }
            if (snap | j) != empty_word(b) {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::FindNextResult;
    use super::*;
    use sal_memory::MemoryBuilder;

    #[test]
    fn cas_remove_is_functionally_identical_sequentially() {
        for branching in [2usize, 4, 16] {
            let mut builder = MemoryBuilder::new();
            let a = Tree::layout(&mut builder, 12, branching);
            let b = Tree::layout(&mut builder, 12, branching);
            let mem = builder.build_cc(12);
            for q in [1u64, 3, 4, 5, 9] {
                a.remove(&mem, q as usize, q);
                b.remove_with_cas(&mem, q as usize, q);
            }
            for p in 0..12u64 {
                assert_eq!(
                    a.find_next(&mem, 0, p),
                    b.find_next(&mem, 0, p),
                    "B={branching} p={p}"
                );
            }
        }
    }

    #[test]
    fn cas_remove_yields_bottom_when_everything_goes() {
        let mut builder = MemoryBuilder::new();
        let tree = Tree::layout(&mut builder, 8, 2);
        let mem = builder.build_cc(8);
        for q in 1..8u64 {
            tree.remove_with_cas(&mem, q as usize, q);
        }
        assert_eq!(tree.find_next(&mem, 0, 0), FindNextResult::Bottom);
    }

    #[test]
    fn concurrent_cas_removers_pay_retries_faa_does_not() {
        use sal_runtime::{simulate, RandomSchedule, SimOptions};
        // k processes each remove one leaf under a single B=16 node.
        let k = 8;
        let mut total_faa = 0u64;
        let mut total_cas = 0u64;
        for seed in 0..10u64 {
            for use_cas in [false, true] {
                let mut builder = MemoryBuilder::new();
                let tree = Tree::layout(&mut builder, 16, 16);
                let mem = builder.build_cc(k);
                simulate(
                    &mem,
                    k,
                    Box::new(RandomSchedule::seeded(seed)),
                    SimOptions::default(),
                    |ctx| {
                        if use_cas {
                            tree.remove_with_cas(ctx.mem, ctx.pid, ctx.pid as u64);
                        } else {
                            tree.remove(ctx.mem, ctx.pid, ctx.pid as u64);
                        }
                    },
                )
                .unwrap();
                if use_cas {
                    total_cas += mem.total_rmrs();
                } else {
                    total_faa += mem.total_rmrs();
                }
            }
        }
        // F&A: exactly one RMR per remover, every run. CAS: read + CAS
        // per attempt, plus retries whenever removers interleave.
        assert_eq!(total_faa, 10 * k as u64, "F&A is one RMR per Remove");
        // Read + CAS is already 2× F&A before any retry; interleavings
        // across 10 seeds add retries on top.
        assert!(
            total_cas >= total_faa * 2,
            "CAS emulation should pay visibly more: {total_cas} vs {total_faa}"
        );
    }
}
