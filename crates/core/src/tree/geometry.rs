//! Static shape of the `W`-ary tree: levels, parents, children, offsets.
//!
//! The tree is static (§4: "Because the tree structure is static, we do not
//! need pointers in the nodes; parent or child nodes are computed by the
//! processes"), so all navigation is integer arithmetic over an implicit
//! `B`-ary heap of *internal* nodes. Leaves are sentinels: leaf `p` simply
//! *is* the number `p` and occupies no shared memory.

/// Reference to an internal tree node: its level (1 = just above the
/// leaves, `height` = root) and its left-to-right index within the level.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct NodeRef {
    /// Level of the node; leaves are level 0, the root is level `height`.
    pub level: usize,
    /// Index of the node within its level, counting from the left.
    pub index: u64,
}

/// Shape of a `B`-ary tree with `leaves` logical leaves, padded up to
/// `B^height` physical leaf positions.
#[derive(Clone, Debug)]
pub struct TreeGeometry {
    branching: usize,
    height: usize,
    leaves: u64,
    padded_leaves: u64,
    /// `level_words[l - 1]` = number of internal nodes at level `l`.
    level_words: Vec<u64>,
    /// `level_base[l - 1]` = index of level `l`'s first word within the
    /// tree's flat word array. Levels are laid out root-last.
    level_base: Vec<u64>,
    total_words: u64,
}

impl TreeGeometry {
    /// Shape of a tree over `leaves ≥ 1` leaves with branching factor
    /// `branching ∈ 2..=64`. The height is `H = ⌈log_B N⌉`, with a minimum
    /// of 1 so even a 1-leaf tree has a root word.
    ///
    /// # Panics
    ///
    /// Panics if `branching` is outside `2..=64` or `leaves == 0`.
    pub fn new(leaves: usize, branching: usize) -> Self {
        assert!(
            (2..=64).contains(&branching),
            "branching factor must be in 2..=64, got {branching}"
        );
        assert!(leaves >= 1, "tree needs at least one leaf");
        let leaves = leaves as u64;
        let b = branching as u64;
        // H = ceil(log_B leaves), at least 1.
        let mut height = 1usize;
        let mut capacity = b;
        while capacity < leaves {
            capacity = capacity
                .checked_mul(b)
                .expect("tree capacity overflows u64");
            height += 1;
        }
        let padded_leaves = capacity;
        let mut level_words = Vec::with_capacity(height);
        let mut level_base = Vec::with_capacity(height);
        let mut base = 0u64;
        let mut count = padded_leaves / b; // nodes at level 1
        for _ in 1..=height {
            level_words.push(count);
            level_base.push(base);
            base += count;
            count /= b;
        }
        TreeGeometry {
            branching,
            height,
            leaves,
            padded_leaves,
            level_words,
            level_base,
            total_words: base,
        }
    }

    /// Branching factor `B` (the paper's `W`).
    #[inline]
    pub fn branching(&self) -> usize {
        self.branching
    }

    /// Height `H = ⌈log_B N⌉` of the tree (number of internal levels).
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of logical leaves `N`.
    #[inline]
    pub fn leaves(&self) -> usize {
        self.leaves as usize
    }

    /// Number of physical leaf positions `B^H ≥ N`; positions `N..B^H`
    /// are permanently-abandoned padding.
    #[inline]
    pub fn padded_leaves(&self) -> u64 {
        self.padded_leaves
    }

    /// Number of shared words the tree occupies — `O(N / B)`, the space
    /// bound of §4.
    #[inline]
    pub fn words(&self) -> usize {
        self.total_words as usize
    }

    /// `B^l` without floating point.
    #[inline]
    fn pow(&self, l: usize) -> u64 {
        (self.branching as u64).pow(l as u32)
    }

    /// `Node(p, lvl)`: the level-`lvl` ancestor of leaf `p` (`lvl ≥ 1`).
    #[inline]
    pub fn node(&self, p: u64, lvl: usize) -> NodeRef {
        debug_assert!(lvl >= 1 && lvl <= self.height);
        NodeRef {
            level: lvl,
            index: p / self.pow(lvl),
        }
    }

    /// `Offset(p, lvl)`: which child of `Node(p, lvl)` contains leaf `p`.
    #[inline]
    pub fn offset(&self, p: u64, lvl: usize) -> usize {
        debug_assert!(lvl >= 1 && lvl <= self.height);
        ((p / self.pow(lvl - 1)) % self.branching as u64) as usize
    }

    /// `Parent(u)`; `None` for the root.
    #[inline]
    pub fn parent(&self, u: NodeRef) -> Option<NodeRef> {
        if u.level >= self.height {
            None
        } else {
            Some(NodeRef {
                level: u.level + 1,
                index: u.index / self.branching as u64,
            })
        }
    }

    /// `offsetAtParent(u)`: the offset of `u`'s bit within its parent.
    #[inline]
    pub fn offset_at_parent(&self, u: NodeRef) -> usize {
        (u.index % self.branching as u64) as usize
    }

    /// `Child(u, o)` when the child is itself an internal node
    /// (`u.level ≥ 2`).
    #[inline]
    pub fn child(&self, u: NodeRef, o: usize) -> NodeRef {
        debug_assert!(u.level >= 2, "children of level-1 nodes are leaves");
        debug_assert!(o < self.branching);
        NodeRef {
            level: u.level - 1,
            index: u.index * self.branching as u64 + o as u64,
        }
    }

    /// `Child(u, o)` when `u` is at level 1, i.e. the child is leaf number
    /// `u.index * B + o`.
    #[inline]
    pub fn child_leaf(&self, u: NodeRef, o: usize) -> u64 {
        debug_assert!(u.level == 1);
        debug_assert!(o < self.branching);
        u.index * self.branching as u64 + o as u64
    }

    /// `RightCousin(u)`: the node immediately to `u`'s right at the same
    /// level, or `None` if `u` is the rightmost node of its level.
    #[inline]
    pub fn right_cousin(&self, u: NodeRef) -> Option<NodeRef> {
        let count = self.level_words[u.level - 1];
        if u.index + 1 < count {
            Some(NodeRef {
                level: u.level,
                index: u.index + 1,
            })
        } else {
            None
        }
    }

    /// Flat index of node `u` inside the tree's word array.
    #[inline]
    pub fn word_index(&self, u: NodeRef) -> usize {
        debug_assert!(u.level >= 1 && u.level <= self.height);
        debug_assert!(u.index < self.level_words[u.level - 1]);
        (self.level_base[u.level - 1] + u.index) as usize
    }

    /// Number of internal nodes at level `lvl`.
    #[inline]
    pub fn nodes_at_level(&self, lvl: usize) -> u64 {
        self.level_words[lvl - 1]
    }

    /// Initial value of node `u`: bit `o` is pre-set iff child `o`'s
    /// subtree contains only padding (leaf positions `≥ N`), i.e. those
    /// "processes" are treated as having aborted before the execution
    /// began.
    pub fn initial_value(&self, u: NodeRef) -> u64 {
        let subtree = self.pow(u.level - 1); // leaves per child subtree
        let first_leaf = u.index * self.pow(u.level);
        let mut v = 0u64;
        for o in 0..self.branching {
            let child_first = first_leaf + o as u64 * subtree;
            if child_first >= self.leaves {
                v |= super::bits::offset_mask(self.branching, o);
            }
        }
        v
    }

    /// Lowest common level of leaves `p` and `q` (Definition 1).
    pub fn lowest_common_level(&self, p: u64, q: u64) -> usize {
        let mut lvl = 1;
        while self.node(p, lvl) != self.node(q, lvl) {
            lvl += 1;
        }
        lvl
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn height_is_ceil_log_b_n() {
        assert_eq!(TreeGeometry::new(2, 2).height(), 1);
        assert_eq!(TreeGeometry::new(4, 2).height(), 2);
        assert_eq!(TreeGeometry::new(5, 2).height(), 3);
        assert_eq!(TreeGeometry::new(64, 8).height(), 2);
        assert_eq!(TreeGeometry::new(65, 8).height(), 3);
        assert_eq!(TreeGeometry::new(1, 4).height(), 1);
        assert_eq!(TreeGeometry::new(1 << 20, 2).height(), 20);
    }

    #[test]
    fn space_is_linear_in_n_over_b() {
        let g = TreeGeometry::new(4096, 64);
        // 64 level-1 nodes + 1 root.
        assert_eq!(g.words(), 65);
        let g = TreeGeometry::new(8, 2);
        // 4 + 2 + 1
        assert_eq!(g.words(), 7);
    }

    #[test]
    fn node_offset_parent_child_are_consistent() {
        let g = TreeGeometry::new(27, 3);
        assert_eq!(g.height(), 3);
        for p in 0..27u64 {
            for lvl in 1..=3usize {
                let n = g.node(p, lvl);
                let o = g.offset(p, lvl);
                if lvl >= 2 {
                    let below = g.node(p, lvl - 1);
                    assert_eq!(g.child(n, o), below);
                    assert_eq!(g.offset_at_parent(below), o);
                    assert_eq!(g.parent(below), Some(n));
                } else {
                    assert_eq!(g.child_leaf(n, o), p);
                }
            }
            assert_eq!(g.parent(g.node(p, 3)), None);
        }
    }

    #[test]
    fn right_cousin_exists_except_at_right_edge() {
        let g = TreeGeometry::new(16, 2);
        let n = NodeRef { level: 1, index: 3 };
        assert_eq!(g.right_cousin(n), Some(NodeRef { level: 1, index: 4 }));
        let last = NodeRef { level: 1, index: 7 };
        assert_eq!(g.right_cousin(last), None);
        let root = NodeRef { level: 4, index: 0 };
        assert_eq!(g.right_cousin(root), None);
    }

    #[test]
    fn word_indices_are_dense_and_unique() {
        let g = TreeGeometry::new(20, 3);
        let mut seen = std::collections::HashSet::new();
        for lvl in 1..=g.height() {
            for i in 0..g.nodes_at_level(lvl) {
                let w = g.word_index(NodeRef {
                    level: lvl,
                    index: i,
                });
                assert!(seen.insert(w));
                assert!(w < g.words());
            }
        }
        assert_eq!(seen.len(), g.words());
    }

    #[test]
    fn padding_bits_are_preset() {
        // 5 leaves, B = 4 → padded to 16, height 2.
        let g = TreeGeometry::new(5, 4);
        assert_eq!(g.padded_leaves(), 16);
        // Level-1 node 0 covers leaves 0..4: no padding.
        assert_eq!(g.initial_value(NodeRef { level: 1, index: 0 }), 0);
        // Node 1 covers 4..8: leaf 4 real, 5..8 padding → offsets 1,2,3 set.
        assert_eq!(g.initial_value(NodeRef { level: 1, index: 1 }), 0b0111);
        // Nodes 2,3 cover 8..16: all padding.
        assert_eq!(g.initial_value(NodeRef { level: 1, index: 2 }), 0b1111);
        // Root: children 2,3 are entirely padding.
        assert_eq!(g.initial_value(NodeRef { level: 2, index: 0 }), 0b0011);
    }

    #[test]
    fn lowest_common_level_matches_definition() {
        let g = TreeGeometry::new(16, 2);
        assert_eq!(g.lowest_common_level(0, 1), 1);
        assert_eq!(g.lowest_common_level(0, 2), 2);
        assert_eq!(g.lowest_common_level(0, 15), 4);
        assert_eq!(g.lowest_common_level(6, 7), 1);
        assert_eq!(g.lowest_common_level(7, 8), 4);
    }
}
