//! Iteration over the live (non-abandoned) slots of a [`Tree`].
//!
//! A convenience built on repeated `FindNext` — useful for diagnostics,
//! tests and tools that want to inspect queue state. Not part of the
//! paper's interface; under concurrency the iterator is best-effort
//! (a `⊤` result ends iteration, mirroring the algorithm's semantics).

use super::{FindNextResult, Tree};
use sal_memory::{Mem, Pid};

/// Iterator over live slots strictly greater than a starting point,
/// produced by [`Tree::live_slots`].
pub struct LiveSlots<'a, M: ?Sized> {
    tree: &'a Tree,
    mem: &'a M,
    caller: Pid,
    cursor: Option<u64>,
    done: bool,
}

impl<M: ?Sized> std::fmt::Debug for LiveSlots<'_, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveSlots")
            .field("cursor", &self.cursor)
            .field("done", &self.done)
            .finish()
    }
}

impl<M: Mem + ?Sized> Iterator for LiveSlots<'_, M> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.done {
            return None;
        }
        let result = match self.cursor {
            // Slot 0 has no left neighbour; probe it directly.
            None => {
                self.cursor = Some(0);
                if !self.tree.is_removed(self.mem, self.caller, 0) {
                    return Some(0);
                }
                self.tree.find_next(self.mem, self.caller, 0)
            }
            Some(c) => self.tree.find_next(self.mem, self.caller, c),
        };
        match result {
            FindNextResult::Next(q) => {
                self.cursor = Some(q);
                Some(q)
            }
            FindNextResult::Bottom | FindNextResult::Top => {
                self.done = true;
                None
            }
        }
    }
}

impl Tree {
    /// Iterate over all slots that have not been abandoned, in order,
    /// as observed by process `caller`. Quiescently this is exactly the
    /// set of slots whose `Remove` was never invoked; under concurrency
    /// it is a best-effort snapshot (iteration ends early on a
    /// crossed-paths observation).
    pub fn live_slots<'a, M: Mem + ?Sized>(&'a self, mem: &'a M, caller: Pid) -> LiveSlots<'a, M> {
        LiveSlots {
            tree: self,
            mem,
            caller,
            cursor: None,
            done: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sal_memory::MemoryBuilder;

    fn build(n: usize, b: usize) -> (Tree, sal_memory::CcMemory) {
        let mut builder = MemoryBuilder::new();
        let tree = Tree::layout(&mut builder, n, b);
        (tree, builder.build_cc(1))
    }

    #[test]
    fn fresh_tree_iterates_every_slot() {
        let (tree, mem) = build(10, 3);
        let all: Vec<u64> = tree.live_slots(&mem, 0).collect();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn removed_slots_are_skipped() {
        let (tree, mem) = build(8, 2);
        for q in [0u64, 2, 3, 7] {
            tree.remove(&mem, 0, q);
        }
        let live: Vec<u64> = tree.live_slots(&mem, 0).collect();
        assert_eq!(live, vec![1, 4, 5, 6]);
    }

    #[test]
    fn empty_tree_yields_nothing() {
        let (tree, mem) = build(4, 2);
        for q in 0..4 {
            tree.remove(&mem, 0, q);
        }
        assert_eq!(tree.live_slots(&mem, 0).count(), 0);
    }

    #[test]
    fn iterator_is_resumable_mid_stream() {
        let (tree, mem) = build(6, 2);
        tree.remove(&mem, 0, 1);
        let mut it = tree.live_slots(&mem, 0);
        assert_eq!(it.next(), Some(0));
        assert_eq!(it.next(), Some(2));
        // Slots removed after iteration started are skipped from the
        // cursor onward.
        tree.remove(&mem, 0, 3);
        assert_eq!(it.next(), Some(4));
        assert_eq!(it.next(), Some(5));
        assert_eq!(it.next(), None);
        assert_eq!(it.next(), None, "fused after the end");
    }
}
