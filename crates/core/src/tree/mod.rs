//! The `Tree` ordered-set data structure of §4 (Figure 3).
//!
//! `Tree` maintains the set of queue slots that have *not* been abandoned
//! by aborting processes, as a static `B`-ary tree of one-word nodes
//! (`B` plays the role of the paper's `W`, the F&A register width). A set
//! bit in a node means the corresponding child subtree contains only
//! abandoned slots.
//!
//! * [`Tree::remove`] (Algorithm 4.2) — an aborting process ascends from
//!   its leaf, F&A-ing its bit into each node, stopping at the first node
//!   that is not left completely full. `O(log_B A_t)` RMRs, where `A_t`
//!   is the number of processes that abort in the execution (Claim 20).
//! * [`Tree::find_next`] (Algorithm 4.1) — ascend from leaf `p` to the
//!   first node with a zero bit right of the entry point, then descend
//!   left-most-zero-wards. `O(log_B N)` RMRs.
//! * [`Tree::adaptive_find_next`] (Algorithm 4.3) — same result (Lemma 1),
//!   but sidesteps to the right cousin whenever the ascent reaches a
//!   rightmost child, making the cost `O(log_B A)` — adaptive in the
//!   number of aborters (Claim 21).
//!
//! The semantics are *not* linearizable (§3): `FindNext` may return
//! [`FindNextResult::Top`] ("crossed paths") when it observes an
//! all-ones node mid-descent, meaning a concurrent `Remove` will assume
//! responsibility for the lock handoff.

pub(crate) mod bits;
mod cas_remove;
mod geometry;
mod iter;

pub use geometry::{NodeRef, TreeGeometry};
pub use iter::LiveSlots;

use sal_memory::{Mem, MemoryBuilder, Pid, WordArray};

use bits::{
    empty_word, get_first_zero, get_first_zero_to_the_right, has_zero_to_the_right, offset_mask,
};

/// Result of `Tree::FindNext(p)`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum FindNextResult {
    /// The first slot `q > p` that had not been abandoned — the paper's
    /// plain return value (Algorithm 4.1, line 36).
    Next(u64),
    /// The paper's `⊥`: every slot to the right of `p` has been
    /// abandoned; the lock is exhausted (line 27).
    Bottom,
    /// The paper's `⊤`: the descent crossed paths with a concurrent
    /// `Remove` (observed an all-ones node, line 33); the remover assumes
    /// responsibility for the handoff.
    Top,
}

impl FindNextResult {
    /// The found slot, if any.
    pub fn next(self) -> Option<u64> {
        match self {
            FindNextResult::Next(q) => Some(q),
            _ => None,
        }
    }
}

/// Which ascent algorithm `FindNext` uses.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum Ascent {
    /// Algorithm 4.1: straight ascent from the leaf toward the root.
    Plain,
    /// Algorithm 4.3: sidestep to the right cousin at rightmost children
    /// — the adaptive `O(log_B A)` ascent.
    #[default]
    Adaptive,
}

/// The tree of Figure 3. See the [module docs](self) for the protocol.
#[derive(Clone, Debug)]
pub struct Tree {
    geo: TreeGeometry,
    words: WordArray,
}

impl Tree {
    /// Lay out a tree over `leaves` slots with branching factor
    /// `branching ∈ 2..=64` against a memory builder. Initially every
    /// (real) slot is present: all node words are zero except bits
    /// covering the padding up to `B^H` leaves, which are pre-set.
    ///
    /// # Panics
    ///
    /// Panics if `branching ∉ 2..=64` or `leaves == 0`.
    pub fn layout(b: &mut MemoryBuilder, leaves: usize, branching: usize) -> Self {
        let geo = TreeGeometry::new(leaves, branching);
        let mut inits = Vec::with_capacity(geo.words());
        for lvl in 1..=geo.height() {
            for i in 0..geo.nodes_at_level(lvl) {
                inits.push(geo.initial_value(NodeRef {
                    level: lvl,
                    index: i,
                }));
            }
        }
        debug_assert_eq!(inits.len(), geo.words());
        let words = b.alloc_array_with(geo.words(), |i| (0, inits[i]));
        Tree { geo, words }
    }

    /// The tree's shape.
    pub fn geometry(&self) -> &TreeGeometry {
        &self.geo
    }

    /// Branching factor `B` (the paper's `W`).
    pub fn branching(&self) -> usize {
        self.geo.branching()
    }

    /// Number of leaves (queue slots) `N`.
    pub fn leaves(&self) -> usize {
        self.geo.leaves()
    }

    /// Shared word of internal node `u`.
    #[inline]
    fn word(&self, u: NodeRef) -> sal_memory::WordId {
        self.words.at(self.geo.word_index(u))
    }

    /// `Tree.Remove(p)` (Algorithm 4.2): abandon leaf `p`, executed by
    /// process `caller` (in the one-shot lock, `caller` is the process
    /// holding ticket `p`; they are distinguished here because RMRs are
    /// charged to the *executing* process).
    ///
    /// # Panics
    ///
    /// Debug builds panic if `p`'s bit was already set (a violation of
    /// well-formedness: `Remove(p)` may be invoked at most once).
    pub fn remove<M: Mem + ?Sized>(&self, mem: &M, caller: Pid, p: u64) {
        debug_assert!((p as usize) < self.geo.leaves());
        let b = self.geo.branching();
        for lvl in 1..=self.geo.height() {
            let node = self.geo.node(p, lvl);
            let j = offset_mask(b, self.geo.offset(p, lvl));
            let snap = mem.faa(caller, self.word(node), j);
            debug_assert_eq!(snap & j, 0, "Remove({p}) set an already-set bit");
            if snap.wrapping_add(j) != empty_word(b) {
                break;
            }
        }
    }

    /// Whether leaf `p` has been abandoned, as observable from its
    /// level-1 bit. A testing/diagnostic helper, not part of the paper's
    /// interface.
    pub fn is_removed<M: Mem + ?Sized>(&self, mem: &M, caller: Pid, p: u64) -> bool {
        let node = self.geo.node(p, 1);
        let snap = mem.read(caller, self.word(node));
        snap & offset_mask(self.geo.branching(), self.geo.offset(p, 1)) != 0
    }

    /// `Tree.FindNext(p)` with the given ascent flavour.
    pub fn find_next_with<M: Mem + ?Sized>(
        &self,
        mem: &M,
        caller: Pid,
        p: u64,
        ascent: Ascent,
    ) -> FindNextResult {
        match ascent {
            Ascent::Plain => self.find_next(mem, caller, p),
            Ascent::Adaptive => self.adaptive_find_next(mem, caller, p),
        }
    }

    /// `Tree.FindNext(p)` (Algorithm 4.1): the plain leaf-to-root ascent.
    pub fn find_next<M: Mem + ?Sized>(&self, mem: &M, caller: Pid, p: u64) -> FindNextResult {
        debug_assert!((p as usize) < self.geo.leaves());
        let b = self.geo.branching();
        let mut found: Option<(NodeRef, u64, isize)> = None;
        // Lines 20–25: ascend until a zero appears to the right.
        for lvl in 1..=self.geo.height() {
            let node = self.geo.node(p, lvl);
            let offset = self.geo.offset(p, lvl) as isize;
            let snap = mem.read(caller, self.word(node));
            if has_zero_to_the_right(b, snap, offset) {
                found = Some((node, snap, offset));
                break;
            }
        }
        match found {
            // Lines 26–27: reached the root without a candidate.
            None => FindNextResult::Bottom,
            Some((node, snap, offset)) => self.descend(mem, caller, node, snap, offset),
        }
    }

    /// `Tree.AdaptiveFindNext(p)` (Algorithm 4.3): ascend with right-cousin
    /// sidesteps, then descend as in `FindNext`.
    pub fn adaptive_find_next<M: Mem + ?Sized>(
        &self,
        mem: &M,
        caller: Pid,
        p: u64,
    ) -> FindNextResult {
        debug_assert!((p as usize) < self.geo.leaves());
        let b = self.geo.branching();
        let mut node = self.geo.node(p, 1); // line 42
        let mut offset = self.geo.offset(p, 1) as isize; // line 43
        let mut found: Option<(NodeRef, u64, isize)> = None;
        for lvl in 1..=self.geo.height() {
            // Lines 45–47: about to search right of the last bit — nothing
            // can be there, so sidestep to the right cousin and search all
            // of it instead.
            if offset == b as isize - 1 {
                match self.geo.right_cousin(node) {
                    Some(v) => {
                        node = v;
                        offset = -1;
                    }
                    None => {
                        // `node` is the rightmost node of its level and we
                        // came from its rightmost child: no leaf exists to
                        // the right of `p` at all. The plain algorithm
                        // would read the node and learn nothing
                        // (`HasZeroToTheRight(·, W−1)` is always false);
                        // ascend without the read. At the root this means
                        // there is no successor.
                        if lvl == self.geo.height() {
                            return FindNextResult::Bottom;
                        }
                        offset = self.geo.offset_at_parent(node) as isize;
                        node = self.geo.parent(node).expect("non-root has a parent");
                        continue;
                    }
                }
            }
            let snap = mem.read(caller, self.word(node)); // line 48
            if has_zero_to_the_right(b, snap, offset) {
                found = Some((node, snap, offset)); // line 50 (break)
                break;
            }
            // Lines 51–55: after a sidestep the parent-level search must
            // re-include this node's own subtree (offsetAtParent − 1),
            // because the Remove() that filled this node might not have
            // propagated its bit to the parent yet — this preserves the
            // crossed-paths (⊤) behaviour of the plain algorithm.
            if offset == -1 {
                offset = self.geo.offset_at_parent(node) as isize - 1;
            } else {
                offset = self.geo.offset_at_parent(node) as isize;
            }
            match self.geo.parent(node) {
                Some(par) => node = par,
                None => break, // read the root and found nothing
            }
        }
        match found {
            None => FindNextResult::Bottom,
            // Line 56: continue as in FindNext() from line 26.
            Some((node, snap, offset)) => self.descend(mem, caller, node, snap, offset),
        }
    }

    /// Lines 28–36 of Algorithm 4.1: descend from the break node toward
    /// the first non-abandoned leaf.
    fn descend<M: Mem + ?Sized>(
        &self,
        mem: &M,
        caller: Pid,
        node: NodeRef,
        snap: u64,
        offset: isize,
    ) -> FindNextResult {
        let b = self.geo.branching();
        let index = get_first_zero_to_the_right(b, snap, offset); // line 28
        if node.level == 1 {
            return FindNextResult::Next(self.geo.child_leaf(node, index));
        }
        let mut node = self.geo.child(node, index); // line 29
                                                    // Lines 30–35: read levels lvl−1 down to 1.
        loop {
            let snap = mem.read(caller, self.word(node)); // line 31
            if snap == empty_word(b) {
                return FindNextResult::Top; // lines 32–33: crossed paths
            }
            let index = get_first_zero(b, snap); // line 34
            if node.level == 1 {
                // line 36: the child is a leaf sentinel; its "value" is
                // its own id.
                return FindNextResult::Next(self.geo.child_leaf(node, index));
            }
            node = self.geo.child(node, index); // line 35
        }
    }
}

#[cfg(test)]
mod tests;
