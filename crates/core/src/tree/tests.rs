//! Sequential unit tests for the `Tree` data structure.

use super::*;
use sal_memory::MemoryBuilder;

fn build(leaves: usize, branching: usize) -> (Tree, sal_memory::CcMemory) {
    let mut b = MemoryBuilder::new();
    let tree = Tree::layout(&mut b, leaves, branching);
    let mem = b.build_cc(leaves.max(1));
    (tree, mem)
}

/// Reference model: first non-removed slot strictly greater than `p`.
fn model_next(removed: &[bool], p: u64) -> FindNextResult {
    match ((p as usize + 1)..removed.len()).find(|&q| !removed[q]) {
        Some(q) => FindNextResult::Next(q as u64),
        None => FindNextResult::Bottom,
    }
}

#[test]
fn full_tree_returns_immediate_successor() {
    for branching in [2, 3, 4, 8, 64] {
        let (tree, mem) = build(20, branching);
        for p in 0..19u64 {
            assert_eq!(
                tree.find_next(&mem, 0, p),
                FindNextResult::Next(p + 1),
                "B={branching} p={p}"
            );
            assert_eq!(
                tree.adaptive_find_next(&mem, 0, p),
                FindNextResult::Next(p + 1),
                "B={branching} p={p} (adaptive)"
            );
        }
        assert_eq!(tree.find_next(&mem, 0, 19), FindNextResult::Bottom);
        assert_eq!(tree.adaptive_find_next(&mem, 0, 19), FindNextResult::Bottom);
    }
}

#[test]
fn removals_are_skipped_by_find_next() {
    let (tree, mem) = build(16, 2);
    tree.remove(&mem, 1, 1);
    tree.remove(&mem, 2, 2);
    tree.remove(&mem, 3, 3);
    assert_eq!(tree.find_next(&mem, 0, 0), FindNextResult::Next(4));
    assert_eq!(tree.adaptive_find_next(&mem, 0, 0), FindNextResult::Next(4));
    assert!(tree.is_removed(&mem, 0, 2));
    assert!(!tree.is_removed(&mem, 0, 4));
}

#[test]
fn removing_the_whole_right_side_yields_bottom() {
    let (tree, mem) = build(8, 2);
    for q in 4..8 {
        tree.remove(&mem, q, q as u64);
    }
    assert_eq!(tree.find_next(&mem, 0, 3), FindNextResult::Bottom);
    assert_eq!(tree.adaptive_find_next(&mem, 0, 3), FindNextResult::Bottom);
    // A slot left of the removals still finds its neighbour.
    assert_eq!(tree.find_next(&mem, 0, 0), FindNextResult::Next(1));
}

#[test]
fn last_leaf_has_no_successor() {
    for branching in [2, 4, 16] {
        let (tree, mem) = build(10, branching);
        assert_eq!(tree.find_next(&mem, 0, 9), FindNextResult::Bottom);
        assert_eq!(tree.adaptive_find_next(&mem, 0, 9), FindNextResult::Bottom);
    }
}

#[test]
fn padding_is_never_returned() {
    // 5 leaves padded to 8 (B = 2) — find_next(4) must be Bottom, not 5..7.
    let (tree, mem) = build(5, 2);
    assert_eq!(tree.find_next(&mem, 0, 4), FindNextResult::Bottom);
    assert_eq!(tree.adaptive_find_next(&mem, 0, 4), FindNextResult::Bottom);
    tree.remove(&mem, 4, 4);
    assert_eq!(tree.find_next(&mem, 0, 3), FindNextResult::Bottom);
}

#[test]
fn sequential_equivalence_of_plain_and_adaptive_under_random_removals() {
    use sal_runtime::SmallRng;
    for seed in 0..20u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = rng.random_range(2..80usize);
        let branching = [2usize, 3, 4, 5, 8, 16, 64][rng.random_range(0..7)];
        let (tree, mem) = build(n, branching);
        let mut removed = vec![false; n];
        for _ in 0..n * 2 {
            if rng.random_bool(0.5) {
                let p = rng.random_range(0..n);
                if !removed[p] {
                    removed[p] = true;
                    tree.remove(&mem, p, p as u64);
                }
            }
            let p = rng.random_range(0..n) as u64;
            let want = model_next(&removed, p);
            assert_eq!(tree.find_next(&mem, 0, p), want, "seed={seed} plain");
            assert_eq!(
                tree.adaptive_find_next(&mem, 0, p),
                want,
                "seed={seed} adaptive"
            );
        }
    }
}

#[test]
fn remove_stops_ascending_at_first_non_full_node() {
    // B = 2, N = 8. Removing leaf 0 sets only its level-1 bit (sibling 1
    // is still present), so the root and level-2 words stay untouched.
    let (tree, mem) = build(8, 2);
    let before = mem.total_rmrs();
    tree.remove(&mem, 0, 0);
    assert_eq!(mem.total_rmrs() - before, 1, "one F&A suffices");
    // Removing the sibling fills the level-1 node and propagates one more
    // level, but the level-2 node is not yet full.
    let before = mem.total_rmrs();
    tree.remove(&mem, 1, 1);
    assert_eq!(mem.total_rmrs() - before, 2);
}

#[test]
fn find_next_cost_is_bounded_by_height() {
    // Worst case for the plain ascent: p is the last leaf of the leftmost
    // subtree and its successor is adjacent. Cost ≤ 2H + O(1).
    let n = 1 << 12;
    let (tree, mem) = build(n, 2);
    let p = (n / 2 - 1) as u64; // rightmost leaf of the left half
    let probe = sal_memory::RmrProbe::start(&mem, 0);
    assert_eq!(tree.find_next(&mem, 0, p), FindNextResult::Next(p + 1));
    let plain = probe.rmrs(&mem);
    assert!(
        plain >= 12,
        "plain ascent must climb to the root, got {plain}"
    );

    // The adaptive ascent sidesteps straight to the sibling subtree.
    let probe = sal_memory::RmrProbe::start(&mem, 1);
    assert_eq!(
        tree.adaptive_find_next(&mem, 1, p),
        FindNextResult::Next(p + 1)
    );
    let adaptive = probe.rmrs(&mem);
    assert!(
        adaptive <= 3,
        "adaptive ascent should be O(1) with no aborts, got {adaptive}"
    );
}

#[test]
fn adaptive_cost_scales_with_aborters_not_n() {
    // Remove the 2^k leaves following p; adaptive FindNext pays O(log A).
    let n = 1 << 14;
    let (tree, mem) = build(n, 2);
    let p = 0u64;
    let mut costs = Vec::new();
    for k in [1usize, 4, 7, 10] {
        let a = 1 << k;
        for q in 1..=a as u64 {
            if !tree.is_removed(&mem, 0, q) {
                tree.remove(&mem, q as usize, q);
            }
        }
        let probe = sal_memory::RmrProbe::start(&mem, 0);
        assert_eq!(
            tree.adaptive_find_next(&mem, 0, p),
            FindNextResult::Next(a as u64 + 1)
        );
        costs.push((k, probe.rmrs(&mem)));
    }
    // Cost grows with log A: each quadrupling of A adds only a few RMRs.
    for (k, c) in &costs {
        assert!(
            *c <= 2 * (*k as u64) + 6,
            "adaptive cost {c} too high for A = 2^{k}"
        );
    }
}

#[test]
fn crossed_paths_is_reported_when_descending_into_an_emptied_node() {
    // Manufacture the ⊤ scenario deterministically: B = 2, N = 8.
    // Empty the level-1 node covering leaves {2,3} *without* letting the
    // Remove propagate to level 2 (we stop it mid-flight by doing the
    // F&As by hand, exactly the state between lines 39 and 39' of two
    // nested iterations).
    let mut b = MemoryBuilder::new();
    let tree = Tree::layout(&mut b, 8, 2);
    let mem = b.build_cc(8);
    // Remove leaf 2 completely (sets bit in node (1,1); node not full).
    tree.remove(&mem, 2, 2);
    // Start Remove(3): its first F&A fills node (1,1) — but imagine the
    // process is preempted before its level-2 F&A. We simulate by doing
    // only the first step manually.
    let g = tree.geometry().clone();
    let n11 = tree.words.at(g.word_index(NodeRef { level: 1, index: 1 }));
    mem.faa(3, n11, super::bits::offset_mask(2, 1));
    // FindNext(0): level 1 node (1,0) has bit for leaf 1 clear → returns 1.
    assert_eq!(tree.find_next(&mem, 0, 0), FindNextResult::Next(1));
    // Remove leaf 1 so that FindNext(0) must look right: it ascends to
    // level 2, sees node (1,1)'s bit still clear (the in-flight Remove
    // hasn't propagated), descends into it, finds it EMPTY → ⊤.
    tree.remove(&mem, 1, 1);
    assert_eq!(tree.find_next(&mem, 0, 0), FindNextResult::Top);
    assert_eq!(tree.adaptive_find_next(&mem, 0, 0), FindNextResult::Top);
}

#[test]
#[cfg(debug_assertions)]
#[should_panic(expected = "already-set bit")]
fn double_remove_is_rejected_in_debug_builds() {
    let (tree, mem) = build(4, 2);
    tree.remove(&mem, 1, 1);
    tree.remove(&mem, 1, 1);
}

#[test]
fn branching_64_uses_full_words() {
    let (tree, mem) = build(64, 64);
    assert_eq!(tree.geometry().height(), 1);
    assert_eq!(tree.geometry().words(), 1);
    for q in 1..64 {
        tree.remove(&mem, q, q as u64);
    }
    assert_eq!(tree.find_next(&mem, 0, 0), FindNextResult::Bottom);
}

#[test]
fn single_leaf_tree_is_degenerate_but_valid() {
    let (tree, mem) = build(1, 2);
    assert_eq!(tree.find_next(&mem, 0, 0), FindNextResult::Bottom);
    assert_eq!(tree.adaptive_find_next(&mem, 0, 0), FindNextResult::Bottom);
    tree.remove(&mem, 0, 0);
    assert!(tree.is_removed(&mem, 0, 0));
}
