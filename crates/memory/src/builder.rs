//! Allocation-phase builder for all memory flavours.

use crate::cc::{CcMemory, EpochMode};
use crate::cc_mutex::MutexCcMemory;
use crate::dsm::DsmMemory;
use crate::raw::RawMemory;
use crate::word::{Pid, WordId};
use std::fmt;

/// A contiguous run of words allocated together, e.g. the `go[]` array of
/// the one-shot lock or the node array of the `Tree`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct WordArray {
    base: u32,
    len: u32,
}

impl WordArray {
    /// The `i`-th word of the array.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn at(&self, i: usize) -> WordId {
        assert!(
            i < self.len as usize,
            "index {i} out of array of {}",
            self.len
        );
        WordId(self.base + i as u32)
    }

    /// Number of words in the array.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the array is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate over the word ids in the array.
    pub fn iter(&self) -> impl Iterator<Item = WordId> + '_ {
        (0..self.len).map(move |i| WordId(self.base + i))
    }
}

/// Two-phase construction of a shared memory: algorithms *lay out* their
/// words against the builder (obtaining stable [`WordId`]s), then the memory
/// is built once in the flavour the experiment needs.
///
/// ```
/// use sal_memory::{Mem, MemoryBuilder};
///
/// let mut b = MemoryBuilder::new();
/// let tail = b.alloc(0);
/// let slots = b.alloc_array(8, 0);
/// let mem = b.build_cc(8);
/// assert_eq!(mem.num_words(), 9);
/// assert_eq!(mem.read(3, slots.at(3)), 0);
/// # let _ = tail;
/// ```
#[derive(Default)]
pub struct MemoryBuilder {
    inits: Vec<u64>,
    homes: Vec<Pid>,
}

impl fmt::Debug for MemoryBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemoryBuilder")
            .field("words", &self.inits.len())
            .finish()
    }
}

impl MemoryBuilder {
    /// New, empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate one word with initial value `init`, homed (for the DSM
    /// model) at process 0.
    pub fn alloc(&mut self, init: u64) -> WordId {
        self.alloc_at(0, init)
    }

    /// Allocate one word with initial value `init`, homed at process
    /// `home`. The home assignment is meaningful only under
    /// [`build_dsm`](Self::build_dsm); the CC and raw flavours ignore it.
    pub fn alloc_at(&mut self, home: Pid, init: u64) -> WordId {
        let id = u32::try_from(self.inits.len()).expect("too many words");
        self.inits.push(init);
        self.homes.push(home);
        WordId(id)
    }

    /// Allocate `n` contiguous words, all initialized to `init`, homed at
    /// process 0.
    pub fn alloc_array(&mut self, n: usize, init: u64) -> WordArray {
        let base = u32::try_from(self.inits.len()).expect("too many words");
        let len = u32::try_from(n).expect("array too large");
        self.inits.extend(std::iter::repeat_n(init, n));
        self.homes.extend(std::iter::repeat_n(0, n));
        WordArray { base, len }
    }

    /// Allocate `n` contiguous words with initial values and homes decided
    /// per-index by `f(i) -> (home, init)` — used by the DSM one-shot lock
    /// to place `announce[i]` on process `i`.
    pub fn alloc_array_with(
        &mut self,
        n: usize,
        mut f: impl FnMut(usize) -> (Pid, u64),
    ) -> WordArray {
        let base = u32::try_from(self.inits.len()).expect("too many words");
        let len = u32::try_from(n).expect("array too large");
        for i in 0..n {
            let (home, init) = f(i);
            self.inits.push(init);
            self.homes.push(home);
        }
        WordArray { base, len }
    }

    /// Number of words allocated so far.
    pub fn words_allocated(&self) -> usize {
        self.inits.len()
    }

    /// Snapshot of all initial values, indexed by word. The long-lived
    /// lock's lazy-reset scheme (§6.2) uses this to know what "reset to the
    /// initial value" means for each word of a recycled one-shot instance.
    pub fn initial_values(&self) -> Vec<u64> {
        self.inits.clone()
    }

    /// Build a cache-coherent memory (the paper's primary model) for
    /// `nprocs` processes with exact RMR accounting.
    pub fn build_cc(self, nprocs: usize) -> CcMemory {
        CcMemory::new(self.inits, nprocs)
    }

    /// Build a cache-coherent memory with an explicit choice of
    /// per-(process, word) epoch storage — see [`EpochMode`]. Accounting
    /// is identical in every mode; this only trades space for speed (and
    /// lets tests exercise both paths deterministically).
    pub fn build_cc_with(self, nprocs: usize, mode: EpochMode) -> CcMemory {
        CcMemory::with_epoch_mode(self.inits, nprocs, mode)
    }

    /// Build the retained global-mutex CC reference memory
    /// ([`MutexCcMemory`]) — the differential-testing oracle and the
    /// `memscale` scaling baseline, not for production measurement runs.
    pub fn build_cc_mutex(self, nprocs: usize) -> MutexCcMemory {
        MutexCcMemory::new(self.inits, nprocs)
    }

    /// Build a distributed-shared-memory flavoured memory for `nprocs`
    /// processes: each word is local to its home and remote to everyone
    /// else.
    ///
    /// # Panics
    ///
    /// Panics if any word's home is `>= nprocs`.
    pub fn build_dsm(self, nprocs: usize) -> DsmMemory {
        DsmMemory::new(self.inits, self.homes, nprocs)
    }

    /// Build an uninstrumented memory over real `AtomicU64`s, for running
    /// the same algorithm code on real threads at full speed.
    pub fn build_raw(self, nprocs: usize) -> RawMemory {
        RawMemory::new(self.inits, nprocs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mem;

    #[test]
    fn arrays_are_contiguous_and_indexable() {
        let mut b = MemoryBuilder::new();
        let a = b.alloc_array(4, 9);
        let w = b.alloc(1);
        assert_eq!(a.len(), 4);
        assert!(!a.is_empty());
        assert_eq!(a.at(0).index() + 3, a.at(3).index());
        assert_eq!(w.index(), 4);
        let ids: Vec<_> = a.iter().collect();
        assert_eq!(ids.len(), 4);
        assert_eq!(ids[2], a.at(2));
    }

    #[test]
    #[should_panic(expected = "out of array")]
    fn array_bounds_are_checked() {
        let mut b = MemoryBuilder::new();
        let a = b.alloc_array(2, 0);
        let _ = a.at(2);
    }

    #[test]
    fn initial_values_are_preserved_in_every_flavour() {
        for flavour in 0..3 {
            let mut b = MemoryBuilder::new();
            let w0 = b.alloc(5);
            let w1 = b.alloc_at(1, 6);
            assert_eq!(b.initial_values(), vec![5, 6]);
            let mem: Box<dyn Mem> = match flavour {
                0 => Box::new(b.build_cc(2)),
                1 => Box::new(b.build_dsm(2)),
                _ => Box::new(b.build_raw(2)),
            };
            assert_eq!(mem.read(0, w0), 5);
            assert_eq!(mem.read(1, w1), 6);
            assert_eq!(mem.num_words(), 2);
            assert_eq!(mem.num_procs(), 2);
        }
    }

    #[test]
    fn alloc_array_with_sets_per_index_homes_and_inits() {
        let mut b = MemoryBuilder::new();
        let a = b.alloc_array_with(3, |i| (i, i as u64 * 10));
        let mem = b.build_dsm(3);
        assert_eq!(mem.read(0, a.at(0)), 0);
        assert_eq!(mem.read(1, a.at(1)), 10);
        assert_eq!(mem.read(2, a.at(2)), 20);
        // Reads by the home process are free in DSM.
        assert_eq!(mem.rmrs(1), 0);
        // Process 0 read its own word only.
        assert_eq!(mem.rmrs(0), 0);
    }
}
