//! Cache-coherent memory with exact RMR accounting (§2 of the paper).

use crate::mem::Mem;
use crate::word::{Pid, WordId};
use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;

/// Per-word coherence state.
///
/// Instead of storing an `N`-bit valid-copy set per word (which would cost
/// `O(words × procs)` space and make million-leaf tree experiments
/// infeasible), we track per word a write sequence number together with the
/// current *run* of consecutive writes by a single process, and per process
/// a sparse map `word → seq of the word at my last read`. A read by `p` is
/// local iff `p` has read the word before **and** every write-type
/// operation since `p`'s last read was performed by `p` itself — precisely
/// the model's rule that only *another* process's write/CAS/F&A invalidates
/// `p`'s cached copy.
struct WordCell {
    value: u64,
    /// Total write-type operations performed on this word.
    seq: u64,
    /// Process that performed the most recent write-type operation.
    last_writer: Pid,
    /// Value of `seq` just before the current run of consecutive
    /// `last_writer` writes began.
    run_start: u64,
}

struct CcState {
    words: Vec<WordCell>,
    /// `read_seqs[p][w]` = value of `words[w].seq` at `p`'s last read of `w`.
    read_seqs: Vec<HashMap<u32, u64>>,
    rmrs: Vec<u64>,
    ops: Vec<u64>,
}

/// Shared memory implementing the paper's cache-coherent (CC) cost model
/// *exactly*:
///
/// * every `write`, `cas` (successful or not), `faa` and `swap` costs the
///   caller one RMR and invalidates every other process's cached copy;
/// * a `read` by `p` costs one RMR iff it is `p`'s first read of the word,
///   or another process performed a write-type operation on the word after
///   `p`'s last read of it. Otherwise the read is local and free.
///
/// A failed `cas` is treated as a write-type operation for invalidation
/// purposes, following the letter of the model ("another process performed
/// a write, CAS, or F&A to `w`") and the behaviour of real read-for-
/// ownership coherence protocols.
///
/// The memory is linearizable: all operations are serialized through an
/// internal mutex, so counting remains exact even when driven by free-
/// running threads.
pub struct CcMemory {
    state: Mutex<CcState>,
    nprocs: usize,
    nwords: usize,
}

impl fmt::Debug for CcMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CcMemory")
            .field("nwords", &self.nwords)
            .field("nprocs", &self.nprocs)
            .finish()
    }
}

impl CcMemory {
    pub(crate) fn new(inits: Vec<u64>, nprocs: usize) -> Self {
        let nwords = inits.len();
        let words = inits
            .into_iter()
            .map(|v| WordCell {
                value: v,
                seq: 0,
                last_writer: usize::MAX,
                run_start: 0,
            })
            .collect();
        CcMemory {
            state: Mutex::new(CcState {
                words,
                read_seqs: (0..nprocs).map(|_| HashMap::new()).collect(),
                rmrs: vec![0; nprocs],
                ops: vec![0; nprocs],
            }),
            nprocs,
            nwords,
        }
    }

    /// Reset all RMR and operation counters (values and coherence state are
    /// left untouched). Useful between warm-up and measurement phases.
    pub fn reset_counters(&self) {
        let mut s = self.state.lock().unwrap();
        s.rmrs.iter_mut().for_each(|c| *c = 0);
        s.ops.iter_mut().for_each(|c| *c = 0);
    }

    fn write_type(&self, p: Pid, w: WordId, f: impl FnOnce(&mut u64) -> u64) -> u64 {
        let mut s = self.state.lock().unwrap();
        s.ops[p] += 1;
        s.rmrs[p] += 1;
        let cell = &mut s.words[w.index()];
        let prev_seq = cell.seq;
        cell.seq += 1;
        if cell.last_writer != p {
            cell.last_writer = p;
            cell.run_start = prev_seq;
        }
        f(&mut cell.value)
    }
}

impl Mem for CcMemory {
    fn read(&self, p: Pid, w: WordId) -> u64 {
        let mut s = self.state.lock().unwrap();
        s.ops[p] += 1;
        let cell = &s.words[w.index()];
        let (value, seq, last_writer, run_start) =
            (cell.value, cell.seq, cell.last_writer, cell.run_start);
        let local = match s.read_seqs[p].get(&(w.index() as u32)) {
            // Cached and no write since, or every write since was ours.
            Some(&r) => r == seq || (last_writer == p && r >= run_start),
            None => false, // first read of w by p
        };
        if !local {
            s.rmrs[p] += 1;
        }
        s.read_seqs[p].insert(w.index() as u32, seq);
        value
    }

    fn write(&self, p: Pid, w: WordId, v: u64) {
        self.write_type(p, w, |cell| {
            *cell = v;
            0
        });
    }

    fn cas(&self, p: Pid, w: WordId, old: u64, new: u64) -> bool {
        self.write_type(p, w, |cell| {
            if *cell == old {
                *cell = new;
                1
            } else {
                0
            }
        }) == 1
    }

    fn faa(&self, p: Pid, w: WordId, add: u64) -> u64 {
        self.write_type(p, w, |cell| {
            let prev = *cell;
            *cell = cell.wrapping_add(add);
            prev
        })
    }

    fn swap(&self, p: Pid, w: WordId, v: u64) -> u64 {
        self.write_type(p, w, |cell| std::mem::replace(cell, v))
    }

    fn rmrs(&self, p: Pid) -> u64 {
        self.state.lock().unwrap().rmrs[p]
    }

    fn total_rmrs(&self) -> u64 {
        self.state.lock().unwrap().rmrs.iter().sum()
    }

    fn ops(&self, p: Pid) -> u64 {
        self.state.lock().unwrap().ops[p]
    }

    fn num_words(&self) -> usize {
        self.nwords
    }

    fn num_procs(&self) -> usize {
        self.nprocs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryBuilder;

    fn mem(nwords: usize, nprocs: usize) -> (CcMemory, Vec<WordId>) {
        let mut b = MemoryBuilder::new();
        let ws: Vec<_> = (0..nwords).map(|_| b.alloc(0)).collect();
        (b.build_cc(nprocs), ws)
    }

    #[test]
    fn first_read_is_remote_subsequent_reads_are_local() {
        let (m, ws) = mem(1, 1);
        m.read(0, ws[0]);
        assert_eq!(m.rmrs(0), 1);
        for _ in 0..10 {
            m.read(0, ws[0]);
        }
        assert_eq!(m.rmrs(0), 1);
        assert_eq!(m.ops(0), 11);
    }

    #[test]
    fn every_write_type_op_costs_one_rmr() {
        let (m, ws) = mem(1, 1);
        m.write(0, ws[0], 1);
        m.faa(0, ws[0], 1);
        m.swap(0, ws[0], 5);
        assert!(m.cas(0, ws[0], 5, 6));
        assert!(!m.cas(0, ws[0], 99, 7)); // failed CAS still costs an RMR
        assert_eq!(m.rmrs(0), 5);
    }

    #[test]
    fn foreign_write_invalidates_cached_copy() {
        let (m, ws) = mem(1, 2);
        m.read(0, ws[0]); // 1 RMR (first read)
        m.read(0, ws[0]); // local
        m.write(1, ws[0], 7); // p1: 1 RMR, invalidates p0's copy
        m.read(0, ws[0]); // 1 RMR again
        assert_eq!(m.rmrs(0), 2);
        assert_eq!(m.rmrs(1), 1);
    }

    #[test]
    fn own_writes_do_not_invalidate_own_copy() {
        let (m, ws) = mem(1, 2);
        m.read(0, ws[0]); // RMR
        m.write(0, ws[0], 1); // RMR (write-type)
        m.write(0, ws[0], 2); // RMR
        m.read(0, ws[0]); // local: all writes since last read were ours
        assert_eq!(m.rmrs(0), 3);
    }

    #[test]
    fn interleaved_foreign_write_inside_own_run_invalidates() {
        let (m, ws) = mem(1, 2);
        m.read(0, ws[0]); // p0 RMR
        m.write(1, ws[0], 1); // p1 writes
        m.write(0, ws[0], 2); // p0 writes (starts its own run)
                              // p1's write happened after p0's last read, even though the *most
                              // recent* writer is p0 — the read must be remote.
        m.read(0, ws[0]);
        assert_eq!(m.rmrs(0), 3);
    }

    #[test]
    fn spinning_on_an_unchanged_word_is_free() {
        let (m, ws) = mem(1, 2);
        m.read(1, ws[0]); // bring into cache: 1 RMR
        for _ in 0..1000 {
            assert_eq!(m.read(1, ws[0]), 0);
        }
        assert_eq!(m.rmrs(1), 1);
        m.write(0, ws[0], 1); // the handoff
        assert_eq!(m.read(1, ws[0]), 1); // one more RMR
        assert_eq!(m.rmrs(1), 2);
    }

    #[test]
    fn failed_cas_invalidates_other_readers() {
        let (m, ws) = mem(1, 2);
        m.read(0, ws[0]);
        assert!(!m.cas(1, ws[0], 42, 43));
        m.read(0, ws[0]); // invalidated by p1's (failed) CAS
        assert_eq!(m.rmrs(0), 2);
    }

    #[test]
    fn faa_wraps_and_returns_previous() {
        let (m, ws) = mem(1, 1);
        assert_eq!(m.faa(0, ws[0], 5), 0);
        assert_eq!(m.faa(0, ws[0], 1u64.wrapping_neg()), 5);
        assert_eq!(m.read(0, ws[0]), 4);
    }

    #[test]
    fn swap_returns_previous_value() {
        let (m, ws) = mem(1, 1);
        m.write(0, ws[0], 3);
        assert_eq!(m.swap(0, ws[0], 9), 3);
        assert_eq!(m.read(0, ws[0]), 9);
    }

    #[test]
    fn counters_reset_but_values_survive() {
        let (m, ws) = mem(1, 1);
        m.write(0, ws[0], 11);
        m.reset_counters();
        assert_eq!(m.rmrs(0), 0);
        assert_eq!(m.ops(0), 0);
        assert_eq!(m.read(0, ws[0]), 11);
    }

    #[test]
    fn total_rmrs_sums_over_processes() {
        let (m, ws) = mem(2, 3);
        m.write(0, ws[0], 1);
        m.write(1, ws[1], 1);
        m.read(2, ws[0]);
        assert_eq!(m.total_rmrs(), 3);
    }

    #[test]
    fn words_are_independent_coherence_units() {
        let (m, ws) = mem(2, 2);
        m.read(0, ws[0]);
        m.read(0, ws[1]);
        m.write(1, ws[1], 5); // invalidates only ws[1]
        m.read(0, ws[0]); // still cached
        assert_eq!(m.rmrs(0), 2);
        m.read(0, ws[1]); // invalidated
        assert_eq!(m.rmrs(0), 3);
    }

    #[test]
    fn concurrent_threads_count_exactly() {
        use std::sync::Arc;
        let mut b = MemoryBuilder::new();
        let w = b.alloc(0);
        let m = Arc::new(b.build_cc(4));
        let handles: Vec<_> = (0..4)
            .map(|p| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.faa(p, w, 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.read(0, w), 4000);
        // Each F&A is exactly one RMR.
        assert_eq!(m.total_rmrs(), 4000 + 1 /* the read above */);
    }
}
