//! Cache-coherent memory with exact RMR accounting (§2 of the paper) —
//! sharded, lock-free engine.
//!
//! The original implementation serialized *every* shared-memory
//! operation through one global `Mutex<CcState>`, so any instrumented
//! run on real threads was bottlenecked by the measurement substrate
//! rather than the lock under test (and a panic inside a memory op
//! poisoned the mutex, killing every later operation with an unrelated
//! `PoisonError`). This engine removes the global lock entirely while
//! producing **bit-identical accounting** (cross-validated against the
//! retained [`MutexCcMemory`](crate::MutexCcMemory) reference by
//! `tests/cc_differential.rs` and `tests/obs_accounting.rs`):
//!
//! * **Per-word seqlock cells** ([`WordCell`], one cache line each): the
//!   word's value plus its coherence metadata (write sequence number,
//!   last writer, start of the current write run) live behind a per-word
//!   sequence word. Write-type operations take the word's private lock
//!   bit (no two words ever contend); reads are wait-free optimistic
//!   snapshots — they retry only while a write to *that word* is
//!   mid-flight, which in the cost model is precisely when the read's
//!   outcome depends on the write's linearization anyway.
//! * **Padded per-process counters** ([`PerProc`]): each process's
//!   `rmrs`/`ops` counters are relaxed atomics on their own cache line,
//!   so counting never causes cross-thread traffic of its own.
//! * **Per-(process, word) read epochs**: process `p`'s record of the
//!   word's sequence number at `p`'s last read. Only `p` itself ever
//!   consults or updates `p`'s epochs, so the table needs visibility,
//!   not mutual exclusion: small memories use a dense `AtomicU64` array
//!   per process, huge ones (million-word trees) fall back to a sparse
//!   per-process map behind an uncontended per-process mutex
//!   (poison-immune: see [`EpochTable`]).
//!
//! The coherence rule is unchanged from the mutex version: a read by
//! `p` is local iff `p` has read the word before **and** every
//! write-type operation since `p`'s last read was performed by `p`
//! itself. Tracking `(seq, last_writer, run_start)` per word makes that
//! decidable from one consistent snapshot without an `N`-bit valid-copy
//! set per word.

use crate::mem::Mem;
use crate::word::{Pid, WordId};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Sentinel for "no process has performed a write-type op on this word".
const NO_WRITER: u64 = u64::MAX;

/// Epoch value for "process never read this word".
const EPOCH_NONE: u64 = u64::MAX;

/// Above this many `(process, word)` pairs the dense per-process epoch
/// arrays would dominate memory (the million-leaf tree experiments), so
/// the engine switches to sparse maps. 2²² entries = 32 MiB of epochs.
const DENSE_EPOCH_LIMIT: usize = 1 << 22;

/// How the per-(process, word) read epochs are stored.
///
/// Purely a space/speed trade-off — the accounting is identical either
/// way (asserted by the differential suite on both paths).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum EpochMode {
    /// Dense arrays when `procs × words` is small enough
    /// (≤ 2²² entries), sparse per-process maps beyond that.
    #[default]
    Auto,
    /// Force dense arrays: O(procs × words) space, O(1) epoch access.
    Dense,
    /// Force sparse maps: O(touched words) space per process, one
    /// (uncontended) per-process lock per read.
    Sparse,
}

/// Per-word coherence state, one cache line per word so distinct words
/// never share a coherence unit — mirroring the model, where each word
/// is its own cache line.
///
/// `meta` is a seqlock word: `(seq << 1) | locked`, where `seq` counts
/// write-type operations on the word. Writers hold the lock bit for the
/// few instructions of the update; readers snapshot optimistically and
/// retry on a concurrent write.
#[repr(align(64))]
struct WordCell {
    meta: AtomicU64,
    value: AtomicU64,
    /// Process that performed the most recent write-type operation
    /// ([`NO_WRITER`] initially).
    last_writer: AtomicU64,
    /// Value of `seq` just before the current run of consecutive
    /// `last_writer` writes began.
    run_start: AtomicU64,
}

impl WordCell {
    fn new(value: u64) -> Self {
        WordCell {
            meta: AtomicU64::new(0),
            value: AtomicU64::new(value),
            last_writer: AtomicU64::new(NO_WRITER),
            run_start: AtomicU64::new(0),
        }
    }

    /// Consistent snapshot of `(seq, value, last_writer, run_start)`.
    #[inline]
    fn snapshot(&self) -> (u64, u64, u64, u64) {
        loop {
            let m1 = self.meta.load(Ordering::Acquire);
            if m1 & 1 == 0 {
                let value = self.value.load(Ordering::Relaxed);
                let last_writer = self.last_writer.load(Ordering::Relaxed);
                let run_start = self.run_start.load(Ordering::Relaxed);
                fence(Ordering::Acquire);
                if self.meta.load(Ordering::Relaxed) == m1 {
                    return (m1 >> 1, value, last_writer, run_start);
                }
            }
            std::hint::spin_loop();
        }
    }

    /// Take the word's write lock; returns the pre-write `seq`.
    #[inline]
    fn lock(&self) -> u64 {
        let mut m = self.meta.load(Ordering::Relaxed);
        loop {
            if m & 1 == 0 {
                match self.meta.compare_exchange_weak(
                    m,
                    m | 1,
                    Ordering::Acquire,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return m >> 1,
                    Err(cur) => m = cur,
                }
            } else {
                std::hint::spin_loop();
                m = self.meta.load(Ordering::Relaxed);
            }
        }
    }

    /// Release the write lock, publishing `seq + 1`.
    #[inline]
    fn unlock(&self, prev_seq: u64) {
        self.meta.store((prev_seq + 1) << 1, Ordering::Release);
    }
}

/// Per-process read-epoch storage. Logically owned by its process: only
/// process `p` reads or writes `p`'s table, so the dense flavour needs
/// atomics for visibility only, and the sparse flavour's mutex is never
/// contended in a well-formed run (one OS thread per process).
///
/// The sparse lock deliberately shrugs off poisoning
/// (`unwrap_or_else(PoisonError::into_inner)`): an epoch table is a
/// plain map with no invariants spanning the critical section, so a
/// panic unwinding through a read must not take the whole instrumented
/// memory down with it.
enum EpochTable {
    Dense(Vec<AtomicU64>),
    Sparse(Mutex<HashMap<u32, u64>>),
}

impl EpochTable {
    fn new(nwords: usize, dense: bool) -> Self {
        if dense {
            EpochTable::Dense((0..nwords).map(|_| AtomicU64::new(EPOCH_NONE)).collect())
        } else {
            EpochTable::Sparse(Mutex::new(HashMap::new()))
        }
    }

    #[inline]
    fn get(&self, w: usize) -> Option<u64> {
        match self {
            EpochTable::Dense(v) => {
                let e = v[w].load(Ordering::Relaxed);
                (e != EPOCH_NONE).then_some(e)
            }
            EpochTable::Sparse(m) => m
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .get(&(w as u32))
                .copied(),
        }
    }

    #[inline]
    fn set(&self, w: usize, epoch: u64) {
        match self {
            EpochTable::Dense(v) => v[w].store(epoch, Ordering::Relaxed),
            EpochTable::Sparse(m) => {
                m.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .insert(w as u32, epoch);
            }
        }
    }
}

/// One process's slice of the accounting state, padded to a cache line
/// so counter updates by different processes never false-share.
#[repr(align(128))]
struct PerProc {
    rmrs: AtomicU64,
    ops: AtomicU64,
    epochs: EpochTable,
}

/// Shared memory implementing the paper's cache-coherent (CC) cost model
/// *exactly*:
///
/// * every `write`, `cas` (successful or not), `faa` and `swap` costs the
///   caller one RMR and invalidates every other process's cached copy;
/// * a `read` by `p` costs one RMR iff it is `p`'s first read of the word,
///   or another process performed a write-type operation on the word after
///   `p`'s last read of it. Otherwise the read is local and free.
///
/// A failed `cas` is treated as a write-type operation for invalidation
/// purposes, following the letter of the model ("another process performed
/// a write, CAS, or F&A to `w`") and the behaviour of real read-for-
/// ownership coherence protocols.
///
/// The memory is per-word linearizable — reads linearize at their seqlock
/// snapshot, write-type operations while holding the word's lock bit —
/// and the accounting is exact for *every* linearization, so counting
/// stays exact when driven by free-running threads (each process on one
/// thread, the model's setup). Unlike its predecessor there is no global
/// lock: operations on distinct words never contend, and the substrate
/// scales with threads instead of serializing them (see the `memscale`
/// bench and [`MutexCcMemory`](crate::MutexCcMemory), the retained
/// global-mutex reference it is differentially tested against).
pub struct CcMemory {
    words: Vec<WordCell>,
    procs: Vec<PerProc>,
}

impl fmt::Debug for CcMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CcMemory")
            .field("nwords", &self.words.len())
            .field("nprocs", &self.procs.len())
            .finish()
    }
}

impl CcMemory {
    pub(crate) fn new(inits: Vec<u64>, nprocs: usize) -> Self {
        Self::with_epoch_mode(inits, nprocs, EpochMode::Auto)
    }

    pub(crate) fn with_epoch_mode(inits: Vec<u64>, nprocs: usize, mode: EpochMode) -> Self {
        let nwords = inits.len();
        let dense = match mode {
            EpochMode::Dense => true,
            EpochMode::Sparse => false,
            EpochMode::Auto => nwords.saturating_mul(nprocs) <= DENSE_EPOCH_LIMIT,
        };
        CcMemory {
            words: inits.into_iter().map(WordCell::new).collect(),
            procs: (0..nprocs)
                .map(|_| PerProc {
                    rmrs: AtomicU64::new(0),
                    ops: AtomicU64::new(0),
                    epochs: EpochTable::new(nwords, dense),
                })
                .collect(),
        }
    }

    /// Whether the per-process read epochs are stored densely (an
    /// `AtomicU64` per word) or sparsely (a map of touched words).
    pub fn dense_epochs(&self) -> bool {
        matches!(
            self.procs.first().map(|p| &p.epochs),
            Some(EpochTable::Dense(_)) | None
        )
    }

    /// Reset all RMR and operation counters (values and coherence state are
    /// left untouched). Useful between warm-up and measurement phases.
    /// Call it while the memory is quiescent; concurrent operations land
    /// on one side or the other of the reset, per counter.
    pub fn reset_counters(&self) {
        for proc in &self.procs {
            proc.rmrs.store(0, Ordering::Relaxed);
            proc.ops.store(0, Ordering::Relaxed);
        }
    }

    #[inline]
    fn write_type(&self, p: Pid, w: WordId, f: impl FnOnce(u64) -> (u64, u64)) -> u64 {
        let proc = &self.procs[p];
        proc.ops.fetch_add(1, Ordering::Relaxed);
        proc.rmrs.fetch_add(1, Ordering::Relaxed);
        let cell = &self.words[w.index()];
        let prev_seq = cell.lock();
        if cell.last_writer.load(Ordering::Relaxed) != p as u64 {
            cell.last_writer.store(p as u64, Ordering::Relaxed);
            cell.run_start.store(prev_seq, Ordering::Relaxed);
        }
        // No user code runs while the word lock is held (the closures
        // below are pure arithmetic), so the lock bit can never be
        // leaked by a panic.
        let (new_value, result) = f(cell.value.load(Ordering::Relaxed));
        cell.value.store(new_value, Ordering::Relaxed);
        cell.unlock(prev_seq);
        result
    }
}

impl Mem for CcMemory {
    fn read(&self, p: Pid, w: WordId) -> u64 {
        let (seq, value, last_writer, run_start) = self.words[w.index()].snapshot();
        let proc = &self.procs[p];
        proc.ops.fetch_add(1, Ordering::Relaxed);
        let local = match proc.epochs.get(w.index()) {
            // Cached and no write since, or every write since was ours.
            Some(r) => r == seq || (last_writer == p as u64 && r >= run_start),
            None => false, // first read of w by p
        };
        if !local {
            proc.rmrs.fetch_add(1, Ordering::Relaxed);
        }
        proc.epochs.set(w.index(), seq);
        value
    }

    fn write(&self, p: Pid, w: WordId, v: u64) {
        self.write_type(p, w, |_| (v, 0));
    }

    fn cas(&self, p: Pid, w: WordId, old: u64, new: u64) -> bool {
        self.write_type(p, w, |cur| if cur == old { (new, 1) } else { (cur, 0) }) == 1
    }

    fn faa(&self, p: Pid, w: WordId, add: u64) -> u64 {
        self.write_type(p, w, |cur| (cur.wrapping_add(add), cur))
    }

    fn swap(&self, p: Pid, w: WordId, v: u64) -> u64 {
        self.write_type(p, w, |cur| (v, cur))
    }

    fn rmrs(&self, p: Pid) -> u64 {
        self.procs[p].rmrs.load(Ordering::Relaxed)
    }

    fn total_rmrs(&self) -> u64 {
        self.procs
            .iter()
            .map(|proc| proc.rmrs.load(Ordering::Relaxed))
            .sum()
    }

    fn ops(&self, p: Pid) -> u64 {
        self.procs[p].ops.load(Ordering::Relaxed)
    }

    fn num_words(&self) -> usize {
        self.words.len()
    }

    fn num_procs(&self) -> usize {
        self.procs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryBuilder;

    fn mem(nwords: usize, nprocs: usize) -> (CcMemory, Vec<WordId>) {
        let mut b = MemoryBuilder::new();
        let ws: Vec<_> = (0..nwords).map(|_| b.alloc(0)).collect();
        (b.build_cc(nprocs), ws)
    }

    #[test]
    fn first_read_is_remote_subsequent_reads_are_local() {
        let (m, ws) = mem(1, 1);
        m.read(0, ws[0]);
        assert_eq!(m.rmrs(0), 1);
        for _ in 0..10 {
            m.read(0, ws[0]);
        }
        assert_eq!(m.rmrs(0), 1);
        assert_eq!(m.ops(0), 11);
    }

    #[test]
    fn every_write_type_op_costs_one_rmr() {
        let (m, ws) = mem(1, 1);
        m.write(0, ws[0], 1);
        m.faa(0, ws[0], 1);
        m.swap(0, ws[0], 5);
        assert!(m.cas(0, ws[0], 5, 6));
        assert!(!m.cas(0, ws[0], 99, 7)); // failed CAS still costs an RMR
        assert_eq!(m.rmrs(0), 5);
    }

    #[test]
    fn foreign_write_invalidates_cached_copy() {
        let (m, ws) = mem(1, 2);
        m.read(0, ws[0]); // 1 RMR (first read)
        m.read(0, ws[0]); // local
        m.write(1, ws[0], 7); // p1: 1 RMR, invalidates p0's copy
        m.read(0, ws[0]); // 1 RMR again
        assert_eq!(m.rmrs(0), 2);
        assert_eq!(m.rmrs(1), 1);
    }

    #[test]
    fn own_writes_do_not_invalidate_own_copy() {
        let (m, ws) = mem(1, 2);
        m.read(0, ws[0]); // RMR
        m.write(0, ws[0], 1); // RMR (write-type)
        m.write(0, ws[0], 2); // RMR
        m.read(0, ws[0]); // local: all writes since last read were ours
        assert_eq!(m.rmrs(0), 3);
    }

    #[test]
    fn interleaved_foreign_write_inside_own_run_invalidates() {
        let (m, ws) = mem(1, 2);
        m.read(0, ws[0]); // p0 RMR
        m.write(1, ws[0], 1); // p1 writes
        m.write(0, ws[0], 2); // p0 writes (starts its own run)
                              // p1's write happened after p0's last read, even though the *most
                              // recent* writer is p0 — the read must be remote.
        m.read(0, ws[0]);
        assert_eq!(m.rmrs(0), 3);
    }

    #[test]
    fn spinning_on_an_unchanged_word_is_free() {
        let (m, ws) = mem(1, 2);
        m.read(1, ws[0]); // bring into cache: 1 RMR
        for _ in 0..1000 {
            assert_eq!(m.read(1, ws[0]), 0);
        }
        assert_eq!(m.rmrs(1), 1);
        m.write(0, ws[0], 1); // the handoff
        assert_eq!(m.read(1, ws[0]), 1); // one more RMR
        assert_eq!(m.rmrs(1), 2);
    }

    #[test]
    fn failed_cas_invalidates_other_readers() {
        let (m, ws) = mem(1, 2);
        m.read(0, ws[0]);
        assert!(!m.cas(1, ws[0], 42, 43));
        m.read(0, ws[0]); // invalidated by p1's (failed) CAS
        assert_eq!(m.rmrs(0), 2);
    }

    #[test]
    fn faa_wraps_and_returns_previous() {
        let (m, ws) = mem(1, 1);
        assert_eq!(m.faa(0, ws[0], 5), 0);
        assert_eq!(m.faa(0, ws[0], 1u64.wrapping_neg()), 5);
        assert_eq!(m.read(0, ws[0]), 4);
    }

    #[test]
    fn swap_returns_previous_value() {
        let (m, ws) = mem(1, 1);
        m.write(0, ws[0], 3);
        assert_eq!(m.swap(0, ws[0], 9), 3);
        assert_eq!(m.read(0, ws[0]), 9);
    }

    #[test]
    fn counters_reset_but_values_survive() {
        let (m, ws) = mem(1, 1);
        m.write(0, ws[0], 11);
        m.reset_counters();
        assert_eq!(m.rmrs(0), 0);
        assert_eq!(m.ops(0), 0);
        assert_eq!(m.read(0, ws[0]), 11);
    }

    #[test]
    fn total_rmrs_sums_over_processes() {
        let (m, ws) = mem(2, 3);
        m.write(0, ws[0], 1);
        m.write(1, ws[1], 1);
        m.read(2, ws[0]);
        assert_eq!(m.total_rmrs(), 3);
    }

    #[test]
    fn words_are_independent_coherence_units() {
        let (m, ws) = mem(2, 2);
        m.read(0, ws[0]);
        m.read(0, ws[1]);
        m.write(1, ws[1], 5); // invalidates only ws[1]
        m.read(0, ws[0]); // still cached
        assert_eq!(m.rmrs(0), 2);
        m.read(0, ws[1]); // invalidated
        assert_eq!(m.rmrs(0), 3);
    }

    #[test]
    fn concurrent_threads_count_exactly() {
        use std::sync::Arc;
        let mut b = MemoryBuilder::new();
        let w = b.alloc(0);
        let m = Arc::new(b.build_cc(4));
        let handles: Vec<_> = (0..4)
            .map(|p| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.faa(p, w, 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.read(0, w), 4000);
        // Each F&A is exactly one RMR.
        assert_eq!(m.total_rmrs(), 4000 + 1 /* the read above */);
    }

    #[test]
    fn word_cells_are_cache_line_sized() {
        assert_eq!(std::mem::size_of::<WordCell>(), 64);
        assert_eq!(std::mem::align_of::<WordCell>(), 64);
        assert!(std::mem::align_of::<PerProc>() >= 128);
    }

    #[test]
    fn sparse_and_dense_epoch_modes_account_identically() {
        for mode in [EpochMode::Dense, EpochMode::Sparse] {
            let m = CcMemory::with_epoch_mode(vec![0, 0], 2, mode);
            assert_eq!(m.dense_epochs(), mode == EpochMode::Dense);
            let (a, b) = (WordId::from_index(0), WordId::from_index(1));
            m.read(0, a); // remote
            m.read(0, a); // local
            m.write(1, a, 3); // remote, invalidates
            m.read(0, a); // remote
            m.read(0, b); // remote (first touch)
            assert_eq!(m.rmrs(0), 3, "{mode:?}");
            assert_eq!(m.rmrs(1), 1, "{mode:?}");
        }
    }

    #[test]
    fn panicking_operation_does_not_poison_the_memory() {
        // Out-of-bounds word ids panic (as they must), but the engine
        // has no global lock to poison: the memory stays fully usable —
        // the regression the lock-free rewrite fixes.
        let (m, ws) = mem(1, 2);
        m.write(0, ws[0], 7);
        let bogus = WordId::from_index(999);
        for op in 0..3 {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match op {
                0 => {
                    m.read(1, bogus);
                }
                1 => m.write(1, bogus, 1),
                _ => {
                    m.faa(1, bogus, 1);
                }
            }));
            assert!(r.is_err(), "out-of-bounds access must panic");
        }
        // Every later operation still works and counts exactly.
        assert_eq!(m.read(0, ws[0]), 7);
        assert_eq!(m.rmrs(0), 2);
        m.write(1, ws[0], 8);
        assert_eq!(m.read(1, ws[0]), 8);
    }
}
