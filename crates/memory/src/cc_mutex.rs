//! The retained global-mutex CC memory: the original, obviously-correct
//! single-lock implementation of the §2 accounting rules.
//!
//! [`MutexCcMemory`] is **not** used by the harness anymore — the sharded
//! [`CcMemory`](crate::CcMemory) replaced it — but it is kept, verbatim,
//! for two jobs:
//!
//! 1. **Differential oracle.** `tests/cc_differential.rs` replays seeded
//!    random operation sequences against both implementations and
//!    asserts bit-identical values, per-process RMR counts and op
//!    counts. Serializing everything through one mutex makes this
//!    implementation trivially correct, which is exactly what an oracle
//!    should be.
//! 2. **Scaling baseline.** The `memscale` bench sweeps instrumented-op
//!    throughput versus thread count for both engines; this one is the
//!    "substrate is the serialization point" curve the sharded engine
//!    must beat.
//!
//! Known (and deliberately preserved) limitation: a thread that panics
//! while holding the global lock poisons it, and every later operation
//! dies with a `PoisonError` — the fragility that motivated the
//! rewrite. Do not "fix" it here; the regression test for the new
//! engine exists precisely because this one behaves this way.

use crate::mem::Mem;
use crate::word::{Pid, WordId};
use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;

/// Per-word coherence state.
///
/// Instead of storing an `N`-bit valid-copy set per word (which would cost
/// `O(words × procs)` space and make million-leaf tree experiments
/// infeasible), we track per word a write sequence number together with the
/// current *run* of consecutive writes by a single process, and per process
/// a sparse map `word → seq of the word at my last read`. A read by `p` is
/// local iff `p` has read the word before **and** every write-type
/// operation since `p`'s last read was performed by `p` itself — precisely
/// the model's rule that only *another* process's write/CAS/F&A invalidates
/// `p`'s cached copy.
struct WordCell {
    value: u64,
    /// Total write-type operations performed on this word.
    seq: u64,
    /// Process that performed the most recent write-type operation.
    last_writer: Pid,
    /// Value of `seq` just before the current run of consecutive
    /// `last_writer` writes began.
    run_start: u64,
}

struct CcState {
    words: Vec<WordCell>,
    /// `read_seqs[p][w]` = value of `words[w].seq` at `p`'s last read of `w`.
    read_seqs: Vec<HashMap<u32, u64>>,
    rmrs: Vec<u64>,
    ops: Vec<u64>,
}

/// The original global-mutex CC memory, retained as the differential
/// oracle and `memscale` baseline (see the module-level docs above).
///
/// All operations serialize through one internal mutex, so the
/// accounting is exact by construction — and the throughput ceiling is
/// one core, which is why the harness now runs on the sharded
/// [`CcMemory`](crate::CcMemory) instead. Build one with
/// [`MemoryBuilder::build_cc_mutex`](crate::MemoryBuilder::build_cc_mutex).
pub struct MutexCcMemory {
    state: Mutex<CcState>,
    nprocs: usize,
    nwords: usize,
}

impl fmt::Debug for MutexCcMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MutexCcMemory")
            .field("nwords", &self.nwords)
            .field("nprocs", &self.nprocs)
            .finish()
    }
}

impl MutexCcMemory {
    pub(crate) fn new(inits: Vec<u64>, nprocs: usize) -> Self {
        let nwords = inits.len();
        let words = inits
            .into_iter()
            .map(|v| WordCell {
                value: v,
                seq: 0,
                last_writer: usize::MAX,
                run_start: 0,
            })
            .collect();
        MutexCcMemory {
            state: Mutex::new(CcState {
                words,
                read_seqs: (0..nprocs).map(|_| HashMap::new()).collect(),
                rmrs: vec![0; nprocs],
                ops: vec![0; nprocs],
            }),
            nprocs,
            nwords,
        }
    }

    /// Reset all RMR and operation counters (values and coherence state are
    /// left untouched). Useful between warm-up and measurement phases.
    pub fn reset_counters(&self) {
        let mut s = self.state.lock().unwrap();
        s.rmrs.iter_mut().for_each(|c| *c = 0);
        s.ops.iter_mut().for_each(|c| *c = 0);
    }

    fn write_type(&self, p: Pid, w: WordId, f: impl FnOnce(&mut u64) -> u64) -> u64 {
        let mut s = self.state.lock().unwrap();
        s.ops[p] += 1;
        s.rmrs[p] += 1;
        let cell = &mut s.words[w.index()];
        let prev_seq = cell.seq;
        cell.seq += 1;
        if cell.last_writer != p {
            cell.last_writer = p;
            cell.run_start = prev_seq;
        }
        f(&mut cell.value)
    }
}

impl Mem for MutexCcMemory {
    fn read(&self, p: Pid, w: WordId) -> u64 {
        let mut s = self.state.lock().unwrap();
        s.ops[p] += 1;
        let cell = &s.words[w.index()];
        let (value, seq, last_writer, run_start) =
            (cell.value, cell.seq, cell.last_writer, cell.run_start);
        let local = match s.read_seqs[p].get(&(w.index() as u32)) {
            // Cached and no write since, or every write since was ours.
            Some(&r) => r == seq || (last_writer == p && r >= run_start),
            None => false, // first read of w by p
        };
        if !local {
            s.rmrs[p] += 1;
        }
        s.read_seqs[p].insert(w.index() as u32, seq);
        value
    }

    fn write(&self, p: Pid, w: WordId, v: u64) {
        self.write_type(p, w, |cell| {
            *cell = v;
            0
        });
    }

    fn cas(&self, p: Pid, w: WordId, old: u64, new: u64) -> bool {
        self.write_type(p, w, |cell| {
            if *cell == old {
                *cell = new;
                1
            } else {
                0
            }
        }) == 1
    }

    fn faa(&self, p: Pid, w: WordId, add: u64) -> u64 {
        self.write_type(p, w, |cell| {
            let prev = *cell;
            *cell = cell.wrapping_add(add);
            prev
        })
    }

    fn swap(&self, p: Pid, w: WordId, v: u64) -> u64 {
        self.write_type(p, w, |cell| std::mem::replace(cell, v))
    }

    fn rmrs(&self, p: Pid) -> u64 {
        self.state.lock().unwrap().rmrs[p]
    }

    fn total_rmrs(&self) -> u64 {
        self.state.lock().unwrap().rmrs.iter().sum()
    }

    fn ops(&self, p: Pid) -> u64 {
        self.state.lock().unwrap().ops[p]
    }

    fn num_words(&self) -> usize {
        self.nwords
    }

    fn num_procs(&self) -> usize {
        self.nprocs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryBuilder;

    #[test]
    fn reference_model_still_accounts_exactly() {
        let mut b = MemoryBuilder::new();
        let w = b.alloc(0);
        let m: MutexCcMemory = b.build_cc_mutex(2);
        m.read(0, w); // remote: first read
        m.read(0, w); // local
        m.write(1, w, 7); // remote write-type
        m.read(0, w); // remote: invalidated by p1
        assert!(!m.cas(0, w, 0, 1)); // failed CAS: still one RMR
        assert_eq!(m.rmrs(0), 3);
        assert_eq!(m.rmrs(1), 1);
        assert_eq!(m.ops(0), 4);
        m.reset_counters();
        assert_eq!(m.total_rmrs(), 0);
        assert_eq!(m.read(1, w), 7);
    }
}
