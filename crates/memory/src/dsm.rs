//! Distributed-shared-memory flavour: per-word home processes.
//!
//! The DSM cost rule is *static* — an operation's RMR charge depends only
//! on `(process, word.home)`, never on history — so unlike the CC engine
//! this memory needs no coherence metadata at all: word values are plain
//! `AtomicU64`s (one cache line each), counters are padded per-process
//! atomics, and there is no lock anywhere to contend on or poison.

use crate::mem::Mem;
use crate::word::{Pid, WordId};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// One word per cache line, mirroring the model where every word is its
/// own coherence/home unit.
#[repr(align(64))]
struct PaddedWord(AtomicU64);

/// Per-process counters on their own cache line.
#[repr(align(128))]
struct PerProc {
    rmrs: AtomicU64,
    ops: AtomicU64,
}

/// Shared memory implementing the paper's DSM cost model: each word is
/// permanently local to one *home* process (assigned at allocation time via
/// [`MemoryBuilder::alloc_at`]) and remote to all others. Every operation —
/// read or write-type — by a non-home process costs one RMR; operations by
/// the home process are free.
///
/// The DSM variant of the one-shot lock (§3, "DSM variant") allocates each
/// process's `announce` slot and spin bit at that process, so its busy-wait
/// loop incurs no RMRs.
///
/// Fully lock-free: every operation maps to one hardware atomic on the
/// word plus relaxed counter increments, so the substrate never
/// serializes the algorithm under test.
///
/// [`MemoryBuilder::alloc_at`]: crate::MemoryBuilder::alloc_at
pub struct DsmMemory {
    values: Vec<PaddedWord>,
    homes: Vec<Pid>,
    procs: Vec<PerProc>,
}

impl fmt::Debug for DsmMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DsmMemory")
            .field("nwords", &self.homes.len())
            .field("nprocs", &self.procs.len())
            .finish()
    }
}

impl DsmMemory {
    pub(crate) fn new(inits: Vec<u64>, homes: Vec<Pid>, nprocs: usize) -> Self {
        assert!(
            homes.iter().all(|&h| h < nprocs),
            "a word's home process must be < nprocs"
        );
        DsmMemory {
            values: inits
                .into_iter()
                .map(|v| PaddedWord(AtomicU64::new(v)))
                .collect(),
            homes,
            procs: (0..nprocs)
                .map(|_| PerProc {
                    rmrs: AtomicU64::new(0),
                    ops: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// Home process of word `w`.
    pub fn home(&self, w: WordId) -> Pid {
        self.homes[w.index()]
    }

    /// Reset all RMR and operation counters, keeping word values. Call it
    /// while the memory is quiescent; concurrent operations land on one
    /// side or the other of the reset, per counter.
    pub fn reset_counters(&self) {
        for proc in &self.procs {
            proc.rmrs.store(0, Ordering::Relaxed);
            proc.ops.store(0, Ordering::Relaxed);
        }
    }

    #[inline]
    fn charge(&self, p: Pid, w: WordId) -> &AtomicU64 {
        let proc = &self.procs[p];
        proc.ops.fetch_add(1, Ordering::Relaxed);
        if self.homes[w.index()] != p {
            proc.rmrs.fetch_add(1, Ordering::Relaxed);
        }
        &self.values[w.index()].0
    }
}

impl Mem for DsmMemory {
    fn read(&self, p: Pid, w: WordId) -> u64 {
        self.charge(p, w).load(Ordering::SeqCst)
    }

    fn write(&self, p: Pid, w: WordId, v: u64) {
        self.charge(p, w).store(v, Ordering::SeqCst);
    }

    fn cas(&self, p: Pid, w: WordId, old: u64, new: u64) -> bool {
        self.charge(p, w)
            .compare_exchange(old, new, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    fn faa(&self, p: Pid, w: WordId, add: u64) -> u64 {
        self.charge(p, w).fetch_add(add, Ordering::SeqCst)
    }

    fn swap(&self, p: Pid, w: WordId, v: u64) -> u64 {
        self.charge(p, w).swap(v, Ordering::SeqCst)
    }

    fn rmrs(&self, p: Pid) -> u64 {
        self.procs[p].rmrs.load(Ordering::Relaxed)
    }

    fn total_rmrs(&self) -> u64 {
        self.procs
            .iter()
            .map(|proc| proc.rmrs.load(Ordering::Relaxed))
            .sum()
    }

    fn ops(&self, p: Pid) -> u64 {
        self.procs[p].ops.load(Ordering::Relaxed)
    }

    fn num_words(&self) -> usize {
        self.homes.len()
    }

    fn num_procs(&self) -> usize {
        self.procs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryBuilder;

    #[test]
    fn home_accesses_are_free_remote_accesses_cost() {
        let mut b = MemoryBuilder::new();
        let w = b.alloc_at(1, 0);
        let m = b.build_dsm(2);
        for _ in 0..100 {
            m.read(1, w); // home: free
        }
        assert_eq!(m.rmrs(1), 0);
        m.read(0, w);
        m.write(0, w, 2);
        assert_eq!(m.rmrs(0), 2);
        assert_eq!(m.home(w), 1);
    }

    #[test]
    fn home_writes_are_also_free() {
        let mut b = MemoryBuilder::new();
        let w = b.alloc_at(0, 0);
        let m = b.build_dsm(1);
        m.write(0, w, 1);
        m.faa(0, w, 1);
        assert!(m.cas(0, w, 2, 3));
        m.swap(0, w, 4);
        assert_eq!(m.rmrs(0), 0);
        assert_eq!(m.ops(0), 4);
    }

    #[test]
    #[should_panic(expected = "home process")]
    fn invalid_home_is_rejected_at_build() {
        let mut b = MemoryBuilder::new();
        b.alloc_at(5, 0);
        let _ = b.build_dsm(2);
    }

    #[test]
    fn semantics_match_cc_flavour() {
        let mut b = MemoryBuilder::new();
        let w = b.alloc(10);
        let m = b.build_dsm(2);
        assert_eq!(m.faa(1, w, 5), 10);
        assert!(!m.cas(1, w, 10, 0));
        assert!(m.cas(1, w, 15, 1));
        assert_eq!(m.swap(1, w, 2), 1);
        assert_eq!(m.read(1, w), 2);
        assert_eq!(m.total_rmrs(), 5);
    }

    #[test]
    fn reset_counters_preserves_values() {
        let mut b = MemoryBuilder::new();
        let w = b.alloc_at(0, 3);
        let m = b.build_dsm(2);
        m.write(1, w, 9);
        m.reset_counters();
        assert_eq!(m.rmrs(1), 0);
        assert_eq!(m.read(0, w), 9);
    }

    #[test]
    fn concurrent_home_and_remote_traffic_counts_exactly() {
        use std::sync::Arc;
        let mut b = MemoryBuilder::new();
        let w = b.alloc_at(0, 0);
        let m = Arc::new(b.build_dsm(2));
        let handles: Vec<_> = (0..2)
            .map(|p| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.faa(p, w, 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.read(0, w), 2000);
        assert_eq!(m.rmrs(0), 0); // home
        assert_eq!(m.rmrs(1), 1000); // every remote op charged
        assert_eq!(m.ops(0) + m.ops(1), 2001);
    }
}
