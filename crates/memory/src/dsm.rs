//! Distributed-shared-memory flavour: per-word home processes.

use crate::mem::Mem;
use crate::word::{Pid, WordId};
use std::fmt;
use std::sync::Mutex;

struct DsmState {
    values: Vec<u64>,
    rmrs: Vec<u64>,
    ops: Vec<u64>,
}

/// Shared memory implementing the paper's DSM cost model: each word is
/// permanently local to one *home* process (assigned at allocation time via
/// [`MemoryBuilder::alloc_at`]) and remote to all others. Every operation —
/// read or write-type — by a non-home process costs one RMR; operations by
/// the home process are free.
///
/// The DSM variant of the one-shot lock (§3, "DSM variant") allocates each
/// process's `announce` slot and spin bit at that process, so its busy-wait
/// loop incurs no RMRs.
///
/// [`MemoryBuilder::alloc_at`]: crate::MemoryBuilder::alloc_at
pub struct DsmMemory {
    state: Mutex<DsmState>,
    homes: Vec<Pid>,
    nprocs: usize,
}

impl fmt::Debug for DsmMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DsmMemory")
            .field("nwords", &self.homes.len())
            .field("nprocs", &self.nprocs)
            .finish()
    }
}

impl DsmMemory {
    pub(crate) fn new(inits: Vec<u64>, homes: Vec<Pid>, nprocs: usize) -> Self {
        assert!(
            homes.iter().all(|&h| h < nprocs),
            "a word's home process must be < nprocs"
        );
        DsmMemory {
            state: Mutex::new(DsmState {
                values: inits,
                rmrs: vec![0; nprocs],
                ops: vec![0; nprocs],
            }),
            homes,
            nprocs,
        }
    }

    /// Home process of word `w`.
    pub fn home(&self, w: WordId) -> Pid {
        self.homes[w.index()]
    }

    /// Reset all RMR and operation counters, keeping word values.
    pub fn reset_counters(&self) {
        let mut s = self.state.lock().unwrap();
        s.rmrs.iter_mut().for_each(|c| *c = 0);
        s.ops.iter_mut().for_each(|c| *c = 0);
    }

    fn access<R>(&self, p: Pid, w: WordId, f: impl FnOnce(&mut u64) -> R) -> R {
        let mut s = self.state.lock().unwrap();
        s.ops[p] += 1;
        if self.homes[w.index()] != p {
            s.rmrs[p] += 1;
        }
        f(&mut s.values[w.index()])
    }
}

impl Mem for DsmMemory {
    fn read(&self, p: Pid, w: WordId) -> u64 {
        self.access(p, w, |v| *v)
    }

    fn write(&self, p: Pid, w: WordId, v: u64) {
        self.access(p, w, |cell| *cell = v)
    }

    fn cas(&self, p: Pid, w: WordId, old: u64, new: u64) -> bool {
        self.access(p, w, |cell| {
            if *cell == old {
                *cell = new;
                true
            } else {
                false
            }
        })
    }

    fn faa(&self, p: Pid, w: WordId, add: u64) -> u64 {
        self.access(p, w, |cell| {
            let prev = *cell;
            *cell = cell.wrapping_add(add);
            prev
        })
    }

    fn swap(&self, p: Pid, w: WordId, v: u64) -> u64 {
        self.access(p, w, |cell| std::mem::replace(cell, v))
    }

    fn rmrs(&self, p: Pid) -> u64 {
        self.state.lock().unwrap().rmrs[p]
    }

    fn total_rmrs(&self) -> u64 {
        self.state.lock().unwrap().rmrs.iter().sum()
    }

    fn ops(&self, p: Pid) -> u64 {
        self.state.lock().unwrap().ops[p]
    }

    fn num_words(&self) -> usize {
        self.homes.len()
    }

    fn num_procs(&self) -> usize {
        self.nprocs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryBuilder;

    #[test]
    fn home_accesses_are_free_remote_accesses_cost() {
        let mut b = MemoryBuilder::new();
        let w = b.alloc_at(1, 0);
        let m = b.build_dsm(2);
        for _ in 0..100 {
            m.read(1, w); // home: free
        }
        assert_eq!(m.rmrs(1), 0);
        m.read(0, w);
        m.write(0, w, 2);
        assert_eq!(m.rmrs(0), 2);
        assert_eq!(m.home(w), 1);
    }

    #[test]
    fn home_writes_are_also_free() {
        let mut b = MemoryBuilder::new();
        let w = b.alloc_at(0, 0);
        let m = b.build_dsm(1);
        m.write(0, w, 1);
        m.faa(0, w, 1);
        assert!(m.cas(0, w, 2, 3));
        m.swap(0, w, 4);
        assert_eq!(m.rmrs(0), 0);
        assert_eq!(m.ops(0), 4);
    }

    #[test]
    #[should_panic(expected = "home process")]
    fn invalid_home_is_rejected_at_build() {
        let mut b = MemoryBuilder::new();
        b.alloc_at(5, 0);
        let _ = b.build_dsm(2);
    }

    #[test]
    fn semantics_match_cc_flavour() {
        let mut b = MemoryBuilder::new();
        let w = b.alloc(10);
        let m = b.build_dsm(2);
        assert_eq!(m.faa(1, w, 5), 10);
        assert!(!m.cas(1, w, 10, 0));
        assert!(m.cas(1, w, 15, 1));
        assert_eq!(m.swap(1, w, 2), 1);
        assert_eq!(m.read(1, w), 2);
        assert_eq!(m.total_rmrs(), 5);
    }

    #[test]
    fn reset_counters_preserves_values() {
        let mut b = MemoryBuilder::new();
        let w = b.alloc_at(0, 3);
        let m = b.build_dsm(2);
        m.write(1, w, 9);
        m.reset_counters();
        assert_eq!(m.rmrs(1), 0);
        assert_eq!(m.read(0, w), 9);
    }
}
