//! The unified memory-interception layer: [`Layered`] + [`Interceptor`].
//!
//! Historically the workspace grew three hand-rolled [`Mem`] forwarding
//! wrappers — operation tracing (`sal_memory::TracingMem`), deterministic
//! stepping (`sal_runtime::SteppedMem`) and probe classification
//! (`sal_obs::ProbedMem`) — each re-implementing the same ten forwarding
//! methods and each free to drift from the others (and they did: which
//! counters were forwarded vs recomputed differed per wrapper). This
//! module collapses all of them into one mechanism:
//!
//! * [`Interceptor`] — two hooks, [`before`](Interceptor::before) and
//!   [`after`](Interceptor::after), fired around every one of the five
//!   shared-memory operations. The `after` hook receives the operation's
//!   observed value and the cost-model verdict (`remote`), computed once
//!   by the layer itself from the inner memory's own RMR counters — so
//!   no interceptor can disagree with the ground truth it wraps.
//! * [`Layered`] — the single [`Mem`] implementation that runs an
//!   operation between the hooks and forwards every counter/metadata
//!   query (`rmrs`, `total_rmrs`, `ops`, `num_words`, `num_procs`)
//!   verbatim to the inner memory. Counter queries never fire hooks:
//!   they are measurements, not steps of the algorithm.
//!
//! Layers compose by nesting: `Layered` is itself a [`Mem`], so
//! `probe ∘ trace ∘ step ∘ CcMemory` is just three nested `Layered`s,
//! and all of them report the identical counters — the inner memory's.
//!
//! ```
//! use sal_memory::{Interceptor, Layered, Mem, MemoryBuilder, OpKind, Pid, WordId};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! #[derive(Debug, Default)]
//! struct CountRemote(AtomicU64);
//! impl Interceptor for CountRemote {
//!     fn after(&self, _p: Pid, _k: OpKind, _w: WordId, _v: u64, remote: bool) {
//!         if remote {
//!             self.0.fetch_add(1, Ordering::Relaxed);
//!         }
//!     }
//! }
//!
//! let mut b = MemoryBuilder::new();
//! let w = b.alloc(0);
//! let mem = b.build_cc(1);
//! let layered = Layered::over(&mem, CountRemote::default());
//! layered.write(0, w, 7); // remote: write-type ops always pay
//! layered.read(0, w); //  remote: first read of the word
//! layered.read(0, w); //  local: cached, no foreign write since
//! assert_eq!(layered.layer().0.load(Ordering::Relaxed), 2);
//! assert_eq!(layered.rmrs(0), mem.rmrs(0)); // counters forward verbatim
//! ```

use crate::mem::{Mem, OpKind};
use crate::word::{Pid, WordId};

/// Before/after hooks fired by [`Layered`] around every shared-memory
/// operation.
///
/// Both hooks default to no-ops, so an interceptor implements only what
/// it needs. Implementations must be thread-safe: hooks are called
/// concurrently from all processes.
pub trait Interceptor: Send + Sync {
    /// Called immediately before the operation executes against the
    /// inner memory. A blocking implementation (e.g. the simulator's
    /// step gate) delays the operation itself.
    fn before(&self, p: Pid, kind: OpKind, w: WordId) {
        let _ = (p, kind, w);
    }

    /// Called immediately after the operation completed. `value` is the
    /// operation's observed value — the value read, the value written,
    /// `1`/`0` for a successful/failed CAS, the *previous* value for
    /// F&A and SWAP. `remote` is whether the inner memory's cost model
    /// charged process `p` an RMR for this operation (always `false`
    /// over an uninstrumented [`RawMemory`](crate::RawMemory)).
    fn after(&self, p: Pid, kind: OpKind, w: WordId, value: u64, remote: bool) {
        let _ = (p, kind, w, value, remote);
    }
}

/// Interceptors compose pairwise: `(outer, inner)` fires `outer.before`,
/// then `inner.before`, the operation, `inner.after`, `outer.after` —
/// the same nesting order as two stacked [`Layered`]s, without the
/// second set of forwarding calls.
impl<A: Interceptor, B: Interceptor> Interceptor for (A, B) {
    fn before(&self, p: Pid, kind: OpKind, w: WordId) {
        self.0.before(p, kind, w);
        self.1.before(p, kind, w);
    }

    fn after(&self, p: Pid, kind: OpKind, w: WordId, value: u64, remote: bool) {
        self.1.after(p, kind, w, value, remote);
        self.0.after(p, kind, w, value, remote);
    }
}

/// A memory with one interception layer on top: the single generic
/// [`Mem`] wrapper behind `TracingMem`, `sal_runtime::SteppedMem` and
/// `sal_obs::ProbedMem`. See the module-level docs above for the design.
#[derive(Debug)]
pub struct Layered<'a, M: ?Sized, I> {
    inner: &'a M,
    layer: I,
}

impl<'a, M: Mem + ?Sized, I: Interceptor> Layered<'a, M, I> {
    /// Stack `layer` over `inner`.
    pub fn over(inner: &'a M, layer: I) -> Self {
        Layered { inner, layer }
    }

    /// The wrapped memory.
    pub fn inner(&self) -> &'a M {
        self.inner
    }

    /// The interception layer (for reading results out of stateful
    /// interceptors, e.g. a trace buffer).
    pub fn layer(&self) -> &I {
        &self.layer
    }

    /// Consume the wrapper, returning the layer.
    pub fn into_layer(self) -> I {
        self.layer
    }

    #[inline]
    fn run(&self, p: Pid, kind: OpKind, w: WordId, f: impl FnOnce(&M) -> u64) -> u64 {
        self.layer.before(p, kind, w);
        let rmrs_before = self.inner.rmrs(p);
        let value = f(self.inner);
        let remote = self.inner.rmrs(p) != rmrs_before;
        self.layer.after(p, kind, w, value, remote);
        value
    }
}

impl<M: Mem + ?Sized, I: Interceptor> Mem for Layered<'_, M, I> {
    fn read(&self, p: Pid, w: WordId) -> u64 {
        self.run(p, OpKind::Read, w, |m| m.read(p, w))
    }

    fn write(&self, p: Pid, w: WordId, v: u64) {
        self.run(p, OpKind::Write, w, |m| {
            m.write(p, w, v);
            v
        });
    }

    fn cas(&self, p: Pid, w: WordId, old: u64, new: u64) -> bool {
        self.run(p, OpKind::Cas, w, |m| u64::from(m.cas(p, w, old, new))) == 1
    }

    fn faa(&self, p: Pid, w: WordId, add: u64) -> u64 {
        self.run(p, OpKind::Faa, w, |m| m.faa(p, w, add))
    }

    fn swap(&self, p: Pid, w: WordId, v: u64) -> u64 {
        self.run(p, OpKind::Swap, w, |m| m.swap(p, w, v))
    }

    fn rmrs(&self, p: Pid) -> u64 {
        self.inner.rmrs(p)
    }

    fn total_rmrs(&self) -> u64 {
        self.inner.total_rmrs()
    }

    fn ops(&self, p: Pid) -> u64 {
        self.inner.ops(p)
    }

    fn num_words(&self) -> usize {
        self.inner.num_words()
    }

    fn num_procs(&self) -> usize {
        self.inner.num_procs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryBuilder;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    type Call = (Pid, OpKind, u32, u64, bool);

    #[derive(Debug, Default)]
    struct Recorder {
        calls: Mutex<Vec<Call>>,
    }

    impl Interceptor for Recorder {
        fn after(&self, p: Pid, kind: OpKind, w: WordId, value: u64, remote: bool) {
            self.calls
                .lock()
                .unwrap()
                .push((p, kind, w.index() as u32, value, remote));
        }
    }

    #[test]
    fn hooks_see_values_and_remote_verdicts() {
        let mut b = MemoryBuilder::new();
        let w = b.alloc(5);
        let mem = b.build_cc(2);
        let l = Layered::over(&mem, Recorder::default());
        assert_eq!(l.read(0, w), 5); // remote: first read
        assert_eq!(l.read(0, w), 5); // local
        assert_eq!(l.faa(1, w, 1), 5); // remote
        assert!(l.cas(0, w, 6, 7)); // remote
        assert!(!l.cas(0, w, 99, 8)); // remote (failed CAS still charged)
        l.write(1, w, 2); // remote
        assert_eq!(l.swap(1, w, 3), 2); // remote
        let calls = l.layer().calls.lock().unwrap().clone();
        assert_eq!(
            calls,
            vec![
                (0, OpKind::Read, w.index() as u32, 5, true),
                (0, OpKind::Read, w.index() as u32, 5, false),
                (1, OpKind::Faa, w.index() as u32, 5, true),
                (0, OpKind::Cas, w.index() as u32, 1, true),
                (0, OpKind::Cas, w.index() as u32, 0, true),
                (1, OpKind::Write, w.index() as u32, 2, true),
                (1, OpKind::Swap, w.index() as u32, 2, true),
            ]
        );
    }

    #[test]
    fn counter_queries_forward_without_firing_hooks() {
        let mut b = MemoryBuilder::new();
        let w = b.alloc(0);
        let mem = b.build_cc(2);
        let l = Layered::over(&mem, Recorder::default());
        l.write(0, w, 1);
        let before = l.layer().calls.lock().unwrap().len();
        assert_eq!(l.rmrs(0), mem.rmrs(0));
        assert_eq!(l.total_rmrs(), mem.total_rmrs());
        assert_eq!(l.ops(0), mem.ops(0));
        assert_eq!(l.num_words(), 1);
        assert_eq!(l.num_procs(), 2);
        assert_eq!(l.layer().calls.lock().unwrap().len(), before);
        assert_eq!(l.inner().num_words(), 1);
    }

    #[test]
    fn nested_layers_report_inner_counters() {
        let mut b = MemoryBuilder::new();
        let w = b.alloc(0);
        let mem = b.build_cc(1);
        let inner = Layered::over(&mem, Recorder::default());
        let outer = Layered::over(&inner, Recorder::default());
        outer.write(0, w, 9);
        outer.read(0, w);
        assert_eq!(outer.rmrs(0), mem.rmrs(0));
        assert_eq!(outer.ops(0), mem.ops(0));
        assert_eq!(inner.layer().calls.lock().unwrap().len(), 2);
        assert_eq!(outer.layer().calls.lock().unwrap().len(), 2);
    }

    #[test]
    fn paired_interceptors_nest_like_stacked_layers() {
        #[derive(Debug, Default)]
        struct Tag(&'static str, std::sync::Arc<Mutex<Vec<&'static str>>>);
        impl Interceptor for Tag {
            fn before(&self, _p: Pid, _k: OpKind, _w: WordId) {
                self.1.lock().unwrap().push(self.0);
            }
            fn after(&self, _p: Pid, _k: OpKind, _w: WordId, _v: u64, _r: bool) {
                self.1.lock().unwrap().push(self.0);
            }
        }
        let order = std::sync::Arc::new(Mutex::new(Vec::new()));
        let mut b = MemoryBuilder::new();
        let w = b.alloc(0);
        let mem = b.build_cc(1);
        let l = Layered::over(
            &mem,
            (Tag("outer", order.clone()), Tag("inner", order.clone())),
        );
        l.read(0, w);
        assert_eq!(
            *order.lock().unwrap(),
            vec!["outer", "inner", "inner", "outer"]
        );
    }

    #[test]
    fn raw_memory_never_reports_remote() {
        let remotes = AtomicU64::new(0);
        #[derive(Debug)]
        struct R<'a>(&'a AtomicU64);
        impl Interceptor for R<'_> {
            fn after(&self, _p: Pid, _k: OpKind, _w: WordId, _v: u64, remote: bool) {
                if remote {
                    self.0.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let mut b = MemoryBuilder::new();
        let w = b.alloc(0);
        let mem = b.build_raw(1);
        let l = Layered::over(&mem, R(&remotes));
        l.write(0, w, 1);
        l.read(0, w);
        assert_eq!(remotes.load(Ordering::Relaxed), 0);
    }
}
