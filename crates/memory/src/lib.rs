//! # sal-memory — shared-word substrate with exact RMR accounting
//!
//! This crate is the "testbed" of the reproduction: a shared-memory word
//! store that implements, *verbatim*, the formal cost model of §2 of
//! Alon & Morrison, *Deterministic Abortable Mutual Exclusion with
//! Sublogarithmic Adaptive RMR Complexity* (PODC 2018):
//!
//! * **CC model** ([`CcMemory`]): every `write`, `CAS`, `F&A` (and `SWAP`)
//!   costs one remote memory reference (RMR). A `read` by process `p` of
//!   word `w` costs an RMR iff it is `p`'s first read of `w`, or another
//!   process performed a write-type operation on `w` after `p`'s last read.
//! * **DSM model** ([`DsmMemory`]): every word has a *home* process; any
//!   operation by a non-home process costs one RMR, operations by the home
//!   process are free.
//! * **Raw mode** ([`RawMemory`]): the same interface over real
//!   `AtomicU64`s with no accounting — used by `sal-sync` to run the very
//!   same algorithm code at full speed on real threads.
//!
//! All lock algorithms in the workspace are written once, generically over
//! the [`Mem`] trait, and can therefore be executed under exact RMR
//! accounting, under a deterministic scheduler (see `sal-runtime`), or on
//! bare atomics, without code duplication.
//!
//! ## Example
//!
//! ```
//! use sal_memory::{Mem, MemoryBuilder};
//!
//! let mut b = MemoryBuilder::new();
//! let w = b.alloc(0);
//! let mem = b.build_cc(2);
//!
//! mem.write(0, w, 7);            // process 0 writes: 1 RMR
//! assert_eq!(mem.read(1, w), 7); // first read by process 1: 1 RMR
//! assert_eq!(mem.read(1, w), 7); // cached: free
//! assert_eq!(mem.rmrs(0), 1);
//! assert_eq!(mem.rmrs(1), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod cc;
mod cc_mutex;
mod dsm;
mod layer;
mod mem;
mod raw;
mod signal;
mod trace;
mod word;

pub use builder::{MemoryBuilder, WordArray};
pub use cc::{CcMemory, EpochMode};
pub use cc_mutex::MutexCcMemory;
pub use dsm::DsmMemory;
pub use layer::{Interceptor, Layered};
pub use mem::{Mem, OpKind, RmrProbe};
pub use raw::RawMemory;
pub use signal::{AbortFlag, AbortSignal, Deadline, NeverAbort, SignalFn};
pub use trace::{TraceEntry, Tracer, TracingMem};
pub use word::{Pid, WordId};
