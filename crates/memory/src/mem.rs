//! The [`Mem`] trait: the primitive set of the paper's machine model.

use crate::word::{Pid, WordId};

/// Kind of a shared-memory operation, as classified by the RMR cost model.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum OpKind {
    /// A read of a shared word.
    Read,
    /// A plain write.
    Write,
    /// Compare-and-swap (counts as a write-type operation whether or not it
    /// succeeds).
    Cas,
    /// Fetch-and-add.
    Faa,
    /// Fetch-and-store (atomic exchange). Not used by the paper's
    /// algorithm, but required by the MCS and Scott baselines of Table 1.
    Swap,
}

/// A shared memory of `W = 64`-bit words supporting the primitive set of
/// the paper's model — `read`, `write`, `CAS`, `F&A` — plus `SWAP` for the
/// baselines.
///
/// Every operation is performed *by* a process (the `p` argument), which is
/// what the RMR accounting is keyed on. Implementations are linearizable:
/// concurrent calls from real threads behave as if executed one at a time.
///
/// Arithmetic in [`faa`](Mem::faa) is wrapping, which is how "decrement" is
/// expressed (`faa(w, x.wrapping_neg())`), exactly as on real hardware.
pub trait Mem: Send + Sync {
    /// Read word `w`.
    fn read(&self, p: Pid, w: WordId) -> u64;

    /// Write `v` to word `w`.
    fn write(&self, p: Pid, w: WordId, v: u64);

    /// Atomically: if `w == old`, set `w = new` and return `true`;
    /// otherwise return `false` without modifying `w`.
    fn cas(&self, p: Pid, w: WordId, old: u64, new: u64) -> bool;

    /// Atomically add `add` (wrapping) to `w`, returning the *previous*
    /// value.
    fn faa(&self, p: Pid, w: WordId, add: u64) -> u64;

    /// Atomically store `v` into `w`, returning the previous value.
    fn swap(&self, p: Pid, w: WordId, v: u64) -> u64;

    /// Number of remote memory references process `p` has incurred so far.
    ///
    /// Raw (uninstrumented) memories return 0.
    fn rmrs(&self, p: Pid) -> u64;

    /// Total RMRs over all processes.
    fn total_rmrs(&self) -> u64;

    /// Total number of shared-memory operations (local or remote) issued by
    /// process `p`. Raw memories return 0.
    fn ops(&self, p: Pid) -> u64;

    /// Number of words in this memory (the algorithm's space complexity in
    /// words, as reported in Table 1).
    fn num_words(&self) -> usize;

    /// Number of processes this memory was built for.
    fn num_procs(&self) -> usize;
}

/// References forward, so `&M` is usable wherever a `Mem` is expected —
/// in particular, `&&M` unsize-coerces to `&dyn Mem` even when `M`
/// itself is unsized. This is what lets generic lock code hand any
/// memory to the `dyn`-facade layer without knowing its concrete type.
impl<M: Mem + ?Sized> Mem for &M {
    #[inline]
    fn read(&self, p: Pid, w: WordId) -> u64 {
        (**self).read(p, w)
    }

    #[inline]
    fn write(&self, p: Pid, w: WordId, v: u64) {
        (**self).write(p, w, v)
    }

    #[inline]
    fn cas(&self, p: Pid, w: WordId, old: u64, new: u64) -> bool {
        (**self).cas(p, w, old, new)
    }

    #[inline]
    fn faa(&self, p: Pid, w: WordId, add: u64) -> u64 {
        (**self).faa(p, w, add)
    }

    #[inline]
    fn swap(&self, p: Pid, w: WordId, v: u64) -> u64 {
        (**self).swap(p, w, v)
    }

    #[inline]
    fn rmrs(&self, p: Pid) -> u64 {
        (**self).rmrs(p)
    }

    #[inline]
    fn total_rmrs(&self) -> u64 {
        (**self).total_rmrs()
    }

    #[inline]
    fn ops(&self, p: Pid) -> u64 {
        (**self).ops(p)
    }

    #[inline]
    fn num_words(&self) -> usize {
        (**self).num_words()
    }

    #[inline]
    fn num_procs(&self) -> usize {
        (**self).num_procs()
    }
}

/// Measures the RMRs a single process incurs across a region of interest.
///
/// ```
/// use sal_memory::{Mem, MemoryBuilder, RmrProbe};
///
/// let mut b = MemoryBuilder::new();
/// let w = b.alloc(0);
/// let mem = b.build_cc(1);
///
/// let probe = RmrProbe::start(&mem, 0);
/// mem.write(0, w, 1);
/// mem.write(0, w, 2);
/// assert_eq!(probe.rmrs(&mem), 2);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RmrProbe {
    pid: Pid,
    start_rmrs: u64,
    start_ops: u64,
}

impl RmrProbe {
    /// Snapshot process `p`'s counters on `mem`.
    pub fn start<M: Mem + ?Sized>(mem: &M, p: Pid) -> Self {
        RmrProbe {
            pid: p,
            start_rmrs: mem.rmrs(p),
            start_ops: mem.ops(p),
        }
    }

    /// RMRs incurred by the probed process since [`start`](RmrProbe::start).
    pub fn rmrs<M: Mem + ?Sized>(&self, mem: &M) -> u64 {
        mem.rmrs(self.pid) - self.start_rmrs
    }

    /// Total operations issued by the probed process since the snapshot.
    pub fn ops<M: Mem + ?Sized>(&self, mem: &M) -> u64 {
        mem.ops(self.pid) - self.start_ops
    }

    /// The process this probe observes.
    pub fn pid(&self) -> Pid {
        self.pid
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryBuilder;

    #[test]
    fn probe_measures_deltas_not_totals() {
        let mut b = MemoryBuilder::new();
        let w = b.alloc(0);
        let mem = b.build_cc(1);
        mem.write(0, w, 1); // 1 RMR before the probe starts
        let probe = RmrProbe::start(&mem, 0);
        assert_eq!(probe.rmrs(&mem), 0);
        mem.write(0, w, 2);
        assert_eq!(probe.rmrs(&mem), 1);
        assert_eq!(probe.ops(&mem), 1);
        assert_eq!(probe.pid(), 0);
    }
}
