//! Uninstrumented memory over real atomics.

use crate::mem::Mem;
use crate::word::{Pid, WordId};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// One word per cache line, so that distinct logical words never exhibit
/// false sharing — mirroring the per-word coherence granularity of the
/// instrumented memories.
#[repr(align(64))]
struct PaddedWord(AtomicU64);

/// Shared memory over real `AtomicU64`s with **no accounting**: the fast
/// path used by `sal-sync` to run the identical algorithm code on real
/// threads.
///
/// All operations use sequentially consistent ordering; the paper's model
/// (like essentially all of the mutual-exclusion literature) assumes
/// sequential consistency, and the algorithms are not proven for weaker
/// orderings. Each word is padded to its own cache line.
///
/// RMR and op counters always read 0 — use [`CcMemory`] or [`DsmMemory`]
/// when measuring.
///
/// [`CcMemory`]: crate::CcMemory
/// [`DsmMemory`]: crate::DsmMemory
pub struct RawMemory {
    words: Vec<PaddedWord>,
    nprocs: usize,
}

impl fmt::Debug for RawMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RawMemory")
            .field("nwords", &self.words.len())
            .field("nprocs", &self.nprocs)
            .finish()
    }
}

impl RawMemory {
    pub(crate) fn new(inits: Vec<u64>, nprocs: usize) -> Self {
        RawMemory {
            words: inits
                .into_iter()
                .map(|v| PaddedWord(AtomicU64::new(v)))
                .collect(),
            nprocs,
        }
    }

    #[inline]
    fn word(&self, w: WordId) -> &AtomicU64 {
        &self.words[w.index()].0
    }
}

impl Mem for RawMemory {
    #[inline]
    fn read(&self, _p: Pid, w: WordId) -> u64 {
        self.word(w).load(Ordering::SeqCst)
    }

    #[inline]
    fn write(&self, _p: Pid, w: WordId, v: u64) {
        self.word(w).store(v, Ordering::SeqCst);
    }

    #[inline]
    fn cas(&self, _p: Pid, w: WordId, old: u64, new: u64) -> bool {
        self.word(w)
            .compare_exchange(old, new, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    #[inline]
    fn faa(&self, _p: Pid, w: WordId, add: u64) -> u64 {
        self.word(w).fetch_add(add, Ordering::SeqCst)
    }

    #[inline]
    fn swap(&self, _p: Pid, w: WordId, v: u64) -> u64 {
        self.word(w).swap(v, Ordering::SeqCst)
    }

    fn rmrs(&self, _p: Pid) -> u64 {
        0
    }

    fn total_rmrs(&self) -> u64 {
        0
    }

    fn ops(&self, _p: Pid) -> u64 {
        0
    }

    fn num_words(&self) -> usize {
        self.words.len()
    }

    fn num_procs(&self) -> usize {
        self.nprocs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryBuilder;
    use std::sync::Arc;

    #[test]
    fn words_live_on_distinct_cache_lines() {
        assert!(std::mem::size_of::<PaddedWord>() >= 64);
        assert_eq!(std::mem::align_of::<PaddedWord>(), 64);
    }

    #[test]
    fn primitive_semantics() {
        let mut b = MemoryBuilder::new();
        let w = b.alloc(1);
        let m = b.build_raw(1);
        assert_eq!(m.read(0, w), 1);
        assert_eq!(m.faa(0, w, 2), 1);
        assert!(m.cas(0, w, 3, 4));
        assert!(!m.cas(0, w, 3, 5));
        assert_eq!(m.swap(0, w, 6), 4);
        m.write(0, w, 7);
        assert_eq!(m.read(0, w), 7);
        assert_eq!(m.rmrs(0), 0);
        assert_eq!(m.total_rmrs(), 0);
    }

    #[test]
    fn faa_is_atomic_under_real_contention() {
        let mut b = MemoryBuilder::new();
        let w = b.alloc(0);
        let m = Arc::new(b.build_raw(8));
        let handles: Vec<_> = (0..8)
            .map(|p| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        m.faa(p, w, 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.read(0, w), 80_000);
    }
}
