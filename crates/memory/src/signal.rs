//! Abort signals — the external "please give up" input of the abortable
//! mutual exclusion problem statement.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The external abort signal a process polls while busy-waiting in
/// `Enter` (line 3 of Algorithm 3.1).
///
/// The problem statement (§2) models the signal as arriving from outside
/// the algorithm; the *bounded abort* requirement is that once the signal
/// is observed, `Enter` returns within a finite number of the process's own
/// steps. Polling the signal is a process-local action and never costs an
/// RMR.
pub trait AbortSignal {
    /// Whether the abort signal has been delivered.
    fn is_set(&self) -> bool;
}

/// A signal that never fires — for passages that must not abort.
#[derive(Debug, Clone, Copy, Default)]
pub struct NeverAbort;

impl AbortSignal for NeverAbort {
    #[inline]
    fn is_set(&self) -> bool {
        false
    }
}

/// A shareable, externally triggerable abort flag.
///
/// ```
/// use sal_memory::{AbortFlag, AbortSignal};
///
/// let flag = AbortFlag::new();
/// assert!(!flag.is_set());
/// flag.set();
/// assert!(flag.is_set());
/// flag.clear();
/// assert!(!flag.is_set());
/// ```
#[derive(Clone, Default)]
pub struct AbortFlag(Arc<AtomicBool>);

impl AbortFlag {
    /// New, unset flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deliver the abort signal.
    pub fn set(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Withdraw the signal (e.g. before a retry).
    pub fn clear(&self) {
        self.0.store(false, Ordering::SeqCst);
    }
}

impl AbortSignal for AbortFlag {
    #[inline]
    fn is_set(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

impl fmt::Debug for AbortFlag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("AbortFlag").field(&self.is_set()).finish()
    }
}

/// An abort signal that fires once a wall-clock deadline passes — the
/// classic "try-lock with timeout" usage (Scott & Scherer's motivating use
/// case for abortable locks).
#[derive(Debug, Clone, Copy)]
pub struct Deadline(Instant);

impl Deadline {
    /// Abort once `Instant::now() >= at`.
    pub fn at(at: Instant) -> Self {
        Deadline(at)
    }

    /// Abort after `timeout` from now.
    pub fn after(timeout: std::time::Duration) -> Self {
        Deadline(Instant::now() + timeout)
    }
}

impl AbortSignal for Deadline {
    #[inline]
    fn is_set(&self) -> bool {
        Instant::now() >= self.0
    }
}

/// Adapts any closure into an [`AbortSignal`] — e.g. "abort once the
/// simulator's global step counter passes a threshold".
#[derive(Clone, Copy)]
pub struct SignalFn<F>(pub F);

impl<F: Fn() -> bool> AbortSignal for SignalFn<F> {
    #[inline]
    fn is_set(&self) -> bool {
        (self.0)()
    }
}

impl<F> fmt::Debug for SignalFn<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SignalFn(..)")
    }
}

impl<S: AbortSignal + ?Sized> AbortSignal for &S {
    #[inline]
    fn is_set(&self) -> bool {
        (**self).is_set()
    }
}

impl<S: AbortSignal + ?Sized> AbortSignal for Arc<S> {
    #[inline]
    fn is_set(&self) -> bool {
        (**self).is_set()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn never_abort_never_fires() {
        assert!(!NeverAbort.is_set());
    }

    #[test]
    fn flag_round_trips_and_clones_share_state() {
        let a = AbortFlag::new();
        let b = a.clone();
        a.set();
        assert!(b.is_set());
        b.clear();
        assert!(!a.is_set());
    }

    #[test]
    fn deadline_fires_after_expiry() {
        let d = Deadline::after(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(1));
        assert!(d.is_set());
        let far = Deadline::after(Duration::from_secs(3600));
        assert!(!far.is_set());
    }

    #[test]
    fn references_and_arcs_are_signals_too() {
        fn takes_signal(s: impl AbortSignal) -> bool {
            s.is_set()
        }
        let flag = AbortFlag::new();
        flag.set();
        assert!(takes_signal(&flag));
        let arc: Arc<AbortFlag> = Arc::new(flag);
        assert!(takes_signal(arc));
    }
}
