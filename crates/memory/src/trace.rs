//! Operation-level tracing: record every shared-memory operation with
//! its RMR verdict.
//!
//! [`TracingMem`] wraps any [`Mem`] and logs, per operation: the
//! process, the kind, the word, the value involved, and whether the
//! operation cost an RMR under the wrapped memory's cost model. The
//! trace is how the `rmr_trace` example and the debugging workflows
//! show *which* access paid — e.g. the single cache miss a spinning
//! process takes when the handoff write invalidates its copy.
//!
//! Tracing is implemented as a [`Tracer`] interceptor over the generic
//! [`Layered`] wrapper — [`TracingMem`] is just the type alias
//! `Layered<'a, M, Tracer>`; there is no trace-specific forwarding code.

use crate::layer::{Interceptor, Layered};
use crate::mem::{Mem, OpKind};
use crate::word::{Pid, WordId};
use std::sync::Mutex;

/// One traced operation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// Executing process.
    pub pid: Pid,
    /// Operation kind.
    pub kind: OpKind,
    /// Word operated on.
    pub word: WordId,
    /// Value read / written / returned (for CAS: 1 = success, 0 = fail).
    pub value: u64,
    /// Whether the operation incurred an RMR.
    pub remote: bool,
}

/// The [`Interceptor`] behind [`TracingMem`]: appends a [`TraceEntry`]
/// per operation to a bounded or unbounded in-memory log.
#[derive(Debug, Default)]
pub struct Tracer {
    entries: Mutex<Vec<TraceEntry>>,
    /// Optional cap to bound memory use on long runs (0 = unbounded).
    cap: usize,
}

impl Tracer {
    /// Unbounded trace log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bounded trace log: once `cap` entries are recorded, older entries
    /// are discarded from the front in blocks.
    pub fn with_capacity_limit(cap: usize) -> Self {
        Tracer {
            entries: Mutex::new(Vec::new()),
            cap,
        }
    }

    /// Snapshot of the trace so far.
    pub fn entries(&self) -> Vec<TraceEntry> {
        self.entries.lock().unwrap().clone()
    }

    /// Number of traced operations.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// Whether nothing was traced yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clear the trace (counters on the traced memory are untouched).
    pub fn clear(&self) {
        self.entries.lock().unwrap().clear();
    }

    /// RMR-costing entries only.
    pub fn remote_entries(&self) -> Vec<TraceEntry> {
        self.entries
            .lock()
            .unwrap()
            .iter()
            .copied()
            .filter(|e| e.remote)
            .collect()
    }
}

impl Interceptor for Tracer {
    fn after(&self, pid: Pid, kind: OpKind, word: WordId, value: u64, remote: bool) {
        let mut entries = self.entries.lock().unwrap();
        if self.cap > 0 && entries.len() >= self.cap {
            let drop_n = self.cap / 4 + 1;
            entries.drain(..drop_n);
        }
        entries.push(TraceEntry {
            pid,
            kind,
            word,
            value,
            remote,
        });
    }
}

/// A [`Mem`] wrapper recording every operation: the [`Layered`]
/// instantiation of [`Tracer`]. See the module docs for the recording
/// semantics.
pub type TracingMem<'a, M> = Layered<'a, M, Tracer>;

impl<'a, M: Mem + ?Sized> TracingMem<'a, M> {
    /// Trace every operation against `inner`.
    pub fn new(inner: &'a M) -> Self {
        Layered::over(inner, Tracer::new())
    }

    /// Trace with a bound: once `cap` entries are recorded, older
    /// entries are discarded from the front in blocks.
    pub fn with_capacity_limit(inner: &'a M, cap: usize) -> Self {
        Layered::over(inner, Tracer::with_capacity_limit(cap))
    }

    /// Snapshot of the trace so far.
    pub fn entries(&self) -> Vec<TraceEntry> {
        self.layer().entries()
    }

    /// Number of traced operations.
    pub fn len(&self) -> usize {
        self.layer().len()
    }

    /// Whether nothing was traced yet.
    pub fn is_empty(&self) -> bool {
        self.layer().is_empty()
    }

    /// Clear the trace (counters on the inner memory are untouched).
    pub fn clear(&self) {
        self.layer().clear()
    }

    /// RMR-costing entries only.
    pub fn remote_entries(&self) -> Vec<TraceEntry> {
        self.layer().remote_entries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryBuilder;

    #[test]
    fn records_kinds_values_and_rmr_verdicts() {
        let mut b = MemoryBuilder::new();
        let w = b.alloc(5);
        let mem = b.build_cc(2);
        let t = TracingMem::new(&mem);
        assert!(t.is_empty());
        assert_eq!(t.read(0, w), 5); // remote (first read)
        assert_eq!(t.read(0, w), 5); // local
        assert_eq!(t.faa(1, w, 1), 5); // remote
        assert!(t.cas(0, w, 6, 7)); // remote
        let e = t.entries();
        assert_eq!(e.len(), 4);
        assert_eq!(e[0].kind, OpKind::Read);
        assert!(e[0].remote);
        assert!(!e[1].remote, "cached read must trace as local");
        assert_eq!(e[2].kind, OpKind::Faa);
        assert_eq!(e[2].value, 5);
        assert_eq!(e[3].kind, OpKind::Cas);
        assert_eq!(e[3].value, 1);
        assert_eq!(t.remote_entries().len(), 3);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn spin_pattern_shows_one_miss_per_handoff() {
        let mut b = MemoryBuilder::new();
        let w = b.alloc(0);
        let mem = b.build_cc(2);
        let t = TracingMem::new(&mem);
        // Process 1 "spins" 10 times, then process 0 hands off.
        for _ in 0..10 {
            t.read(1, w);
        }
        t.write(0, w, 1);
        t.read(1, w);
        let spin_rmrs: usize = t
            .entries()
            .iter()
            .filter(|e| e.pid == 1 && e.remote)
            .count();
        assert_eq!(spin_rmrs, 2, "first read + post-invalidate read only");
    }

    #[test]
    fn capacity_limit_discards_old_entries() {
        let mut b = MemoryBuilder::new();
        let w = b.alloc(0);
        let mem = b.build_cc(1);
        let t = TracingMem::with_capacity_limit(&mem, 16);
        for i in 0..100 {
            t.write(0, w, i);
        }
        assert!(t.len() <= 16);
        // The newest entry is retained.
        assert_eq!(t.entries().last().unwrap().value, 99);
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn delegates_counters_and_metadata() {
        let mut b = MemoryBuilder::new();
        let w = b.alloc(0);
        let mem = b.build_cc(2);
        let t = TracingMem::new(&mem);
        t.write(0, w, 3);
        assert_eq!(t.swap(1, w, 9), 3);
        assert_eq!(t.rmrs(0), 1);
        assert_eq!(t.rmrs(1), 1);
        assert_eq!(t.total_rmrs(), 2);
        assert_eq!(t.ops(0), 1);
        assert_eq!(t.num_words(), 1);
        assert_eq!(t.num_procs(), 2);
    }
}
