//! Word and process identifiers.

use std::fmt;

/// Identifier of a process (equivalently, a thread of the simulated
/// asynchronous system). Processes are numbered `0..N`.
pub type Pid = usize;

/// Handle to one shared `W`-bit word allocated from a [`MemoryBuilder`].
///
/// A `WordId` is just an index into the word store; it is `Copy` and cheap
/// to embed in algorithm structs. Every word is modelled as its own
/// coherence unit (its own "cache line"), matching the paper's per-word
/// cost model.
///
/// [`MemoryBuilder`]: crate::MemoryBuilder
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WordId(pub(crate) u32);

impl WordId {
    /// Raw index of this word inside its memory.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild a `WordId` from a raw index.
    ///
    /// Intended for serialization/debugging; using an id against a memory
    /// it was not allocated from panics on first access.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        WordId(u32::try_from(index).expect("word index exceeds u32"))
    }
}

impl fmt::Debug for WordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

impl fmt::Display for WordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_id_round_trips_through_index() {
        let w = WordId::from_index(42);
        assert_eq!(w.index(), 42);
        assert_eq!(w, WordId(42));
    }

    #[test]
    fn word_id_debug_is_compact() {
        assert_eq!(format!("{:?}", WordId(7)), "w7");
        assert_eq!(format!("{}", WordId(7)), "w7");
    }

    #[test]
    fn word_id_orders_by_index() {
        assert!(WordId(1) < WordId(2));
    }
}
