//! [`EventLog`]: a bounded ring of structured passage events with JSONL
//! export.
//!
//! The log captures lifecycle transitions, protocol notes and RMR
//! charges as they happen, in one global sequence, and can export them
//! as JSON-Lines under `target/experiments/` in a schema that
//! [`EventLog::parse_jsonl`] reads back — the replay contract the
//! experiment binaries rely on.

use crate::json::Json;
use crate::probe::Probe;
use sal_memory::{OpKind, Pid};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// What happened, for one [`ObsEvent`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObsEventKind {
    /// A passage started.
    EnterBegin,
    /// The CS was entered (with the doorway ticket, if any).
    EnterEnd(Option<u64>),
    /// The passage completed through `exit`.
    CsExit,
    /// The passage aborted (with the doorway ticket, if any).
    Abort(Option<u64>),
    /// A shared-memory operation was charged as an RMR.
    Rmr(OpKind),
    /// A shared-memory operation (recorded only when op capture is on).
    Op(OpKind),
    /// A protocol-specific note, e.g. `instance-switch`.
    Note(&'static str, u64),
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsEvent {
    /// Global sequence number (monotone across all processes, including
    /// events later evicted from the ring).
    pub seq: u64,
    /// The process the event is attributed to.
    pub pid: Pid,
    /// What happened.
    pub kind: ObsEventKind,
}

fn op_kind_name(kind: OpKind) -> &'static str {
    match kind {
        OpKind::Read => "read",
        OpKind::Write => "write",
        OpKind::Cas => "cas",
        OpKind::Faa => "faa",
        OpKind::Swap => "swap",
    }
}

fn op_kind_from(name: &str) -> Option<OpKind> {
    Some(match name {
        "read" => OpKind::Read,
        "write" => OpKind::Write,
        "cas" => OpKind::Cas,
        "faa" => OpKind::Faa,
        "swap" => OpKind::Swap,
        _ => return None,
    })
}

#[derive(Debug, Default)]
struct Ring {
    events: Vec<ObsEvent>,
    head: usize,
    next_seq: u64,
    dropped: u64,
}

/// Bounded structured event log; implements [`Probe`].
///
/// By default it records lifecycle events, RMR charges and notes;
/// plain local operations (one per spin iteration — the overwhelming
/// majority of traffic) are captured only when enabled with
/// [`capture_ops`](Self::capture_ops). When the ring fills, the oldest
/// events are dropped and counted in [`dropped`](Self::dropped).
///
/// Like the other sinks, `EventLog` is a cheap handle: `clone()` shares
/// the same ring, so one clone can be given away as an owned probe while
/// another keeps reading.
#[derive(Debug, Clone)]
pub struct EventLog {
    ring: Arc<Mutex<Ring>>,
    capacity: usize,
    capture_ops: bool,
}

impl EventLog {
    /// A log holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        EventLog {
            ring: Arc::new(Mutex::new(Ring::default())),
            capacity: capacity.max(1),
            capture_ops: false,
        }
    }

    /// A log with no capacity bound: nothing is ever dropped. This is
    /// the right shape for per-cell logs in parallel sweeps — each grid
    /// cell records into its own unbounded log, and the driver
    /// [`absorb`](Self::absorb)s them in deterministic cell order, so
    /// large sweeps cannot silently overflow a shared ring.
    pub fn unbounded() -> Self {
        EventLog {
            ring: Arc::new(Mutex::new(Ring::default())),
            capacity: usize::MAX,
            capture_ops: false,
        }
    }

    /// Also record every plain shared-memory operation (high volume:
    /// spinning emits one event per scheduling turn).
    pub fn capture_ops(mut self) -> Self {
        self.capture_ops = true;
        self
    }

    /// Append every event retained by `other` to this log, in `other`'s
    /// order, assigning fresh sequence numbers from this log's global
    /// counter; `other`'s dropped count is added to this log's. This is
    /// the deterministic fan-in for parallel probed sweeps: absorb the
    /// per-cell logs in cell order and the merged log is identical
    /// whatever the worker count. `other` is left untouched.
    pub fn absorb(&self, other: &EventLog) {
        // Snapshot before touching our own ring so absorbing a clone of
        // ourselves cannot deadlock.
        let events = other.events();
        let dropped = other.dropped();
        for ev in events {
            self.push(ev.pid, ev.kind);
        }
        self.ring.lock().unwrap().dropped += dropped;
    }

    fn push(&self, pid: Pid, kind: ObsEventKind) {
        let mut ring = self.ring.lock().unwrap();
        let seq = ring.next_seq;
        ring.next_seq += 1;
        let ev = ObsEvent { seq, pid, kind };
        if ring.events.len() < self.capacity {
            ring.events.push(ev);
        } else {
            let head = ring.head;
            ring.events[head] = ev;
            ring.head = (head + 1) % self.capacity;
            ring.dropped += 1;
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<ObsEvent> {
        let ring = self.ring.lock().unwrap();
        let mut out = Vec::with_capacity(ring.events.len());
        out.extend_from_slice(&ring.events[ring.head..]);
        out.extend_from_slice(&ring.events[..ring.head]);
        out
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().events.len()
    }

    /// Whether nothing has been recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().unwrap().dropped
    }

    /// An order-sensitive 64-bit fingerprint of the retained events
    /// (sequence numbers excluded, so two logs recording the same
    /// behaviour after different ring histories still agree). Coverage
    /// consumers — e.g. the schedule fuzzer's corpus feedback — compare
    /// fingerprints instead of whole logs.
    pub fn fingerprint(&self) -> u64 {
        let mut f = crate::fp::Fingerprint::new();
        for ev in self.events() {
            let (code, payload): (u64, u64) = match ev.kind {
                ObsEventKind::EnterBegin => (1, 0),
                ObsEventKind::EnterEnd(t) => (2, t.map_or(u64::MAX, |t| t)),
                ObsEventKind::CsExit => (3, 0),
                ObsEventKind::Abort(t) => (4, t.map_or(u64::MAX, |t| t)),
                ObsEventKind::Rmr(k) => (5, k as u64),
                ObsEventKind::Op(k) => (6, k as u64),
                ObsEventKind::Note(label, v) => {
                    let mut h = crate::fp::Fingerprint::new();
                    for b in label.bytes() {
                        h.fold_ordered(u64::from(b));
                    }
                    (7 ^ h.value(), v)
                }
            };
            f.fold_ordered(ev.pid as u64 ^ crate::fp::mix64(code));
            f.fold_ordered(payload);
        }
        f.value()
    }

    fn event_to_json(ev: &ObsEvent) -> Json {
        let mut pairs = vec![
            ("seq", Json::Int(ev.seq as i64)),
            ("pid", Json::Int(ev.pid as i64)),
        ];
        match &ev.kind {
            ObsEventKind::EnterBegin => pairs.push(("event", Json::Str("enter_begin".into()))),
            ObsEventKind::EnterEnd(t) => {
                pairs.push(("event", Json::Str("enter_end".into())));
                pairs.push(("ticket", t.map_or(Json::Null, |t| Json::Int(t as i64))));
            }
            ObsEventKind::CsExit => pairs.push(("event", Json::Str("cs_exit".into()))),
            ObsEventKind::Abort(t) => {
                pairs.push(("event", Json::Str("abort".into())));
                pairs.push(("ticket", t.map_or(Json::Null, |t| Json::Int(t as i64))));
            }
            ObsEventKind::Rmr(k) => {
                pairs.push(("event", Json::Str("rmr".into())));
                pairs.push(("kind", Json::Str(op_kind_name(*k).into())));
            }
            ObsEventKind::Op(k) => {
                pairs.push(("event", Json::Str("op".into())));
                pairs.push(("kind", Json::Str(op_kind_name(*k).into())));
            }
            ObsEventKind::Note(label, value) => {
                pairs.push(("event", Json::Str("note".into())));
                pairs.push(("label", Json::Str((*label).into())));
                pairs.push(("value", Json::Int(*value as i64)));
            }
        }
        Json::obj(pairs)
    }

    /// The retained events as a JSON-Lines string (one object per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.events() {
            out.push_str(&Self::event_to_json(&ev).render());
            out.push('\n');
        }
        out
    }

    /// Write the retained events as JSONL to
    /// `target/experiments/<name>.jsonl`, returning the path written.
    pub fn export_jsonl(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = Path::new("target").join("experiments");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.jsonl"));
        std::fs::write(&path, self.to_jsonl())?;
        Ok(path)
    }

    /// Parse a JSONL export back into events — the replay direction of
    /// the schema contract. Note labels are interned via a leak, so this
    /// is intended for tooling and tests, not hot paths.
    pub fn parse_jsonl(input: &str) -> Result<Vec<ObsEvent>, String> {
        let mut out = Vec::new();
        for (lineno, line) in input.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = Json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let seq = v
                .get("seq")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("line {}: missing seq", lineno + 1))?;
            let pid = v
                .get("pid")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("line {}: missing pid", lineno + 1))?
                as Pid;
            let event = v
                .get("event")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("line {}: missing event", lineno + 1))?;
            let ticket = || v.get("ticket").and_then(Json::as_u64);
            let kind = match event {
                "enter_begin" => ObsEventKind::EnterBegin,
                "enter_end" => ObsEventKind::EnterEnd(ticket()),
                "cs_exit" => ObsEventKind::CsExit,
                "abort" => ObsEventKind::Abort(ticket()),
                "rmr" | "op" => {
                    let k = v
                        .get("kind")
                        .and_then(Json::as_str)
                        .and_then(op_kind_from)
                        .ok_or_else(|| format!("line {}: bad op kind", lineno + 1))?;
                    if event == "rmr" {
                        ObsEventKind::Rmr(k)
                    } else {
                        ObsEventKind::Op(k)
                    }
                }
                "note" => {
                    let label = v
                        .get("label")
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("line {}: missing label", lineno + 1))?;
                    let value = v.get("value").and_then(Json::as_u64).unwrap_or(0);
                    ObsEventKind::Note(Box::leak(label.to_string().into_boxed_str()), value)
                }
                other => return Err(format!("line {}: unknown event '{other}'", lineno + 1)),
            };
            out.push(ObsEvent { seq, pid, kind });
        }
        Ok(out)
    }
}

impl Probe for EventLog {
    fn enter_begin(&self, p: Pid) {
        self.push(p, ObsEventKind::EnterBegin);
    }

    fn enter_end(&self, p: Pid, ticket: Option<u64>) {
        self.push(p, ObsEventKind::EnterEnd(ticket));
    }

    fn cs_exit(&self, p: Pid) {
        self.push(p, ObsEventKind::CsExit);
    }

    fn abort(&self, p: Pid, ticket: Option<u64>) {
        self.push(p, ObsEventKind::Abort(ticket));
    }

    fn rmr(&self, p: Pid, kind: OpKind) {
        self.push(p, ObsEventKind::Rmr(kind));
    }

    fn op(&self, p: Pid, kind: OpKind) {
        if self.capture_ops {
            self.push(p, ObsEventKind::Op(kind));
        }
    }

    fn note(&self, p: Pid, label: &'static str, value: u64) {
        self.push(p, ObsEventKind::Note(label, value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_lifecycle_in_sequence() {
        let log = EventLog::new(16);
        log.enter_begin(0);
        log.rmr(0, OpKind::Faa);
        log.enter_end(0, Some(0));
        log.cs_exit(0);
        log.abort(1, None);
        log.note(2, "instance-switch", 5);
        let evs = log.events();
        assert_eq!(evs.len(), 6);
        assert_eq!(evs[0].kind, ObsEventKind::EnterBegin);
        assert_eq!(evs[2].kind, ObsEventKind::EnterEnd(Some(0)));
        assert_eq!(evs[5].kind, ObsEventKind::Note("instance-switch", 5));
        assert!(evs.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn ring_drops_oldest_beyond_capacity() {
        let log = EventLog::new(3);
        for p in 0..5 {
            log.enter_begin(p);
        }
        let evs = log.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs.iter().map(|e| e.pid).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(evs[0].seq, 2, "seq numbers are global, not ring-relative");
        assert_eq!(log.dropped(), 2);
    }

    #[test]
    fn ops_are_captured_only_when_enabled() {
        let quiet = EventLog::new(8);
        quiet.op(0, OpKind::Read);
        assert!(quiet.is_empty());

        let loud = EventLog::new(8).capture_ops();
        loud.op(0, OpKind::Read);
        assert_eq!(loud.events()[0].kind, ObsEventKind::Op(OpKind::Read));
    }

    #[test]
    fn unbounded_log_never_drops() {
        let log = EventLog::unbounded();
        for p in 0..100_000 {
            log.enter_begin(p % 7);
        }
        assert_eq!(log.len(), 100_000);
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn absorb_renumbers_in_order_and_sums_drops() {
        let merged = EventLog::unbounded();
        merged.enter_begin(0);

        let cell_a = EventLog::new(2); // tiny ring: will drop
        cell_a.enter_begin(1);
        cell_a.enter_end(1, None);
        cell_a.cs_exit(1);
        assert_eq!(cell_a.dropped(), 1);

        let cell_b = EventLog::unbounded();
        cell_b.abort(2, Some(9));

        merged.absorb(&cell_a);
        merged.absorb(&cell_b);

        let evs = merged.events();
        assert_eq!(evs.len(), 4);
        // Fresh global seqs, monotone across the absorbed cells.
        assert_eq!(
            evs.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(evs[1].kind, ObsEventKind::EnterEnd(None));
        assert_eq!(evs[3].kind, ObsEventKind::Abort(Some(9)));
        assert_eq!(merged.dropped(), 1, "cell drops are not silently lost");
        // The source is untouched.
        assert_eq!(cell_b.len(), 1);
    }

    #[test]
    fn jsonl_round_trips() {
        let log = EventLog::new(16).capture_ops();
        log.enter_begin(3);
        log.op(3, OpKind::Faa);
        log.rmr(3, OpKind::Faa);
        log.enter_end(3, Some(7));
        log.cs_exit(3);
        log.abort(4, Some(8));
        log.note(3, "instance-switch", 2);

        let text = log.to_jsonl();
        let parsed = EventLog::parse_jsonl(&text).expect("parse back");
        assert_eq!(parsed, log.events());
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(EventLog::parse_jsonl("{\"seq\":0}").is_err());
        assert!(EventLog::parse_jsonl("{\"seq\":0,\"pid\":1,\"event\":\"bogus\"}").is_err());
        assert!(EventLog::parse_jsonl("not json").is_err());
        assert!(EventLog::parse_jsonl("\n\n").unwrap().is_empty());
    }
}
