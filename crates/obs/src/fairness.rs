//! [`FairnessMonitor`]: FCFS and starvation witnesses as a probe sink.
//!
//! The one-shot locks are FCFS with respect to their `F&A(Tail)` doorway
//! tickets: a process that takes a smaller ticket completed its doorway
//! first, so entries into the CS must occur in increasing ticket order.
//! Because the lock itself serializes CS entries, the monitor observes
//! [`enter_end`](crate::Probe::enter_end) calls already in CS order and
//! only needs to check that ticket values are increasing. Aborted
//! tickets drop out of the order (the paper's FCFS definition only
//! constrains attempts that do enter).
//!
//! Starvation is witnessed operationally: a process that keeps taking
//! steps in its `enter` section without ever entering is starving. The
//! monitor tracks the longest in-flight wait (in shared-memory steps)
//! per process and across the run.

use crate::probe::Probe;
use sal_memory::{OpKind, Pid};
use std::sync::{Arc, Mutex};

/// A ticket pair proving a first-come-first-served violation:
/// `entered` entered the CS after `earlier` had already entered, yet
/// holds a smaller doorway ticket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FcfsWitness {
    /// The process that entered out of order.
    pub pid: Pid,
    /// Its doorway ticket.
    pub ticket: u64,
    /// The largest ticket that had already entered.
    pub earlier: u64,
}

/// Per-process fairness counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcFairness {
    /// Passages started.
    pub attempts: u64,
    /// Passages that entered the CS.
    pub entered: u64,
    /// Passages that aborted.
    pub aborted: u64,
    /// Longest wait (shared-memory steps inside `enter`) before entry or
    /// abort.
    pub max_wait_ops: u64,
}

#[derive(Debug, Default)]
struct Inner {
    procs: Vec<ProcFairness>,
    waiting: Vec<Option<u64>>,
    max_entered_ticket: Option<u64>,
    violations: Vec<FcfsWitness>,
}

impl Inner {
    fn proc_mut(&mut self, p: Pid) -> &mut ProcFairness {
        if self.procs.len() <= p {
            self.procs.resize(p + 1, ProcFairness::default());
            self.waiting.resize(p + 1, None);
        }
        &mut self.procs[p]
    }

    fn settle_wait(&mut self, p: Pid) {
        self.proc_mut(p);
        if let Some(w) = self.waiting[p].take() {
            let rec = &mut self.procs[p];
            rec.max_wait_ops = rec.max_wait_ops.max(w);
        }
    }
}

/// FCFS/starvation monitor; implements [`Probe`].
///
/// Replaces the ad-hoc fairness bookkeeping the runtime harness used to
/// carry: attach it (alone or in a
/// [`Fanout`](crate::Fanout)) and read the verdict after the run.
///
/// A cheap handle — `clone()` shares the same counters, so one clone can
/// be handed to an execution as an owned probe while another reads the
/// verdict afterwards.
#[derive(Debug, Default, Clone)]
pub struct FairnessMonitor {
    inner: Arc<Mutex<Inner>>,
}

impl FairnessMonitor {
    /// New monitor with no recorded activity.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` while no FCFS violation has been observed.
    pub fn is_fcfs(&self) -> bool {
        self.inner.lock().unwrap().violations.is_empty()
    }

    /// All FCFS violations observed, in entry order.
    pub fn fcfs_violations(&self) -> Vec<FcfsWitness> {
        self.inner.lock().unwrap().violations.clone()
    }

    /// Per-process counters (index = pid).
    pub fn per_process(&self) -> Vec<ProcFairness> {
        self.inner.lock().unwrap().procs.clone()
    }

    /// The longest enter-section wait of any process, in shared-memory
    /// steps — including waits still in flight (a starving process never
    /// reaches `enter_end`, so unfinished waits must count).
    pub fn max_wait_ops(&self) -> u64 {
        let inner = self.inner.lock().unwrap();
        let settled = inner
            .procs
            .iter()
            .map(|r| r.max_wait_ops)
            .max()
            .unwrap_or(0);
        let in_flight = inner.waiting.iter().flatten().max().copied().unwrap_or(0);
        settled.max(in_flight)
    }

    /// Fold another monitor into this one — the fan-in for parallel
    /// sweeps. Per-process counters sum (waits take the max, and
    /// `other`'s still-in-flight waits settle into `max_wait_ops`, so
    /// starvation witnesses survive the merge); FCFS witness lists
    /// concatenate in merge order. Tickets are only comparable within
    /// one run, so merging never *creates* cross-run violations: the
    /// merged verdict is "every source run was FCFS". `other` is left
    /// untouched.
    pub fn merge_from(&self, other: &FairnessMonitor) {
        // Snapshot before locking ourselves, so merging a clone of the
        // same monitor cannot deadlock.
        let (procs, waiting, max_ticket, violations) = {
            let o = other.inner.lock().unwrap();
            (
                o.procs.clone(),
                o.waiting.clone(),
                o.max_entered_ticket,
                o.violations.clone(),
            )
        };
        let mut inner = self.inner.lock().unwrap();
        for (p, rec) in procs.iter().enumerate() {
            let mine = inner.proc_mut(p);
            mine.attempts += rec.attempts;
            mine.entered += rec.entered;
            mine.aborted += rec.aborted;
            mine.max_wait_ops = mine.max_wait_ops.max(rec.max_wait_ops);
            if let Some(w) = waiting.get(p).copied().flatten() {
                mine.max_wait_ops = mine.max_wait_ops.max(w);
            }
        }
        inner.max_entered_ticket = match (inner.max_entered_ticket, max_ticket) {
            (a, None) => a,
            (None, b) => b,
            (Some(a), Some(b)) => Some(a.max(b)),
        };
        inner.violations.extend(violations);
    }

    /// Pids whose longest wait (finished or in flight) exceeds
    /// `threshold` steps — the starvation witness list.
    pub fn starvation_witnesses(&self, threshold: u64) -> Vec<Pid> {
        let inner = self.inner.lock().unwrap();
        (0..inner.procs.len())
            .filter(|&p| {
                let settled = inner.procs[p].max_wait_ops;
                let in_flight = inner.waiting[p].unwrap_or(0);
                settled.max(in_flight) > threshold
            })
            .collect()
    }
}

impl Probe for FairnessMonitor {
    fn enter_begin(&self, p: Pid) {
        let mut inner = self.inner.lock().unwrap();
        inner.proc_mut(p).attempts += 1;
        inner.waiting[p] = Some(0);
    }

    fn enter_end(&self, p: Pid, ticket: Option<u64>) {
        let mut inner = self.inner.lock().unwrap();
        inner.settle_wait(p);
        inner.procs[p].entered += 1;
        if let Some(t) = ticket {
            if let Some(max) = inner.max_entered_ticket {
                if t < max {
                    inner.violations.push(FcfsWitness {
                        pid: p,
                        ticket: t,
                        earlier: max,
                    });
                }
            }
            let max = inner.max_entered_ticket.map_or(t, |m| m.max(t));
            inner.max_entered_ticket = Some(max);
        }
    }

    fn abort(&self, p: Pid, _ticket: Option<u64>) {
        let mut inner = self.inner.lock().unwrap();
        inner.settle_wait(p);
        inner.procs[p].aborted += 1;
    }

    fn op(&self, p: Pid, _kind: OpKind) {
        let mut inner = self.inner.lock().unwrap();
        inner.proc_mut(p);
        if let Some(w) = inner.waiting[p].as_mut() {
            *w += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_tickets_are_fcfs() {
        let m = FairnessMonitor::new();
        for (p, t) in [(0, 0u64), (1, 1), (2, 2)] {
            m.enter_begin(p);
            m.enter_end(p, Some(t));
            m.cs_exit(p);
        }
        assert!(m.is_fcfs());
        assert_eq!(m.per_process()[1].entered, 1);
    }

    #[test]
    fn out_of_order_ticket_is_witnessed() {
        let m = FairnessMonitor::new();
        m.enter_begin(0);
        m.enter_end(0, Some(5));
        m.cs_exit(0);
        m.enter_begin(1);
        m.enter_end(1, Some(3));
        m.cs_exit(1);
        assert!(!m.is_fcfs());
        assert_eq!(
            m.fcfs_violations(),
            vec![FcfsWitness {
                pid: 1,
                ticket: 3,
                earlier: 5
            }]
        );
    }

    #[test]
    fn aborted_tickets_do_not_constrain_order() {
        let m = FairnessMonitor::new();
        m.enter_begin(0);
        m.abort(0, Some(0));
        m.enter_begin(1);
        m.enter_end(1, Some(1));
        m.cs_exit(1);
        assert!(m.is_fcfs());
        let procs = m.per_process();
        assert_eq!(procs[0].aborted, 1);
        assert_eq!(procs[1].entered, 1);
    }

    #[test]
    fn waits_count_enter_section_steps_only() {
        let m = FairnessMonitor::new();
        m.enter_begin(0);
        for _ in 0..4 {
            m.op(0, OpKind::Read);
        }
        m.enter_end(0, Some(0));
        m.op(0, OpKind::Write); // CS step: not a wait
        m.cs_exit(0);
        assert_eq!(m.max_wait_ops(), 4);
        assert_eq!(m.per_process()[0].max_wait_ops, 4);
    }

    #[test]
    fn merge_sums_counters_and_concatenates_witnesses() {
        let cell_a = FairnessMonitor::new();
        cell_a.enter_begin(0);
        cell_a.enter_end(0, Some(5));
        cell_a.cs_exit(0);
        cell_a.enter_begin(1);
        cell_a.enter_end(1, Some(3)); // out of order in cell A
        cell_a.cs_exit(1);

        let cell_b = FairnessMonitor::new();
        cell_b.enter_begin(0);
        cell_b.abort(0, Some(0));
        cell_b.enter_begin(2);
        for _ in 0..40 {
            cell_b.op(2, OpKind::Read); // starving, still in flight
        }

        let merged = FairnessMonitor::new();
        merged.merge_from(&cell_a);
        merged.merge_from(&cell_b);

        assert!(!merged.is_fcfs());
        assert_eq!(merged.fcfs_violations().len(), 1);
        let procs = merged.per_process();
        assert_eq!(procs[0].attempts, 2);
        assert_eq!(procs[0].entered, 1);
        assert_eq!(procs[0].aborted, 1);
        // Cell B's in-flight wait settled into the merged max.
        assert_eq!(merged.max_wait_ops(), 40);
        assert_eq!(merged.starvation_witnesses(30), vec![2]);
        // Lower cross-cell ticket (0 < 5) created no bogus violation,
        // and the sources are untouched.
        assert!(cell_b.is_fcfs());
        assert_eq!(cell_a.fcfs_violations().len(), 1);
    }

    #[test]
    fn in_flight_waits_witness_starvation() {
        let m = FairnessMonitor::new();
        m.enter_begin(2);
        for _ in 0..100 {
            m.op(2, OpKind::Read);
        }
        // Never enters: still a starvation witness.
        assert_eq!(m.max_wait_ops(), 100);
        assert_eq!(m.starvation_witnesses(50), vec![2]);
        assert!(m.starvation_witnesses(100).is_empty());
    }
}
