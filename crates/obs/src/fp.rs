//! Fingerprinting primitives for deduplicating observations.
//!
//! The guided schedule search in `sal-runtime` (and any sweep driver
//! that wants to ask "have I seen this behaviour before?") needs a
//! cheap, dependency-free way to reduce a stream of observations to a
//! 64-bit key. This module provides the two folding disciplines that
//! cover both uses:
//!
//! * [`Fingerprint::fold_ordered`] — sequence-sensitive: permuting the
//!   stream changes the key. Right for event logs, where order *is* the
//!   observation.
//! * [`Fingerprint::fold_commutative`] — an XOR fold: permuting the
//!   stream leaves the key unchanged. Right for *state* fingerprints
//!   built from per-step hashes, where two op sequences that differ
//!   only by commuting independent steps must collapse to one key.
//!
//! Both are built on [`mix64`], the SplitMix64 finalizer — the same
//! mixer behind `sal_runtime::SmallRng`, so its avalanche behaviour is
//! already relied on throughout the workspace.

/// The SplitMix64 finalizer: a full-avalanche 64-bit mixer (every input
/// bit flips each output bit with probability ≈ 1/2). Cheap enough to
/// call once per observed operation.
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A streaming 64-bit fingerprint accumulator.
///
/// ```
/// use sal_obs::fp::Fingerprint;
/// let mut a = Fingerprint::new();
/// a.fold_ordered(1);
/// a.fold_ordered(2);
/// let mut b = Fingerprint::new();
/// b.fold_ordered(2);
/// b.fold_ordered(1);
/// assert_ne!(a.value(), b.value(), "ordered folds are order-sensitive");
///
/// let mut c = Fingerprint::new();
/// c.fold_commutative(1);
/// c.fold_commutative(2);
/// let mut d = Fingerprint::new();
/// d.fold_commutative(2);
/// d.fold_commutative(1);
/// assert_eq!(c.value(), d.value(), "commutative folds are order-free");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Fingerprint(u64);

impl Fingerprint {
    /// The empty fingerprint.
    #[must_use]
    pub fn new() -> Self {
        Fingerprint(0)
    }

    /// Absorb `x` order-sensitively: the accumulator is rotated and
    /// remixed, so `[a, b]` and `[b, a]` diverge.
    pub fn fold_ordered(&mut self, x: u64) {
        self.0 = mix64(self.0.rotate_left(7) ^ mix64(x));
    }

    /// Absorb `x` order-insensitively (XOR of mixed items): any
    /// permutation of the same multiset of items yields the same value.
    pub fn fold_commutative(&mut self, x: u64) {
        self.0 ^= mix64(x);
    }

    /// The current 64-bit fingerprint.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_avalanches_and_is_stable() {
        assert_ne!(mix64(0), 0);
        assert_ne!(mix64(1), mix64(2));
        // Pinned value: the mixer is part of the fingerprint contract —
        // changing it silently would invalidate recorded artifacts.
        assert_eq!(mix64(0), 0xe220_a839_7b1d_cdaf);
    }

    #[test]
    fn commutative_fold_cancels_pairs() {
        // XOR folding means absorbing the same item twice cancels it —
        // callers fingerprint *sets of distinct step hashes*, where each
        // step hash already encodes its per-process position and thus
        // cannot repeat within one run.
        let mut f = Fingerprint::new();
        f.fold_commutative(9);
        f.fold_commutative(9);
        assert_eq!(f.value(), 0);
    }

    #[test]
    fn ordered_fold_distinguishes_lengths() {
        let mut a = Fingerprint::new();
        a.fold_ordered(0);
        let mut b = Fingerprint::new();
        b.fold_ordered(0);
        b.fold_ordered(0);
        assert_ne!(a.value(), b.value());
    }
}
