//! A small exact histogram over `u64` samples.
//!
//! Per-passage RMR counts are tiny integers (the whole point of the
//! paper is that they stay `O(log_W N)`), and per-passage step counts
//! are bounded by the simulator's step budget — so the histogram keeps
//! exact counts in power-of-two buckets with an exact running min / max
//! / sum, and answers nearest-rank quantiles from the raw samples it
//! retains for small populations, falling back to bucket bounds beyond
//! that. Experiments keep at most a few thousand passages per run, so in
//! practice quantiles are exact.

/// Exact-count histogram with nearest-rank quantiles.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    /// Raw samples, retained (unsorted) up to [`Histogram::RETAIN`].
    samples: Vec<u64>,
    /// Bucket `i` counts samples in `[2^(i-1), 2^i)`; bucket 0 counts 0.
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Raw samples kept for exact quantiles; beyond this, quantiles are
    /// answered from bucket upper bounds.
    pub const RETAIN: usize = 1 << 16;

    /// Empty histogram.
    pub fn new() -> Self {
        Histogram {
            samples: Vec::new(),
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        if self.samples.len() < Self::RETAIN {
            self.samples.push(v);
        }
        let b = Self::bucket_of(v);
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Fold another histogram into this one — the fan-in primitive for
    /// parallel sweeps, where each grid cell records into a private
    /// histogram and the driver merges them in deterministic cell
    /// order. Counts, sums, extrema and buckets combine exactly; raw
    /// samples are retained up to [`Self::RETAIN`] combined, after
    /// which quantiles fall back to bucket bounds (same rule as
    /// single-histogram recording).
    pub fn merge_from(&mut self, other: &Histogram) {
        let room = Self::RETAIN.saturating_sub(self.samples.len());
        self.samples
            .extend(other.samples.iter().take(room).copied());
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &c) in other.buckets.iter().enumerate() {
            self.buckets[b] += c;
        }
        self.count += other.count;
        self.sum += other.sum;
        // Stored extrema use the empty-histogram sentinels (MAX / 0),
        // so plain min/max folds are correct even when either side is
        // empty.
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (the amortized-total numerator).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile (`q` in `0.0..=1.0`), or `None` when no
    /// samples were recorded — an empty cell has no p99, and reporting
    /// 0 would be indistinguishable from a real zero-latency sample.
    /// Exact while at most [`Self::RETAIN`] samples were recorded;
    /// otherwise the bucket upper bound containing the rank.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if self.samples.len() as u64 == self.count {
            let mut sorted = self.samples.clone();
            sorted.sort_unstable();
            return Some(sorted[rank as usize - 1]);
        }
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper bound of bucket b: 0 for b = 0, else 2^b - 1.
                return Some(if b == 0 { 0 } else { (1u64 << b) - 1 }.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Per-bucket `(upper_bound_inclusive, count)` pairs, skipping empty
    /// buckets — the machine-readable shape of the distribution.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (if b == 0 { 0 } else { (1u64 << b) - 1 }, c))
            .collect()
    }

    /// One-line rendering: `n=…min=… p50=… p99=… max=… mean=…` (`-`
    /// for quantiles of an empty sample set).
    pub fn render(&self) -> String {
        let q = |v: Option<u64>| v.map_or_else(|| "-".into(), |v| v.to_string());
        format!(
            "n={} min={} p50={} p99={} max={} mean={:.1}",
            self.count,
            self.min(),
            q(self.quantile(0.50)),
            q(self.quantile(0.99)),
            self.max(),
            self.mean()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), None, "no samples, no percentile");
        assert!(h.buckets().is_empty());
    }

    #[test]
    fn exact_quantiles_while_samples_are_retained() {
        let mut h = Histogram::new();
        for v in [5, 1, 3, 2, 4] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 5);
        assert_eq!(h.quantile(0.50), Some(3));
        assert_eq!(h.quantile(0.99), Some(5));
        assert_eq!(h.quantile(1.0), Some(5));
        assert!((h.mean() - 3.0).abs() < 1e-9);
        assert_eq!(h.sum(), 15);
    }

    #[test]
    fn bucket_bounds_are_powers_of_two() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1000] {
            h.record(v);
        }
        let buckets = h.buckets();
        // 0 → bound 0; 1 → 1; 2,3 → 3; 4..7 → 7; 8 → 15; 1000 → 1023.
        assert_eq!(
            buckets,
            vec![(0, 1), (1, 1), (3, 2), (7, 2), (15, 1), (1023, 1)]
        );
    }

    #[test]
    fn quantile_falls_back_to_buckets_beyond_retention() {
        let mut h = Histogram::new();
        // Force the fallback path without allocating 64k samples: drain
        // the retained set by recording past RETAIN via a tiny stand-in.
        // (RETAIN is large, so emulate: record then clear samples.)
        for _ in 0..100 {
            h.record(6);
        }
        h.samples.clear();
        // Now samples.len() != count → bucket path. 6 lives in (4..=7].
        assert_eq!(h.quantile(0.5), Some(6));
        assert!(h.quantile(0.5) <= Some(7));
    }

    #[test]
    fn merge_matches_recording_everything_into_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [5u64, 1, 3, 900] {
            a.record(v);
            all.record(v);
        }
        for v in [2u64, 8, 0, 4] {
            b.record(v);
            all.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum(), all.sum());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        assert_eq!(a.buckets(), all.buckets());
        for q in [0.25, 0.5, 0.75, 0.99, 1.0] {
            assert_eq!(a.quantile(q), all.quantile(q), "q={q}");
        }
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut a = Histogram::new();
        a.record(7);
        let before = (a.count(), a.sum(), a.min(), a.max());
        a.merge_from(&Histogram::new());
        assert_eq!((a.count(), a.sum(), a.min(), a.max()), before);

        let mut empty = Histogram::new();
        empty.merge_from(&a);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.min(), 7);
        assert_eq!(empty.max(), 7);
    }

    #[test]
    fn render_mentions_key_stats() {
        let mut h = Histogram::new();
        h.record(4);
        let s = h.render();
        assert!(s.contains("n=1") && s.contains("max=4"));
    }
}
