//! A small self-contained JSON value, writer, and parser.
//!
//! The build environment is fully offline, so the experiment binaries
//! cannot rely on an external serialization crate. Everything they
//! export (sweep tables, event logs) is flat records of numbers and
//! short strings, which this module covers: a [`Json`] tree, an exact
//! writer, a recursive-descent parser (used by the JSONL round-trip
//! tests and replay tooling), and a [`ToJson`] conversion trait.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (kept exact; covers counters and tickets).
    Int(i64),
    /// A non-integer number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value, if this is an `Int` (or an integral `Float`).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            Json::Float(v) if v.fract() == 0.0 => Some(*v as i64),
            _ => None,
        }
    }

    /// The unsigned value, if integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|v| u64::try_from(v).ok())
    }

    /// The numeric value, if this is an `Int` or a `Float`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serialize to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                    // Keep floats recognizable as floats on re-parse.
                    if v.fract() == 0.0 && !out.ends_with(['.', 'e']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Returns a description of the first error.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("expected '{lit}' at byte {}", self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|b| b as char),
                                self.pos
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this
                    // slicing is valid at char boundaries).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| format!("bad number '{text}'"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| format!("bad number '{text}'"))
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Conversion into [`Json`] — the replacement for derive-based
/// serialization in the experiment binaries.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

macro_rules! int_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
    )*};
}

int_to_json!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson, D: ToJson> ToJson for (A, B, C, D) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![
            self.0.to_json(),
            self.1.to_json(),
            self.2.to_json(),
            self.3.to_json(),
        ])
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_round_trip() {
        let v = Json::obj(vec![
            ("name", Json::Str("one-shot".into())),
            ("rmrs", Json::Int(12)),
            ("mean", Json::Float(3.5)),
            ("ok", Json::Bool(true)),
            ("ticket", Json::Null),
            ("hist", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
        ]);
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn floats_stay_floats_across_round_trip() {
        let v = Json::Float(4.0);
        let text = v.render();
        assert_eq!(text, "4.0");
        assert_eq!(Json::parse(&text).unwrap(), Json::Float(4.0));
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".into());
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"pid": 3, "label": "x", "neg": -7}"#).unwrap();
        assert_eq!(v.get("pid").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("label").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("neg").and_then(Json::as_i64), Some(-7));
        assert_eq!(v.get("neg").and_then(Json::as_u64), None);
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn to_json_impls() {
        assert_eq!(5u64.to_json(), Json::Int(5));
        assert_eq!(Some(2u32).to_json(), Json::Int(2));
        assert_eq!(Option::<u32>::None.to_json(), Json::Null);
        assert_eq!(
            vec![1u8, 2].to_json(),
            Json::Arr(vec![Json::Int(1), Json::Int(2)])
        );
        assert_eq!(
            (1u8, "a").to_json(),
            Json::Arr(vec![Json::Int(1), Json::Str("a".into())])
        );
    }
}
