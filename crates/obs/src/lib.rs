//! # sal-obs — passage-level observability for the sal lock stack
//!
//! Every complexity claim in the source paper is stated *per passage*:
//! one `enter` → CS → `exit` trip (or an aborted `enter`) of one
//! process. This crate makes the passage the unit of measurement across
//! the whole workspace:
//!
//! - [`Probe`] — the hook trait: passage lifecycle
//!   ([`enter_begin`](Probe::enter_begin) /
//!   [`enter_end`](Probe::enter_end) / [`cs_exit`](Probe::cs_exit) /
//!   [`abort`](Probe::abort)), per-operation hooks
//!   ([`op`](Probe::op), [`rmr`](Probe::rmr)) and structured
//!   [`note`](Probe::note)s. All hooks default to no-ops.
//! - [`NoProbe`] — the zero-cost default. Lock code generic over
//!   `P: Probe` monomorphizes the hooks away at `P = NoProbe`, so the
//!   uninstrumented `sal-sync` fast path is unchanged.
//! - [`ProbedMem`] — wraps any [`Mem`](sal_memory::Mem) and classifies
//!   each operation as remote/local by consulting the inner cost
//!   model's own counters, so probe-reported RMRs are the ground truth
//!   by construction.
//! - Sinks: [`PassageStats`] (per-passage RMR + step-latency
//!   histograms and amortized totals), [`EventLog`] (bounded ring with
//!   JSONL export/replay), [`FairnessMonitor`] (FCFS + starvation
//!   witnesses), composable via [`Fanout`].
//! - [`json`] — the self-contained JSON layer behind all experiment
//!   exports (the build environment is offline; no serde).
//!
//! ## Example
//!
//! ```
//! use sal_obs::{probed, PassageStats, Probe};
//! use sal_memory::{Mem, MemoryBuilder};
//!
//! let mut b = MemoryBuilder::new();
//! let word = b.alloc(0);
//! let mem = b.build_cc(2);
//!
//! let stats = PassageStats::new();
//! let probed = probed(&mem, &stats);
//!
//! stats.enter_begin(0);
//! probed.faa(0, word, 1); // a lock would do this inside `enter`
//! stats.enter_end(0, Some(0));
//! probed.write(0, word, 7); // ... and this inside the CS
//! stats.cs_exit(0);
//!
//! let rec = stats.records()[0];
//! assert!(rec.entered);
//! assert_eq!(rec.rmrs, mem.rmrs(0)); // probe view == cost-model truth
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod events;
mod fairness;
pub mod fp;
mod hist;
pub mod json;
mod mem;
mod probe;
mod stats;

pub use events::{EventLog, ObsEvent, ObsEventKind};
pub use fairness::{FairnessMonitor, FcfsWitness, ProcFairness};
pub use hist::Histogram;
pub use json::{Json, ToJson};
pub use mem::{probed, ProbeLayer, ProbedMem};
pub use probe::{Fanout, NoProbe, Probe};
pub use stats::{AmortizedStats, PassageRecord, PassageStats, PassageSummary};
