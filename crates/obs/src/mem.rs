//! [`ProbedMem`]: a [`Mem`] wrapper that fires probe hooks for every
//! shared-memory operation, classifying each as remote or local by
//! consulting the inner memory's exact RMR accounting.
//!
//! Probing is implemented as a [`ProbeLayer`] interceptor over
//! `sal_memory`'s generic [`Layered`] wrapper — [`ProbedMem`] is just the
//! type alias `Layered<'a, M, ProbeLayer<'a, P>>`, built with [`probed`];
//! there is no probe-specific forwarding code.

use crate::probe::Probe;
use sal_memory::{Interceptor, Layered, Mem, OpKind, Pid, WordId};

/// The [`Interceptor`] behind [`ProbedMem`]: after every operation it
/// reports [`Probe::op`], and — when the layer's cost-model verdict says
/// the operation was charged an RMR — [`Probe::rmr`].
#[derive(Debug, Clone, Copy)]
pub struct ProbeLayer<'a, P: ?Sized> {
    probe: &'a P,
}

impl<P: Probe + ?Sized> Interceptor for ProbeLayer<'_, P> {
    fn after(&self, p: Pid, kind: OpKind, _w: WordId, _value: u64, remote: bool) {
        self.probe.op(p, kind);
        if remote {
            self.probe.rmr(p, kind);
        }
    }
}

/// A memory wrapper reporting every operation to a [`Probe`]: the
/// [`Layered`] instantiation of [`ProbeLayer`]. Build one with
/// [`probed`].
///
/// For each operation the layer calls [`Probe::op`], and — when the
/// inner memory's per-process RMR counter advanced — [`Probe::rmr`].
/// The classification is therefore exactly the inner cost model's (CC,
/// DSM, or none for [`RawMemory`](sal_memory::RawMemory), whose counters
/// stay at 0 so `rmr` never fires).
///
/// Counter queries (`rmrs`/`ops`/…) pass straight through, so ground
/// truth remains available on the wrapper itself; under the simulator's
/// `SteppedMem` these queries do not consume scheduling turns, so
/// wrapping does not perturb schedules.
pub type ProbedMem<'a, M, P> = Layered<'a, M, ProbeLayer<'a, P>>;

/// Wrap `inner`, reporting every operation to `probe`.
pub fn probed<'a, M: Mem + ?Sized, P: Probe + ?Sized>(
    inner: &'a M,
    probe: &'a P,
) -> ProbedMem<'a, M, P> {
    Layered::over(inner, ProbeLayer { probe })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PassageStats;
    use sal_memory::MemoryBuilder;

    #[test]
    fn rmr_hooks_match_ground_truth_counters() {
        let mut b = MemoryBuilder::new();
        let w = b.alloc(0);
        let mem = b.build_cc(2);
        let stats = PassageStats::new();
        let pm = probed(&mem, &stats);

        stats.enter_begin(0);
        pm.write(0, w, 1); // remote: first touch
        pm.read(0, w); // local: cached after own write
        pm.faa(0, w, 1); // remote-or-local per CC rules; either way counted
        stats.enter_end(0, None);
        stats.cs_exit(0);

        let rec = &stats.records()[0];
        assert_eq!(rec.ops, 3);
        assert_eq!(rec.rmrs, mem.rmrs(0), "probe view must equal ground truth");
    }

    #[test]
    fn counter_queries_pass_through() {
        let mut b = MemoryBuilder::new();
        let w = b.alloc(7);
        let mem = b.build_cc(3);
        let pm = probed(&mem, &crate::NoProbe);
        assert_eq!(pm.read(1, w), 7);
        assert_eq!(pm.num_procs(), 3);
        assert_eq!(pm.num_words(), mem.num_words());
        assert_eq!(pm.rmrs(1), mem.rmrs(1));
        assert_eq!(pm.ops(1), 1);
        assert_eq!(pm.total_rmrs(), mem.total_rmrs());
        assert!(pm.inner().num_words() > 0);
    }
}
