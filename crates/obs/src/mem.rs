//! [`ProbedMem`]: a [`Mem`] wrapper that fires probe hooks for every
//! shared-memory operation, classifying each as remote or local by
//! consulting the inner memory's exact RMR accounting.

use crate::probe::Probe;
use sal_memory::{Mem, OpKind, Pid, WordId};

/// A memory wrapper reporting every operation to a [`Probe`].
///
/// For each operation the wrapper calls [`Probe::op`], and — when the
/// inner memory's per-process RMR counter advanced — [`Probe::rmr`].
/// The classification is therefore exactly the inner cost model's (CC,
/// DSM, or none for [`RawMemory`](sal_memory::RawMemory), whose counters
/// stay at 0 so `rmr` never fires).
///
/// Counter queries (`rmrs`/`ops`/…) pass straight through, so ground
/// truth remains available on the wrapper itself; under the simulator's
/// `SteppedMem` these queries do not consume scheduling turns, so
/// wrapping does not perturb schedules.
#[derive(Debug)]
pub struct ProbedMem<'a, M: Mem + ?Sized, P: Probe + ?Sized> {
    inner: &'a M,
    probe: &'a P,
}

impl<'a, M: Mem + ?Sized, P: Probe + ?Sized> ProbedMem<'a, M, P> {
    /// Wrap `inner`, reporting every operation to `probe`.
    pub fn new(inner: &'a M, probe: &'a P) -> Self {
        ProbedMem { inner, probe }
    }

    /// The wrapped memory.
    pub fn inner(&self) -> &'a M {
        self.inner
    }

    #[inline]
    fn observed<T>(&self, p: Pid, kind: OpKind, op: impl FnOnce() -> T) -> T {
        let before = self.inner.rmrs(p);
        let out = op();
        self.probe.op(p, kind);
        if self.inner.rmrs(p) != before {
            self.probe.rmr(p, kind);
        }
        out
    }
}

impl<M: Mem + ?Sized, P: Probe + ?Sized> Mem for ProbedMem<'_, M, P> {
    fn read(&self, p: Pid, w: WordId) -> u64 {
        self.observed(p, OpKind::Read, || self.inner.read(p, w))
    }

    fn write(&self, p: Pid, w: WordId, v: u64) {
        self.observed(p, OpKind::Write, || self.inner.write(p, w, v));
    }

    fn cas(&self, p: Pid, w: WordId, old: u64, new: u64) -> bool {
        self.observed(p, OpKind::Cas, || self.inner.cas(p, w, old, new))
    }

    fn faa(&self, p: Pid, w: WordId, add: u64) -> u64 {
        self.observed(p, OpKind::Faa, || self.inner.faa(p, w, add))
    }

    fn swap(&self, p: Pid, w: WordId, v: u64) -> u64 {
        self.observed(p, OpKind::Swap, || self.inner.swap(p, w, v))
    }

    fn rmrs(&self, p: Pid) -> u64 {
        self.inner.rmrs(p)
    }

    fn total_rmrs(&self) -> u64 {
        self.inner.total_rmrs()
    }

    fn ops(&self, p: Pid) -> u64 {
        self.inner.ops(p)
    }

    fn num_words(&self) -> usize {
        self.inner.num_words()
    }

    fn num_procs(&self) -> usize {
        self.inner.num_procs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PassageStats;
    use sal_memory::MemoryBuilder;

    #[test]
    fn rmr_hooks_match_ground_truth_counters() {
        let mut b = MemoryBuilder::new();
        let w = b.alloc(0);
        let mem = b.build_cc(2);
        let stats = PassageStats::new();
        let pm = ProbedMem::new(&mem, &stats);

        stats.enter_begin(0);
        pm.write(0, w, 1); // remote: first touch
        pm.read(0, w); // local: cached after own write
        pm.faa(0, w, 1); // remote-or-local per CC rules; either way counted
        stats.enter_end(0, None);
        stats.cs_exit(0);

        let rec = &stats.records()[0];
        assert_eq!(rec.ops, 3);
        assert_eq!(rec.rmrs, mem.rmrs(0), "probe view must equal ground truth");
    }

    #[test]
    fn counter_queries_pass_through() {
        let mut b = MemoryBuilder::new();
        let w = b.alloc(7);
        let mem = b.build_cc(3);
        let pm = ProbedMem::new(&mem, &crate::NoProbe);
        assert_eq!(pm.read(1, w), 7);
        assert_eq!(pm.num_procs(), 3);
        assert_eq!(pm.num_words(), mem.num_words());
        assert_eq!(pm.rmrs(1), mem.rmrs(1));
        assert_eq!(pm.ops(1), 1);
        assert_eq!(pm.total_rmrs(), mem.total_rmrs());
        assert!(pm.inner().num_words() > 0);
    }
}
