//! The [`Probe`] trait: passage-lifecycle and memory-operation hooks.
//!
//! A probe observes the *passage* structure of a lock execution — the
//! unit over which all of the paper's RMR claims are stated. Locks (and
//! the memory wrapper [`ProbedMem`](crate::ProbedMem)) call the hooks;
//! sinks such as [`PassageStats`](crate::PassageStats),
//! [`EventLog`](crate::EventLog) and
//! [`FairnessMonitor`](crate::FairnessMonitor) implement them.
//!
//! Every hook has a no-op default, and the canonical "no observability"
//! implementation is the unit struct [`NoProbe`]. Code that is generic
//! over `P: Probe` and instantiated at `NoProbe` monomorphizes each hook
//! to an empty inline function — `sal-sync`'s uninstrumented fast path
//! keeps its codegen.

use sal_memory::{OpKind, Pid};

/// Observer of passage lifecycle and shared-memory activity.
///
/// Hook order within one passage of process `p`:
///
/// 1. [`enter_begin`](Probe::enter_begin) — the passage starts (before
///    the doorway).
/// 2. zero or more [`op`](Probe::op) / [`rmr`](Probe::rmr) calls — one
///    per shared-memory operation (every such operation is also a
///    scheduling point of the simulator). `rmr` fires only for
///    operations the active cost model charges as remote.
/// 3. either [`enter_end`](Probe::enter_end) (the CS was entered) or
///    [`abort`](Probe::abort) (the attempt was abandoned; the passage is
///    over).
/// 4. after `enter_end`: more `op`/`rmr` calls (CS + exit protocol),
///    then [`cs_exit`](Probe::cs_exit) once `exit` completes.
///
/// [`note`](Probe::note) may fire at any point for structured
/// protocol-specific events (instance switches, injected aborts, …).
///
/// Implementations must be thread-safe: hooks are called concurrently
/// from all processes.
pub trait Probe: Send + Sync {
    /// Process `p` starts a passage (about to execute the doorway).
    fn enter_begin(&self, p: Pid) {
        let _ = p;
    }

    /// Process `p` acquired the lock. `ticket` is the FCFS doorway
    /// ticket when the algorithm has one (the one-shot locks' `F&A(Tail)`
    /// index), `None` otherwise.
    fn enter_end(&self, p: Pid, ticket: Option<u64>) {
        let _ = (p, ticket);
    }

    /// Process `p` finished `exit` — the passage is complete.
    fn cs_exit(&self, p: Pid) {
        let _ = p;
    }

    /// Process `p` abandoned its attempt — the passage is complete
    /// (aborted).
    fn abort(&self, p: Pid, ticket: Option<u64>) {
        let _ = (p, ticket);
    }

    /// Process `p` performed a shared-memory operation of kind `kind`
    /// that the cost model charged as a remote memory reference.
    fn rmr(&self, p: Pid, kind: OpKind) {
        let _ = (p, kind);
    }

    /// Process `p` performed a shared-memory operation (remote or
    /// local). In the simulator every such operation is one scheduling
    /// point, so this doubles as the scheduling-point hook.
    fn op(&self, p: Pid, kind: OpKind) {
        let _ = (p, kind);
    }

    /// A structured protocol event attributed to process `p`: `label`
    /// names it (e.g. `"instance-switch"`, `"abort-injected"`), `value`
    /// carries a label-specific payload.
    fn note(&self, p: Pid, label: &'static str, value: u64) {
        let _ = (p, label, value);
    }
}

/// The zero-cost default probe: every hook is an empty `#[inline]`
/// method that monomorphizes away.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NoProbe;

impl Probe for NoProbe {}

/// Forward through references so `&sink` can be passed wherever an owned
/// probe is expected.
impl<P: Probe + ?Sized> Probe for &P {
    fn enter_begin(&self, p: Pid) {
        (**self).enter_begin(p);
    }
    fn enter_end(&self, p: Pid, ticket: Option<u64>) {
        (**self).enter_end(p, ticket);
    }
    fn cs_exit(&self, p: Pid) {
        (**self).cs_exit(p);
    }
    fn abort(&self, p: Pid, ticket: Option<u64>) {
        (**self).abort(p, ticket);
    }
    fn rmr(&self, p: Pid, kind: OpKind) {
        (**self).rmr(p, kind);
    }
    fn op(&self, p: Pid, kind: OpKind) {
        (**self).op(p, kind);
    }
    fn note(&self, p: Pid, label: &'static str, value: u64) {
        (**self).note(p, label, value);
    }
}

/// Forward through [`Arc`](std::sync::Arc) so shared sinks can be handed
/// to executions that require an owned, `'static` probe.
impl<P: Probe + ?Sized> Probe for std::sync::Arc<P> {
    fn enter_begin(&self, p: Pid) {
        (**self).enter_begin(p);
    }
    fn enter_end(&self, p: Pid, ticket: Option<u64>) {
        (**self).enter_end(p, ticket);
    }
    fn cs_exit(&self, p: Pid) {
        (**self).cs_exit(p);
    }
    fn abort(&self, p: Pid, ticket: Option<u64>) {
        (**self).abort(p, ticket);
    }
    fn rmr(&self, p: Pid, kind: OpKind) {
        (**self).rmr(p, kind);
    }
    fn op(&self, p: Pid, kind: OpKind) {
        (**self).op(p, kind);
    }
    fn note(&self, p: Pid, label: &'static str, value: u64) {
        (**self).note(p, label, value);
    }
}

/// `Some(probe)` forwards, `None` is a no-op — lets optional sinks
/// compose without a branch at every call site.
impl<P: Probe> Probe for Option<P> {
    fn enter_begin(&self, p: Pid) {
        if let Some(probe) = self {
            probe.enter_begin(p);
        }
    }
    fn enter_end(&self, p: Pid, ticket: Option<u64>) {
        if let Some(probe) = self {
            probe.enter_end(p, ticket);
        }
    }
    fn cs_exit(&self, p: Pid) {
        if let Some(probe) = self {
            probe.cs_exit(p);
        }
    }
    fn abort(&self, p: Pid, ticket: Option<u64>) {
        if let Some(probe) = self {
            probe.abort(p, ticket);
        }
    }
    fn rmr(&self, p: Pid, kind: OpKind) {
        if let Some(probe) = self {
            probe.rmr(p, kind);
        }
    }
    fn op(&self, p: Pid, kind: OpKind) {
        if let Some(probe) = self {
            probe.op(p, kind);
        }
    }
    fn note(&self, p: Pid, label: &'static str, value: u64) {
        if let Some(probe) = self {
            probe.note(p, label, value);
        }
    }
}

/// A pair broadcasts to both components — an *owned* fanout, usable
/// where a `'static` probe is required (unlike [`Fanout`], which borrows
/// its sinks).
impl<A: Probe, B: Probe> Probe for (A, B) {
    fn enter_begin(&self, p: Pid) {
        self.0.enter_begin(p);
        self.1.enter_begin(p);
    }
    fn enter_end(&self, p: Pid, ticket: Option<u64>) {
        self.0.enter_end(p, ticket);
        self.1.enter_end(p, ticket);
    }
    fn cs_exit(&self, p: Pid) {
        self.0.cs_exit(p);
        self.1.cs_exit(p);
    }
    fn abort(&self, p: Pid, ticket: Option<u64>) {
        self.0.abort(p, ticket);
        self.1.abort(p, ticket);
    }
    fn rmr(&self, p: Pid, kind: OpKind) {
        self.0.rmr(p, kind);
        self.1.rmr(p, kind);
    }
    fn op(&self, p: Pid, kind: OpKind) {
        self.0.op(p, kind);
        self.1.op(p, kind);
    }
    fn note(&self, p: Pid, label: &'static str, value: u64) {
        self.0.note(p, label, value);
        self.1.note(p, label, value);
    }
}

/// Broadcast every hook to a set of probes — the way the harness feeds
/// its internal [`PassageStats`](crate::PassageStats) and a caller's
/// sinks from one execution.
#[derive(Clone, Copy)]
pub struct Fanout<'a>(pub &'a [&'a dyn Probe]);

impl std::fmt::Debug for Fanout<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Fanout").field(&self.0.len()).finish()
    }
}

impl Probe for Fanout<'_> {
    fn enter_begin(&self, p: Pid) {
        for probe in self.0 {
            probe.enter_begin(p);
        }
    }
    fn enter_end(&self, p: Pid, ticket: Option<u64>) {
        for probe in self.0 {
            probe.enter_end(p, ticket);
        }
    }
    fn cs_exit(&self, p: Pid) {
        for probe in self.0 {
            probe.cs_exit(p);
        }
    }
    fn abort(&self, p: Pid, ticket: Option<u64>) {
        for probe in self.0 {
            probe.abort(p, ticket);
        }
    }
    fn rmr(&self, p: Pid, kind: OpKind) {
        for probe in self.0 {
            probe.rmr(p, kind);
        }
    }
    fn op(&self, p: Pid, kind: OpKind) {
        for probe in self.0 {
            probe.op(p, kind);
        }
    }
    fn note(&self, p: Pid, label: &'static str, value: u64) {
        for probe in self.0 {
            probe.note(p, label, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Default)]
    struct Counter(AtomicU64);

    impl Probe for Counter {
        fn enter_begin(&self, _p: Pid) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
        fn note(&self, _p: Pid, _label: &'static str, value: u64) {
            self.0.fetch_add(value, Ordering::Relaxed);
        }
    }

    #[test]
    fn probe_is_object_safe() {
        fn takes(p: &dyn Probe) {
            p.enter_begin(0);
        }
        takes(&NoProbe);
    }

    #[test]
    fn fanout_broadcasts_to_all_sinks() {
        let a = Counter::default();
        let b = Counter::default();
        let fan = Fanout(&[&a, &b]);
        fan.enter_begin(0);
        fan.note(1, "x", 10);
        fan.cs_exit(0); // default no-op on Counter
        assert_eq!(a.0.load(Ordering::Relaxed), 11);
        assert_eq!(b.0.load(Ordering::Relaxed), 11);
    }

    #[test]
    fn references_forward() {
        let c = Counter::default();
        let r: &dyn Probe = &&c;
        r.enter_begin(3);
        assert_eq!(c.0.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn pairs_options_and_arcs_compose() {
        let a = std::sync::Arc::new(Counter::default());
        let pair = (a.clone(), Some(NoProbe));
        pair.enter_begin(0);
        pair.note(0, "x", 4);
        let none: Option<NoProbe> = None;
        none.enter_begin(0); // no-op, must not panic
        assert_eq!(a.0.load(Ordering::Relaxed), 5);
    }
}
