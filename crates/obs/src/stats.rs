//! [`PassageStats`]: the per-passage RMR accounting sink.
//!
//! This is the single accounting path behind every experiment: the
//! harness (and any directly-driven lock wrapped in
//! [`ProbedMem`](crate::ProbedMem)) feeds it lifecycle + operation
//! hooks, and it produces per-passage records, RMR and step-latency
//! histograms, and amortized totals — the measured counterparts of the
//! paper's per-passage complexity statements.

use crate::hist::Histogram;
use crate::json::{Json, ToJson};
use crate::probe::Probe;
use sal_memory::{OpKind, Pid};
use std::sync::{Arc, Mutex};

/// Statistics for one completed passage attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassageRecord {
    /// The attempting process.
    pub pid: Pid,
    /// 0-based attempt index of this process.
    pub attempt: usize,
    /// Whether the CS was entered (vs. aborted).
    pub entered: bool,
    /// RMRs incurred across `enter` + CS + `exit` (or across the aborted
    /// `enter`).
    pub rmrs: u64,
    /// Shared-memory operations across the passage (each one a
    /// simulator scheduling point — the passage's step latency).
    pub ops: u64,
    /// The FCFS doorway ticket, when the algorithm reported one.
    pub ticket: Option<u64>,
}

/// An in-flight passage of one process.
#[derive(Debug, Clone, Copy, Default)]
struct InFlight {
    active: bool,
    entered: bool,
    rmrs: u64,
    ops: u64,
    ticket: Option<u64>,
}

#[derive(Debug, Default)]
struct Inner {
    inflight: Vec<InFlight>,
    attempts: Vec<usize>,
    records: Vec<PassageRecord>,
    entered_rmrs: Histogram,
    aborted_rmrs: Histogram,
    entered_ops: Histogram,
    dropped_events: u64,
}

/// Summary view of a run: histograms and amortized totals.
#[derive(Debug, Clone)]
pub struct PassageSummary {
    /// Completed (entered) passages.
    pub entered: u64,
    /// Aborted attempts.
    pub aborted: u64,
    /// Max RMRs over entered passages.
    pub max_entered_rmrs: u64,
    /// Median RMRs over entered passages.
    pub p50_entered_rmrs: u64,
    /// 99th-percentile RMRs over entered passages.
    pub p99_entered_rmrs: u64,
    /// Mean RMRs over entered passages.
    pub mean_entered_rmrs: f64,
    /// Max RMRs over aborted attempts.
    pub max_aborted_rmrs: u64,
    /// Total RMRs over *all* passages divided by total passages — the
    /// amortized per-passage cost (the Jayanti-&-Jayanti comparison
    /// metric).
    pub amortized_rmrs: f64,
    /// Max shared-memory steps (op count) of an entered passage.
    pub max_entered_ops: u64,
    /// Events a bounded [`EventLog`](crate::EventLog) observing the
    /// same run discarded (see
    /// [`note_dropped_events`](PassageStats::note_dropped_events)).
    /// Non-zero means event-level artifacts of this run are truncated;
    /// the statistics themselves are always complete.
    pub dropped_events: u64,
}

/// Run-scoped amortized accounting: the cumulative-cost view of a run
/// (or of several merged runs), as opposed to the per-passage view of
/// [`PassageSummary`].
///
/// This is the measured counterpart of an *amortized* complexity claim
/// in the Jayanti–Jayanti sense: a run's total RMR bill divided by the
/// number of passages that footed it, together with the largest single
/// debt any one passage ran up. A lock has constant amortized RMR cost
/// exactly when [`total_rmrs`](Self::total_rmrs) stays ≤
/// `c · passages + b` for fixed `c`, `b` — even if
/// [`max_passage_rmrs`](Self::max_passage_rmrs) occasionally spikes.
///
/// Obtain one from [`PassageStats::amortized`], fold independent runs
/// together with [`merge_from`](Self::merge_from), and ship it through
/// the JSON codec with [`ToJson`] / [`from_json`](Self::from_json).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmortizedStats {
    /// Cumulative RMRs over *all* finalized passages (entered and
    /// aborted alike).
    pub total_rmrs: u64,
    /// Total finalized passages (entered + aborted).
    pub passages: u64,
    /// Passages that entered the CS.
    pub entered: u64,
    /// Aborted attempts.
    pub aborted: u64,
    /// Largest RMR bill of any single passage — the worst-case debt one
    /// passage ran up against the amortized budget.
    pub max_passage_rmrs: u64,
    /// `total_rmrs / passages` (0 when the run had no passages).
    pub amortized_rmrs: f64,
}

impl AmortizedStats {
    /// The empty (zero-passage) accounting state.
    #[must_use]
    pub fn empty() -> AmortizedStats {
        AmortizedStats {
            total_rmrs: 0,
            passages: 0,
            entered: 0,
            aborted: 0,
            max_passage_rmrs: 0,
            amortized_rmrs: 0.0,
        }
    }

    fn with_ratio(mut self) -> AmortizedStats {
        self.amortized_rmrs = if self.passages == 0 {
            0.0
        } else {
            self.total_rmrs as f64 / self.passages as f64
        };
        self
    }

    /// Fold another run's totals into this one — the amortized-level
    /// mirror of [`PassageStats::merge_from`], for fan-ins that only
    /// kept the aggregate. Counters add, the max-debt takes the max,
    /// and the amortized ratio is recomputed from the merged totals.
    pub fn merge_from(&mut self, other: &AmortizedStats) {
        self.total_rmrs += other.total_rmrs;
        self.passages += other.passages;
        self.entered += other.entered;
        self.aborted += other.aborted;
        self.max_passage_rmrs = self.max_passage_rmrs.max(other.max_passage_rmrs);
        *self = self.with_ratio();
    }

    /// Parse the [`ToJson`] encoding back (artifact round-trips).
    ///
    /// # Errors
    ///
    /// When a field is missing or has the wrong type.
    pub fn from_json(v: &Json) -> Result<AmortizedStats, String> {
        let field = |k: &str| {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("AmortizedStats: missing/invalid field {k:?}"))
        };
        let stats = AmortizedStats {
            total_rmrs: field("total_rmrs")?,
            passages: field("passages")?,
            entered: field("entered")?,
            aborted: field("aborted")?,
            max_passage_rmrs: field("max_passage_rmrs")?,
            amortized_rmrs: v
                .get("amortized_rmrs")
                .and_then(Json::as_f64)
                .ok_or("AmortizedStats: missing/invalid field \"amortized_rmrs\"")?,
        };
        Ok(stats.with_ratio())
    }
}

impl ToJson for AmortizedStats {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("total_rmrs", self.total_rmrs.to_json()),
            ("passages", self.passages.to_json()),
            ("entered", self.entered.to_json()),
            ("aborted", self.aborted.to_json()),
            ("max_passage_rmrs", self.max_passage_rmrs.to_json()),
            ("amortized_rmrs", self.amortized_rmrs.to_json()),
        ])
    }
}

/// Per-passage RMR + step-latency accounting, fed through the [`Probe`]
/// hooks.
///
/// Thread-safe; one instance observes one execution. Passages finalize
/// on [`cs_exit`](Probe::cs_exit) (entered) or [`abort`](Probe::abort)
/// (aborted), and appear in [`records`](Self::records) in finalization
/// order.
///
/// `PassageStats` is a cheap *handle*: `clone()` yields another handle on
/// the same underlying accounting state, so a caller can hand one clone
/// to an execution (which needs an owned, `'static` probe) and keep
/// another to read the results afterwards.
#[derive(Debug, Default, Clone)]
pub struct PassageStats {
    inner: Arc<Mutex<Inner>>,
}

impl PassageStats {
    /// New, empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// All finalized passages, in completion order.
    pub fn records(&self) -> Vec<PassageRecord> {
        self.inner.lock().unwrap().records.clone()
    }

    /// Number of finalized passages.
    pub fn total_passages(&self) -> usize {
        self.inner.lock().unwrap().records.len()
    }

    /// Number of passages that entered the CS.
    pub fn total_entered(&self) -> usize {
        let inner = self.inner.lock().unwrap();
        inner.entered_rmrs.count() as usize
    }

    /// Maximum per-passage RMR count among entered passages.
    pub fn max_entered_rmrs(&self) -> u64 {
        self.inner.lock().unwrap().entered_rmrs.max()
    }

    /// Maximum per-passage RMR count among aborted attempts.
    pub fn max_aborted_rmrs(&self) -> u64 {
        self.inner.lock().unwrap().aborted_rmrs.max()
    }

    /// Mean RMRs over entered passages.
    pub fn mean_entered_rmrs(&self) -> f64 {
        self.inner.lock().unwrap().entered_rmrs.mean()
    }

    /// Histograms + amortized totals for the whole run.
    pub fn summary(&self) -> PassageSummary {
        let inner = self.inner.lock().unwrap();
        let total = inner.entered_rmrs.count() + inner.aborted_rmrs.count();
        let total_rmrs = inner.entered_rmrs.sum() + inner.aborted_rmrs.sum();
        PassageSummary {
            entered: inner.entered_rmrs.count(),
            aborted: inner.aborted_rmrs.count(),
            max_entered_rmrs: inner.entered_rmrs.max(),
            p50_entered_rmrs: inner.entered_rmrs.quantile(0.50).unwrap_or(0),
            p99_entered_rmrs: inner.entered_rmrs.quantile(0.99).unwrap_or(0),
            mean_entered_rmrs: inner.entered_rmrs.mean(),
            max_aborted_rmrs: inner.aborted_rmrs.max(),
            amortized_rmrs: if total == 0 {
                0.0
            } else {
                total_rmrs as f64 / total as f64
            },
            max_entered_ops: inner.entered_ops.max(),
            dropped_events: inner.dropped_events,
        }
    }

    /// Run-scoped amortized totals: the cumulative-cost view this sink
    /// has accumulated so far (across [`merge_from`](Self::merge_from)
    /// fan-ins too, since histograms combine exactly).
    pub fn amortized(&self) -> AmortizedStats {
        let inner = self.inner.lock().unwrap();
        let entered = inner.entered_rmrs.count();
        let aborted = inner.aborted_rmrs.count();
        AmortizedStats {
            total_rmrs: inner.entered_rmrs.sum() + inner.aborted_rmrs.sum(),
            passages: entered + aborted,
            entered,
            aborted,
            max_passage_rmrs: inner.entered_rmrs.max().max(inner.aborted_rmrs.max()),
            amortized_rmrs: 0.0,
        }
        .with_ratio()
    }

    /// Record that a bounded event log observing the same run dropped
    /// `n` more events, so truncation shows up in summaries (and the
    /// JSON artifacts built from them) instead of only on the log
    /// itself. Call with [`EventLog::dropped`](crate::EventLog::dropped)
    /// after a run (the count is additive, so per-cell drops fold in
    /// one call each).
    pub fn note_dropped_events(&self, n: u64) {
        self.inner.lock().unwrap().dropped_events += n;
    }

    /// Total events reported dropped via
    /// [`note_dropped_events`](Self::note_dropped_events) (including
    /// counts folded in by [`merge_from`](Self::merge_from)).
    pub fn dropped_events(&self) -> u64 {
        self.inner.lock().unwrap().dropped_events
    }

    /// Clone of the entered-passage RMR histogram.
    pub fn entered_rmr_histogram(&self) -> Histogram {
        self.inner.lock().unwrap().entered_rmrs.clone()
    }

    /// Fold another sink's *finalized* passages into this one — the
    /// fan-in for parallel sweeps, where every grid cell measures into
    /// a private `PassageStats` and the driver merges them in
    /// deterministic cell order. Records are appended in `other`'s
    /// completion order with their original `pid` / `attempt` fields
    /// (attempt indices are per-source-run; cells are separate runs by
    /// construction), and all histograms combine exactly. Passages
    /// still in flight in `other` are not merged — merge completed
    /// runs. `other` is left untouched.
    pub fn merge_from(&self, other: &PassageStats) {
        // Snapshot before locking ourselves, so merging a clone of the
        // same sink cannot deadlock.
        let (records, entered_rmrs, aborted_rmrs, entered_ops, dropped_events) = {
            let o = other.inner.lock().unwrap();
            (
                o.records.clone(),
                o.entered_rmrs.clone(),
                o.aborted_rmrs.clone(),
                o.entered_ops.clone(),
                o.dropped_events,
            )
        };
        let mut inner = self.inner.lock().unwrap();
        inner.records.extend(records);
        inner.entered_rmrs.merge_from(&entered_rmrs);
        inner.aborted_rmrs.merge_from(&aborted_rmrs);
        inner.entered_ops.merge_from(&entered_ops);
        inner.dropped_events += dropped_events;
    }

    fn slot(inner: &mut Inner, p: Pid) -> &mut InFlight {
        if inner.inflight.len() <= p {
            inner.inflight.resize(p + 1, InFlight::default());
            inner.attempts.resize(p + 1, 0);
        }
        &mut inner.inflight[p]
    }

    fn finalize(inner: &mut Inner, p: Pid, entered: bool) {
        let fl = *Self::slot(inner, p);
        if !fl.active {
            return;
        }
        inner.inflight[p] = InFlight::default();
        let attempt = inner.attempts[p];
        inner.attempts[p] += 1;
        if entered {
            inner.entered_rmrs.record(fl.rmrs);
            inner.entered_ops.record(fl.ops);
        } else {
            inner.aborted_rmrs.record(fl.rmrs);
        }
        inner.records.push(PassageRecord {
            pid: p,
            attempt,
            entered,
            rmrs: fl.rmrs,
            ops: fl.ops,
            ticket: fl.ticket,
        });
    }
}

impl Probe for PassageStats {
    fn enter_begin(&self, p: Pid) {
        let mut inner = self.inner.lock().unwrap();
        let slot = Self::slot(&mut inner, p);
        *slot = InFlight {
            active: true,
            ..InFlight::default()
        };
    }

    fn enter_end(&self, p: Pid, ticket: Option<u64>) {
        let mut inner = self.inner.lock().unwrap();
        let slot = Self::slot(&mut inner, p);
        slot.entered = true;
        slot.ticket = ticket;
    }

    fn cs_exit(&self, p: Pid) {
        let mut inner = self.inner.lock().unwrap();
        Self::finalize(&mut inner, p, true);
    }

    fn abort(&self, p: Pid, ticket: Option<u64>) {
        let mut inner = self.inner.lock().unwrap();
        let slot = Self::slot(&mut inner, p);
        if slot.ticket.is_none() {
            slot.ticket = ticket;
        }
        Self::finalize(&mut inner, p, false);
    }

    fn rmr(&self, p: Pid, _kind: OpKind) {
        let mut inner = self.inner.lock().unwrap();
        let slot = Self::slot(&mut inner, p);
        if slot.active {
            slot.rmrs += 1;
        }
    }

    fn op(&self, p: Pid, _kind: OpKind) {
        let mut inner = self.inner.lock().unwrap();
        let slot = Self::slot(&mut inner, p);
        if slot.active {
            slot.ops += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn passage(stats: &PassageStats, p: Pid, rmrs: u64, entered: bool) {
        stats.enter_begin(p);
        for _ in 0..rmrs {
            stats.op(p, OpKind::Read);
            stats.rmr(p, OpKind::Read);
        }
        if entered {
            stats.enter_end(p, Some(p as u64));
            stats.cs_exit(p);
        } else {
            stats.abort(p, Some(p as u64));
        }
    }

    #[test]
    fn records_accumulate_in_completion_order() {
        let stats = PassageStats::new();
        passage(&stats, 0, 3, true);
        passage(&stats, 1, 9, false);
        passage(&stats, 0, 5, true);
        let recs = stats.records();
        assert_eq!(recs.len(), 3);
        assert_eq!((recs[0].pid, recs[0].attempt, recs[0].rmrs), (0, 0, 3));
        assert_eq!((recs[1].pid, recs[1].entered), (1, false));
        assert_eq!((recs[2].pid, recs[2].attempt, recs[2].rmrs), (0, 1, 5));
        assert_eq!(stats.total_entered(), 2);
        assert_eq!(stats.max_entered_rmrs(), 5);
        assert_eq!(stats.max_aborted_rmrs(), 9);
        assert!((stats.mean_entered_rmrs() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn summary_amortizes_over_all_passages() {
        let stats = PassageStats::new();
        passage(&stats, 0, 2, true);
        passage(&stats, 1, 4, false);
        let s = stats.summary();
        assert_eq!(s.entered, 1);
        assert_eq!(s.aborted, 1);
        assert!((s.amortized_rmrs - 3.0).abs() < 1e-9);
        assert_eq!(s.max_entered_ops, 2);
        assert_eq!(s.p50_entered_rmrs, 2);
    }

    #[test]
    fn ops_outside_a_passage_are_ignored() {
        let stats = PassageStats::new();
        stats.op(0, OpKind::Read);
        stats.rmr(0, OpKind::Read);
        passage(&stats, 0, 1, true);
        assert_eq!(stats.records()[0].rmrs, 1);
        // A stray cs_exit with no open passage is a no-op.
        stats.cs_exit(0);
        assert_eq!(stats.total_passages(), 1);
    }

    #[test]
    fn tickets_survive_into_records() {
        let stats = PassageStats::new();
        passage(&stats, 3, 0, true);
        assert_eq!(stats.records()[0].ticket, Some(3));
    }

    #[test]
    fn merge_matches_one_big_run_in_cell_order() {
        let cell_a = PassageStats::new();
        passage(&cell_a, 0, 3, true);
        passage(&cell_a, 1, 9, false);
        let cell_b = PassageStats::new();
        passage(&cell_b, 0, 5, true);

        let merged = PassageStats::new();
        merged.merge_from(&cell_a);
        merged.merge_from(&cell_b);

        assert_eq!(merged.total_passages(), 3);
        assert_eq!(merged.total_entered(), 2);
        assert_eq!(merged.max_entered_rmrs(), 5);
        assert_eq!(merged.max_aborted_rmrs(), 9);
        assert!((merged.mean_entered_rmrs() - 4.0).abs() < 1e-9);
        let s = merged.summary();
        assert_eq!(s.entered, 2);
        assert_eq!(s.aborted, 1);
        assert!((s.amortized_rmrs - (3 + 9 + 5) as f64 / 3.0).abs() < 1e-9);
        // Records keep per-source order and fields; sources untouched.
        let recs = merged.records();
        assert_eq!((recs[0].pid, recs[0].rmrs), (0, 3));
        assert_eq!((recs[2].pid, recs[2].rmrs), (0, 5));
        assert_eq!(cell_a.total_passages(), 2);
    }

    #[test]
    fn dropped_events_surface_in_summary_and_merge() {
        let stats = PassageStats::new();
        passage(&stats, 0, 1, true);
        assert_eq!(stats.summary().dropped_events, 0);
        stats.note_dropped_events(7);
        stats.note_dropped_events(3);
        assert_eq!(stats.dropped_events(), 10);
        assert_eq!(stats.summary().dropped_events, 10);

        let merged = PassageStats::new();
        merged.note_dropped_events(1);
        merged.merge_from(&stats);
        assert_eq!(merged.summary().dropped_events, 11);
        assert_eq!(stats.dropped_events(), 10, "source untouched");
    }

    #[test]
    fn merge_ignores_in_flight_passages() {
        let cell = PassageStats::new();
        passage(&cell, 0, 1, true);
        cell.enter_begin(1); // still in flight
        let merged = PassageStats::new();
        merged.merge_from(&cell);
        assert_eq!(merged.total_passages(), 1);
    }

    #[test]
    fn amortized_totals_cover_entered_and_aborted_passages() {
        let stats = PassageStats::new();
        passage(&stats, 0, 2, true);
        passage(&stats, 1, 14, false); // the expensive abort
        passage(&stats, 0, 4, true);
        let a = stats.amortized();
        assert_eq!(a.total_rmrs, 20);
        assert_eq!(a.passages, 3);
        assert_eq!(a.entered, 2);
        assert_eq!(a.aborted, 1);
        assert_eq!(a.max_passage_rmrs, 14);
        assert!((a.amortized_rmrs - 20.0 / 3.0).abs() < 1e-9);
        // The amortized view agrees with the per-passage summary.
        assert!((a.amortized_rmrs - stats.summary().amortized_rmrs).abs() < 1e-9);
    }

    #[test]
    fn amortized_merge_matches_merged_sinks() {
        let cell_a = PassageStats::new();
        passage(&cell_a, 0, 3, true);
        passage(&cell_a, 1, 9, false);
        let cell_b = PassageStats::new();
        passage(&cell_b, 0, 5, true);

        // Merging at the sink level and at the amortized level agree.
        let merged = PassageStats::new();
        merged.merge_from(&cell_a);
        merged.merge_from(&cell_b);
        let mut folded = cell_a.amortized();
        folded.merge_from(&cell_b.amortized());
        assert_eq!(folded, merged.amortized());
        assert_eq!(folded.total_rmrs, 17);
        assert_eq!(folded.max_passage_rmrs, 9);

        // Merging into the empty state is the identity.
        let mut from_empty = AmortizedStats::empty();
        from_empty.merge_from(&folded);
        assert_eq!(from_empty, folded);
    }

    #[test]
    fn amortized_stats_round_trip_through_json() {
        let stats = PassageStats::new();
        passage(&stats, 0, 7, true);
        passage(&stats, 1, 1, false);
        let a = stats.amortized();
        let text = a.to_json().render();
        let back = AmortizedStats::from_json(&crate::json::Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, a);
        // Missing fields fail loudly.
        let bad = crate::json::Json::parse("{\"passages\":1}").unwrap();
        assert!(AmortizedStats::from_json(&bad).is_err());
    }

    #[test]
    fn clones_are_handles_on_shared_state() {
        let stats = PassageStats::new();
        let handle = stats.clone();
        passage(&handle, 0, 2, true);
        assert_eq!(stats.total_passages(), 1);
        assert_eq!(stats.max_entered_rmrs(), 2);
    }
}
