//! Step-stamped event log and the mutual-exclusion / fairness monitors.
//!
//! Process bodies record protocol milestones (enter started, CS entered,
//! CS left, aborted); because the simulator serializes all shared-memory
//! steps, the log order is the real-time order, and safety properties
//! are checked *post-hoc* against the complete log:
//!
//! * **mutual exclusion** — CS occupancy never exceeds one
//!   ([`EventLog::check_mutual_exclusion`]);
//! * **FCFS** — among non-aborting processes, CS entry order equals
//!   doorway (ticket) order ([`EventLog::check_fcfs`]).

use sal_memory::Pid;
use std::sync::Mutex;

/// What happened.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// The process invoked `Enter`.
    EnterStart,
    /// The process completed the doorway with the given ticket.
    Doorway(u64),
    /// `Enter` returned `true`; the process is in the CS.
    CsEnter,
    /// The process left the CS (about to call `Exit`).
    CsLeave,
    /// `Exit` completed.
    ExitDone,
    /// `Enter` returned `false` (aborted).
    Aborted,
    /// Free-form instrumentation.
    Custom(&'static str, u64),
}

/// One log entry.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// The process that recorded the event.
    pub pid: Pid,
    /// Steps granted before the event was recorded (real-time position).
    pub step: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Violation of mutual exclusion found in a log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MutexViolation {
    /// The process already in the CS.
    pub occupant: Pid,
    /// The process that entered on top of it.
    pub intruder: Pid,
    /// Step stamp of the violating entry.
    pub step: u64,
}

/// Violation of FCFS found in a log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FcfsViolation {
    /// The overtaken process (smaller ticket, entered later).
    pub overtaken: Pid,
    /// The process that jumped the queue.
    pub overtaker: Pid,
}

/// Thread-safe, step-stamped event log.
#[derive(Debug, Default)]
pub struct EventLog {
    events: Mutex<Vec<Event>>,
}

impl EventLog {
    /// New, empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event (stamped by the caller).
    pub fn record(&self, pid: Pid, step: u64, kind: EventKind) {
        self.events.lock().unwrap().push(Event { pid, step, kind });
    }

    /// Snapshot of all events, in real-time order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap().clone()
    }

    /// Number of events of a given kind.
    pub fn count(&self, pred: impl Fn(&EventKind) -> bool) -> usize {
        self.events
            .lock()
            .unwrap()
            .iter()
            .filter(|e| pred(&e.kind))
            .count()
    }

    /// Verify that at most one process was ever inside the CS.
    pub fn check_mutual_exclusion(&self) -> Result<(), MutexViolation> {
        let mut occupant: Option<Pid> = None;
        for e in self.events.lock().unwrap().iter() {
            match e.kind {
                EventKind::CsEnter => {
                    if let Some(q) = occupant {
                        return Err(MutexViolation {
                            occupant: q,
                            intruder: e.pid,
                            step: e.step,
                        });
                    }
                    occupant = Some(e.pid);
                }
                EventKind::CsLeave => {
                    debug_assert_eq!(occupant, Some(e.pid), "CsLeave without CsEnter");
                    occupant = None;
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Verify FCFS: for processes that recorded a [`EventKind::Doorway`]
    /// ticket and were not aborted, CS entry order must equal ticket
    /// order.
    pub fn check_fcfs(&self) -> Result<(), FcfsViolation> {
        let events = self.events.lock().unwrap();
        let mut cs_order: Vec<(Pid, u64)> = Vec::new(); // (pid, ticket)
                                                        // Pair each CS entry with the pid's most recent *preceding*
                                                        // doorway ticket, so multi-passage runs attribute each entry to
                                                        // the right attempt. Entries without a recorded ticket (locks
                                                        // with no doorway, or harness runs without ticketing) are simply
                                                        // unconstrained.
        let mut last_ticket: std::collections::HashMap<Pid, u64> = std::collections::HashMap::new();
        for e in events.iter() {
            match e.kind {
                EventKind::Doorway(t) => {
                    last_ticket.insert(e.pid, t);
                }
                EventKind::CsEnter => {
                    if let Some(&t) = last_ticket.get(&e.pid) {
                        cs_order.push((e.pid, t));
                    }
                }
                _ => {}
            }
        }
        for w in cs_order.windows(2) {
            if w[0].1 > w[1].1 {
                return Err(FcfsViolation {
                    overtaken: w[1].0,
                    overtaker: w[0].0,
                });
            }
        }
        Ok(())
    }

    /// Per-process passage summary: `(entered, aborted)` counts.
    pub fn outcomes(&self, nprocs: usize) -> Vec<(usize, usize)> {
        let mut out = vec![(0usize, 0usize); nprocs];
        for e in self.events.lock().unwrap().iter() {
            match e.kind {
                EventKind::CsEnter => out[e.pid].0 += 1,
                EventKind::Aborted => out[e.pid].1 += 1,
                _ => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_log_passes_mutual_exclusion() {
        let log = EventLog::new();
        log.record(0, 0, EventKind::CsEnter);
        log.record(0, 1, EventKind::CsLeave);
        log.record(1, 2, EventKind::CsEnter);
        log.record(1, 3, EventKind::CsLeave);
        assert!(log.check_mutual_exclusion().is_ok());
    }

    #[test]
    fn overlap_is_detected() {
        let log = EventLog::new();
        log.record(0, 0, EventKind::CsEnter);
        log.record(1, 1, EventKind::CsEnter);
        let v = log.check_mutual_exclusion().unwrap_err();
        assert_eq!(
            v,
            MutexViolation {
                occupant: 0,
                intruder: 1,
                step: 1
            }
        );
    }

    #[test]
    fn fcfs_holds_for_ticket_ordered_entries() {
        let log = EventLog::new();
        log.record(0, 0, EventKind::Doorway(0));
        log.record(1, 1, EventKind::Doorway(1));
        log.record(0, 2, EventKind::CsEnter);
        log.record(1, 3, EventKind::CsEnter);
        assert!(log.check_fcfs().is_ok());
    }

    #[test]
    fn fcfs_violation_is_detected() {
        let log = EventLog::new();
        log.record(0, 0, EventKind::Doorway(0));
        log.record(1, 1, EventKind::Doorway(1));
        log.record(1, 2, EventKind::CsEnter); // ticket 1 enters first
        log.record(0, 3, EventKind::CsEnter);
        let v = log.check_fcfs().unwrap_err();
        assert_eq!(v.overtaker, 1);
        assert_eq!(v.overtaken, 0);
    }

    #[test]
    fn aborters_do_not_constrain_fcfs() {
        let log = EventLog::new();
        log.record(0, 0, EventKind::Doorway(0));
        log.record(1, 1, EventKind::Doorway(1));
        log.record(0, 2, EventKind::Aborted); // ticket 0 aborted
        log.record(1, 3, EventKind::CsEnter);
        assert!(log.check_fcfs().is_ok());
    }

    #[test]
    fn outcomes_are_tallied_per_process() {
        let log = EventLog::new();
        log.record(0, 0, EventKind::CsEnter);
        log.record(0, 1, EventKind::CsLeave);
        log.record(1, 2, EventKind::Aborted);
        log.record(0, 3, EventKind::CsEnter);
        let o = log.outcomes(2);
        assert_eq!(o[0], (2, 0));
        assert_eq!(o[1], (0, 1));
        assert_eq!(log.count(|k| matches!(k, EventKind::CsEnter)), 2);
    }
}
