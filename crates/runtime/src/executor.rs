//! A dependency-free mini-executor for driving lock futures in tests
//! and benches.
//!
//! `sal_sync::AsyncAbortableMutex` is sans-IO: its futures know nothing
//! about threads or timers, they only ask to be re-polled. Something
//! has to do the polling, and the workspace is offline (no tokio), so
//! this module ships the minimal driver:
//!
//! * [`block_on`] — run one future to completion on the current thread
//!   (`std::thread::park` based), for straight-line tests;
//! * [`Executor`] — a FIFO task queue drained by a caller-chosen number
//!   of worker threads, the same worker shape as the [`crate::pool`]
//!   job pool but re-polling tasks instead of running jobs once: spawn
//!   futures with [`Executor::spawn`], drain them with
//!   [`Executor::run`]. Tasks are re-queued by their wakers, so 10 000
//!   tasks interleave over 4 workers — the tasks ≫ threads shape the
//!   async mutex exists for;
//! * [`sleep_until`] / [`sleep`] — a timer future serviced by one
//!   lazily-started global timer thread, so deadline-bound waits can be
//!   woken without lock traffic.
//!
//! Wakers are hand-rolled over `Arc` reference counting (the
//! [`RawWakerVTable`] dance); each `unsafe` block carries its
//! obligation as a `// SAFETY:` comment, enforced by the
//! `clippy::undocumented_unsafe_blocks` lint this module opts into.
//!
//! ## Scheduling behaviour
//!
//! The run queue is a global FIFO: a woken task goes to the back, so
//! ready tasks make progress in wake order and none starves. A task is
//! never polled concurrently from two workers (a QUEUED/RUNNING/
//! NOTIFIED state machine serializes polls; a wake arriving mid-poll
//! re-queues the task at the end of the poll instead of being lost).

#![warn(clippy::undocumented_unsafe_blocks)]

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};
use std::time::{Duration, Instant};

/// Anything that can be woken through an `Arc`: the one trait both the
/// executor's tasks and `block_on`'s thread parker implement, so one
/// vtable construction serves every waker in the module.
trait ArcWake: Send + Sync + 'static {
    fn wake_by_ref(arc_self: &Arc<Self>);
}

/// The [`RawWakerVTable`] for an `Arc<W>`-backed waker. The `&` on a
/// `const fn`-constructed value is promoted to `'static`, which is what
/// lets one generic function mint vtables per concrete `W`.
const fn vtable<W: ArcWake>() -> &'static RawWakerVTable {
    &RawWakerVTable::new(
        clone_arc::<W>,
        wake_arc::<W>,
        wake_by_ref_arc::<W>,
        drop_arc::<W>,
    )
}

fn raw_waker<W: ArcWake>(w: Arc<W>) -> RawWaker {
    RawWaker::new(Arc::into_raw(w).cast::<()>(), vtable::<W>())
}

/// Build a [`Waker`] that calls `W::wake_by_ref` on the given `Arc`.
fn waker<W: ArcWake>(w: Arc<W>) -> Waker {
    // SAFETY: the RawWaker contract is upheld by the four vtable
    // functions below: `data` is always an `Arc<W>` raw pointer with
    // one reference count owned by the waker; clone bumps the count,
    // wake/drop consume it, wake_by_ref borrows it.
    unsafe { Waker::from_raw(raw_waker(w)) }
}

unsafe fn clone_arc<W: ArcWake>(data: *const ()) -> RawWaker {
    // SAFETY: `data` came from `Arc::into_raw` in `raw_waker`, so it is
    // a valid `Arc<W>` pointer; `increment_strong_count` manufactures
    // the extra count the cloned waker will own.
    unsafe { Arc::increment_strong_count(data.cast::<W>()) };
    RawWaker::new(data, vtable::<W>())
}

unsafe fn wake_arc<W: ArcWake>(data: *const ()) {
    // SAFETY: consumes the count owned by this waker (wake-by-value
    // drops the waker), reconstructing the Arc it was minted from.
    let arc = unsafe { Arc::from_raw(data.cast::<W>()) };
    W::wake_by_ref(&arc);
}

unsafe fn wake_by_ref_arc<W: ArcWake>(data: *const ()) {
    // SAFETY: borrows the Arc without consuming the waker's count;
    // `ManuallyDrop` keeps the count owned by the waker intact.
    let arc = std::mem::ManuallyDrop::new(unsafe { Arc::from_raw(data.cast::<W>()) });
    W::wake_by_ref(&arc);
}

unsafe fn drop_arc<W: ArcWake>(data: *const ()) {
    // SAFETY: releases the count owned by the dropped waker.
    drop(unsafe { Arc::from_raw(data.cast::<W>()) });
}

/// Task poll-state: not queued, not running, no pending wake.
const IDLE: u8 = 0;
/// In the run queue, awaiting a worker.
const QUEUED: u8 = 1;
/// A worker is polling the future right now.
const RUNNING: u8 = 2;
/// A wake arrived while RUNNING: the worker re-queues after the poll.
const NOTIFIED: u8 = 3;

/// One spawned future plus its scheduling state.
struct Task {
    /// The future, present while the task is alive. The Mutex is
    /// uncontended by construction (the state machine admits one poller
    /// at a time); it exists to make `Task: Sync` without unsafe.
    future: Mutex<Option<Pin<Box<dyn Future<Output = ()> + Send + 'static>>>>,
    state: AtomicU8,
    shared: Arc<Shared>,
}

impl ArcWake for Task {
    fn wake_by_ref(arc_self: &Arc<Self>) {
        loop {
            match arc_self.state.load(Ordering::Acquire) {
                IDLE => {
                    if arc_self
                        .state
                        .compare_exchange(IDLE, QUEUED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        arc_self.shared.enqueue(Arc::clone(arc_self));
                        return;
                    }
                }
                RUNNING => {
                    if arc_self
                        .state
                        .compare_exchange(RUNNING, NOTIFIED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        return;
                    }
                }
                // Already queued or already flagged: the wake coalesces.
                _ => return,
            }
        }
    }
}

/// State shared between the executor handle, its workers and all task
/// wakers.
struct Shared {
    queue: Mutex<VecDeque<Arc<Task>>>,
    /// Workers park here when the queue is empty but tasks are live.
    cv: Condvar,
    /// Spawned minus completed tasks; `run` returns at zero.
    live: AtomicUsize,
}

impl Shared {
    fn enqueue(&self, task: Arc<Task>) {
        self.queue.lock().unwrap().push_back(task);
        self.cv.notify_one();
    }
}

/// A FIFO multi-worker future executor; see the module docs.
///
/// ```
/// use sal_runtime::executor::Executor;
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use std::sync::Arc;
///
/// let ex = Executor::new();
/// let hits = Arc::new(AtomicU64::new(0));
/// for _ in 0..100 {
///     let hits = Arc::clone(&hits);
///     ex.spawn(async move {
///         hits.fetch_add(1, Ordering::Relaxed);
///     });
/// }
/// ex.run(4);
/// assert_eq!(hits.load(Ordering::Relaxed), 100);
/// ```
pub struct Executor {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("live", &self.shared.live.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Default for Executor {
    fn default() -> Self {
        Self::new()
    }
}

impl Executor {
    /// A fresh executor with an empty task queue.
    pub fn new() -> Self {
        Executor {
            shared: Arc::new(Shared {
                queue: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
                live: AtomicUsize::new(0),
            }),
        }
    }

    /// Queue a future as a task. Tasks only make progress inside
    /// [`run`](Self::run).
    pub fn spawn(&self, fut: impl Future<Output = ()> + Send + 'static) {
        self.shared.live.fetch_add(1, Ordering::SeqCst);
        let task = Arc::new(Task {
            future: Mutex::new(Some(Box::pin(fut))),
            state: AtomicU8::new(QUEUED),
            shared: Arc::clone(&self.shared),
        });
        self.shared.enqueue(task);
    }

    /// Drain the queue on `workers` threads until every spawned task
    /// has completed, then return. Tasks may [`spawn`](Self::spawn)
    /// further tasks through a clone of the handle. `workers == 1` is
    /// valid (single-threaded cooperative scheduling, still on a
    /// separate thread from the caller's).
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`, and propagates the first worker panic
    /// (a panicking task poisons the task mutex and aborts the drain).
    pub fn run(&self, workers: usize) {
        assert!(workers > 0, "executor needs at least one worker");
        std::thread::scope(|s| {
            for _ in 0..workers {
                let shared = Arc::clone(&self.shared);
                s.spawn(move || worker_loop(&shared));
            }
        });
    }

    /// Clone the spawn handle (e.g. to spawn from inside tasks).
    pub fn handle(&self) -> Executor {
        Executor {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Number of spawned tasks that have not completed yet.
    pub fn live(&self) -> usize {
        self.shared.live.load(Ordering::SeqCst)
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let task = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(t) = q.pop_front() {
                    break t;
                }
                if shared.live.load(Ordering::SeqCst) == 0 {
                    // All tasks done; wake the other workers so they
                    // observe termination too.
                    shared.cv.notify_all();
                    return;
                }
                // Timed backstop: termination (live == 0) is signalled
                // by notify_all, but a task completed by *another*
                // executor's thread (block_on interleaving) could miss
                // a notify; 1ms bounds the damage.
                q = shared
                    .cv
                    .wait_timeout(q, Duration::from_millis(1))
                    .unwrap()
                    .0;
            }
        };
        task.state.store(RUNNING, Ordering::Release);
        let mut slot = task.future.lock().unwrap();
        let done = match slot.as_mut() {
            Some(fut) => {
                let w = waker(Arc::clone(&task));
                let mut cx = Context::from_waker(&w);
                match fut.as_mut().poll(&mut cx) {
                    Poll::Ready(()) => {
                        *slot = None; // drop the future eagerly
                        true
                    }
                    Poll::Pending => false,
                }
            }
            // Completed earlier; a straggler wake re-queued it.
            None => true,
        };
        drop(slot);
        if done {
            if task.state.swap(IDLE, Ordering::AcqRel) == NOTIFIED {
                // Harmless straggler: future is gone, nothing to do.
            }
            if shared.live.fetch_sub(1, Ordering::SeqCst) == 1 {
                shared.cv.notify_all();
            }
        } else {
            match task
                .state
                .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {}
                Err(_) => {
                    // NOTIFIED: a wake raced our poll — re-queue.
                    task.state.store(QUEUED, Ordering::Release);
                    shared.enqueue(task);
                }
            }
        }
    }
}

/// `block_on`'s thread parker.
struct ThreadNotify {
    thread: std::thread::Thread,
    notified: AtomicBool,
}

impl ArcWake for ThreadNotify {
    fn wake_by_ref(arc_self: &Arc<Self>) {
        arc_self.notified.store(true, Ordering::Release);
        arc_self.thread.unpark();
    }
}

/// Run `fut` to completion on the current thread, parking between
/// polls. The entry point for straight-line async tests:
///
/// ```
/// use sal_runtime::executor::block_on;
///
/// assert_eq!(block_on(async { 6 * 7 }), 42);
/// ```
pub fn block_on<F: Future>(fut: F) -> F::Output {
    let notify = Arc::new(ThreadNotify {
        thread: std::thread::current(),
        notified: AtomicBool::new(false),
    });
    let w = waker(Arc::clone(&notify));
    let mut cx = Context::from_waker(&w);
    // SAFETY: `fut` lives on this stack frame for the whole function
    // and is never moved after this pin (only the pinned reference is
    // used below).
    let mut fut = std::pin::pin!(fut);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(out) => return out,
            Poll::Pending => {
                while !notify.notified.swap(false, Ordering::Acquire) {
                    std::thread::park();
                }
            }
        }
    }
}

/// The global timer service: one lazily-started thread parks until the
/// earliest registered deadline and fires the due wakers. Shared by
/// every [`Sleep`] in the process (tests and benches never need more).
struct TimerService {
    entries: Mutex<Vec<(Instant, Waker)>>,
    cv: Condvar,
}

fn timer() -> &'static TimerService {
    static TIMER: OnceLock<&'static TimerService> = OnceLock::new();
    TIMER.get_or_init(|| {
        let svc: &'static TimerService = Box::leak(Box::new(TimerService {
            entries: Mutex::new(Vec::new()),
            cv: Condvar::new(),
        }));
        std::thread::Builder::new()
            .name("sal-timer".into())
            .spawn(move || timer_loop(svc))
            .expect("spawn timer thread");
        svc
    })
}

fn timer_loop(svc: &'static TimerService) {
    let mut entries = svc.entries.lock().unwrap();
    loop {
        let now = Instant::now();
        let mut due = Vec::new();
        entries.retain(|(at, w)| {
            if *at <= now {
                due.push(w.clone());
                false
            } else {
                true
            }
        });
        if !due.is_empty() {
            drop(entries);
            for w in due {
                w.wake();
            }
            entries = svc.entries.lock().unwrap();
            continue;
        }
        entries = match entries.iter().map(|(at, _)| *at).min() {
            Some(next) => {
                let wait = next.saturating_duration_since(now);
                svc.cv.wait_timeout(entries, wait).unwrap().0
            }
            None => svc.cv.wait(entries).unwrap(),
        };
    }
}

/// Future of [`sleep_until`]: pending until the deadline passes.
#[derive(Debug)]
pub struct Sleep {
    deadline: Instant,
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if Instant::now() >= self.deadline {
            return Poll::Ready(());
        }
        let svc = timer();
        svc.entries
            .lock()
            .unwrap()
            .push((self.deadline, cx.waker().clone()));
        svc.cv.notify_one();
        Poll::Pending
    }
}

/// A future that completes once `deadline` passes, woken by the global
/// timer thread (no lock traffic required). Useful for giving
/// deadline-bound lock futures a poll at their deadline — the
/// `AsyncAbortableMutex` docs discuss when that matters.
pub fn sleep_until(deadline: Instant) -> Sleep {
    Sleep { deadline }
}

/// [`sleep_until`] with a relative duration.
pub fn sleep(dur: Duration) -> Sleep {
    Sleep {
        deadline: Instant::now() + dur,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn block_on_returns_the_value() {
        assert_eq!(block_on(async { 7 }), 7);
    }

    #[test]
    fn block_on_survives_pending_polls() {
        struct YieldOnce(bool);
        impl Future for YieldOnce {
            type Output = u32;
            fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<u32> {
                if self.0 {
                    Poll::Ready(99)
                } else {
                    self.0 = true;
                    cx.waker().wake_by_ref();
                    Poll::Pending
                }
            }
        }
        assert_eq!(block_on(YieldOnce(false)), 99);
    }

    #[test]
    fn executor_drains_tasks_across_workers() {
        for workers in [1, 4] {
            let ex = Executor::new();
            let hits = Arc::new(AtomicU64::new(0));
            for _ in 0..500 {
                let hits = Arc::clone(&hits);
                ex.spawn(async move {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
            ex.run(workers);
            assert_eq!(hits.load(Ordering::Relaxed), 500);
            assert_eq!(ex.live(), 0);
        }
    }

    #[test]
    fn tasks_can_spawn_tasks() {
        let ex = Executor::new();
        let hits = Arc::new(AtomicU64::new(0));
        let handle = ex.handle();
        let inner_hits = Arc::clone(&hits);
        ex.spawn(async move {
            for _ in 0..10 {
                let hits = Arc::clone(&inner_hits);
                handle.spawn(async move {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        ex.run(2);
        assert_eq!(hits.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn sleep_wakes_without_traffic() {
        let start = Instant::now();
        block_on(sleep(Duration::from_millis(20)));
        assert!(start.elapsed() >= Duration::from_millis(20));

        // And inside the executor.
        let ex = Executor::new();
        let done = Arc::new(AtomicU64::new(0));
        for _ in 0..8 {
            let done = Arc::clone(&done);
            ex.spawn(async move {
                sleep(Duration::from_millis(5)).await;
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        ex.run(2);
        assert_eq!(done.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn wakes_racing_a_poll_are_not_lost() {
        // A future woken from another thread while the executor is
        // mid-poll must be re-polled, not stranded.
        let ex = Executor::new();
        let flag = Arc::new(AtomicBool::new(false));
        struct WaitFlag(Arc<AtomicBool>);
        impl Future for WaitFlag {
            type Output = ();
            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                if self.0.load(Ordering::Acquire) {
                    Poll::Ready(())
                } else {
                    let flag = Arc::clone(&self.0);
                    let w = cx.waker().clone();
                    // Fire the condition + wake from another thread at
                    // an adversarial moment.
                    std::thread::spawn(move || {
                        flag.store(true, Ordering::Release);
                        w.wake();
                    });
                    Poll::Pending
                }
            }
        }
        ex.spawn(WaitFlag(Arc::clone(&flag)));
        ex.run(2);
        assert!(flag.load(Ordering::Acquire));
    }
}
