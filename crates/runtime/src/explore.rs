//! Systematic schedule exploration: bounded-deviation stateless model
//! checking, in the spirit of CHESS-style preemption bounding.
//!
//! Random schedules sample the interleaving space; this module walks it
//! *systematically*. The baseline schedule is fair round-robin (the
//! natural fair baseline for spin-based algorithms — a run-to-completion
//! baseline would livelock a waiter). A **deviation** is any decision
//! that differs from the round-robin choice. The explorer enumerates
//! every schedule with at most `max_deviations` deviations,
//! re-executing the (deterministic) workload once per schedule and
//! checking the caller's verdict.
//!
//! With a handful of processes and a 1–2 deviation budget this covers
//! thousands of qualitatively distinct interleavings — including the
//! "aborter sneaks in two steps at exactly the wrong moment" races that
//! random scheduling takes a long time to hit.
//!
//! ## Parallel exploration
//!
//! Each schedule is an independent re-execution, so the explorer fans
//! the search tree out over the [`pool`](crate::pool) in
//! **breadth-first waves**: the current frontier of forced prefixes is
//! executed concurrently ([`par_map_indexed`] gathers outcomes by
//! index), then children are expanded in frontier order. Every
//! jobs-count-sensitive decision is made deterministic by construction:
//!
//! * the run budget truncates the *frontier* (a deterministic list),
//!   not a racy counter;
//! * exploration stops at the first **wave** containing a violation,
//!   and among that wave's failures the one with the lexicographically
//!   least forced prefix wins — regardless of which worker finished
//!   first;
//! * children are generated in (frontier index, decision step, live-set
//!   order), so the visited set and the execution order of runs are
//!   identical at `jobs = 1` and `jobs = 8`.

use crate::pool;
use crate::schedule::{SchedStatus, SchedulePolicy};
use sal_memory::Pid;
use std::sync::{Arc, OnceLock};

/// Per-step record of a run: the chosen process and the live set at the
/// decision point.
#[derive(Clone, Debug)]
struct Decision {
    chosen: Pid,
    live: Vec<Pid>,
}

/// A policy that plays a forced prefix of choices, then continues with
/// fair round-robin — while recording every decision it makes. Create
/// one per run via the callback argument of [`explore`].
///
/// The recorder is single-owner: decisions accumulate in a plain `Vec`
/// owned by the policy (the hot replay path takes no lock) and are
/// published to the explorer through a write-once cell when the policy
/// is dropped at the end of the run.
pub struct ForcedSchedule {
    prefix: std::vec::IntoIter<Pid>,
    record: Vec<Decision>,
    out: Arc<OnceLock<Vec<Decision>>>,
    last: Option<Pid>,
    /// Live set at the last `next()` call; `commit_run` records leased
    /// decisions against it (the live set cannot change mid-lease —
    /// only the leaseholder runs, and finishing ends the lease).
    last_live: Vec<Pid>,
}

impl std::fmt::Debug for ForcedSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ForcedSchedule").finish_non_exhaustive()
    }
}

impl ForcedSchedule {
    fn new(prefix: Vec<Pid>, out: Arc<OnceLock<Vec<Decision>>>) -> Self {
        ForcedSchedule {
            prefix: prefix.into_iter(),
            record: Vec::new(),
            out,
            last: None,
            last_live: Vec::new(),
        }
    }

    /// The round-robin default: the first live pid strictly after
    /// `last`, wrapping.
    fn round_robin_default(last: Option<Pid>, live: &[Pid]) -> Pid {
        match last {
            None => live[0],
            Some(l) => *live.iter().find(|&&p| p > l).unwrap_or(&live[0]),
        }
    }
}

impl Drop for ForcedSchedule {
    fn drop(&mut self) {
        // Publish the decision trace exactly once, when the run is over
        // and the simulator releases the policy.
        let _ = self.out.set(std::mem::take(&mut self.record));
    }
}

impl SchedulePolicy for ForcedSchedule {
    fn next(&mut self, status: &SchedStatus<'_>) -> Pid {
        let live: Vec<Pid> = (0..status.finished.len())
            .filter(|&p| !status.finished[p])
            .collect();
        debug_assert!(!live.is_empty());
        let choice = loop {
            match self.prefix.next() {
                // Forced choices for finished processes are skipped (the
                // branch point evaporated in this re-execution — rare,
                // but possible when an earlier deviation shortened a
                // process's run).
                Some(p) if live.contains(&p) => break p,
                Some(_) => continue,
                None => break Self::round_robin_default(self.last, &live),
            }
        };
        self.last_live.clear();
        self.last_live.extend_from_slice(&live);
        self.record.push(Decision {
            chosen: choice,
            live,
        });
        self.last = Some(choice);
        choice
    }

    fn peek_run(&self, status: &SchedStatus<'_>, chosen: Pid) -> u64 {
        // Mirror next()'s consumption exactly: forced entries naming
        // non-live pids are skipped, entries naming `chosen` extend the
        // run, any other live entry ends it.
        let live: Vec<Pid> = (0..status.finished.len())
            .filter(|&p| !status.finished[p])
            .collect();
        let mut run = 0u64;
        for &p in self.prefix.as_slice() {
            if !live.contains(&p) {
                continue;
            }
            if p == chosen {
                run += 1;
            } else {
                return run;
            }
        }
        // Prefix exhausted: round-robin takes over, which re-picks
        // `chosen` only when it is the sole survivor — then forever.
        if live.len() == 1 {
            u64::MAX
        } else {
            run
        }
    }

    fn commit_run(&mut self, chosen: Pid, taken: u64) {
        for _ in 0..taken {
            // Consume the prefix exactly as `taken` next() calls would
            // (skipping non-live entries); past the prefix the decision
            // is the round-robin default, which consumes nothing.
            loop {
                match self.prefix.next() {
                    Some(p) if self.last_live.contains(&p) => {
                        debug_assert_eq!(p, chosen, "committed lease diverged from forced prefix");
                        break;
                    }
                    Some(_) => continue,
                    None => break,
                }
            }
            self.record.push(Decision {
                chosen,
                live: self.last_live.clone(),
            });
            self.last = Some(chosen);
        }
    }
}

/// Exploration budget and bounds.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Maximum deviations from round-robin per schedule.
    pub max_deviations: usize,
    /// Hard cap on the number of runs (the frontier is truncated when
    /// exceeded).
    pub max_runs: usize,
    /// Cap on decisions considered as branch points per run (long tails
    /// of a run rarely hide new behaviours once every process is merely
    /// draining).
    pub max_branch_depth: usize,
    /// Worker threads for the breadth-first waves; `0` means auto
    /// ([`pool::default_jobs`]). The result is identical for every
    /// value — see the module docs.
    pub jobs: usize,
    /// Record the full chosen-pid schedule of every executed run in
    /// [`ExplorationResult::visited`]. Off by default (it costs memory
    /// proportional to runs × schedule length).
    pub collect_schedules: bool,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            max_deviations: 2,
            max_runs: 20_000,
            max_branch_depth: 400,
            jobs: 0,
            collect_schedules: false,
        }
    }
}

/// Outcome of an exploration.
#[derive(Debug)]
pub struct ExplorationResult {
    /// Schedules executed.
    pub runs: usize,
    /// Whether the frontier was truncated by `max_runs`.
    pub truncated: bool,
    /// The first violating schedule, with the verdict message.
    pub violation: Option<(Vec<Pid>, String)>,
    /// The full recorded schedule of every executed run, in execution
    /// order (deterministic across worker counts). Empty unless
    /// [`ExploreOptions::collect_schedules`] is set.
    pub visited: Vec<Vec<Pid>>,
}

impl ExplorationResult {
    /// Panic with the witness schedule if a violation was found.
    pub fn assert_ok(&self) {
        if let Some((schedule, msg)) = &self.violation {
            panic!(
                "exploration found a violation: {msg}\nwitness schedule: {}",
                crate::replay::Recording::from_choices(schedule.clone()).serialize()
            );
        }
    }

    /// The violating schedule as a replayable
    /// [`Recording`](crate::replay::Recording) — paste its
    /// [`serialize`](crate::replay::Recording::serialize)d form into a
    /// regression test and drive the workload with
    /// [`Recording::into_policy`](crate::replay::Recording::into_policy).
    pub fn violation_recording(&self) -> Option<crate::replay::Recording> {
        self.violation
            .as_ref()
            .map(|(schedule, _)| crate::replay::Recording::from_choices(schedule.clone()))
    }
}

/// What one executed schedule produced, gathered back by frontier
/// index.
struct RunOutcome {
    record: Vec<Decision>,
    verdict: Result<(), String>,
}

/// Systematically explore the workload's interleavings.
///
/// `run` is called once per schedule with a fresh [`ForcedSchedule`]
/// policy; it must rebuild the *entire* workload state (memory, locks)
/// from scratch, drive it with the given policy, and return `Ok(())` or
/// `Err(description)` if the run violated a property. Runs execute
/// concurrently on [`ExploreOptions::jobs`] workers, so `run` must be
/// `Sync`; exploration stops at the first wave containing a violation
/// and reports the lexicographically least failing prefix.
///
/// ```
/// use sal_runtime::{explore, ExploreOptions, simulate, SimOptions};
/// use sal_memory::{Mem, MemoryBuilder};
///
/// let result = explore(&ExploreOptions::default(), |policy| {
///     let mut b = MemoryBuilder::new();
///     let w = b.alloc(0);
///     let mem = b.build_cc(2);
///     simulate(&mem, 2, Box::new(policy), SimOptions::default(), |ctx| {
///         ctx.mem.faa(ctx.pid, w, 1);
///     })
///     .map_err(|e| e.to_string())?;
///     if mem.read(0, w) == 2 { Ok(()) } else { Err("lost update".into()) }
/// });
/// result.assert_ok();
/// assert!(result.runs >= 2);
/// ```
pub fn explore<F>(opts: &ExploreOptions, run: F) -> ExplorationResult
where
    F: Fn(ForcedSchedule) -> Result<(), String> + Sync,
{
    let jobs = pool::resolve_jobs(opts.jobs);
    let mut frontier: Vec<Vec<Pid>> = vec![Vec::new()];
    let mut runs = 0usize;
    let mut truncated = false;
    let mut visited: Vec<Vec<Pid>> = Vec::new();

    while !frontier.is_empty() {
        // Deterministic budget enforcement: trim the frontier (a list
        // whose order is independent of worker count) instead of
        // checking a counter raced by workers.
        let remaining = opts.max_runs.saturating_sub(runs);
        if frontier.len() > remaining {
            frontier.truncate(remaining);
            truncated = true;
        }
        if frontier.is_empty() {
            break;
        }

        let wave: Vec<RunOutcome> = pool::par_map_indexed(jobs, frontier.len(), |i| {
            let out = Arc::new(OnceLock::new());
            let policy = ForcedSchedule::new(frontier[i].clone(), Arc::clone(&out));
            let verdict = run(policy);
            // The policy published its trace on drop inside `run`; if a
            // caller leaked it the trace is simply empty (no children,
            // no witness) rather than wrong.
            let record = Arc::try_unwrap(out)
                .map(|cell| cell.into_inner().unwrap_or_default())
                .unwrap_or_default();
            RunOutcome { record, verdict }
        });
        runs += wave.len();
        if opts.collect_schedules {
            visited.extend(
                wave.iter()
                    .map(|o| o.record.iter().map(|d| d.chosen).collect::<Vec<Pid>>()),
            );
        }

        // First wave with a failure ends the search. Among this wave's
        // failures the lexicographically least forced prefix wins —
        // completion order never matters.
        let failure = wave
            .iter()
            .enumerate()
            .filter(|(_, o)| o.verdict.is_err())
            .min_by(|(a, _), (b, _)| frontier[*a].cmp(&frontier[*b]));
        if let Some((_, outcome)) = failure {
            let schedule: Vec<Pid> = outcome.record.iter().map(|d| d.chosen).collect();
            let msg = outcome.verdict.as_ref().unwrap_err().clone();
            return ExplorationResult {
                runs,
                truncated,
                violation: Some((schedule, msg)),
                visited,
            };
        }

        // Expand children in (frontier index, step, live order) — fully
        // deterministic, and a tree: branch points live in each node's
        // suffix only (a child's prefix ends with its newly forced
        // deviation), so no schedule is executed twice.
        let mut next: Vec<Vec<Pid>> = Vec::new();
        for (idx, outcome) in wave.iter().enumerate() {
            let prefix_len = frontier[idx].len();
            let mut deviations = 0usize;
            let mut last: Option<Pid> = None;
            for (s, d) in outcome.record.iter().enumerate() {
                let default = ForcedSchedule::round_robin_default(last, &d.live);
                if d.chosen != default {
                    deviations += 1;
                }
                if s >= prefix_len && s < opts.max_branch_depth && deviations < opts.max_deviations
                {
                    for &q in &d.live {
                        if q != d.chosen {
                            let mut child: Vec<Pid> =
                                outcome.record.iter().take(s).map(|d| d.chosen).collect();
                            child.push(q);
                            next.push(child);
                        }
                    }
                }
                last = Some(d.chosen);
            }
        }
        frontier = next;
    }

    ExplorationResult {
        runs,
        truncated,
        violation: None,
        visited,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{simulate, SimOptions};
    use sal_memory::{Mem, MemoryBuilder};

    #[test]
    fn round_robin_default_wraps() {
        assert_eq!(ForcedSchedule::round_robin_default(None, &[0, 2, 3]), 0);
        assert_eq!(ForcedSchedule::round_robin_default(Some(0), &[0, 2, 3]), 2);
        assert_eq!(ForcedSchedule::round_robin_default(Some(3), &[0, 2, 3]), 0);
        assert_eq!(ForcedSchedule::round_robin_default(Some(1), &[0, 2, 3]), 2);
    }

    #[test]
    fn recorder_publishes_on_drop() {
        let out = Arc::new(OnceLock::new());
        let mut policy = ForcedSchedule::new(vec![1], Arc::clone(&out));
        let finished = [false, false];
        policy.next(&SchedStatus {
            finished: &finished,
            step: 0,
        });
        assert!(out.get().is_none(), "published before the run ended");
        drop(policy);
        let record = out.get().expect("drop must publish");
        assert_eq!(record.len(), 1);
        assert_eq!(record[0].chosen, 1);
    }

    #[test]
    fn forced_peek_and_commit_match_per_step_consumption() {
        let finished = [false, false, true];
        let status = SchedStatus {
            finished: &finished,
            step: 0,
        };
        // Prefix: run of 1s with an interleaved entry for finished pid 2
        // (skipped), then a 0 that ends the run.
        let prefix = vec![1, 1, 2, 1, 0, 1];

        let per_step: Vec<Pid> = {
            let out = Arc::new(OnceLock::new());
            let mut a = ForcedSchedule::new(prefix.clone(), Arc::clone(&out));
            (0..8).map(|_| a.next(&status)).collect()
        };

        let out = Arc::new(OnceLock::new());
        let mut b = ForcedSchedule::new(prefix, Arc::clone(&out));
        let mut leased = Vec::new();
        while leased.len() < 8 {
            let p = b.next(&status);
            leased.push(p);
            let extra = b.peek_run(&status, p).min(8 - leased.len() as u64);
            if extra > 0 {
                b.commit_run(p, extra);
                leased.extend(std::iter::repeat_n(p, extra as usize));
            }
        }
        assert_eq!(per_step, leased);
        // The published decision records must be identical too — the
        // explorer's child expansion depends on them.
        drop(b);
        let record = out.get().expect("drop publishes");
        let rec_choices: Vec<Pid> = record.iter().map(|d| d.chosen).collect();
        assert_eq!(rec_choices, per_step);
        assert!(record.iter().all(|d| d.live == vec![0, 1]));
    }

    #[test]
    fn forced_solo_survivor_peeks_unbounded() {
        let finished = [true, false];
        let status = SchedStatus {
            finished: &finished,
            step: 0,
        };
        let out = Arc::new(OnceLock::new());
        let mut f = ForcedSchedule::new(vec![], Arc::clone(&out));
        let p = f.next(&status);
        assert_eq!(p, 1);
        assert_eq!(f.peek_run(&status, p), u64::MAX);
        f.commit_run(p, 3);
        drop(f);
        assert_eq!(out.get().unwrap().len(), 4);
    }

    /// A racy "lock": non-atomic test-then-set. Round-robin alone does
    /// not break it in this workload, but a single deviation does — the
    /// explorer must find the mutual-exclusion violation.
    #[test]
    fn finds_the_race_in_a_broken_lock() {
        let result = explore(
            &ExploreOptions {
                max_deviations: 1,
                max_runs: 10_000,
                max_branch_depth: 100,
                ..ExploreOptions::default()
            },
            |policy| {
                let mut b = MemoryBuilder::new();
                let flag = b.alloc(0);
                let in_cs = b.alloc(0);
                let max_seen = b.alloc(0);
                let mem = b.build_cc(2);
                simulate(&mem, 2, Box::new(policy), SimOptions::default(), |ctx| {
                    // BROKEN: read, then write — not atomic.
                    loop {
                        if ctx.mem.read(ctx.pid, flag) == 0 {
                            ctx.mem.write(ctx.pid, flag, 1); // should be CAS!
                            break;
                        }
                    }
                    let inside = ctx.mem.faa(ctx.pid, in_cs, 1) + 1;
                    let seen = ctx.mem.read(ctx.pid, max_seen);
                    if inside > seen {
                        ctx.mem.write(ctx.pid, max_seen, inside);
                    }
                    ctx.mem.faa(ctx.pid, in_cs, 1u64.wrapping_neg());
                    ctx.mem.write(ctx.pid, flag, 0);
                })
                .map_err(|e| e.to_string())?;
                if mem.read(0, max_seen) > 1 {
                    Err("two processes in the CS".into())
                } else {
                    Ok(())
                }
            },
        );
        assert!(
            result.violation.is_some(),
            "explorer missed the race after {} runs",
            result.runs
        );
    }

    /// The same workload with a real CAS is correct under every explored
    /// schedule.
    #[test]
    fn verifies_a_correct_lock() {
        let result = explore(
            &ExploreOptions {
                max_deviations: 2,
                max_runs: 3_000,
                max_branch_depth: 60,
                ..ExploreOptions::default()
            },
            |policy| {
                let mut b = MemoryBuilder::new();
                let flag = b.alloc(0);
                let in_cs = b.alloc(0);
                let max_seen = b.alloc(0);
                let mem = b.build_cc(2);
                simulate(&mem, 2, Box::new(policy), SimOptions::default(), |ctx| {
                    while !ctx.mem.cas(ctx.pid, flag, 0, 1) {}
                    let inside = ctx.mem.faa(ctx.pid, in_cs, 1) + 1;
                    let seen = ctx.mem.read(ctx.pid, max_seen);
                    if inside > seen {
                        ctx.mem.write(ctx.pid, max_seen, inside);
                    }
                    ctx.mem.faa(ctx.pid, in_cs, 1u64.wrapping_neg());
                    ctx.mem.write(ctx.pid, flag, 0);
                })
                .map_err(|e| e.to_string())?;
                if mem.read(0, max_seen) > 1 {
                    Err("two processes in the CS".into())
                } else {
                    Ok(())
                }
            },
        );
        result.assert_ok();
        assert!(result.runs > 50, "explored only {} schedules", result.runs);
    }

    #[test]
    fn run_budget_truncates() {
        let result = explore(
            &ExploreOptions {
                max_deviations: 3,
                max_runs: 5,
                max_branch_depth: 100,
                ..ExploreOptions::default()
            },
            |policy| {
                let mut b = MemoryBuilder::new();
                let w = b.alloc(0);
                let mem = b.build_cc(3);
                simulate(&mem, 3, Box::new(policy), SimOptions::default(), |ctx| {
                    for _ in 0..5 {
                        ctx.mem.faa(ctx.pid, w, 1);
                    }
                })
                .map_err(|e| e.to_string())
                .map(|_| ())
            },
        );
        assert_eq!(result.runs, 5);
        assert!(result.truncated);
        assert!(result.violation.is_none());
    }

    #[test]
    fn zero_deviations_is_exactly_one_run() {
        let result = explore(
            &ExploreOptions {
                max_deviations: 0,
                max_runs: 100,
                ..ExploreOptions::default()
            },
            |policy| {
                let mut b = MemoryBuilder::new();
                let w = b.alloc(0);
                let mem = b.build_cc(2);
                simulate(&mem, 2, Box::new(policy), SimOptions::default(), |ctx| {
                    ctx.mem.faa(ctx.pid, w, 1);
                })
                .map_err(|e| e.to_string())
                .map(|_| ())
            },
        );
        assert_eq!(result.runs, 1);
        assert!(!result.truncated);
    }
}
