//! Systematic schedule exploration: bounded-deviation stateless model
//! checking, in the spirit of CHESS-style preemption bounding.
//!
//! Random schedules sample the interleaving space; this module walks it
//! *systematically*. The baseline schedule is fair round-robin (the
//! natural fair baseline for spin-based algorithms — a run-to-completion
//! baseline would livelock a waiter). A **deviation** is any decision
//! that differs from the round-robin choice. The explorer enumerates
//! every schedule with at most `max_deviations` deviations,
//! re-executing the (deterministic) workload once per schedule and
//! checking the caller's verdict.
//!
//! With a handful of processes and a 1–2 deviation budget this covers
//! thousands of qualitatively distinct interleavings — including the
//! "aborter sneaks in two steps at exactly the wrong moment" races that
//! random scheduling takes a long time to hit.
//!
//! ## Parallel exploration
//!
//! Each schedule is an independent re-execution, so the explorer fans
//! the search tree out over the [`pool`](crate::pool) in
//! **breadth-first waves**: the current frontier of forced prefixes is
//! executed concurrently ([`par_map_indexed`] gathers outcomes by
//! index), then children are expanded in frontier order. Every
//! jobs-count-sensitive decision is made deterministic by construction:
//!
//! * the run budget truncates the *frontier* (a deterministic list),
//!   not a racy counter;
//! * exploration stops at the first **wave** containing a violation,
//!   and among that wave's failures the one with the lexicographically
//!   least forced prefix wins — regardless of which worker finished
//!   first;
//! * children are generated in (frontier index, decision step, live-set
//!   order), so the visited set and the execution order of runs are
//!   identical at `jobs = 1` and `jobs = 8`.
//!
//! ## Guided search
//!
//! [`explore_guided`] generalizes the wave loop into a batch engine
//! over a pluggable [`Strategy`](crate::search::Strategy): exhaustive
//! BFS, DPOR-style independence pruning with state-fingerprint dedup,
//! cost-guided best-first (RMR witness hunting), and a seeded
//! coverage-feedback schedule fuzzer — see [`crate::search`]. The
//! classic [`explore`] is `explore_guided` with [`Strategy::Bfs`] and
//! verdict-only outcomes.

use crate::pool;
use crate::schedule::{SchedStatus, SchedulePolicy};
use crate::search::{canonical_schedule, run_fingerprints, RunView, SearchCounters, Strategy};
use sal_memory::Pid;
use std::collections::HashSet;
use std::sync::{Arc, OnceLock};

/// Per-step record of a run: the chosen process and the live set at the
/// decision point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Decision {
    /// The process the scheduler picked at this step.
    pub chosen: Pid,
    /// The set of unfinished processes at the decision point.
    pub live: Vec<Pid>,
}

/// A policy that plays a forced prefix of choices, then continues with
/// fair round-robin — while recording every decision it makes. Create
/// one per run via the callback argument of [`explore`].
///
/// The recorder is single-owner: decisions accumulate in a plain `Vec`
/// owned by the policy (the hot replay path takes no lock) and are
/// published to the explorer through a write-once cell when the policy
/// is dropped at the end of the run.
pub struct ForcedSchedule {
    prefix: std::vec::IntoIter<Pid>,
    record: Vec<Decision>,
    out: Arc<OnceLock<Vec<Decision>>>,
    last: Option<Pid>,
    /// Live set at the last `next()` call; `commit_run` records leased
    /// decisions against it (the live set cannot change mid-lease —
    /// only the leaseholder runs, and finishing ends the lease).
    last_live: Vec<Pid>,
}

impl std::fmt::Debug for ForcedSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ForcedSchedule").finish_non_exhaustive()
    }
}

impl ForcedSchedule {
    fn new(prefix: Vec<Pid>, out: Arc<OnceLock<Vec<Decision>>>) -> Self {
        ForcedSchedule {
            prefix: prefix.into_iter(),
            record: Vec::new(),
            out,
            last: None,
            last_live: Vec::new(),
        }
    }

    /// The round-robin default: the first live pid strictly after
    /// `last`, wrapping.
    pub(crate) fn round_robin_default(last: Option<Pid>, live: &[Pid]) -> Pid {
        match last {
            None => live[0],
            Some(l) => *live.iter().find(|&&p| p > l).unwrap_or(&live[0]),
        }
    }
}

impl Drop for ForcedSchedule {
    fn drop(&mut self) {
        // Publish the decision trace exactly once, when the run is over
        // and the simulator releases the policy.
        let _ = self.out.set(std::mem::take(&mut self.record));
    }
}

impl SchedulePolicy for ForcedSchedule {
    fn next(&mut self, status: &SchedStatus<'_>) -> Pid {
        let live: Vec<Pid> = (0..status.finished.len())
            .filter(|&p| !status.finished[p])
            .collect();
        debug_assert!(!live.is_empty());
        let choice = loop {
            match self.prefix.next() {
                // Forced choices for finished processes are skipped (the
                // branch point evaporated in this re-execution — rare,
                // but possible when an earlier deviation shortened a
                // process's run).
                Some(p) if live.contains(&p) => break p,
                Some(_) => continue,
                None => break Self::round_robin_default(self.last, &live),
            }
        };
        self.last_live.clear();
        self.last_live.extend_from_slice(&live);
        self.record.push(Decision {
            chosen: choice,
            live,
        });
        self.last = Some(choice);
        choice
    }

    fn peek_run(&self, status: &SchedStatus<'_>, chosen: Pid) -> u64 {
        // Mirror next()'s consumption exactly: forced entries naming
        // non-live pids are skipped, entries naming `chosen` extend the
        // run, any other live entry ends it.
        let live: Vec<Pid> = (0..status.finished.len())
            .filter(|&p| !status.finished[p])
            .collect();
        let mut run = 0u64;
        for &p in self.prefix.as_slice() {
            if !live.contains(&p) {
                continue;
            }
            if p == chosen {
                run += 1;
            } else {
                return run;
            }
        }
        // Prefix exhausted: round-robin takes over, which re-picks
        // `chosen` only when it is the sole survivor — then forever.
        if live.len() == 1 {
            u64::MAX
        } else {
            run
        }
    }

    fn commit_run(&mut self, chosen: Pid, taken: u64) {
        for _ in 0..taken {
            // Consume the prefix exactly as `taken` next() calls would
            // (skipping non-live entries); past the prefix the decision
            // is the round-robin default, which consumes nothing.
            loop {
                match self.prefix.next() {
                    Some(p) if self.last_live.contains(&p) => {
                        debug_assert_eq!(p, chosen, "committed lease diverged from forced prefix");
                        break;
                    }
                    Some(_) => continue,
                    None => break,
                }
            }
            self.record.push(Decision {
                chosen,
                live: self.last_live.clone(),
            });
            self.last = Some(chosen);
        }
    }
}

/// Exploration budget and bounds.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Maximum deviations from round-robin per schedule.
    pub max_deviations: usize,
    /// Hard cap on the number of runs (the frontier is truncated when
    /// exceeded).
    pub max_runs: usize,
    /// Cap on decisions considered as branch points per run (long tails
    /// of a run rarely hide new behaviours once every process is merely
    /// draining).
    pub max_branch_depth: usize,
    /// Worker threads for the breadth-first waves; `0` means auto
    /// ([`pool::default_jobs`]). The result is identical for every
    /// value — see the module docs.
    pub jobs: usize,
    /// Record the full chosen-pid schedule of every executed run in
    /// [`ExplorationResult::visited`]. Off by default (it costs memory
    /// proportional to runs × schedule length).
    pub collect_schedules: bool,
    /// Stop at the first batch containing a violation (the default,
    /// and the classic explorer behaviour). Set to `false` to keep
    /// searching and report the least witness over *all* executed runs
    /// — the mode the strategy-equivalence tests use, since different
    /// strategies reach the first violation at different times.
    pub stop_on_violation: bool,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            max_deviations: 2,
            max_runs: 20_000,
            max_branch_depth: 400,
            jobs: 0,
            collect_schedules: false,
            stop_on_violation: true,
        }
    }
}

/// Outcome of an exploration.
#[derive(Debug)]
pub struct ExplorationResult {
    /// Schedules executed.
    pub runs: usize,
    /// Whether the search still had queued work when `max_runs` ran
    /// out.
    pub truncated: bool,
    /// How many queued prefixes were dropped unexecuted when the run
    /// budget ended the search (0 unless `truncated`).
    pub truncated_runs: usize,
    /// Children skipped by the DPOR independence rule.
    pub pruned: usize,
    /// Runs not expanded because their final-state fingerprint was
    /// already reached by an earlier run.
    pub deduped: usize,
    /// Distinct per-step state fingerprints reached — the guided-search
    /// coverage metric (`explorescale` reports distinct states/sec).
    pub distinct_states: usize,
    /// The highest run cost observed (e.g. max per-passage RMRs when
    /// driven through `GuidedOutcome::cost`; 0 for verdict-only runs).
    pub best_cost: u64,
    /// The recorded schedule of the run that achieved
    /// [`best_cost`](Self::best_cost) (lexicographically least among
    /// ties; empty when no run reported a cost).
    pub best_schedule: Vec<Pid>,
    /// The least violating schedule found, with the verdict message.
    /// With [`ExploreOptions::stop_on_violation`] the search stops at
    /// the first batch containing one; otherwise this is the minimum
    /// over every violation seen.
    pub violation: Option<(Vec<Pid>, String)>,
    /// The canonical form of the violating schedule (least
    /// linearization of its dependence order — see
    /// [`canonical_schedule`](crate::search::canonical_schedule)).
    /// Equal across strategies that find equivalent witnesses. Same as
    /// the raw schedule for verdict-only runs with no op trace.
    pub violation_canonical: Option<Vec<Pid>>,
    /// The full recorded schedule of every executed run, in execution
    /// order (deterministic across worker counts). Empty unless
    /// [`ExploreOptions::collect_schedules`] is set.
    pub visited: Vec<Vec<Pid>>,
}

impl ExplorationResult {
    /// Panic with the witness schedule if a violation was found.
    pub fn assert_ok(&self) {
        if let Some((schedule, msg)) = &self.violation {
            panic!(
                "exploration found a violation: {msg}\nwitness schedule: {}",
                crate::replay::Recording::from_choices(schedule.clone()).serialize()
            );
        }
    }

    /// The violating schedule as a replayable
    /// [`Recording`](crate::replay::Recording) — paste its
    /// [`serialize`](crate::replay::Recording::serialize)d form into a
    /// regression test and drive the workload with
    /// [`Recording::into_policy`](crate::replay::Recording::into_policy).
    pub fn violation_recording(&self) -> Option<crate::replay::Recording> {
        self.violation
            .as_ref()
            .map(|(schedule, _)| crate::replay::Recording::from_choices(schedule.clone()))
    }
}

/// What one executed schedule produced, gathered back by frontier
/// index.
struct RunOutcome {
    record: Vec<Decision>,
    outcome: GuidedOutcome,
}

/// What one run reports back to [`explore_guided`]: the verdict plus
/// the optional guidance signals.
#[derive(Debug)]
pub struct GuidedOutcome {
    /// `Ok(())` or `Err(description)` if the run violated a property.
    pub verdict: Result<(), String>,
    /// The run's op trace from an [`OpTraceSink`](crate::OpTraceSink),
    /// step-aligned with the schedule. Leave empty for verdict-only
    /// exploration — DPOR pruning and canonical witnesses then degrade
    /// gracefully to schedule-based fingerprints.
    pub ops: Vec<crate::search::StepOp>,
    /// The run's search cost (e.g. its max per-passage RMR count);
    /// best-first expands expensive prefixes first.
    pub cost: u64,
}

impl GuidedOutcome {
    /// A verdict-only outcome: no op trace, zero cost.
    #[must_use]
    pub fn verdict_only(verdict: Result<(), String>) -> Self {
        GuidedOutcome {
            verdict,
            ops: Vec::new(),
            cost: 0,
        }
    }
}

/// Systematically explore the workload's interleavings.
///
/// `run` is called once per schedule with a fresh [`ForcedSchedule`]
/// policy; it must rebuild the *entire* workload state (memory, locks)
/// from scratch, drive it with the given policy, and return `Ok(())` or
/// `Err(description)` if the run violated a property. Runs execute
/// concurrently on [`ExploreOptions::jobs`] workers, so `run` must be
/// `Sync`; exploration stops at the first wave containing a violation
/// and reports the lexicographically least failing prefix.
///
/// ```
/// use sal_runtime::{explore, ExploreOptions, simulate, SimOptions};
/// use sal_memory::{Mem, MemoryBuilder};
///
/// let result = explore(&ExploreOptions::default(), |policy| {
///     let mut b = MemoryBuilder::new();
///     let w = b.alloc(0);
///     let mem = b.build_cc(2);
///     simulate(&mem, 2, Box::new(policy), SimOptions::default(), |ctx| {
///         ctx.mem.faa(ctx.pid, w, 1);
///     })
///     .map_err(|e| e.to_string())?;
///     if mem.read(0, w) == 2 { Ok(()) } else { Err("lost update".into()) }
/// });
/// result.assert_ok();
/// assert!(result.runs >= 2);
/// ```
pub fn explore<F>(opts: &ExploreOptions, run: F) -> ExplorationResult
where
    F: Fn(ForcedSchedule) -> Result<(), String> + Sync,
{
    explore_guided(opts, Strategy::Bfs, |policy| {
        GuidedOutcome::verdict_only(run(policy))
    })
}

/// [`explore`] with a pluggable [`Strategy`] and guidance signals.
///
/// The engine alternates strategy batches with parallel execution:
/// `next_batch` yields the forced prefixes to run, the pool executes
/// them, outcomes are digested **in batch index order** (fingerprints,
/// cost tracking, violation selection) and handed back to the strategy
/// as [`RunView`](crate::search::RunView)s. Everything the strategy or
/// the result can observe is therefore identical at any
/// [`ExploreOptions::jobs`] value.
///
/// `run` should wrap its memory in an
/// [`OpTraceSink`](crate::OpTraceSink) layer and report the trace and a
/// cost through [`GuidedOutcome`]; verdict-only outcomes
/// ([`GuidedOutcome::verdict_only`]) also work, with schedule-based
/// fingerprints standing in for state fingerprints.
pub fn explore_guided<F>(opts: &ExploreOptions, strategy: Strategy, run: F) -> ExplorationResult
where
    F: Fn(ForcedSchedule) -> GuidedOutcome + Sync,
{
    let jobs = pool::resolve_jobs(opts.jobs);
    let mut strat = strategy.build();
    let mut counters = SearchCounters::default();
    // Per-step cumulative fingerprints — the coverage metric.
    let mut states: HashSet<u64> = HashSet::new();
    // Final-state fingerprints — the dedup gate for child expansion.
    let mut final_seen: HashSet<u64> = HashSet::new();
    let mut runs = 0usize;
    let mut visited: Vec<Vec<Pid>> = Vec::new();
    let mut best: Option<(u64, Vec<Pid>)> = None;
    // Least violation seen, keyed by (canonical witness, forced
    // prefix) — batch digestion is index-ordered, so this minimum is
    // worker-count independent.
    struct Violation {
        canonical: Vec<Pid>,
        prefix: Vec<Pid>,
        schedule: Vec<Pid>,
        message: String,
    }
    let mut worst: Option<Violation> = None;
    let mut stopped_on_violation = false;

    loop {
        let remaining = opts.max_runs.saturating_sub(runs);
        if remaining == 0 {
            break;
        }
        let batch = strat.next_batch(remaining);
        if batch.is_empty() {
            break;
        }

        let wave: Vec<RunOutcome> = pool::par_map_indexed(jobs, batch.len(), |i| {
            let out = Arc::new(OnceLock::new());
            let policy = ForcedSchedule::new(batch[i].clone(), Arc::clone(&out));
            let outcome = run(policy);
            // The policy published its trace on drop inside `run`; if a
            // caller leaked it the trace is simply empty (no children,
            // no witness) rather than wrong.
            let record = Arc::try_unwrap(out)
                .map(|cell| cell.into_inner().unwrap_or_default())
                .unwrap_or_default();
            RunOutcome { record, outcome }
        });
        runs += wave.len();

        // Digest in index order: fingerprints, cost, violations.
        let mut digests: Vec<(Vec<Pid>, bool, usize)> = Vec::with_capacity(wave.len());
        for (i, o) in wave.iter().enumerate() {
            let schedule: Vec<Pid> = o.record.iter().map(|d| d.chosen).collect();
            let scan = run_fingerprints(&schedule, &o.outcome.ops);
            let new_states = scan
                .step_fps
                .iter()
                .filter(|&&fp| states.insert(fp))
                .count();
            let fresh = final_seen.insert(scan.final_fp);
            if opts.collect_schedules {
                visited.push(schedule.clone());
            }
            let better = match &best {
                None => true,
                Some((c, s)) => o.outcome.cost > *c || (o.outcome.cost == *c && schedule < *s),
            };
            if better {
                best = Some((o.outcome.cost, schedule.clone()));
            }
            if let Err(msg) = &o.outcome.verdict {
                let candidate = Violation {
                    canonical: canonical_schedule(&schedule, &o.outcome.ops),
                    prefix: batch[i].clone(),
                    schedule: schedule.clone(),
                    message: msg.clone(),
                };
                let lesser = match &worst {
                    None => true,
                    Some(w) => {
                        (&candidate.canonical, &candidate.prefix) < (&w.canonical, &w.prefix)
                    }
                };
                if lesser {
                    worst = Some(candidate);
                }
            }
            digests.push((schedule, fresh, new_states));
        }

        if opts.stop_on_violation && worst.is_some() {
            // Classic behaviour: the first batch containing a failure
            // ends the search, children unexpanded. Not a truncation —
            // the witness is the point of the search.
            stopped_on_violation = true;
            break;
        }

        let views: Vec<RunView<'_>> = wave
            .iter()
            .zip(&digests)
            .zip(&batch)
            .map(|((o, (schedule, fresh, new_states)), prefix)| RunView {
                prefix,
                record: &o.record,
                schedule,
                ops: &o.outcome.ops,
                cost: o.outcome.cost,
                fresh: *fresh,
                new_states: *new_states,
            })
            .collect();
        strat.absorb(&views, opts, &mut counters);
    }

    let truncated_runs = if stopped_on_violation {
        0
    } else {
        strat.pending()
    };
    let (best_cost, best_schedule) = best.unwrap_or((0, Vec::new()));
    let (violation, violation_canonical) = match worst {
        Some(w) => (Some((w.schedule, w.message)), Some(w.canonical)),
        None => (None, None),
    };
    ExplorationResult {
        runs,
        truncated: truncated_runs > 0,
        truncated_runs,
        pruned: counters.pruned,
        deduped: counters.deduped,
        distinct_states: states.len(),
        best_cost,
        best_schedule,
        violation,
        violation_canonical,
        visited,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{simulate, SimOptions};
    use sal_memory::{Mem, MemoryBuilder};

    #[test]
    fn round_robin_default_wraps() {
        assert_eq!(ForcedSchedule::round_robin_default(None, &[0, 2, 3]), 0);
        assert_eq!(ForcedSchedule::round_robin_default(Some(0), &[0, 2, 3]), 2);
        assert_eq!(ForcedSchedule::round_robin_default(Some(3), &[0, 2, 3]), 0);
        assert_eq!(ForcedSchedule::round_robin_default(Some(1), &[0, 2, 3]), 2);
    }

    #[test]
    fn recorder_publishes_on_drop() {
        let out = Arc::new(OnceLock::new());
        let mut policy = ForcedSchedule::new(vec![1], Arc::clone(&out));
        let finished = [false, false];
        policy.next(&SchedStatus {
            finished: &finished,
            step: 0,
        });
        assert!(out.get().is_none(), "published before the run ended");
        drop(policy);
        let record = out.get().expect("drop must publish");
        assert_eq!(record.len(), 1);
        assert_eq!(record[0].chosen, 1);
    }

    #[test]
    fn forced_peek_and_commit_match_per_step_consumption() {
        let finished = [false, false, true];
        let status = SchedStatus {
            finished: &finished,
            step: 0,
        };
        // Prefix: run of 1s with an interleaved entry for finished pid 2
        // (skipped), then a 0 that ends the run.
        let prefix = vec![1, 1, 2, 1, 0, 1];

        let per_step: Vec<Pid> = {
            let out = Arc::new(OnceLock::new());
            let mut a = ForcedSchedule::new(prefix.clone(), Arc::clone(&out));
            (0..8).map(|_| a.next(&status)).collect()
        };

        let out = Arc::new(OnceLock::new());
        let mut b = ForcedSchedule::new(prefix, Arc::clone(&out));
        let mut leased = Vec::new();
        while leased.len() < 8 {
            let p = b.next(&status);
            leased.push(p);
            let extra = b.peek_run(&status, p).min(8 - leased.len() as u64);
            if extra > 0 {
                b.commit_run(p, extra);
                leased.extend(std::iter::repeat_n(p, extra as usize));
            }
        }
        assert_eq!(per_step, leased);
        // The published decision records must be identical too — the
        // explorer's child expansion depends on them.
        drop(b);
        let record = out.get().expect("drop publishes");
        let rec_choices: Vec<Pid> = record.iter().map(|d| d.chosen).collect();
        assert_eq!(rec_choices, per_step);
        assert!(record.iter().all(|d| d.live == vec![0, 1]));
    }

    #[test]
    fn forced_solo_survivor_peeks_unbounded() {
        let finished = [true, false];
        let status = SchedStatus {
            finished: &finished,
            step: 0,
        };
        let out = Arc::new(OnceLock::new());
        let mut f = ForcedSchedule::new(vec![], Arc::clone(&out));
        let p = f.next(&status);
        assert_eq!(p, 1);
        assert_eq!(f.peek_run(&status, p), u64::MAX);
        f.commit_run(p, 3);
        drop(f);
        assert_eq!(out.get().unwrap().len(), 4);
    }

    /// A racy "lock": non-atomic test-then-set. Round-robin alone does
    /// not break it in this workload, but a single deviation does — the
    /// explorer must find the mutual-exclusion violation.
    #[test]
    fn finds_the_race_in_a_broken_lock() {
        let result = explore(
            &ExploreOptions {
                max_deviations: 1,
                max_runs: 10_000,
                max_branch_depth: 100,
                ..ExploreOptions::default()
            },
            |policy| {
                let mut b = MemoryBuilder::new();
                let flag = b.alloc(0);
                let in_cs = b.alloc(0);
                let max_seen = b.alloc(0);
                let mem = b.build_cc(2);
                simulate(&mem, 2, Box::new(policy), SimOptions::default(), |ctx| {
                    // BROKEN: read, then write — not atomic.
                    loop {
                        if ctx.mem.read(ctx.pid, flag) == 0 {
                            ctx.mem.write(ctx.pid, flag, 1); // should be CAS!
                            break;
                        }
                    }
                    let inside = ctx.mem.faa(ctx.pid, in_cs, 1) + 1;
                    let seen = ctx.mem.read(ctx.pid, max_seen);
                    if inside > seen {
                        ctx.mem.write(ctx.pid, max_seen, inside);
                    }
                    ctx.mem.faa(ctx.pid, in_cs, 1u64.wrapping_neg());
                    ctx.mem.write(ctx.pid, flag, 0);
                })
                .map_err(|e| e.to_string())?;
                if mem.read(0, max_seen) > 1 {
                    Err("two processes in the CS".into())
                } else {
                    Ok(())
                }
            },
        );
        assert!(
            result.violation.is_some(),
            "explorer missed the race after {} runs",
            result.runs
        );
    }

    /// The same workload with a real CAS is correct under every explored
    /// schedule.
    #[test]
    fn verifies_a_correct_lock() {
        let result = explore(
            &ExploreOptions {
                max_deviations: 2,
                max_runs: 3_000,
                max_branch_depth: 60,
                ..ExploreOptions::default()
            },
            |policy| {
                let mut b = MemoryBuilder::new();
                let flag = b.alloc(0);
                let in_cs = b.alloc(0);
                let max_seen = b.alloc(0);
                let mem = b.build_cc(2);
                simulate(&mem, 2, Box::new(policy), SimOptions::default(), |ctx| {
                    while !ctx.mem.cas(ctx.pid, flag, 0, 1) {}
                    let inside = ctx.mem.faa(ctx.pid, in_cs, 1) + 1;
                    let seen = ctx.mem.read(ctx.pid, max_seen);
                    if inside > seen {
                        ctx.mem.write(ctx.pid, max_seen, inside);
                    }
                    ctx.mem.faa(ctx.pid, in_cs, 1u64.wrapping_neg());
                    ctx.mem.write(ctx.pid, flag, 0);
                })
                .map_err(|e| e.to_string())?;
                if mem.read(0, max_seen) > 1 {
                    Err("two processes in the CS".into())
                } else {
                    Ok(())
                }
            },
        );
        result.assert_ok();
        assert!(result.runs > 50, "explored only {} schedules", result.runs);
    }

    #[test]
    fn run_budget_truncates() {
        let result = explore(
            &ExploreOptions {
                max_deviations: 3,
                max_runs: 5,
                max_branch_depth: 100,
                ..ExploreOptions::default()
            },
            |policy| {
                let mut b = MemoryBuilder::new();
                let w = b.alloc(0);
                let mem = b.build_cc(3);
                simulate(&mem, 3, Box::new(policy), SimOptions::default(), |ctx| {
                    for _ in 0..5 {
                        ctx.mem.faa(ctx.pid, w, 1);
                    }
                })
                .map_err(|e| e.to_string())
                .map(|_| ())
            },
        );
        assert_eq!(result.runs, 5);
        assert!(result.truncated);
        assert!(result.violation.is_none());
    }

    #[test]
    fn zero_deviations_is_exactly_one_run() {
        let result = explore(
            &ExploreOptions {
                max_deviations: 0,
                max_runs: 100,
                ..ExploreOptions::default()
            },
            |policy| {
                let mut b = MemoryBuilder::new();
                let w = b.alloc(0);
                let mem = b.build_cc(2);
                simulate(&mem, 2, Box::new(policy), SimOptions::default(), |ctx| {
                    ctx.mem.faa(ctx.pid, w, 1);
                })
                .map_err(|e| e.to_string())
                .map(|_| ())
            },
        );
        assert_eq!(result.runs, 1);
        assert!(!result.truncated);
    }
}
