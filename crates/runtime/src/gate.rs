//! The step gate: serializes simulated processes one shared-memory
//! operation at a time, under the control of a schedule.
//!
//! Every process of a simulation runs on its own OS thread but may only
//! perform a shared-memory operation while holding the *turn*. The
//! scheduler grants turns one at a time; a granted process performs
//! exactly one operation and returns the turn. Local computation (and
//! abort-signal polling) happens freely between turns, matching the
//! paper's model where only shared-memory steps are scheduling points.
//!
//! Scaling note: each process waits on its **own** condvar, and the
//! scheduler on a dedicated one, so a step costs O(1) wakeups — a
//! `notify_all` design would thundering-herd all `N` waiters on every
//! step and make 256-process simulations quadratically slow in wakeups.

use sal_memory::{Interceptor, Layered, Mem, OpKind, Pid, WordId};
use std::panic;
use std::sync::{Condvar, Mutex};

/// Payload used to unwind simulated process threads on shutdown (step
/// limit exceeded or another process panicked).
pub(crate) struct Shutdown;

struct GateState {
    /// Process currently allowed to take one step.
    granted: Option<Pid>,
    /// Which processes are blocked at the gate awaiting a turn.
    arrived: Vec<bool>,
    /// Which processes have finished (returned or panicked).
    finished: Vec<bool>,
    /// Total steps granted so far.
    step: u64,
    /// When set, all waiting processes unwind.
    shutdown: bool,
    /// Startup serialization: processes with pid < `released` may run
    /// (see [`StepGate::wait_start`]).
    released: usize,
}

/// The synchronization core of the simulator: see the module docs for
/// the turn protocol.
pub struct StepGate {
    state: Mutex<GateState>,
    /// One condvar per process: signalled when that process is granted
    /// the turn (or on shutdown).
    turn_cv: Vec<Condvar>,
    /// The scheduler's condvar: signalled on arrivals, step completions
    /// and finishes.
    sched_cv: Condvar,
}

impl std::fmt::Debug for StepGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.lock().unwrap();
        f.debug_struct("StepGate")
            .field("step", &s.step)
            .field("granted", &s.granted)
            .finish()
    }
}

impl StepGate {
    /// A gate for `n` processes.
    pub fn new(n: usize) -> Self {
        StepGate {
            state: Mutex::new(GateState {
                granted: None,
                arrived: vec![false; n],
                finished: vec![false; n],
                step: 0,
                shutdown: false,
                // Callers that never use the startup protocol are not
                // gated: everything is released from the start.
                released: usize::MAX,
            }),
            turn_cv: (0..n).map(|_| Condvar::new()).collect(),
            sched_cv: Condvar::new(),
        }
    }

    /// Opt in to serialized startup: no process passes
    /// [`wait_start`](Self::wait_start) until the owner releases it with
    /// [`release_start`](Self::release_start). Call before spawning the
    /// process threads.
    pub fn hold_starts(&self) {
        self.state.lock().unwrap().released = 0;
    }

    /// Park process `p` until it is released to start. The simulator
    /// releases processes **one at a time, in pid order**, each running
    /// until it parks at its first shared-memory operation — so the
    /// startup window, the only phase where several process threads
    /// would otherwise run local code (and push probe events)
    /// concurrently, is serialized deterministically. No-op unless
    /// [`hold_starts`](Self::hold_starts) was called.
    ///
    /// # Panics
    ///
    /// Unwinds with the private shutdown payload if the simulation is
    /// shut down first.
    pub fn wait_start(&self, p: Pid) {
        let mut s = self.state.lock().unwrap();
        loop {
            if s.shutdown {
                drop(s);
                panic::panic_any(Shutdown);
            }
            if s.released > p {
                return;
            }
            s = self.turn_cv[p].wait(s).unwrap();
        }
    }

    /// Release process `p` (and every lower pid) to start.
    pub fn release_start(&self, p: Pid) {
        let mut s = self.state.lock().unwrap();
        s.released = s.released.max(p + 1);
        self.turn_cv[p].notify_all();
    }

    /// Block until process `p` is settled: parked at the gate, or
    /// finished. Returns immediately on shutdown.
    pub fn await_settled(&self, p: Pid) {
        let mut s = self.state.lock().unwrap();
        loop {
            if s.shutdown || s.arrived[p] || s.finished[p] {
                return;
            }
            s = self.sched_cv.wait(s).unwrap();
        }
    }

    /// Block until process `p` is granted a turn. Called by process
    /// threads (through [`SteppedMem`]) before every shared-memory
    /// operation; the turn is returned by [`end_turn`](Self::end_turn).
    ///
    /// # Panics
    ///
    /// Unwinds with a private payload when the simulation shuts down.
    pub fn begin_turn(&self, p: Pid) {
        let mut s = self.state.lock().unwrap();
        s.arrived[p] = true;
        self.sched_cv.notify_one();
        loop {
            if s.shutdown {
                drop(s);
                panic::panic_any(Shutdown);
            }
            if s.granted == Some(p) {
                return;
            }
            s = self.turn_cv[p].wait(s).unwrap();
        }
    }

    /// Return the turn after completing one operation.
    pub fn end_turn(&self, p: Pid) {
        let mut s = self.state.lock().unwrap();
        debug_assert_eq!(s.granted, Some(p));
        s.granted = None;
        s.arrived[p] = false;
        s.step += 1;
        self.sched_cv.notify_one();
    }

    /// Scheduler side: grant one step to process `p`, blocking until `p`
    /// arrives at the gate, takes its step, and returns the turn.
    /// Returns `false` if `p` finished instead of arriving.
    pub fn grant(&self, p: Pid) -> bool {
        let mut s = self.state.lock().unwrap();
        // Wait for p to arrive (or finish).
        loop {
            if s.finished[p] {
                return false;
            }
            if s.arrived[p] {
                break;
            }
            s = self.sched_cv.wait(s).unwrap();
        }
        debug_assert!(s.granted.is_none());
        s.granted = Some(p);
        self.turn_cv[p].notify_one();
        // Wait for the step to complete (or for p to die mid-turn).
        while s.granted.is_some() {
            s = self.sched_cv.wait(s).unwrap();
        }
        true
    }

    /// Block until every process is *settled* — parked at the gate or
    /// finished. The scheduler calls this before each decision so the
    /// live set it samples is a deterministic function of the schedule
    /// so far, not of thread wake-up timing (a process that just took
    /// its final step must be observed as finished, not as transiently
    /// live). Returns immediately on shutdown.
    pub fn await_all_settled(&self) {
        let mut s = self.state.lock().unwrap();
        loop {
            if s.shutdown {
                return;
            }
            let settled = s
                .arrived
                .iter()
                .zip(s.finished.iter())
                .all(|(&a, &f)| a || f);
            if settled {
                return;
            }
            s = self.sched_cv.wait(s).unwrap();
        }
    }

    /// Mark process `p` as finished (normal return or panic).
    pub fn mark_finished(&self, p: Pid) {
        let mut s = self.state.lock().unwrap();
        s.finished[p] = true;
        s.arrived[p] = false;
        if s.granted == Some(p) {
            s.granted = None;
        }
        self.sched_cv.notify_one();
    }

    /// Whether process `p` has finished.
    pub fn is_finished(&self, p: Pid) -> bool {
        self.state.lock().unwrap().finished[p]
    }

    /// Snapshot of the finished flags.
    pub fn finished_flags(&self) -> Vec<bool> {
        self.state.lock().unwrap().finished.clone()
    }

    /// Whether every process has finished.
    pub fn all_finished(&self) -> bool {
        self.state.lock().unwrap().finished.iter().all(|&f| f)
    }

    /// Steps granted so far.
    pub fn steps(&self) -> u64 {
        self.state.lock().unwrap().step
    }

    /// Unwind every process still at (or heading to) the gate.
    pub fn shutdown(&self) {
        let mut s = self.state.lock().unwrap();
        s.shutdown = true;
        for cv in &self.turn_cv {
            cv.notify_all();
        }
        self.sched_cv.notify_all();
        drop(s);
    }

    /// Whether the gate has been shut down.
    pub fn is_shutdown(&self) -> bool {
        self.state.lock().unwrap().shutdown
    }
}

/// The [`Interceptor`] that turns any memory into a stepped one: its
/// `before` hook blocks at the [`StepGate`] for the turn and its `after`
/// hook returns it, so exactly one shared-memory operation happens per
/// grant.
#[derive(Debug, Clone, Copy)]
pub struct StepLayer<'a> {
    gate: &'a StepGate,
}

impl Interceptor for StepLayer<'_> {
    fn before(&self, p: Pid, _kind: OpKind, _w: WordId) {
        self.gate.begin_turn(p);
    }

    fn after(&self, p: Pid, _kind: OpKind, _w: WordId, _value: u64, _remote: bool) {
        self.gate.end_turn(p);
    }
}

/// A [`Mem`] wrapper that funnels every operation through a [`StepGate`]:
/// the memory handed to simulated process bodies. This is the
/// [`Layered`] instantiation of [`StepLayer`] — build one with
/// [`stepped`].
///
/// Counter/metadata queries (`rmrs`, `ops`, …) pass through without
/// consuming a turn — they are measurements, not steps of the algorithm.
pub type SteppedMem<'a, M> = Layered<'a, M, StepLayer<'a>>;

/// Wrap `inner` so that operations synchronize through `gate`.
pub fn stepped<'a, M: Mem + ?Sized>(inner: &'a M, gate: &'a StepGate) -> SteppedMem<'a, M> {
    Layered::over(inner, StepLayer { gate })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sal_memory::MemoryBuilder;
    use std::sync::Arc;

    #[test]
    fn steps_execute_in_granted_order() {
        let mut b = MemoryBuilder::new();
        let w = b.alloc(0);
        let mem = Arc::new(b.build_cc(2));
        let gate = Arc::new(StepGate::new(2));
        let log = Arc::new(Mutex::new(Vec::new()));

        std::thread::scope(|scope| {
            for p in 0..2usize {
                let mem = Arc::clone(&mem);
                let gate = Arc::clone(&gate);
                let log = Arc::clone(&log);
                scope.spawn(move || {
                    let sm = stepped(&*mem, &gate);
                    for _ in 0..3 {
                        let v = sm.faa(p, w, 1);
                        log.lock().unwrap().push((p, v));
                    }
                    gate.mark_finished(p);
                });
            }
            // Scheduler: strict alternation 0,1,0,1,...
            for i in 0..6 {
                assert!(gate.grant(i % 2));
            }
        });
        // The log pushes happen outside the turn, so the *log* order is
        // racy — but the F&A return values prove the step order: strict
        // alternation means process 0 observed 0,2,4 and process 1
        // observed 1,3,5.
        let log = log.lock().unwrap();
        let mut per_proc: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
        for &(p, v) in log.iter() {
            per_proc[p].push(v);
        }
        assert_eq!(per_proc[0], vec![0, 2, 4]);
        assert_eq!(per_proc[1], vec![1, 3, 5]);
        assert_eq!(gate.steps(), 6);
    }

    #[test]
    fn grant_returns_false_for_finished_process() {
        let gate = StepGate::new(1);
        gate.mark_finished(0);
        assert!(!gate.grant(0));
        assert!(gate.all_finished());
    }

    #[test]
    fn shutdown_unwinds_waiting_processes() {
        let gate = Arc::new(StepGate::new(1));
        let g2 = Arc::clone(&gate);
        let h = std::thread::spawn(move || {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                g2.begin_turn(0);
            }));
            assert!(r.is_err());
            g2.mark_finished(0);
        });
        // Give the thread time to arrive, then shut down.
        while !gate.is_shutdown() {
            std::thread::sleep(std::time::Duration::from_millis(1));
            gate.shutdown();
        }
        h.join().unwrap();
        assert!(gate.is_finished(0));
    }

    #[test]
    fn metadata_queries_do_not_consume_steps() {
        let mut b = MemoryBuilder::new();
        let _w = b.alloc(0);
        let mem = b.build_cc(1);
        let gate = StepGate::new(1);
        let sm = stepped(&mem, &gate);
        assert_eq!(sm.rmrs(0), 0);
        assert_eq!(sm.num_words(), 1);
        assert_eq!(sm.num_procs(), 1);
        assert_eq!(gate.steps(), 0);
    }

    #[test]
    fn many_processes_step_throughput_is_linear() {
        // Smoke test that wakeups are O(1) per step: 64 processes, 100
        // steps each, must finish quickly (sub-second even in debug).
        let mut b = MemoryBuilder::new();
        let w = b.alloc(0);
        let n = 64;
        let mem = Arc::new(b.build_cc(n));
        let gate = Arc::new(StepGate::new(n));
        let start = std::time::Instant::now();
        std::thread::scope(|scope| {
            for p in 0..n {
                let mem = Arc::clone(&mem);
                let gate = Arc::clone(&gate);
                scope.spawn(move || {
                    let sm = stepped(&*mem, &gate);
                    for _ in 0..100 {
                        sm.faa(p, w, 1);
                    }
                    gate.mark_finished(p);
                });
            }
            for i in 0..n * 100 {
                assert!(gate.grant(i % n));
            }
        });
        assert_eq!(gate.steps(), (n * 100) as u64);
        assert!(
            start.elapsed() < std::time::Duration::from_secs(20),
            "gate too slow: {:?}",
            start.elapsed()
        );
    }
}
