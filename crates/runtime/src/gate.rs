//! The step gate: serializes simulated processes one shared-memory
//! operation at a time, under the control of a schedule.
//!
//! Every process of a simulation runs on its own OS thread but may only
//! perform a shared-memory operation while holding the *turn*. The
//! scheduler grants turns; a granted process performs its operation(s)
//! and returns the turn. Local computation (and abort-signal polling)
//! happens freely between turns, matching the paper's model where only
//! shared-memory steps are scheduling points.
//!
//! ## Step leases
//!
//! The classic protocol pays two condvar handoffs — two OS context
//! switches — per step: scheduler → process (turn grant) and process →
//! scheduler (turn return). When the schedule policy already knows its
//! next `k` decisions all pick the same process (solo drains under
//! round-robin, bursty runs, forced/replay schedules), the scheduler
//! grants a **lease** of `1 + extra` steps in one round-trip
//! ([`StepGate::grant_run`]). The leased process consumes the turns on
//! a lock-free fast path: [`begin_turn`](StepGate::begin_turn) sees it
//! still holds the lease and returns without touching the mutex, and
//! [`end_turn`](StepGate::end_turn) decrements the lease counter and
//! bumps the atomic step counter without waking the scheduler. Only the
//! final step of a lease takes the slow path and hands the turn back.
//!
//! Per-step accounting is unchanged: the global step counter advances
//! once per operation exactly as before (it is an atomic now, so
//! mid-lease event stamps read the true count), RMR accounting lives in
//! the memory layer below the gate, and a leaseholder that finishes
//! early returns the unused remainder ([`mark_finished`]
//! (StepGate::mark_finished) revokes the lease), so the scheduler
//! always learns exactly how many steps ran.
//!
//! ## Adaptive spin gate
//!
//! Both parking sides — a process awaiting its turn, the scheduler
//! awaiting arrivals/turn-returns — first spin on an atomic for an
//! adaptive budget before parking on their condvar. The budget grows
//! when spinning observes the condition (the peer responded within the
//! spin window) and shrinks when the waiter had to park, so workloads
//! whose handoffs are fast (small simulations on idle machines) keep
//! the context switches off the hot path while heavily contended or
//! single-CPU runs decay to plain condvar parking. `set_spin(false)`
//! restores the legacy park-only behaviour (used by lease cap 1).
//!
//! Scaling note: each process waits on its **own** condvar, and the
//! scheduler on a dedicated one, so a step costs O(1) wakeups — a
//! `notify_all` design would thundering-herd all `N` waiters on every
//! step and make 256-process simulations quadratically slow in wakeups.

use sal_memory::{Interceptor, Layered, Mem, OpKind, Pid, WordId};
use std::panic;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

/// Payload used to unwind simulated process threads on shutdown (step
/// limit exceeded or another process panicked).
pub(crate) struct Shutdown;

/// Sentinel for "no leaseholder".
const NO_HOLDER: usize = usize::MAX;

/// Initial spin budget of an [`AdaptiveSpin`].
const SPIN_INIT: u32 = 64;
/// Budget ceiling: a handful of µs of spinning at most.
const SPIN_MAX: u32 = 1 << 12;
/// Budget floor: keeps the probe alive so budgets can regrow when the
/// workload changes phase (a pure decay-to-zero could never recover).
const SPIN_MIN: u32 = 4;

/// An adaptive spin-then-park budget. `spin` polls `observed` for the
/// current budget; seeing the condition doubles the budget (spinning
/// paid off — keep doing it), missing halves it (we are about to pay
/// for a park anyway, so stop burning cycles beforehand).
struct AdaptiveSpin {
    budget: AtomicU32,
    enabled: AtomicBool,
}

impl AdaptiveSpin {
    fn new() -> Self {
        AdaptiveSpin {
            budget: AtomicU32::new(SPIN_INIT),
            enabled: AtomicBool::new(true),
        }
    }

    fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Spin until `observed` returns true or the budget runs out.
    /// Returns whether the condition was observed.
    fn spin(&self, observed: impl Fn() -> bool) -> bool {
        if !self.enabled.load(Ordering::Relaxed) {
            return false;
        }
        let budget = self.budget.load(Ordering::Relaxed);
        for _ in 0..budget {
            if observed() {
                self.budget
                    .store(((budget << 1) | 1).min(SPIN_MAX), Ordering::Relaxed);
                return true;
            }
            std::hint::spin_loop();
        }
        self.budget
            .store((budget / 2).max(SPIN_MIN), Ordering::Relaxed);
        false
    }
}

struct GateState {
    /// Process currently allowed to take steps (one step, or a lease).
    granted: Option<Pid>,
    /// Which processes are blocked at the gate awaiting a turn.
    arrived: Vec<bool>,
    /// Which processes have finished (returned or panicked).
    finished: Vec<bool>,
    /// When set, all waiting processes unwind.
    shutdown: bool,
    /// Startup serialization: processes with pid < `released` may run
    /// (see [`StepGate::wait_start`]).
    released: usize,
}

/// The synchronization core of the simulator: see the module docs for
/// the turn protocol and the lease fast path.
pub struct StepGate {
    state: Mutex<GateState>,
    /// One condvar per process: signalled when that process is granted
    /// the turn (or on shutdown).
    turn_cv: Vec<Condvar>,
    /// The scheduler's condvar: signalled on arrivals, turn returns and
    /// finishes.
    sched_cv: Condvar,
    /// Total steps executed. Atomic so mid-lease fast paths (and event
    /// stamping) never need the state mutex.
    step: AtomicU64,
    /// The process currently holding the turn/lease ([`NO_HOLDER`] =
    /// none). Written under the state mutex; read lock-free by the
    /// holder's fast paths and by spinning waiters.
    lease_holder: AtomicUsize,
    /// Extra steps (beyond the one in flight) the holder may still take
    /// without re-parking. Touched only by the scheduler at grant time
    /// and by the holder afterwards.
    lease_left: AtomicU64,
    /// Mirror of `GateState::shutdown` for lock-free fast-path checks.
    shutdown_flag: AtomicBool,
    /// Bumped (under the mutex) on every scheduler-relevant change;
    /// the scheduler's spin phase watches it instead of the mutex.
    sched_seq: AtomicU64,
    /// Spin budget for processes awaiting their turn.
    proc_spin: AdaptiveSpin,
    /// Spin budget for the scheduler awaiting arrivals/returns.
    sched_spin: AdaptiveSpin,
}

impl std::fmt::Debug for StepGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // `try_lock`, not `lock`: Debug must be usable from panic hooks
        // and deadlock dumps, where the state mutex may be held (by
        // this very thread) — formatting must never hang or poison.
        let mut d = f.debug_struct("StepGate");
        d.field("step", &self.step.load(Ordering::Relaxed));
        match self.state.try_lock() {
            Ok(s) => d.field("granted", &s.granted).finish(),
            Err(_) => d.finish_non_exhaustive(),
        }
    }
}

impl StepGate {
    /// A gate for `n` processes.
    pub fn new(n: usize) -> Self {
        StepGate {
            state: Mutex::new(GateState {
                granted: None,
                arrived: vec![false; n],
                finished: vec![false; n],
                shutdown: false,
                // Callers that never use the startup protocol are not
                // gated: everything is released from the start.
                released: usize::MAX,
            }),
            turn_cv: (0..n).map(|_| Condvar::new()).collect(),
            sched_cv: Condvar::new(),
            step: AtomicU64::new(0),
            lease_holder: AtomicUsize::new(NO_HOLDER),
            lease_left: AtomicU64::new(0),
            shutdown_flag: AtomicBool::new(false),
            sched_seq: AtomicU64::new(0),
            proc_spin: AdaptiveSpin::new(),
            sched_spin: AdaptiveSpin::new(),
        }
    }

    /// Enable or disable the adaptive spin phase on both wait sides.
    /// Disabled reproduces the legacy park-only handoff exactly (used
    /// for the `lease = 1` reference path).
    pub fn set_spin(&self, enabled: bool) {
        self.proc_spin.set_enabled(enabled);
        self.sched_spin.set_enabled(enabled);
    }

    /// Bump the scheduler sequence and wake it. Must be called with the
    /// state mutex held so a waiter that re-checks under the lock can
    /// never miss the transition.
    fn notify_sched(&self) {
        self.sched_seq.fetch_add(1, Ordering::Release);
        self.sched_cv.notify_one();
    }

    /// Scheduler-side wait: spin on `sched_seq` for the adaptive
    /// budget, then park on `sched_cv`, until `cond` holds.
    fn wait_sched<'a>(
        &'a self,
        mut s: MutexGuard<'a, GateState>,
        cond: impl Fn(&GateState) -> bool,
    ) -> MutexGuard<'a, GateState> {
        loop {
            if cond(&s) {
                return s;
            }
            let seq = self.sched_seq.load(Ordering::Acquire);
            drop(s);
            let observed = self
                .sched_spin
                .spin(|| self.sched_seq.load(Ordering::Acquire) != seq);
            s = self.state.lock().unwrap();
            if cond(&s) {
                return s;
            }
            if !observed {
                s = self.sched_cv.wait(s).unwrap();
            }
        }
    }

    /// Opt in to serialized startup: no process passes
    /// [`wait_start`](Self::wait_start) until the owner releases it with
    /// [`release_start`](Self::release_start). Call before spawning the
    /// process threads.
    pub fn hold_starts(&self) {
        self.state.lock().unwrap().released = 0;
    }

    /// Park process `p` until it is released to start. The simulator
    /// releases processes **one at a time, in pid order**, each running
    /// until it parks at its first shared-memory operation — so the
    /// startup window, the only phase where several process threads
    /// would otherwise run local code (and push probe events)
    /// concurrently, is serialized deterministically. No-op unless
    /// [`hold_starts`](Self::hold_starts) was called.
    ///
    /// # Panics
    ///
    /// Unwinds with the private shutdown payload if the simulation is
    /// shut down first.
    pub fn wait_start(&self, p: Pid) {
        let mut s = self.state.lock().unwrap();
        loop {
            if s.shutdown {
                drop(s);
                panic::panic_any(Shutdown);
            }
            if s.released > p {
                return;
            }
            s = self.turn_cv[p].wait(s).unwrap();
        }
    }

    /// Release process `p` (and every lower pid) to start.
    pub fn release_start(&self, p: Pid) {
        let mut s = self.state.lock().unwrap();
        s.released = s.released.max(p + 1);
        self.turn_cv[p].notify_all();
    }

    /// Block until process `p` is settled: parked at the gate, or
    /// finished. Returns immediately on shutdown.
    pub fn await_settled(&self, p: Pid) {
        let s = self.state.lock().unwrap();
        drop(self.wait_sched(s, |s| s.shutdown || s.arrived[p] || s.finished[p]));
    }

    /// Block until process `p` is granted a turn. Called by process
    /// threads (through [`SteppedMem`]) before every shared-memory
    /// operation; the turn is returned by [`end_turn`](Self::end_turn).
    ///
    /// Mid-lease this is a single atomic load: the holder already has
    /// the turn and neither the mutex nor the scheduler is touched.
    ///
    /// # Panics
    ///
    /// Unwinds with a private payload when the simulation shuts down.
    pub fn begin_turn(&self, p: Pid) {
        // Lease fast path: we still hold the turn from the last grant.
        if self.lease_holder.load(Ordering::Acquire) == p
            && !self.shutdown_flag.load(Ordering::Relaxed)
        {
            return;
        }
        let mut s = self.state.lock().unwrap();
        s.arrived[p] = true;
        self.notify_sched();
        loop {
            if s.shutdown {
                drop(s);
                panic::panic_any(Shutdown);
            }
            if s.granted == Some(p) {
                return;
            }
            // Adaptive spin on the lock-free holder word, then park.
            drop(s);
            let observed = self.proc_spin.spin(|| {
                self.lease_holder.load(Ordering::Acquire) == p
                    || self.shutdown_flag.load(Ordering::Relaxed)
            });
            s = self.state.lock().unwrap();
            if !observed && s.granted != Some(p) && !s.shutdown {
                s = self.turn_cv[p].wait(s).unwrap();
            }
        }
    }

    /// Return the turn after completing one operation. Mid-lease this
    /// consumes one leased step lock-free and keeps the turn; the final
    /// step of a grant hands the turn back to the scheduler.
    pub fn end_turn(&self, p: Pid) {
        if self.lease_holder.load(Ordering::Acquire) == p {
            let left = self.lease_left.load(Ordering::Relaxed);
            if left > 0 {
                // Mid-lease: consume a step, keep the turn, let the
                // scheduler sleep.
                self.lease_left.store(left - 1, Ordering::Relaxed);
                self.step.fetch_add(1, Ordering::Release);
                return;
            }
        }
        let mut s = self.state.lock().unwrap();
        debug_assert_eq!(s.granted, Some(p));
        self.lease_holder.store(NO_HOLDER, Ordering::Release);
        s.granted = None;
        s.arrived[p] = false;
        self.step.fetch_add(1, Ordering::Release);
        self.notify_sched();
    }

    /// Scheduler side: grant one step to process `p`, blocking until `p`
    /// arrives at the gate, takes its step, and returns the turn.
    /// Returns `false` if `p` finished instead of arriving.
    pub fn grant(&self, p: Pid) -> bool {
        self.grant_run(p, 0).is_some()
    }

    /// Scheduler side: grant process `p` a lease of `1 + extra` steps
    /// in a single handoff. Blocks until `p` arrives, executes up to
    /// `1 + extra` shared-memory operations without re-parking, and
    /// returns the turn — or finishes mid-lease, which revokes the
    /// unused remainder.
    ///
    /// Returns `None` if `p` finished instead of arriving (no step was
    /// taken), otherwise `Some(extra_taken)`: how many steps *beyond
    /// the first* actually executed (`extra_taken <= extra`). The
    /// caller must advance its schedule policy by exactly that many
    /// decisions.
    pub fn grant_run(&self, p: Pid, extra: u64) -> Option<u64> {
        let mut s = self.state.lock().unwrap();
        s = self.wait_sched(s, |s| s.shutdown || s.finished[p] || s.arrived[p]);
        if s.finished[p] {
            return None;
        }
        if s.shutdown {
            return Some(0);
        }
        debug_assert!(s.granted.is_none());
        let step0 = self.step.load(Ordering::Relaxed);
        s.granted = Some(p);
        self.lease_left.store(extra, Ordering::Relaxed);
        self.lease_holder.store(p, Ordering::Release);
        self.turn_cv[p].notify_one();
        s = self.wait_sched(s, |s| s.granted.is_none());
        drop(s);
        let taken = self.step.load(Ordering::Relaxed).wrapping_sub(step0);
        Some(taken.saturating_sub(1))
    }

    /// Block until every process is *settled* — parked at the gate or
    /// finished. The scheduler calls this before each decision so the
    /// live set it samples is a deterministic function of the schedule
    /// so far, not of thread wake-up timing (a process that just took
    /// its final step must be observed as finished, not as transiently
    /// live). Returns immediately on shutdown.
    pub fn await_all_settled(&self) {
        let s = self.state.lock().unwrap();
        drop(self.wait_sched(s, |s| {
            s.shutdown
                || s.arrived
                    .iter()
                    .zip(s.finished.iter())
                    .all(|(&a, &f)| a || f)
        }));
    }

    /// Mark process `p` as finished (normal return or panic). If `p`
    /// held a lease, the unused remainder is revoked and the scheduler
    /// is woken with the turn back in hand.
    pub fn mark_finished(&self, p: Pid) {
        let mut s = self.state.lock().unwrap();
        s.finished[p] = true;
        s.arrived[p] = false;
        if s.granted == Some(p) {
            s.granted = None;
            self.lease_holder.store(NO_HOLDER, Ordering::Release);
            self.lease_left.store(0, Ordering::Relaxed);
        }
        self.notify_sched();
    }

    /// Whether process `p` has finished.
    pub fn is_finished(&self, p: Pid) -> bool {
        self.state.lock().unwrap().finished[p]
    }

    /// Snapshot of the finished flags.
    pub fn finished_flags(&self) -> Vec<bool> {
        self.state.lock().unwrap().finished.clone()
    }

    /// Copy the finished flags into `buf` (cleared first) — the
    /// allocation-free [`Self::finished_flags`] variant for
    /// per-decision scheduler loops.
    pub fn snapshot_finished(&self, buf: &mut Vec<bool>) {
        let s = self.state.lock().unwrap();
        buf.clear();
        buf.extend_from_slice(&s.finished);
    }

    /// Whether every process has finished.
    pub fn all_finished(&self) -> bool {
        self.state.lock().unwrap().finished.iter().all(|&f| f)
    }

    /// Steps executed so far. Lock-free; mid-lease reads by the holder
    /// see every step it has taken.
    pub fn steps(&self) -> u64 {
        self.step.load(Ordering::Acquire)
    }

    /// Unwind every process still at (or heading to) the gate.
    pub fn shutdown(&self) {
        let mut s = self.state.lock().unwrap();
        s.shutdown = true;
        self.shutdown_flag.store(true, Ordering::Release);
        for cv in &self.turn_cv {
            cv.notify_all();
        }
        self.sched_seq.fetch_add(1, Ordering::Release);
        self.sched_cv.notify_all();
        drop(s);
    }

    /// Whether the gate has been shut down.
    pub fn is_shutdown(&self) -> bool {
        self.state.lock().unwrap().shutdown
    }
}

/// The [`Interceptor`] that turns any memory into a stepped one: its
/// `before` hook blocks at the [`StepGate`] for the turn and its `after`
/// hook returns it, so exactly one shared-memory operation happens per
/// step.
#[derive(Debug, Clone, Copy)]
pub struct StepLayer<'a> {
    gate: &'a StepGate,
}

impl Interceptor for StepLayer<'_> {
    fn before(&self, p: Pid, _kind: OpKind, _w: WordId) {
        self.gate.begin_turn(p);
    }

    fn after(&self, p: Pid, _kind: OpKind, _w: WordId, _value: u64, _remote: bool) {
        self.gate.end_turn(p);
    }
}

/// A [`Mem`] wrapper that funnels every operation through a [`StepGate`]:
/// the memory handed to simulated process bodies. This is the
/// [`Layered`] instantiation of [`StepLayer`] — build one with
/// [`stepped`].
///
/// Counter/metadata queries (`rmrs`, `ops`, …) pass through without
/// consuming a turn — they are measurements, not steps of the algorithm.
pub type SteppedMem<'a, M> = Layered<'a, M, StepLayer<'a>>;

/// Wrap `inner` so that operations synchronize through `gate`.
pub fn stepped<'a, M: Mem + ?Sized>(inner: &'a M, gate: &'a StepGate) -> SteppedMem<'a, M> {
    Layered::over(inner, StepLayer { gate })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sal_memory::MemoryBuilder;
    use std::sync::Arc;

    #[test]
    fn steps_execute_in_granted_order() {
        let mut b = MemoryBuilder::new();
        let w = b.alloc(0);
        let mem = Arc::new(b.build_cc(2));
        let gate = Arc::new(StepGate::new(2));
        let log = Arc::new(Mutex::new(Vec::new()));

        std::thread::scope(|scope| {
            for p in 0..2usize {
                let mem = Arc::clone(&mem);
                let gate = Arc::clone(&gate);
                let log = Arc::clone(&log);
                scope.spawn(move || {
                    let sm = stepped(&*mem, &gate);
                    for _ in 0..3 {
                        let v = sm.faa(p, w, 1);
                        log.lock().unwrap().push((p, v));
                    }
                    gate.mark_finished(p);
                });
            }
            // Scheduler: strict alternation 0,1,0,1,...
            for i in 0..6 {
                assert!(gate.grant(i % 2));
            }
        });
        // The log pushes happen outside the turn, so the *log* order is
        // racy — but the F&A return values prove the step order: strict
        // alternation means process 0 observed 0,2,4 and process 1
        // observed 1,3,5.
        let log = log.lock().unwrap();
        let mut per_proc: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
        for &(p, v) in log.iter() {
            per_proc[p].push(v);
        }
        assert_eq!(per_proc[0], vec![0, 2, 4]);
        assert_eq!(per_proc[1], vec![1, 3, 5]);
        assert_eq!(gate.steps(), 6);
    }

    #[test]
    fn lease_executes_whole_run_in_one_grant() {
        let mut b = MemoryBuilder::new();
        let w = b.alloc(0);
        let mem = Arc::new(b.build_cc(2));
        let gate = Arc::new(StepGate::new(2));
        std::thread::scope(|scope| {
            for p in 0..2usize {
                let mem = Arc::clone(&mem);
                let gate = Arc::clone(&gate);
                scope.spawn(move || {
                    let sm = stepped(&*mem, &gate);
                    for _ in 0..4 {
                        sm.faa(p, w, 1);
                    }
                    gate.mark_finished(p);
                });
            }
            // One lease of 4 steps to each process, in turn.
            assert_eq!(gate.grant_run(0, 3), Some(3));
            assert_eq!(gate.steps(), 4);
            assert_eq!(gate.grant_run(1, 3), Some(3));
        });
        assert_eq!(gate.steps(), 8);
        assert_eq!(mem.read(0, w), 8);
    }

    #[test]
    fn finishing_mid_lease_returns_the_remainder() {
        let mut b = MemoryBuilder::new();
        let w = b.alloc(0);
        let mem = Arc::new(b.build_cc(1));
        let gate = Arc::new(StepGate::new(1));
        std::thread::scope(|scope| {
            {
                let mem = Arc::clone(&mem);
                let gate = Arc::clone(&gate);
                scope.spawn(move || {
                    let sm = stepped(&*mem, &gate);
                    sm.faa(0, w, 1);
                    sm.faa(0, w, 1);
                    gate.mark_finished(0);
                });
            }
            // Lease allows 10 steps; the process only has 2 in it.
            assert_eq!(gate.grant_run(0, 9), Some(1));
        });
        assert_eq!(gate.steps(), 2);
        assert!(gate.all_finished());
    }

    #[test]
    fn lease_of_zero_extra_is_the_classic_grant() {
        let mut b = MemoryBuilder::new();
        let w = b.alloc(0);
        let mem = Arc::new(b.build_cc(1));
        let gate = Arc::new(StepGate::new(1));
        std::thread::scope(|scope| {
            {
                let mem = Arc::clone(&mem);
                let gate = Arc::clone(&gate);
                scope.spawn(move || {
                    let sm = stepped(&*mem, &gate);
                    for _ in 0..3 {
                        sm.faa(0, w, 1);
                    }
                    gate.mark_finished(0);
                });
            }
            for _ in 0..3 {
                assert_eq!(gate.grant_run(0, 0), Some(0));
            }
        });
        assert_eq!(gate.steps(), 3);
    }

    #[test]
    fn grant_returns_false_for_finished_process() {
        let gate = StepGate::new(1);
        gate.mark_finished(0);
        assert!(!gate.grant(0));
        assert_eq!(gate.grant_run(0, 5), None);
        assert!(gate.all_finished());
    }

    #[test]
    fn shutdown_unwinds_waiting_processes() {
        let gate = Arc::new(StepGate::new(1));
        let g2 = Arc::clone(&gate);
        let h = std::thread::spawn(move || {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                g2.begin_turn(0);
            }));
            assert!(r.is_err());
            g2.mark_finished(0);
        });
        // Give the thread time to arrive, then shut down.
        while !gate.is_shutdown() {
            std::thread::sleep(std::time::Duration::from_millis(1));
            gate.shutdown();
        }
        h.join().unwrap();
        assert!(gate.is_finished(0));
    }

    #[test]
    fn debug_format_never_blocks_on_a_held_state_lock() {
        let gate = StepGate::new(2);
        let rendered = format!("{gate:?}");
        assert!(rendered.contains("granted"), "normal render: {rendered}");
        // Hold the state mutex (as a deadlocked/panicking thread would)
        // and format again: must return, not hang.
        let _guard = gate.state.lock().unwrap();
        let rendered = format!("{gate:?}");
        assert!(rendered.contains("step"), "try_lock render: {rendered}");
        assert!(
            !rendered.contains("granted"),
            "state fields must be skipped while locked: {rendered}"
        );
    }

    #[test]
    fn metadata_queries_do_not_consume_steps() {
        let mut b = MemoryBuilder::new();
        let _w = b.alloc(0);
        let mem = b.build_cc(1);
        let gate = StepGate::new(1);
        let sm = stepped(&mem, &gate);
        assert_eq!(sm.rmrs(0), 0);
        assert_eq!(sm.num_words(), 1);
        assert_eq!(sm.num_procs(), 1);
        assert_eq!(gate.steps(), 0);
    }

    #[test]
    fn spin_disabled_still_completes() {
        let mut b = MemoryBuilder::new();
        let w = b.alloc(0);
        let mem = Arc::new(b.build_cc(2));
        let gate = Arc::new(StepGate::new(2));
        gate.set_spin(false);
        std::thread::scope(|scope| {
            for p in 0..2usize {
                let mem = Arc::clone(&mem);
                let gate = Arc::clone(&gate);
                scope.spawn(move || {
                    let sm = stepped(&*mem, &gate);
                    for _ in 0..10 {
                        sm.faa(p, w, 1);
                    }
                    gate.mark_finished(p);
                });
            }
            for i in 0..20 {
                assert!(gate.grant(i % 2));
            }
        });
        assert_eq!(gate.steps(), 20);
    }

    #[test]
    fn many_processes_step_throughput_is_linear() {
        // Smoke test that wakeups are O(1) per step: 64 processes, 100
        // steps each, must finish quickly (sub-second even in debug).
        let mut b = MemoryBuilder::new();
        let w = b.alloc(0);
        let n = 64;
        let mem = Arc::new(b.build_cc(n));
        let gate = Arc::new(StepGate::new(n));
        let start = std::time::Instant::now();
        std::thread::scope(|scope| {
            for p in 0..n {
                let mem = Arc::clone(&mem);
                let gate = Arc::clone(&gate);
                scope.spawn(move || {
                    let sm = stepped(&*mem, &gate);
                    for _ in 0..100 {
                        sm.faa(p, w, 1);
                    }
                    gate.mark_finished(p);
                });
            }
            for i in 0..n * 100 {
                assert!(gate.grant(i % n));
            }
        });
        assert_eq!(gate.steps(), (n * 100) as u64);
        assert!(
            start.elapsed() < std::time::Duration::from_secs(20),
            "gate too slow: {:?}",
            start.elapsed()
        );
    }
}
