//! Lock workload harness: drive any [`AbortableLock`] through the
//! simulator and collect per-passage RMR statistics and safety-check
//! results — the engine behind every Table-1 and figure experiment.
//!
//! All passage accounting flows through a [`sal_obs::PassageStats`]
//! probe attached to the lock; callers can attach additional sinks
//! (an [`sal_obs::EventLog`], a [`sal_obs::FairnessMonitor`], …) with
//! [`run_lock_probed`] / [`run_one_shot_probed`] and every hook fans
//! out to them from the same execution. The sinks are cheap cloneable
//! handles: pass `sink.clone()` in and keep the original to read the
//! results afterwards.

use crate::events::{EventKind, FcfsViolation, MutexViolation};
use crate::gate::SteppedMem;
use crate::schedule::SchedulePolicy;
use crate::sim::{simulate, SimError, SimOptions};
use sal_core::{AbortableLock, DynLock, LockCore};
use sal_memory::{AbortSignal, Mem, SignalFn, WordId};
use sal_obs::{probed, NoProbe, PassageRecord, PassageStats, Probe};

/// What one process does with its passages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Role {
    /// Acquire, run the CS, release; never abort.
    #[default]
    Normal,
    /// Deliver the abort signal once the process has spent this many
    /// global steps inside `enter` (0 = signal set from the start).
    AbortAfter(u64),
}

/// Per-process plan.
#[derive(Debug, Clone, Copy)]
pub struct ProcPlan {
    /// How many passages the process attempts.
    pub passages: usize,
    /// Its behaviour.
    pub role: Role,
}

impl ProcPlan {
    /// `passages` normal (never-aborting) passages.
    pub fn normal(passages: usize) -> Self {
        ProcPlan {
            passages,
            role: Role::Normal,
        }
    }

    /// `passages` attempts, each aborting after waiting `steps` global
    /// steps inside `enter`.
    pub fn aborter(passages: usize, steps: u64) -> Self {
        ProcPlan {
            passages,
            role: Role::AbortAfter(steps),
        }
    }
}

/// Workload description.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// One plan per process.
    pub plans: Vec<ProcPlan>,
    /// Shared-memory operations each process performs inside the CS
    /// (more ops ⇒ longer CS ⇒ more interleaving pressure).
    pub cs_ops: usize,
    /// Step budget before declaring livelock.
    pub max_steps: u64,
    /// Step-lease cap, forwarded to [`SimOptions::lease`]: `0` =
    /// unbounded, `1` = legacy per-step, `k` = capped. Any value yields
    /// the identical execution and report.
    pub lease: u64,
}

impl WorkloadSpec {
    /// `n` processes, one no-abort passage each.
    pub fn uniform(n: usize, passages: usize) -> Self {
        WorkloadSpec {
            plans: vec![ProcPlan::normal(passages); n],
            cs_ops: 1,
            max_steps: 20_000_000,
            lease: crate::sim::default_lease(),
        }
    }
}

/// Everything measured during one workload run.
#[derive(Debug)]
pub struct WorkloadReport {
    /// Per-passage statistics, in completion order (a snapshot of
    /// [`stats`](Self::stats)'s records).
    pub passages: Vec<PassageRecord>,
    /// The full accounting sink the run was measured through: per-
    /// passage RMR and step-latency histograms, amortized totals.
    pub stats: PassageStats,
    /// Total shared-memory steps.
    pub steps: u64,
    /// Mutual-exclusion check over the event log.
    pub mutex_check: Result<(), MutexViolation>,
    /// FCFS check (meaningful only when the body recorded doorway
    /// tickets, i.e. for [`run_one_shot`]).
    pub fcfs_check: Result<(), FcfsViolation>,
    /// Per-process `(entered, aborted)` tallies.
    pub outcomes: Vec<(usize, usize)>,
    /// The full step-stamped event log, in real-time order.
    pub events: Vec<crate::events::Event>,
}

impl WorkloadReport {
    /// Maximum per-passage RMR count among *entered* passages.
    pub fn max_entered_rmrs(&self) -> u64 {
        self.stats.max_entered_rmrs()
    }

    /// Maximum per-passage RMR count among *aborted* passages.
    pub fn max_aborted_rmrs(&self) -> u64 {
        self.stats.max_aborted_rmrs()
    }

    /// Run-scoped amortized accounting: cumulative RMRs, passage and
    /// abort counts, max single-passage debt, and the amortized
    /// per-passage cost (see [`sal_obs::AmortizedStats`]).
    pub fn amortized(&self) -> sal_obs::AmortizedStats {
        self.stats.amortized()
    }

    /// Mean RMRs over entered passages.
    pub fn mean_entered_rmrs(&self) -> f64 {
        self.stats.mean_entered_rmrs()
    }

    /// Number of passages that entered the CS.
    pub fn total_entered(&self) -> usize {
        self.stats.total_entered()
    }

    /// Panic unless mutual exclusion held.
    pub fn assert_safe(&self) {
        if let Err(v) = &self.mutex_check {
            panic!("mutual exclusion violated: {v:?}");
        }
    }
}

/// Run `lock` under the given workload and schedule. `cs_word` is a
/// shared scratch word the CS body hammers (allocate it in the same
/// memory as the lock).
///
/// # Errors
///
/// Propagates [`SimError`] (step-limit ⇒ livelock/starvation, or a body
/// panic such as a capacity assertion).
pub fn run_lock<M: Mem + ?Sized>(
    lock: &dyn AbortableLock,
    mem: &M,
    cs_word: WordId,
    spec: &WorkloadSpec,
    policy: Box<dyn SchedulePolicy>,
) -> Result<WorkloadReport, SimError> {
    run_inner(&DynLock(lock), mem, cs_word, spec, policy, false, NoProbe)
}

/// [`run_lock`] with an extra probe sink: every passage hook the run
/// generates is fanned out to `probe` as well as the report's internal
/// [`PassageStats`]. Pass a clone of a sink handle (or an
/// `Arc<impl Probe>`) and keep the original for reading.
pub fn run_lock_probed<M: Mem + ?Sized, U: Probe + 'static>(
    lock: &dyn AbortableLock,
    mem: &M,
    cs_word: WordId,
    spec: &WorkloadSpec,
    policy: Box<dyn SchedulePolicy>,
    probe: U,
) -> Result<WorkloadReport, SimError> {
    run_inner(&DynLock(lock), mem, cs_word, spec, policy, false, probe)
}

/// Statically-dispatched [`run_lock`]: drive a lock through its
/// [`LockCore`] impl, monomorphized for this harness's memory wrapper,
/// with no `dyn` boundary between the harness and the algorithm.
///
/// Behaviour is identical to [`run_lock`] on the same lock — the `dyn`
/// entry points are this function applied to [`DynLock`] — which is
/// what `tests/mono_equivalence.rs` checks.
pub fn run_lock_core<M, L>(
    lock: &L,
    mem: &M,
    cs_word: WordId,
    spec: &WorkloadSpec,
    policy: Box<dyn SchedulePolicy>,
) -> Result<WorkloadReport, SimError>
where
    M: Mem + ?Sized,
    L: for<'a> LockCore<SteppedMem<'a, M>, (PassageStats, NoProbe)>,
{
    run_inner(lock, mem, cs_word, spec, policy, false, NoProbe)
}

/// [`run_lock_core`] with an extra probe sink (statically-dispatched
/// analogue of [`run_lock_probed`]). `doorway_tickets` selects whether
/// doorway tickets are recorded for the FCFS check, covering the
/// [`run_one_shot`] flavour too.
#[allow(clippy::too_many_arguments)]
pub fn run_lock_core_probed<M, L, U>(
    lock: &L,
    mem: &M,
    cs_word: WordId,
    spec: &WorkloadSpec,
    policy: Box<dyn SchedulePolicy>,
    doorway_tickets: bool,
    probe: U,
) -> Result<WorkloadReport, SimError>
where
    M: Mem + ?Sized,
    U: Probe + 'static,
    L: for<'a> LockCore<SteppedMem<'a, M>, (PassageStats, U)>,
{
    run_inner(lock, mem, cs_word, spec, policy, doorway_tickets, probe)
}

/// Like [`run_lock`], but additionally records doorway tickets (as
/// reported by [`AbortableLock::enter`]'s [`Outcome`](sal_core::Outcome))
/// so that the FCFS check is meaningful. Use with locks that have an
/// FCFS doorway — the one-shot locks.
pub fn run_one_shot<M: Mem + ?Sized>(
    lock: &dyn AbortableLock,
    mem: &M,
    cs_word: WordId,
    spec: &WorkloadSpec,
    policy: Box<dyn SchedulePolicy>,
) -> Result<WorkloadReport, SimError> {
    run_inner(&DynLock(lock), mem, cs_word, spec, policy, true, NoProbe)
}

/// [`run_one_shot`] with an extra probe sink.
pub fn run_one_shot_probed<M: Mem + ?Sized, U: Probe + 'static>(
    lock: &dyn AbortableLock,
    mem: &M,
    cs_word: WordId,
    spec: &WorkloadSpec,
    policy: Box<dyn SchedulePolicy>,
    probe: U,
) -> Result<WorkloadReport, SimError> {
    run_inner(&DynLock(lock), mem, cs_word, spec, policy, true, probe)
}

/// Run one independent simulation per seed on a pool of `jobs` workers
/// (`0` = auto) and gather the reports **by seed order** — results are
/// identical to running the seeds serially, whatever the worker count.
/// If several seeds fail, the error of the *earliest* seed (by position
/// in `seeds`) is returned, not the first to finish.
///
/// `run` must build the entire workload (memory, lock, policy) from its
/// seed — cells share nothing, which is what makes the fan-out safe.
///
/// # Errors
///
/// The earliest seed's error, when any seed fails.
pub fn par_runs<R, E, F>(jobs: usize, seeds: &[u64], run: F) -> Result<Vec<R>, E>
where
    R: Send,
    E: Send,
    F: Fn(u64) -> Result<R, E> + Sync,
{
    crate::pool::par_map_indexed(jobs, seeds.len(), |i| run(seeds[i]))
        .into_iter()
        .collect()
}

/// The one workload driver behind every `run_*` entry point, generic
/// over the lock's [`LockCore`] impl at the harness's stepped memory
/// type. The `dyn`-dispatch flavour is this same function instantiated
/// at [`DynLock`], so both flavours execute literally the same driver.
#[allow(clippy::too_many_arguments)]
fn run_inner<M, L, U>(
    lock: &L,
    mem: &M,
    cs_word: WordId,
    spec: &WorkloadSpec,
    policy: Box<dyn SchedulePolicy>,
    doorway_tickets: bool,
    user_probe: U,
) -> Result<WorkloadReport, SimError>
where
    M: Mem + ?Sized,
    U: Probe + 'static,
    L: for<'a> LockCore<SteppedMem<'a, M>, (PassageStats, U)>,
{
    let nprocs = spec.plans.len();
    let stats = PassageStats::new();
    // An owned pair of sinks: a `'static` probe type, as the
    // trait-object lock API requires when `L` is a `DynLock`.
    let probe = (stats.clone(), user_probe);
    let opts = SimOptions {
        max_steps: spec.max_steps,
        abort_plan: vec![],
        lease: spec.lease,
    };
    let report = simulate(mem, nprocs, policy, opts, |ctx| {
        let plan = spec.plans[ctx.pid];
        for _attempt in 0..plan.passages {
            ctx.event(EventKind::EnterStart);
            let do_enter = |signal: &dyn AbortSignal| {
                let outcome = lock.enter_core(ctx.mem, ctx.pid, signal, &probe);
                if doorway_tickets {
                    if let Some(t) = outcome.ticket() {
                        // Ticket *values* (not event positions) drive the
                        // FCFS check, so post-enter recording is sound.
                        ctx.event(EventKind::Doorway(t));
                    }
                }
                outcome.entered()
            };
            let entered = match plan.role {
                Role::Normal => do_enter(&sal_memory::NeverAbort),
                Role::AbortAfter(steps) => {
                    let deadline = ctx.steps() + steps;
                    let external = ctx.signal;
                    let combined = SignalFn(|| ctx.steps() >= deadline || external.is_set());
                    do_enter(&combined)
                }
            };
            if entered {
                ctx.event(EventKind::CsEnter);
                // The CS body also routes through the probe, so CS RMRs
                // land in the (still open) passage.
                let pm = probed(ctx.mem, &probe);
                for _ in 0..spec.cs_ops {
                    pm.faa(ctx.pid, cs_word, 1);
                }
                ctx.event(EventKind::CsLeave);
                lock.exit_core(ctx.mem, ctx.pid, &probe);
                ctx.event(EventKind::ExitDone);
            } else {
                ctx.event(EventKind::Aborted);
            }
        }
    })?;

    Ok(WorkloadReport {
        passages: stats.records(),
        stats,
        steps: report.steps,
        mutex_check: report.log.check_mutual_exclusion(),
        fcfs_check: report.log.check_fcfs(),
        outcomes: report.log.outcomes(nprocs),
        events: report.log.events(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{RandomSchedule, RoundRobin};
    use sal_core::one_shot::OneShotLock;
    use sal_memory::MemoryBuilder;

    fn one_shot(n: usize, branching: usize) -> (OneShotLock, WordId, sal_memory::CcMemory) {
        let mut b = MemoryBuilder::new();
        let lock = OneShotLock::layout(&mut b, n, branching);
        let cs = b.alloc(0);
        (lock, cs, b.build_cc(n))
    }

    #[test]
    fn all_processes_enter_under_round_robin() {
        let (lock, cs, mem) = one_shot(6, 2);
        let spec = WorkloadSpec::uniform(6, 1);
        let report = run_lock(&lock, &mem, cs, &spec, Box::new(RoundRobin::new())).unwrap();
        report.assert_safe();
        assert_eq!(report.total_entered(), 6);
        assert_eq!(mem.read(0, cs), 6);
    }

    #[test]
    fn random_schedules_preserve_safety_and_fcfs() {
        for seed in 0..30 {
            let (lock, cs, mem) = one_shot(5, 2);
            let spec = WorkloadSpec::uniform(5, 1);
            let report = run_one_shot(
                &lock,
                &mem,
                cs,
                &spec,
                Box::new(RandomSchedule::seeded(seed)),
            )
            .unwrap();
            report.assert_safe();
            assert!(
                report.fcfs_check.is_ok(),
                "seed {seed}: {:?}",
                report.fcfs_check
            );
            assert_eq!(report.total_entered(), 5, "seed {seed}");
        }
    }

    #[test]
    fn aborters_abort_and_others_still_enter() {
        let (lock, cs, mem) = one_shot(4, 2);
        let spec = WorkloadSpec {
            plans: vec![
                ProcPlan::normal(1),
                ProcPlan::aborter(1, 30),
                ProcPlan::aborter(1, 30),
                ProcPlan::normal(1),
            ],
            cs_ops: 3,
            max_steps: 1_000_000,
            lease: crate::sim::default_lease(),
        };
        let report = run_lock(&lock, &mem, cs, &spec, Box::new(RandomSchedule::seeded(9))).unwrap();
        report.assert_safe();
        // The two normal processes must get in; aborters may get in (if
        // handed the lock early) or abort.
        assert_eq!(report.outcomes[0].0, 1);
        assert_eq!(report.outcomes[3].0, 1);
        let total: usize = report.outcomes.iter().map(|o| o.0 + o.1).sum();
        assert_eq!(total, 4, "every attempt resolves");
    }

    #[test]
    fn per_passage_rmrs_are_recorded() {
        let (lock, cs, mem) = one_shot(3, 2);
        let spec = WorkloadSpec::uniform(3, 1);
        let report = run_lock(&lock, &mem, cs, &spec, Box::new(RoundRobin::new())).unwrap();
        assert_eq!(report.passages.len(), 3);
        assert!(report.passages.iter().all(|p| p.rmrs > 0));
        assert!(report.max_entered_rmrs() >= 1);
        assert!(report.mean_entered_rmrs() > 0.0);
        // The probe-fed sink and the cost model agree in aggregate: every
        // RMR in the run happened inside some passage.
        let total: u64 = report.passages.iter().map(|p| p.rmrs).sum();
        assert_eq!(total, mem.total_rmrs());
    }

    #[test]
    fn par_runs_gathers_by_seed_order_and_reports_earliest_error() {
        let seeds: Vec<u64> = (0..16).collect();
        let ok = par_runs(4, &seeds, |s| {
            let (lock, cs, mem) = one_shot(3, 2);
            let spec = WorkloadSpec::uniform(3, 1);
            let report = run_lock(&lock, &mem, cs, &spec, Box::new(RandomSchedule::seeded(s)))
                .map_err(|e| e.to_string())?;
            report.assert_safe();
            Ok::<u64, String>(s)
        })
        .unwrap();
        assert_eq!(ok, seeds, "reports come back in seed order");

        let err = par_runs(4, &seeds, |s| {
            if s >= 5 {
                Err(format!("seed {s} failed"))
            } else {
                Ok(s)
            }
        })
        .unwrap_err();
        assert_eq!(err, "seed 5 failed", "earliest seed's error wins");
    }

    #[test]
    fn extra_probe_sinks_observe_the_same_run() {
        let (lock, cs, mem) = one_shot(4, 2);
        let spec = WorkloadSpec::uniform(4, 1);
        let fairness = sal_obs::FairnessMonitor::new();
        let report = run_one_shot_probed(
            &lock,
            &mem,
            cs,
            &spec,
            Box::new(RandomSchedule::seeded(3)),
            fairness.clone(),
        )
        .unwrap();
        report.assert_safe();
        assert!(fairness.is_fcfs());
        assert_eq!(report.fcfs_check.is_ok(), fairness.is_fcfs());
        let per_proc = fairness.per_process();
        assert_eq!(per_proc.iter().map(|p| p.entered).sum::<u64>(), 4);
    }
}
