//! # sal-runtime — deterministic execution harness for lock algorithms
//!
//! The paper's model (§2) is an asynchronous shared-memory system: an
//! execution is a sequence of steps, each one process performing one
//! atomic operation on a shared word. This crate realises that model
//! executably:
//!
//! * [`StepGate`]/[`SteppedMem`] — every shared-memory operation becomes
//!   a scheduling point; processes run on real threads but take steps one
//!   at a time, in an order chosen by a [`SchedulePolicy`]. When the
//!   policy can see its next decisions ahead of time
//!   ([`SchedulePolicy::peek_run`]) the scheduler batches them into a
//!   single multi-step **lease** ([`SimOptions::lease`] caps the length)
//!   — fewer condvar round-trips, byte-identical execution.
//! * [`simulate`] — run `N` process bodies to completion under a policy,
//!   with external abort-signal injection and a step-limit
//!   livelock/starvation detector. Deterministic given the policy.
//!   [`simulate_probed`] additionally reports abort injections to an
//!   [`sal_obs::Probe`].
//! * [`EventLog`] — step-stamped protocol events with post-hoc checkers
//!   for mutual exclusion and FCFS.
//! * [`run_lock`]/[`run_one_shot`] — a workload harness over any
//!   [`sal_core::AbortableLock`]: roles (normal / aborting), per-passage
//!   RMR accounting through [`sal_obs::PassageStats`], safety verdicts.
//!   The `_probed` variants fan every passage hook out to caller-supplied
//!   sinks as well.
//! * [`SmallRng`] — the workspace's own seeded PRNG (the build
//!   environment is offline, so randomness is home-grown).
//! * [`pool`] — a dependency-free work-stealing job pool
//!   ([`par_map_indexed`], [`run_jobs`]) that fans independent
//!   simulations out over worker threads and gathers results by index,
//!   so parallel experiment output is byte-identical to serial.
//! * [`executor`] — a dependency-free mini async executor
//!   ([`executor::block_on`], [`executor::Executor`],
//!   [`executor::sleep_until`]) for driving
//!   `sal_sync::AsyncAbortableMutex` futures in tests and benches:
//!   FIFO task queue over worker threads, hand-rolled waker vtable,
//!   one global timer thread.
//!
//! ## Example: 4 processes race for the one-shot lock
//!
//! ```
//! use sal_core::one_shot::OneShotLock;
//! use sal_memory::MemoryBuilder;
//! use sal_runtime::{run_lock, RandomSchedule, WorkloadSpec};
//!
//! let mut b = MemoryBuilder::new();
//! let lock = OneShotLock::layout(&mut b, 4, 2);
//! let cs = b.alloc(0);
//! let mem = b.build_cc(4);
//!
//! let spec = WorkloadSpec::uniform(4, 1);
//! let report = run_lock(&lock, &mem, cs, &spec,
//!                       Box::new(RandomSchedule::seeded(1)))?;
//! report.assert_safe();
//! assert_eq!(report.total_entered(), 4);
//! # Ok::<(), sal_runtime::SimError>(())
//! ```

#![warn(missing_docs)]

mod events;
pub mod executor;
mod explore;
mod gate;
mod harness;
pub mod pool;
mod replay;
mod rng;
mod schedule;
pub mod search;
mod sim;

pub use events::{Event, EventKind, EventLog, FcfsViolation, MutexViolation};
pub use executor::{block_on, Executor};
pub use explore::{
    explore, explore_guided, Decision, ExplorationResult, ExploreOptions, ForcedSchedule,
    GuidedOutcome,
};
pub use gate::{stepped, StepGate, StepLayer, SteppedMem};
pub use harness::{
    par_runs, run_lock, run_lock_core, run_lock_core_probed, run_lock_probed, run_one_shot,
    run_one_shot_probed, ProcPlan, Role, WorkloadReport, WorkloadSpec,
};
pub use pool::{default_jobs, par_map_indexed, resolve_jobs, run_jobs, Worker};
pub use replay::{ParseRecordingError, Recorder, Recording, RecordingHandle, Replay};
pub use rng::SmallRng;
pub use schedule::{
    BurstySchedule, RandomSchedule, RoundRobin, SchedStatus, SchedulePolicy, Scripted, PEEK_CAP,
};
pub use search::{canonical_schedule, independent, OpTraceSink, SearchStrategy, StepOp, Strategy};
pub use sim::{default_lease, simulate, simulate_probed, ProcCtx, SimError, SimOptions, SimReport};
