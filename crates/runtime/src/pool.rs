//! Dependency-free work-stealing job pool.
//!
//! Every experiment in this repo fans out over *mutually independent*
//! deterministic simulations — (lock × N × seed) grid cells, deviation
//! prefixes of the systematic explorer, fairness seed sweeps. Each cell
//! builds its own `CcMemory`, so workers share nothing but the queue;
//! the only engineering problem is distributing the cells and gathering
//! the results in a deterministic order. The workspace is offline (no
//! crossbeam, no rayon), so this module implements the classic shape by
//! hand:
//!
//! * a **sharded injector queue** — seed items are dealt round-robin
//!   across one FIFO shard per worker, so workers start on disjoint
//!   shards and only collide once their own shard drains;
//! * **per-worker LIFO deques** — work spawned *during* a job (e.g.
//!   child prefixes in [`explore`](crate::explore::explore)) is pushed to
//!   the owner's deque and popped from the back (cache-warm,
//!   depth-first), while idle workers steal from the *front* (the
//!   oldest, typically largest pieces);
//! * a **pending-jobs counter** for termination: a job is pending from
//!   enqueue until its closure returns, so a running job that is about
//!   to spawn children keeps the pool alive. When the counter hits zero
//!   every parked worker is woken and exits.
//!
//! Panics in jobs are caught per-job: the pool keeps draining the
//! remaining work (nothing is poisoned or wedged — extending PR 2's
//! poisoning fix to the experiment driver), and the *first* panic
//! payload is re-raised on the caller's thread after the pool shuts
//! down cleanly. Nested pools are supported: a job may itself call
//! [`par_map_indexed`] / [`run_jobs`], which builds an independent
//! inner pool.
//!
//! Determinism is the caller's contract and the pool's design
//! constraint: [`par_map_indexed`] gathers results **by index**, so the
//! output `Vec` is identical whatever the interleaving of workers, and
//! `jobs == 1` runs the same worker loop inline on the caller's thread
//! — the serial baseline is the same code path, minus threads.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Parse a `SAL_JOBS`-style override. `None`, empty, unparsable or `0`
/// all mean "no override" (fall through to detected parallelism).
fn jobs_from(env: Option<&str>) -> Option<usize> {
    let n: usize = env?.trim().parse().ok()?;
    if n == 0 {
        None
    } else {
        Some(n)
    }
}

/// The default worker count: the `SAL_JOBS` environment variable if set
/// to a positive integer, else the machine's available parallelism,
/// else 1.
pub fn default_jobs() -> usize {
    jobs_from(std::env::var("SAL_JOBS").ok().as_deref())
        .or_else(|| std::thread::available_parallelism().ok().map(|n| n.get()))
        .unwrap_or(1)
}

/// Resolve a `--jobs N` knob: `0` means "auto" ([`default_jobs`]), any
/// other value is taken literally.
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        default_jobs()
    } else {
        jobs
    }
}

struct Shared<T> {
    /// Global FIFO shards; seed item `i` lands in shard `i % workers`.
    injector: Vec<Mutex<VecDeque<T>>>,
    /// Per-worker deques: owner pushes/pops the back, thieves pop the
    /// front.
    locals: Vec<Mutex<VecDeque<T>>>,
    /// Jobs enqueued but not yet *completed* (still counted while the
    /// closure runs, so an executing job that is about to spawn keeps
    /// the pool alive).
    pending: AtomicUsize,
    /// Enqueue sequence number, bumped under `gate` on every dynamic
    /// spawn. A worker reads it *before* scanning the queues and
    /// re-checks it under `gate` before parking: if it moved, an item
    /// was enqueued mid-scan and the worker re-scans instead of
    /// sleeping. This closes the lost-wakeup window without a timeout
    /// backstop — parked workers burn zero wakeups on long cells.
    enq_seq: AtomicU64,
    gate: Mutex<()>,
    wake: Condvar,
    /// First panic payload caught in any job; re-raised by the caller.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

impl<T> Shared<T> {
    fn new(workers: usize) -> Self {
        Shared {
            injector: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            enq_seq: AtomicU64::new(0),
            gate: Mutex::new(()),
            wake: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    /// Pop the next job for worker `me`: own deque (LIFO), then the
    /// injector shards starting at `me`, then steal the *front* of the
    /// other workers' deques.
    fn pop(&self, me: usize) -> Option<T> {
        if let Some(item) = self.locals[me].lock().unwrap().pop_back() {
            return Some(item);
        }
        let n = self.injector.len();
        for k in 0..n {
            let shard = (me + k) % n;
            if let Some(item) = self.injector[shard].lock().unwrap().pop_front() {
                return Some(item);
            }
        }
        for k in 1..n {
            let victim = (me + k) % n;
            if let Some(item) = self.locals[victim].lock().unwrap().pop_front() {
                return Some(item);
            }
        }
        None
    }
}

/// Handle a running job uses to spawn more work into the pool that is
/// executing it. Spawned items go to the *back* of this worker's own
/// deque (run next by the owner, stolen from the front by idle peers).
pub struct Worker<'p, T> {
    shared: &'p Shared<T>,
    index: usize,
}

impl<T> Worker<'_, T> {
    /// The index of the worker executing the current job, in
    /// `0..jobs`. Stable for the duration of one job; useful for
    /// per-worker scratch and for tests asserting that stealing
    /// happened.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Enqueue `item` for execution by this pool.
    pub fn spawn(&self, item: T) {
        self.shared.pending.fetch_add(1, Ordering::SeqCst);
        self.shared.locals[self.index]
            .lock()
            .unwrap()
            .push_back(item);
        // Publish the enqueue: the sequence bump happens under the
        // park gate, so an idle worker either sees the item when it
        // scans, sees the bump when it re-checks before sleeping, or is
        // already asleep and gets the notification.
        let _gate = self.shared.gate.lock().unwrap();
        self.shared.enq_seq.fetch_add(1, Ordering::Release);
        self.shared.wake.notify_one();
    }
}

fn worker_loop<T, F>(shared: &Shared<T>, me: usize, f: &F)
where
    T: Send,
    F: Fn(T, &Worker<'_, T>) + Sync,
{
    let worker = Worker { shared, index: me };
    loop {
        // Baseline the enqueue sequence BEFORE scanning: an item pushed
        // after this read either shows up in the scan or has bumped the
        // sequence by the time we re-check under the gate.
        let seq = shared.enq_seq.load(Ordering::Acquire);
        match shared.pop(me) {
            Some(item) => {
                let res = catch_unwind(AssertUnwindSafe(|| f(item, &worker)));
                if let Err(payload) = res {
                    let mut slot = shared.panic.lock().unwrap();
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
                if shared.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                    // Last job done: release every parked worker.
                    let _gate = shared.gate.lock().unwrap();
                    shared.wake.notify_all();
                }
            }
            None => {
                if shared.pending.load(Ordering::SeqCst) == 0 {
                    return;
                }
                // Work is in flight (and may spawn more) but none is
                // grabbable right now: park until an enqueue or
                // termination notifies us. No timeout — every enqueue
                // is covered by the sequence re-check below.
                let gate = shared.gate.lock().unwrap();
                if shared.pending.load(Ordering::SeqCst) == 0 {
                    return;
                }
                if shared.enq_seq.load(Ordering::Acquire) == seq {
                    drop(shared.wake.wait(gate).unwrap());
                }
            }
        }
    }
}

/// Run `seeds` (plus anything jobs [`spawn`](Worker::spawn)
/// dynamically) to completion on a pool of `jobs` workers (`0` =
/// auto). With `jobs == 1` the worker loop runs inline on the calling
/// thread — no threads are spawned and execution order is exactly
/// depth-first, which keeps the serial baseline on the identical code
/// path.
///
/// If any job panics, the remaining jobs still run; the first panic is
/// re-raised here after the pool has drained and joined.
pub fn run_jobs<T, F>(jobs: usize, seeds: Vec<T>, f: F)
where
    T: Send,
    F: Fn(T, &Worker<'_, T>) + Sync,
{
    let jobs = resolve_jobs(jobs);
    if seeds.is_empty() {
        return;
    }
    let shared = Shared::new(jobs);
    shared.pending.store(seeds.len(), Ordering::SeqCst);
    for (i, item) in seeds.into_iter().enumerate() {
        shared.injector[i % jobs].lock().unwrap().push_back(item);
    }
    if jobs == 1 {
        worker_loop(&shared, 0, &f);
    } else {
        std::thread::scope(|scope| {
            for me in 0..jobs {
                let shared = &shared;
                let f = &f;
                scope.spawn(move || worker_loop(shared, me, f));
            }
        });
    }
    let payload = shared.panic.lock().unwrap().take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

/// Evaluate `f(0), f(1), …, f(n-1)` on a pool of `jobs` workers (`0` =
/// auto) and gather the results **by index**: the returned `Vec` is
/// `[f(0), …, f(n-1)]` regardless of which worker computed which cell
/// or in what order — the deterministic-gather primitive every
/// experiment driver builds on.
pub fn par_map_indexed<R, F>(jobs: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    run_jobs(jobs, (0..n).collect(), |i, _worker| {
        *slots[i].lock().unwrap() = Some(f(i));
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("pool drained with an unfilled slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn jobs_from_parses_overrides() {
        assert_eq!(jobs_from(None), None);
        assert_eq!(jobs_from(Some("")), None);
        assert_eq!(jobs_from(Some("banana")), None);
        assert_eq!(jobs_from(Some("0")), None);
        assert_eq!(jobs_from(Some("3")), Some(3));
        assert_eq!(jobs_from(Some(" 8 ")), Some(8));
    }

    #[test]
    fn resolve_zero_is_auto_and_positive_is_literal() {
        assert!(resolve_jobs(0) >= 1);
        assert_eq!(resolve_jobs(5), 5);
    }

    #[test]
    fn gathers_by_index() {
        for jobs in [1, 2, 4] {
            let out = par_map_indexed(jobs, 100, |i| i * i);
            let expect: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(out, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<usize> = par_map_indexed(4, 0, |i| i);
        assert!(out.is_empty());
        run_jobs(4, Vec::<usize>::new(), |_, _| {});
    }

    #[test]
    fn dynamic_spawn_drains_everything() {
        let sum = AtomicU64::new(0);
        // Each seed k spawns children k-1, k-2, …, 1; total visits are
        // the triangular numbers.
        run_jobs(4, vec![5u64, 7, 3], |k, worker| {
            sum.fetch_add(k, Ordering::Relaxed);
            if k > 1 {
                worker.spawn(k - 1);
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 15 + 28 + 6);
    }

    #[test]
    fn parked_workers_wake_on_spawn() {
        // Audit of notify-on-enqueue coverage (there is no timeout
        // backstop to paper over a lost notification). One seed job on
        // a two-worker pool: the idle worker parks with empty queues,
        // then the seed spawns a child and blocks for a long time. The
        // child can only run promptly if the enqueue woke the parked
        // worker — a lost wakeup would leave it asleep until the parent
        // returns, forcing the child onto the parent's worker.
        let child_worker = AtomicUsize::new(usize::MAX);
        let parent_worker = AtomicUsize::new(usize::MAX);
        run_jobs(2, vec![0u32], |item, worker| {
            if item == 0 {
                parent_worker.store(worker.index(), Ordering::SeqCst);
                worker.spawn(1);
                // Long block: give the woken peer ample time to steal.
                std::thread::sleep(std::time::Duration::from_millis(200));
            } else {
                child_worker.store(worker.index(), Ordering::SeqCst);
            }
        });
        assert_ne!(child_worker.load(Ordering::SeqCst), usize::MAX);
        assert_ne!(
            child_worker.load(Ordering::SeqCst),
            parent_worker.load(Ordering::SeqCst),
            "spawned job was not stolen by the parked worker — enqueue wakeup lost"
        );
    }

    #[test]
    fn spawn_chains_with_parked_peers_terminate() {
        // Every link of the chain is spawned while the three non-owner
        // workers sit parked; each enqueue and the final termination
        // must each deliver their own wakeups (completion IS the
        // assertion — a lost notification hangs the pool).
        let count = AtomicU64::new(0);
        run_jobs(4, vec![50u64], |k, worker| {
            count.fetch_add(1, Ordering::Relaxed);
            if k > 0 {
                worker.spawn(k - 1);
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 51);
    }

    #[test]
    fn worker_indices_are_in_range() {
        let seen = Mutex::new(HashSet::new());
        run_jobs(3, (0..64).collect::<Vec<usize>>(), |_, worker| {
            assert!(worker.index() < 3);
            seen.lock().unwrap().insert(worker.index());
        });
        assert!(!seen.lock().unwrap().is_empty());
    }
}
