//! Schedule recording and replay: capture the exact interleaving of a
//! run and re-execute it later, bit for bit.
//!
//! Random schedules find failures; replay turns a failure into a
//! regression test. [`Recorder`] wraps any [`SchedulePolicy`] and logs
//! every decision; the resulting [`Recording`] serializes to a compact
//! string (for bug reports, test fixtures) and plays back as a policy
//! itself. Because the simulator is deterministic given the schedule,
//! a replayed recording reproduces the original execution exactly —
//! same memory states, same RMR counts, same event log.
//!
//! ```
//! use sal_runtime::{Recorder, Recording, RandomSchedule, simulate, SimOptions};
//! use sal_memory::{Mem, MemoryBuilder};
//!
//! // Record a run…
//! let recorder = Recorder::wrap(Box::new(RandomSchedule::seeded(7)));
//! let handle = recorder.recording();
//! let mut b = MemoryBuilder::new();
//! let w = b.alloc(0);
//! let mem = b.build_cc(2);
//! simulate(&mem, 2, Box::new(recorder), SimOptions::default(), |ctx| {
//!     ctx.mem.faa(ctx.pid, w, 1);
//! })?;
//! let recording = handle.snapshot();
//!
//! // …serialize, ship, deserialize…
//! let replayed: Recording = recording.serialize().parse()?;
//!
//! // …and replay it against a fresh copy of the workload.
//! let mut b = MemoryBuilder::new();
//! let w2 = b.alloc(0);
//! let mem2 = b.build_cc(2);
//! simulate(&mem2, 2, Box::new(replayed.into_policy()), SimOptions::default(), |ctx| {
//!     ctx.mem.faa(ctx.pid, w2, 1);
//! })?;
//! assert_eq!(mem2.read(0, w2), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::schedule::{SchedStatus, SchedulePolicy};
use sal_memory::Pid;
use std::fmt;
use std::str::FromStr;
use std::sync::{Arc, Mutex};

/// A captured schedule: the sequence of processes granted steps.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Recording {
    choices: Vec<Pid>,
}

impl Recording {
    /// Build a recording from an explicit choice sequence (e.g. an
    /// exploration witness).
    pub fn from_choices(choices: Vec<Pid>) -> Self {
        Recording { choices }
    }

    /// The recorded decisions.
    pub fn choices(&self) -> &[Pid] {
        &self.choices
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }

    /// Compact text form: comma-separated pids with run-length
    /// compression (`0x12` = twelve steps of process 0), suitable for
    /// pasting into a regression test.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        let mut i = 0;
        while i < self.choices.len() {
            let p = self.choices[i];
            let mut run = 1;
            while i + run < self.choices.len() && self.choices[i + run] == p {
                run += 1;
            }
            if !out.is_empty() {
                out.push(',');
            }
            if run > 1 {
                out.push_str(&format!("{p}x{run}"));
            } else {
                out.push_str(&p.to_string());
            }
            i += run;
        }
        out
    }

    /// Turn the recording into a replayable policy. Replay panics if
    /// the workload diverges from the recording (a choice names a
    /// finished process or the recording runs out) — that means the
    /// workload is not the one that was recorded.
    pub fn into_policy(self) -> Replay {
        Replay {
            choices: self.choices.into_iter(),
        }
    }
}

/// Error parsing a serialized [`Recording`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRecordingError {
    token: String,
}

impl fmt::Display for ParseRecordingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid recording token {:?}", self.token)
    }
}

impl std::error::Error for ParseRecordingError {}

impl FromStr for Recording {
    type Err = ParseRecordingError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut choices = Vec::new();
        if s.trim().is_empty() {
            return Ok(Recording { choices });
        }
        for token in s.split(',') {
            let token = token.trim();
            let bad = || ParseRecordingError {
                token: token.to_string(),
            };
            if let Some((p, run)) = token.split_once('x') {
                let p: Pid = p.parse().map_err(|_| bad())?;
                let run: usize = run.parse().map_err(|_| bad())?;
                if run == 0 {
                    return Err(bad());
                }
                choices.extend(std::iter::repeat_n(p, run));
            } else {
                choices.push(token.parse().map_err(|_| bad())?);
            }
        }
        Ok(Recording { choices })
    }
}

/// Replays a [`Recording`] as a schedule policy.
#[derive(Debug)]
pub struct Replay {
    choices: std::vec::IntoIter<Pid>,
}

impl SchedulePolicy for Replay {
    fn next(&mut self, status: &SchedStatus<'_>) -> Pid {
        match self.choices.next() {
            Some(p) => {
                assert!(
                    !status.finished[p],
                    "replay diverged: recorded choice {p} is finished at step {} — \
                     the workload differs from the recorded one",
                    status.step
                );
                p
            }
            None => panic!(
                "replay diverged: recording exhausted at step {} but processes are still live",
                status.step
            ),
        }
    }

    fn peek_run(&self, _status: &SchedStatus<'_>, chosen: Pid) -> u64 {
        // The upcoming decisions are literally written down: the run is
        // the recording's leading repeat of `chosen`. (No finished
        // check needed — only the leaseholder runs during the lease, so
        // a run that outlives the process is simply cut short by the
        // gate and the surplus never committed; the following next()
        // call then reports the divergence exactly as per-step replay
        // would.)
        self.choices
            .as_slice()
            .iter()
            .take_while(|&&p| p == chosen)
            .count() as u64
    }

    fn commit_run(&mut self, chosen: Pid, taken: u64) {
        for _ in 0..taken {
            let p = self.choices.next();
            debug_assert_eq!(p, Some(chosen), "committed lease diverged from recording");
        }
    }
}

/// Shared handle to a recording being captured.
#[derive(Clone, Debug, Default)]
pub struct RecordingHandle {
    inner: Arc<Mutex<Recording>>,
}

impl RecordingHandle {
    /// Snapshot the recording captured so far.
    pub fn snapshot(&self) -> Recording {
        self.inner.lock().unwrap().clone()
    }
}

/// Wraps any policy, recording every decision it makes.
pub struct Recorder {
    inner: Box<dyn SchedulePolicy>,
    recording: RecordingHandle,
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recorder").finish_non_exhaustive()
    }
}

impl Recorder {
    /// Record the decisions of `inner`.
    pub fn wrap(inner: Box<dyn SchedulePolicy>) -> Self {
        Recorder {
            inner,
            recording: RecordingHandle::default(),
        }
    }

    /// Handle for retrieving the recording after (or during) the run.
    pub fn recording(&self) -> RecordingHandle {
        self.recording.clone()
    }
}

impl SchedulePolicy for Recorder {
    fn next(&mut self, status: &SchedStatus<'_>) -> Pid {
        let p = self.inner.next(status);
        self.recording.inner.lock().unwrap().choices.push(p);
        p
    }

    fn peek_run(&self, status: &SchedStatus<'_>, chosen: Pid) -> u64 {
        self.inner.peek_run(status, chosen)
    }

    fn commit_run(&mut self, chosen: Pid, taken: u64) {
        self.inner.commit_run(chosen, taken);
        self.recording
            .inner
            .lock()
            .unwrap()
            .choices
            .extend(std::iter::repeat_n(chosen, taken as usize));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::RandomSchedule;
    use crate::sim::{simulate, SimOptions};
    use sal_memory::{Mem, MemoryBuilder};
    use std::sync::Mutex as StdMutex;

    fn run_workload(policy: Box<dyn SchedulePolicy>) -> (Vec<u64>, u64) {
        let mut b = MemoryBuilder::new();
        let w = b.alloc(0);
        let mem = b.build_cc(3);
        let trace = StdMutex::new(Vec::new());
        let report = simulate(&mem, 3, policy, SimOptions::default(), |ctx| {
            for _ in 0..5 {
                let v = ctx.mem.faa(ctx.pid, w, 1);
                trace.lock().unwrap().push(v * 4 + ctx.pid as u64);
            }
        })
        .unwrap();
        (trace.into_inner().unwrap(), report.steps)
    }

    #[test]
    fn replay_reproduces_the_recorded_execution_exactly() {
        let recorder = Recorder::wrap(Box::new(RandomSchedule::seeded(99)));
        let handle = recorder.recording();
        let (original, steps) = run_workload(Box::new(recorder));
        let recording = handle.snapshot();
        assert_eq!(recording.len() as u64, steps);

        let (replayed, replay_steps) = run_workload(Box::new(recording.into_policy()));
        // Same linearization values in the same per-process order ⇒ the
        // executions are step-for-step identical.
        let mut a = original;
        let mut b = replayed;
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(replay_steps, steps);
    }

    #[test]
    fn serialization_round_trips_with_run_length_compression() {
        let r = Recording {
            choices: vec![0, 0, 0, 1, 2, 2, 0],
        };
        let s = r.serialize();
        assert_eq!(s, "0x3,1,2x2,0");
        let back: Recording = s.parse().unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn empty_recording_round_trips() {
        let r = Recording::default();
        assert!(r.is_empty());
        let back: Recording = r.serialize().parse().unwrap();
        assert_eq!(back.len(), 0);
    }

    #[test]
    fn malformed_strings_are_rejected() {
        assert!("0,x3".parse::<Recording>().is_err());
        assert!("1x0".parse::<Recording>().is_err());
        assert!("a".parse::<Recording>().is_err());
        assert!("1,,2".parse::<Recording>().is_err());
        let e = "zz".parse::<Recording>().unwrap_err();
        assert!(e.to_string().contains("zz"));
    }

    #[test]
    #[should_panic(expected = "replay diverged")]
    fn divergent_replay_panics_with_context() {
        // Recording from a 15-step-per-process workload replayed against
        // a longer one: the recording runs out.
        let short: Recording = "0x2,1x2".parse().unwrap();
        let _ = run_workload(Box::new(short.into_policy()));
    }
}
