//! A small deterministic PRNG for schedules and tests.
//!
//! The build environment is offline, so the workspace carries its own
//! generator instead of depending on an external crate. SplitMix64 is
//! more than adequate here: schedule generation needs speed,
//! determinism per seed, and reasonable equidistribution — not
//! cryptographic strength.

/// SplitMix64-based deterministic PRNG.
///
/// The same seed always produces the same stream, on every platform —
/// schedules (and therefore whole simulated executions) are
/// reproducible from a single `u64`.
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Seed the generator. Equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        SmallRng { state: seed }
    }

    /// Next raw 64-bit output (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `range` (half-open). Panics on an empty range.
    pub fn random_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        let span = (range.end - range.start) as u64;
        // Multiply-shift rejection-free mapping; bias is ≤ span/2⁶⁴,
        // irrelevant for schedule generation.
        let hi = ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64;
        range.start + hi as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn random_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_are_respected_and_covered() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range(3..13);
            assert!((3..13).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
    }

    #[test]
    fn bool_probabilities_are_roughly_honoured() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits} of ~2500");
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
