//! Schedule policies: who takes the next step.
//!
//! The paper's bounds are worst-case over *all* asynchronous schedules;
//! the simulator drives algorithms with fair round-robin schedules (for
//! starvation-freedom checks), seeded random schedules (statistical
//! interleaving coverage), and scripted prefixes (to pin down specific
//! races such as the crossed-paths scenarios of Figure 2).

use crate::rng::SmallRng;
use sal_memory::Pid;

/// View of the simulation the policy may consult.
#[derive(Debug)]
pub struct SchedStatus<'a> {
    /// Which processes have finished.
    pub finished: &'a [bool],
    /// Steps granted so far.
    pub step: u64,
}

impl SchedStatus<'_> {
    /// Number of processes still running.
    pub fn live(&self) -> usize {
        self.finished.iter().filter(|&&f| !f).count()
    }
}

/// Chooses which live process takes the next step.
pub trait SchedulePolicy: Send {
    /// Pick the next process; must return a pid with
    /// `status.finished[pid] == false`. Called only while at least one
    /// process is live.
    fn next(&mut self, status: &SchedStatus<'_>) -> Pid;
}

/// Fair round-robin over live processes.
#[derive(Debug, Default)]
pub struct RoundRobin {
    cursor: usize,
}

impl RoundRobin {
    /// New round-robin policy starting at process 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SchedulePolicy for RoundRobin {
    fn next(&mut self, status: &SchedStatus<'_>) -> Pid {
        let n = status.finished.len();
        for _ in 0..n {
            let p = self.cursor % n;
            self.cursor += 1;
            if !status.finished[p] {
                return p;
            }
        }
        unreachable!("next() called with no live process");
    }
}

/// Uniformly random choice among live processes, from a seeded RNG —
/// deterministic given the seed, fair with probability 1.
#[derive(Debug)]
pub struct RandomSchedule {
    rng: SmallRng,
}

impl RandomSchedule {
    /// Random schedule from `seed`.
    pub fn seeded(seed: u64) -> Self {
        RandomSchedule {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl SchedulePolicy for RandomSchedule {
    fn next(&mut self, status: &SchedStatus<'_>) -> Pid {
        let live: Vec<Pid> = (0..status.finished.len())
            .filter(|&p| !status.finished[p])
            .collect();
        live[self.rng.random_range(0..live.len())]
    }
}

/// A random schedule that *bursts*: it keeps scheduling the same process
/// for a geometrically distributed run before switching. Long runs of one
/// process are exactly what expose handoff races (e.g. an aborter
/// completing `Remove` while an exiter is mid-`FindNext`).
#[derive(Debug)]
pub struct BurstySchedule {
    rng: SmallRng,
    current: Option<Pid>,
    continue_prob: f64,
}

impl BurstySchedule {
    /// Bursty schedule from `seed`; after each step the current process
    /// keeps running with probability `continue_prob`.
    pub fn seeded(seed: u64, continue_prob: f64) -> Self {
        assert!((0.0..1.0).contains(&continue_prob));
        BurstySchedule {
            rng: SmallRng::seed_from_u64(seed),
            current: None,
            continue_prob,
        }
    }
}

impl SchedulePolicy for BurstySchedule {
    fn next(&mut self, status: &SchedStatus<'_>) -> Pid {
        if let Some(p) = self.current {
            if !status.finished[p] && self.rng.random_bool(self.continue_prob) {
                return p;
            }
        }
        let live: Vec<Pid> = (0..status.finished.len())
            .filter(|&p| !status.finished[p])
            .collect();
        let p = live[self.rng.random_range(0..live.len())];
        self.current = Some(p);
        p
    }
}

/// Runs a scripted prefix of pids (skipping entries for finished
/// processes), then falls back to another policy. Used to reproduce
/// specific interleavings deterministically.
pub struct Scripted {
    script: std::vec::IntoIter<Pid>,
    fallback: Box<dyn SchedulePolicy>,
}

impl std::fmt::Debug for Scripted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scripted").finish_non_exhaustive()
    }
}

impl Scripted {
    /// Play `script`, then delegate to `fallback`.
    pub fn new(script: Vec<Pid>, fallback: Box<dyn SchedulePolicy>) -> Self {
        Scripted {
            script: script.into_iter(),
            fallback,
        }
    }
}

impl SchedulePolicy for Scripted {
    fn next(&mut self, status: &SchedStatus<'_>) -> Pid {
        for p in self.script.by_ref() {
            if !status.finished[p] {
                return p;
            }
        }
        self.fallback.next(status)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn status(finished: &[bool]) -> SchedStatus<'_> {
        SchedStatus { finished, step: 0 }
    }

    #[test]
    fn round_robin_skips_finished() {
        let mut rr = RoundRobin::new();
        let fin = [false, true, false];
        let picks: Vec<Pid> = (0..4).map(|_| rr.next(&status(&fin))).collect();
        assert_eq!(picks, vec![0, 2, 0, 2]);
    }

    #[test]
    fn random_schedule_is_deterministic_per_seed() {
        let fin = vec![false; 8];
        let a: Vec<Pid> = {
            let mut s = RandomSchedule::seeded(42);
            (0..100).map(|_| s.next(&status(&fin))).collect()
        };
        let b: Vec<Pid> = {
            let mut s = RandomSchedule::seeded(42);
            (0..100).map(|_| s.next(&status(&fin))).collect()
        };
        assert_eq!(a, b);
        let c: Vec<Pid> = {
            let mut s = RandomSchedule::seeded(43);
            (0..100).map(|_| s.next(&status(&fin))).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn random_schedule_touches_everyone() {
        let fin = vec![false; 4];
        let mut s = RandomSchedule::seeded(7);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.next(&status(&fin))] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bursty_schedule_produces_runs() {
        let fin = vec![false; 4];
        let mut s = BurstySchedule::seeded(1, 0.9);
        let picks: Vec<Pid> = (0..200).map(|_| s.next(&status(&fin))).collect();
        let runs = picks.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(runs > 100, "expected long runs, got {runs} repeats");
    }

    #[test]
    fn scripted_prefix_then_fallback() {
        let fin = [false, false];
        let mut s = Scripted::new(vec![1, 1, 0], Box::new(RoundRobin::new()));
        assert_eq!(s.next(&status(&fin)), 1);
        assert_eq!(s.next(&status(&fin)), 1);
        assert_eq!(s.next(&status(&fin)), 0);
        // Fallback round-robin takes over.
        assert_eq!(s.next(&status(&fin)), 0);
        assert_eq!(s.next(&status(&fin)), 1);
    }

    #[test]
    fn scripted_skips_finished_entries() {
        let fin = [false, true];
        let mut s = Scripted::new(vec![1, 1, 0], Box::new(RoundRobin::new()));
        assert_eq!(s.next(&status(&fin)), 0);
    }
}
