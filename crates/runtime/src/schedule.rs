//! Schedule policies: who takes the next step.
//!
//! The paper's bounds are worst-case over *all* asynchronous schedules;
//! the simulator drives algorithms with fair round-robin schedules (for
//! starvation-freedom checks), seeded random schedules (statistical
//! interleaving coverage), and scripted prefixes (to pin down specific
//! races such as the crossed-paths scenarios of Figure 2).

use crate::rng::SmallRng;
use sal_memory::Pid;

/// View of the simulation the policy may consult.
#[derive(Debug)]
pub struct SchedStatus<'a> {
    /// Which processes have finished.
    pub finished: &'a [bool],
    /// Steps granted so far.
    pub step: u64,
}

impl SchedStatus<'_> {
    /// Number of processes still running.
    pub fn live(&self) -> usize {
        self.finished.iter().filter(|&&f| !f).count()
    }
}

/// Upper bound on how far a policy simulates ahead in
/// [`SchedulePolicy::peek_run`]. Purely a work bound on the lookahead
/// itself — the scheduler additionally caps leases by the step limit,
/// the abort plan and the user-facing `--lease` cap.
pub const PEEK_CAP: u64 = 4096;

/// Chooses which live process takes the next step.
pub trait SchedulePolicy: Send {
    /// Pick the next process; must return a pid with
    /// `status.finished[pid] == false`. Called only while at least one
    /// process is live.
    fn next(&mut self, status: &SchedStatus<'_>) -> Pid;

    /// Lookahead for step leases: immediately after a [`Self::next`]
    /// call returned `chosen`, how many *additional*
    /// consecutive decisions would also pick `chosen`, assuming the
    /// live set does not change? Must be side-effect-free (simulate on
    /// clones, never mutate). The scheduler may then grant `chosen` a
    /// lease and confirm the decisions actually consumed with
    /// [`commit_run`](Self::commit_run).
    ///
    /// The default is `0`: no lookahead, every step is a fresh
    /// decision — always correct, never leases.
    fn peek_run(&self, status: &SchedStatus<'_>, chosen: Pid) -> u64 {
        let _ = (status, chosen);
        0
    }

    /// Advance internal state exactly as if [`next`](Self::next) had
    /// returned `chosen` `taken` more times. Called with
    /// `1 <= taken <= peek_run(..)`'s return value, after the leased
    /// steps executed; `chosen` was live at each of those decision
    /// points (only the leaseholder runs during a lease, and a holder
    /// that finishes does so on its *last* executed step).
    ///
    /// Policies that keep the default `peek_run` never see this call.
    fn commit_run(&mut self, chosen: Pid, taken: u64) {
        let _ = chosen;
        unreachable!("commit_run({taken}) on a policy that never peeks ahead");
    }
}

/// Fair round-robin over live processes.
#[derive(Debug, Default)]
pub struct RoundRobin {
    cursor: usize,
}

impl RoundRobin {
    /// New round-robin policy starting at process 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SchedulePolicy for RoundRobin {
    fn next(&mut self, status: &SchedStatus<'_>) -> Pid {
        let n = status.finished.len();
        for _ in 0..n {
            let p = self.cursor % n;
            self.cursor += 1;
            if !status.finished[p] {
                return p;
            }
        }
        unreachable!("next() called with no live process");
    }

    fn peek_run(&self, status: &SchedStatus<'_>, _chosen: Pid) -> u64 {
        // Round-robin re-picks the same pid consecutively only when it
        // is the sole survivor — and then forever (until it finishes).
        if status.live() == 1 {
            u64::MAX
        } else {
            0
        }
    }

    fn commit_run(&mut self, _chosen: Pid, _taken: u64) {
        // Each solo next() leaves `cursor ≡ chosen + 1 (mod n)` — the
        // scan wraps all the way around back to `chosen`. Only
        // `cursor mod n` is observable, so replaying the skipped calls
        // would be a no-op.
    }
}

/// Uniformly random choice among live processes, from a seeded RNG —
/// deterministic given the seed, fair with probability 1.
#[derive(Debug)]
pub struct RandomSchedule {
    rng: SmallRng,
    /// `live.len()` at the last `next()` call: `commit_run` must replay
    /// draws over the same span to keep the RNG stream byte-identical.
    last_len: usize,
}

impl RandomSchedule {
    /// Random schedule from `seed`.
    pub fn seeded(seed: u64) -> Self {
        RandomSchedule {
            rng: SmallRng::seed_from_u64(seed),
            last_len: 0,
        }
    }
}

impl SchedulePolicy for RandomSchedule {
    fn next(&mut self, status: &SchedStatus<'_>) -> Pid {
        let live: Vec<Pid> = (0..status.finished.len())
            .filter(|&p| !status.finished[p])
            .collect();
        self.last_len = live.len();
        live[self.rng.random_range(0..live.len())]
    }

    fn peek_run(&self, status: &SchedStatus<'_>, chosen: Pid) -> u64 {
        // Simulate upcoming draws on a clone; every draw consumes RNG
        // state (even over a single live process), so the run length is
        // however many consecutive draws land on `chosen`.
        let live: Vec<Pid> = (0..status.finished.len())
            .filter(|&p| !status.finished[p])
            .collect();
        let mut rng = self.rng.clone();
        let mut run = 0;
        while run < PEEK_CAP && live[rng.random_range(0..live.len())] == chosen {
            run += 1;
        }
        run
    }

    fn commit_run(&mut self, _chosen: Pid, taken: u64) {
        // Replay the draws peek_run simulated so the real RNG stream
        // advances identically to `taken` per-step next() calls.
        for _ in 0..taken {
            let _ = self.rng.random_range(0..self.last_len);
        }
    }
}

/// A random schedule that *bursts*: it keeps scheduling the same process
/// for a geometrically distributed run before switching. Long runs of one
/// process are exactly what expose handoff races (e.g. an aborter
/// completing `Remove` while an exiter is mid-`FindNext`).
#[derive(Debug)]
pub struct BurstySchedule {
    rng: SmallRng,
    current: Option<Pid>,
    continue_prob: f64,
}

impl BurstySchedule {
    /// Bursty schedule from `seed`; after each step the current process
    /// keeps running with probability `continue_prob`.
    pub fn seeded(seed: u64, continue_prob: f64) -> Self {
        assert!((0.0..1.0).contains(&continue_prob));
        BurstySchedule {
            rng: SmallRng::seed_from_u64(seed),
            current: None,
            continue_prob,
        }
    }
}

impl SchedulePolicy for BurstySchedule {
    fn next(&mut self, status: &SchedStatus<'_>) -> Pid {
        if let Some(p) = self.current {
            if !status.finished[p] && self.rng.random_bool(self.continue_prob) {
                return p;
            }
        }
        let live: Vec<Pid> = (0..status.finished.len())
            .filter(|&p| !status.finished[p])
            .collect();
        let p = live[self.rng.random_range(0..live.len())];
        self.current = Some(p);
        p
    }

    fn peek_run(&self, _status: &SchedStatus<'_>, chosen: Pid) -> u64 {
        // After next() returned `chosen`, `current == Some(chosen)` and
        // `chosen` is live (it holds the turn), so each upcoming call
        // consumes one continuation draw and re-picks `chosen` while
        // the draws come up true. Count them on a clone.
        debug_assert_eq!(self.current, Some(chosen));
        let mut rng = self.rng.clone();
        let mut run = 0;
        while run < PEEK_CAP && rng.random_bool(self.continue_prob) {
            run += 1;
        }
        run
    }

    fn commit_run(&mut self, _chosen: Pid, taken: u64) {
        for _ in 0..taken {
            let cont = self.rng.random_bool(self.continue_prob);
            debug_assert!(cont, "committed draw diverged from peek_run");
        }
    }
}

/// Runs a scripted prefix of pids (skipping entries for finished
/// processes), then falls back to another policy. Used to reproduce
/// specific interleavings deterministically.
pub struct Scripted {
    script: std::vec::IntoIter<Pid>,
    fallback: Box<dyn SchedulePolicy>,
}

impl std::fmt::Debug for Scripted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scripted").finish_non_exhaustive()
    }
}

impl Scripted {
    /// Play `script`, then delegate to `fallback`.
    pub fn new(script: Vec<Pid>, fallback: Box<dyn SchedulePolicy>) -> Self {
        Scripted {
            script: script.into_iter(),
            fallback,
        }
    }
}

impl SchedulePolicy for Scripted {
    fn next(&mut self, status: &SchedStatus<'_>) -> Pid {
        for p in self.script.by_ref() {
            if !status.finished[p] {
                return p;
            }
        }
        self.fallback.next(status)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn status(finished: &[bool]) -> SchedStatus<'_> {
        SchedStatus { finished, step: 0 }
    }

    #[test]
    fn round_robin_skips_finished() {
        let mut rr = RoundRobin::new();
        let fin = [false, true, false];
        let picks: Vec<Pid> = (0..4).map(|_| rr.next(&status(&fin))).collect();
        assert_eq!(picks, vec![0, 2, 0, 2]);
    }

    #[test]
    fn random_schedule_is_deterministic_per_seed() {
        let fin = vec![false; 8];
        let a: Vec<Pid> = {
            let mut s = RandomSchedule::seeded(42);
            (0..100).map(|_| s.next(&status(&fin))).collect()
        };
        let b: Vec<Pid> = {
            let mut s = RandomSchedule::seeded(42);
            (0..100).map(|_| s.next(&status(&fin))).collect()
        };
        assert_eq!(a, b);
        let c: Vec<Pid> = {
            let mut s = RandomSchedule::seeded(43);
            (0..100).map(|_| s.next(&status(&fin))).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn random_schedule_touches_everyone() {
        let fin = vec![false; 4];
        let mut s = RandomSchedule::seeded(7);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.next(&status(&fin))] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bursty_schedule_produces_runs() {
        let fin = vec![false; 4];
        let mut s = BurstySchedule::seeded(1, 0.9);
        let picks: Vec<Pid> = (0..200).map(|_| s.next(&status(&fin))).collect();
        let runs = picks.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(runs > 100, "expected long runs, got {runs} repeats");
    }

    #[test]
    fn scripted_prefix_then_fallback() {
        let fin = [false, false];
        let mut s = Scripted::new(vec![1, 1, 0], Box::new(RoundRobin::new()));
        assert_eq!(s.next(&status(&fin)), 1);
        assert_eq!(s.next(&status(&fin)), 1);
        assert_eq!(s.next(&status(&fin)), 0);
        // Fallback round-robin takes over.
        assert_eq!(s.next(&status(&fin)), 0);
        assert_eq!(s.next(&status(&fin)), 1);
    }

    #[test]
    fn scripted_skips_finished_entries() {
        let fin = [false, true];
        let mut s = Scripted::new(vec![1, 1, 0], Box::new(RoundRobin::new()));
        assert_eq!(s.next(&status(&fin)), 0);
    }

    /// Drive `policy` for `steps` decisions using peek_run/commit_run
    /// greedily (take every full peeked run) and return the flattened
    /// decision stream. Byte-identity of the simulator rests on this
    /// equalling the plain per-step stream.
    fn leased_stream(policy: &mut dyn SchedulePolicy, fin: &[bool], steps: usize) -> Vec<Pid> {
        let mut out = Vec::new();
        while out.len() < steps {
            let st = status(fin);
            let p = policy.next(&st);
            out.push(p);
            let extra = policy
                .peek_run(&status(fin), p)
                .min((steps - out.len()) as u64);
            if extra > 0 {
                policy.commit_run(p, extra);
                out.extend(std::iter::repeat_n(p, extra as usize));
            }
        }
        out
    }

    #[test]
    fn round_robin_lease_stream_matches_per_step() {
        let fin = [true, false, true];
        let per_step: Vec<Pid> = {
            let mut rr = RoundRobin::new();
            (0..50).map(|_| rr.next(&status(&fin))).collect()
        };
        let leased = leased_stream(&mut RoundRobin::new(), &fin, 50);
        assert_eq!(per_step, leased);
        assert_eq!(per_step, vec![1; 50]);
    }

    #[test]
    fn round_robin_does_not_peek_while_contended() {
        let rr = RoundRobin::new();
        let fin = [false, false];
        assert_eq!(rr.peek_run(&status(&fin), 0), 0);
    }

    #[test]
    fn random_lease_stream_matches_per_step() {
        for seed in [1u64, 7, 42, 1234] {
            let fin = vec![false; 2];
            let per_step: Vec<Pid> = {
                let mut s = RandomSchedule::seeded(seed);
                (0..300).map(|_| s.next(&status(&fin))).collect()
            };
            let leased = leased_stream(&mut RandomSchedule::seeded(seed), &fin, 300);
            assert_eq!(per_step, leased, "seed {seed}");
        }
    }

    #[test]
    fn random_solo_lease_replays_the_consumed_draws() {
        // One live process: every pick is pid 2, but each still burns a
        // draw — commit_run must keep the RNG stream aligned so the
        // schedule is unchanged once more processes matter again.
        let fin = [true, true, false];
        let per_step: Vec<Pid> = {
            let mut s = RandomSchedule::seeded(9);
            (0..64).map(|_| s.next(&status(&fin))).collect()
        };
        let leased = leased_stream(&mut RandomSchedule::seeded(9), &fin, 64);
        assert_eq!(per_step, leased);
    }

    #[test]
    fn bursty_lease_stream_matches_per_step() {
        for seed in [1u64, 5, 99] {
            let fin = vec![false; 4];
            let per_step: Vec<Pid> = {
                let mut s = BurstySchedule::seeded(seed, 0.9);
                (0..500).map(|_| s.next(&status(&fin))).collect()
            };
            let leased = leased_stream(&mut BurstySchedule::seeded(seed, 0.9), &fin, 500);
            assert_eq!(per_step, leased, "seed {seed}");
        }
    }

    #[test]
    fn bursty_peeks_whole_bursts() {
        let fin = vec![false; 4];
        let mut s = BurstySchedule::seeded(3, 0.9);
        let p = s.next(&status(&fin));
        // With continue_prob 0.9 the expected run is ~10 steps; any
        // positive peek proves the lease path engages on bursts.
        let mut peeked_any = s.peek_run(&status(&fin), p) > 0;
        for _ in 0..50 {
            let p = s.next(&status(&fin));
            peeked_any |= s.peek_run(&status(&fin), p) > 0;
        }
        assert!(peeked_any, "bursty schedule never offered a lease");
    }

    #[test]
    fn peek_run_is_side_effect_free() {
        let fin = vec![false; 3];
        let mut a = RandomSchedule::seeded(11);
        let mut b = RandomSchedule::seeded(11);
        let pa = a.next(&status(&fin));
        let pb = b.next(&status(&fin));
        assert_eq!(pa, pb);
        // Peek a twice; never peek b. Streams must stay identical.
        let _ = a.peek_run(&status(&fin), pa);
        let _ = a.peek_run(&status(&fin), pa);
        let sa: Vec<Pid> = (0..100).map(|_| a.next(&status(&fin))).collect();
        let sb: Vec<Pid> = (0..100).map(|_| b.next(&status(&fin))).collect();
        assert_eq!(sa, sb);
    }
}
