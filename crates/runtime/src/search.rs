//! Guided schedule search: the pluggable [`SearchStrategy`] engine room
//! behind [`explore_guided`](crate::explore::explore_guided).
//!
//! The bounded-deviation BFS in [`explore`](crate::explore) treats every
//! run as an opaque verdict. Guided search opens the box: each run can
//! also report its **op trace** — the step-ordered sequence of shared-
//! memory operations, captured by an [`OpTraceSink`] layered under the
//! step gate — and a **cost** (typically the run's worst per-passage RMR
//! count from `sal_obs::PassageStats`). From the trace the strategies
//! derive:
//!
//! * an **independence relation** ([`independent`]): two steps commute
//!   when they are by distinct processes and touch disjoint words (or
//!   are both reads). Swapping adjacent independent steps cannot change
//!   any process's observations, so the two interleavings are
//!   behaviourally equivalent (a Mazurkiewicz trace class).
//! * **state fingerprints** (`run_fingerprints`): each step hashes its
//!   process, that process's program position (its per-pid step index),
//!   the touched word and the observed value; the *state* after a prefix
//!   is the XOR of its step hashes. XOR is commutative, and swapped
//!   independent steps have identical step hashes on both sides of the
//!   swap, so equivalent prefixes collapse to the same 64-bit key — a
//!   compact dedup table instead of an ever-growing schedule list.
//! * a **canonical witness** ([`canonical_schedule`]): the
//!   lexicographically least linearization of the run's dependence
//!   partial order. Equivalent violating runs canonicalize to the same
//!   schedule, so different strategies can be compared witness-for-
//!   witness.
//!
//! Four strategies implement the trait: [`BfsStrategy`] (the exhaustive
//! reference), [`DporStrategy`] (sleep-set-style pruning + fingerprint
//! dedup), [`BestFirstStrategy`] (cost-keyed priority frontier) and
//! [`FuzzStrategy`] (seeded mutation of recorded prefixes with
//! fingerprint-coverage feedback). All of them only *order and filter*
//! the forced prefixes to execute; the engine in `explore` runs every
//! batch on the work-stealing pool and digests outcomes in index order,
//! so results are identical at any `jobs` count.

use crate::explore::{Decision, ExploreOptions, ForcedSchedule};
use crate::rng::SmallRng;
use sal_memory::{Interceptor, OpKind, Pid, WordId};
use sal_obs::fp::{mix64, Fingerprint};
use std::collections::{HashSet, VecDeque};
use std::sync::Mutex;

/// One shared-memory operation as observed in step order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepOp {
    /// The process that took the step.
    pub pid: Pid,
    /// The operation kind.
    pub kind: OpKind,
    /// Index of the word the operation touched.
    pub word: u32,
    /// The observed value (read value, written value, CAS success
    /// flag, previous value for F&A/SWAP — see
    /// [`Interceptor::after`]).
    pub value: u64,
}

/// An [`Interceptor`] that records every operation as a [`StepOp`], in
/// global step order.
///
/// Layer it *under* the simulator's step gate (i.e. wrap the raw memory
/// with it, then hand the wrapped memory to `simulate`/`run_lock`): the
/// gate serializes steps, so the hooks fire one at a time while the
/// turn is held and the recorded order is exactly the schedule order —
/// entry `i` of the trace is the operation performed by the `i`-th
/// scheduling decision.
#[derive(Debug, Default)]
pub struct OpTraceSink {
    ops: Mutex<Vec<StepOp>>,
}

impl OpTraceSink {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Take the recorded trace, leaving the sink empty. Call this
    /// *immediately* after the simulation returns — verdict reads done
    /// through the same layered memory would otherwise append to it.
    pub fn take(&self) -> Vec<StepOp> {
        std::mem::take(&mut self.ops.lock().unwrap())
    }
}

impl Interceptor for OpTraceSink {
    fn after(&self, p: Pid, kind: OpKind, w: WordId, value: u64, _remote: bool) {
        self.ops.lock().unwrap().push(StepOp {
            pid: p,
            kind,
            word: w.index() as u32,
            value,
        });
    }
}

/// Do two steps commute? Distinct processes touching disjoint words
/// always do; so do two reads of the same word. Same-process steps
/// never commute (program order), nor does a write-type op with any
/// other op on the same word.
#[must_use]
pub fn independent(a: &StepOp, b: &StepOp) -> bool {
    a.pid != b.pid && (a.word != b.word || (a.kind == OpKind::Read && b.kind == OpKind::Read))
}

/// Hash one step: process, per-process program position, op kind, word
/// and observed value. Two executions place the same step hash at a
/// step exactly when that process performs the same op with the same
/// outcome at the same point of its program — the ingredients of the
/// state-fingerprint soundness argument (see DESIGN.md §14).
fn step_hash(op: &StepOp, pid_ix: u64) -> u64 {
    let kw = (u64::from(op.word) << 3) | op.kind as u64;
    mix64(op.pid as u64 ^ mix64(pid_ix ^ mix64(kw ^ mix64(op.value))))
}

/// Per-run fingerprint scan: the cumulative state fingerprint after
/// each step, plus the final one.
pub(crate) struct FpScan {
    /// `step_fps[i]` = fingerprint of the state reached after step `i`.
    pub step_fps: Vec<u64>,
    /// Fingerprint of the run's final state (0 for an empty run).
    pub final_fp: u64,
}

/// Fingerprint every prefix of a run. When the op trace aligns with the
/// schedule (one op per decision) the commutation-invariant step-hash
/// XOR is used; otherwise (legacy verdict-only runs) an order-sensitive
/// fold over the chosen pids stands in — still a valid dedup key, just
/// blind to commutation.
pub(crate) fn run_fingerprints(schedule: &[Pid], ops: &[StepOp]) -> FpScan {
    let mut step_fps = Vec::with_capacity(schedule.len());
    if ops.len() == schedule.len() {
        let mut acc = 0u64;
        let mut pid_ix = vec![0u64; 0];
        for op in ops {
            if op.pid >= pid_ix.len() {
                pid_ix.resize(op.pid + 1, 0);
            }
            acc ^= step_hash(op, pid_ix[op.pid]);
            pid_ix[op.pid] += 1;
            step_fps.push(acc);
        }
    } else {
        let mut f = Fingerprint::new();
        for &p in schedule {
            f.fold_ordered(p as u64 + 1);
            step_fps.push(f.value());
        }
    }
    let final_fp = step_fps.last().copied().unwrap_or(0);
    FpScan { step_fps, final_fp }
}

/// The lexicographically least linearization of the run's dependence
/// partial order: repeatedly emit the smallest-pid step whose
/// dependence predecessors have all been emitted. Equivalent runs (same
/// Mazurkiewicz class) canonicalize to the same schedule; same-process
/// steps stay in program order because they never commute. Without an
/// aligned op trace the schedule is its own canonical form.
#[must_use]
pub fn canonical_schedule(schedule: &[Pid], ops: &[StepOp]) -> Vec<Pid> {
    let n = schedule.len();
    if ops.len() != n || n == 0 {
        return schedule.to_vec();
    }
    // preds[j] = number of i < j with ops[i] dependent on ops[j].
    let mut preds = vec![0usize; n];
    for j in 0..n {
        for i in 0..j {
            if !independent(&ops[i], &ops[j]) {
                preds[j] += 1;
            }
        }
    }
    let mut emitted = vec![false; n];
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let next = (0..n)
            .filter(|&j| !emitted[j] && preds[j] == 0)
            .min_by_key(|&j| (ops[j].pid, j))
            .expect("dependence order is acyclic");
        emitted[next] = true;
        out.push(ops[next].pid);
        for j in next + 1..n {
            if !emitted[j] && !independent(&ops[next], &ops[j]) {
                preds[j] -= 1;
            }
        }
    }
    out
}

/// Dropped-work tallies, mirrored into
/// [`ExplorationResult`](crate::explore::ExplorationResult).
#[derive(Debug, Default, Clone, Copy)]
pub struct SearchCounters {
    /// Children skipped by the sleep-set independence rule.
    pub pruned: usize,
    /// Runs whose children were skipped because the run's final-state
    /// fingerprint had already been reached by an earlier run.
    pub deduped: usize,
}

/// One executed run, as the engine hands it to
/// [`SearchStrategy::absorb`] (in deterministic batch order).
#[derive(Debug)]
pub struct RunView<'a> {
    /// The forced prefix that produced the run.
    pub prefix: &'a [Pid],
    /// The full decision record (chosen pid + live set per step).
    pub record: &'a [Decision],
    /// The chosen pids of `record`, as one slice.
    pub schedule: &'a [Pid],
    /// The op trace (empty for verdict-only runs).
    pub ops: &'a [StepOp],
    /// The run's reported search cost (e.g. max per-passage RMRs).
    pub cost: u64,
    /// Whether this run's final-state fingerprint was first reached by
    /// this run.
    pub fresh: bool,
    /// How many per-step state fingerprints this run visited first.
    pub new_states: usize,
}

/// A pluggable search order over forced schedule prefixes.
///
/// The engine alternates `next_batch` → parallel execution → `absorb`
/// until the strategy runs dry or the run budget is exhausted. All
/// strategy state lives on the engine thread; determinism across worker
/// counts is the engine's job (index-ordered gathering), not the
/// strategy's.
pub trait SearchStrategy: Send {
    /// Display name ("bfs", "dpor", ...).
    fn name(&self) -> &'static str;

    /// The next prefixes to execute, at most `limit`. Returning an
    /// empty batch ends the search.
    fn next_batch(&mut self, limit: usize) -> Vec<Vec<Pid>>;

    /// Digest an executed batch (same order as returned by
    /// [`next_batch`](Self::next_batch)) and enqueue successors.
    fn absorb(
        &mut self,
        batch: &[RunView<'_>],
        opts: &ExploreOptions,
        counters: &mut SearchCounters,
    );

    /// Prefixes still queued (reported as truncated work when the run
    /// budget ends the search first).
    fn pending(&self) -> usize;
}

/// Which [`SearchStrategy`] to run; the value-level surface used by
/// CLIs and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Bounded-deviation breadth-first search — the exhaustive
    /// reference all other strategies are verdict-checked against.
    Bfs,
    /// BFS order with sleep-set independence pruning and final-state
    /// fingerprint dedup: equivalent interleavings are expanded once.
    Dpor,
    /// Cost-guided best-first search: the priority frontier expands the
    /// most expensive observed prefixes first (RMR witness hunting),
    /// with fingerprint dedup.
    BestFirst,
    /// Seeded schedule fuzzer: mutates recorded prefixes (splice,
    /// pid-swap, position shift) and keeps mutants that reach new state
    /// fingerprints as the corpus.
    Fuzz {
        /// PRNG seed; the whole search is a deterministic function of
        /// it (and the workload).
        seed: u64,
    },
}

impl Strategy {
    /// Construct the strategy implementation.
    #[must_use]
    pub fn build(self) -> Box<dyn SearchStrategy> {
        match self {
            Strategy::Bfs => Box::new(BfsStrategy::new()),
            Strategy::Dpor => Box::new(DporStrategy::new()),
            Strategy::BestFirst => Box::new(BestFirstStrategy::new()),
            Strategy::Fuzz { seed } => Box::new(FuzzStrategy::new(seed)),
        }
    }

    /// Stable label for tables and artifacts.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Bfs => "bfs",
            Strategy::Dpor => "dpor",
            Strategy::BestFirst => "best-first",
            Strategy::Fuzz { .. } => "fuzz",
        }
    }
}

impl std::str::FromStr for Strategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "bfs" => Ok(Strategy::Bfs),
            "dpor" => Ok(Strategy::Dpor),
            "best-first" | "bestfirst" => Ok(Strategy::BestFirst),
            "fuzz" => Ok(Strategy::Fuzz { seed: 1 }),
            other => Err(format!(
                "unknown strategy '{other}'; valid: bfs, dpor, best-first, fuzz"
            )),
        }
    }
}

/// The round-robin deviation count of `record[..=s]`, tracked
/// incrementally by [`expand_children`].
fn rr_default(last: Option<Pid>, live: &[Pid]) -> Pid {
    ForcedSchedule::round_robin_default(last, live)
}

/// Expand the bounded-deviation children of one executed run, exactly
/// like the classic BFS explorer — optionally skipping children whose
/// deviation commutes with the step it displaces (`prune`).
///
/// The pruning rule: deviating to `q` at step `s` schedules `q`'s
/// pending op (its next op in the observed trace) *before* the op the
/// run executed at `s`. When the two are [`independent`] the swapped
/// order reaches the same state, and the swap's representative — `q`
/// scheduled at `s + 1` — is still generated (the rule checks that the
/// sibling branch point exists within the depth/deviation budget, or
/// that the parent run itself already schedules `q` there). One
/// representative per commutation is enough; the rest is counted in
/// [`SearchCounters::pruned`].
pub(crate) fn expand_children(
    view: &RunView<'_>,
    opts: &ExploreOptions,
    prune: bool,
    counters: &mut SearchCounters,
    out: &mut Vec<Vec<Pid>>,
) {
    let record = view.record;
    let aligned = view.ops.len() == record.len();
    let prefix_len = view.prefix.len();
    let mut deviations = 0usize;
    let mut last: Option<Pid> = None;
    for (s, d) in record.iter().enumerate() {
        let default = rr_default(last, &d.live);
        if d.chosen != default {
            deviations += 1;
        }
        if s >= prefix_len && s < opts.max_branch_depth && deviations < opts.max_deviations {
            for &q in &d.live {
                if q == d.chosen {
                    continue;
                }
                if prune && aligned && prunable(view, opts, s, q, deviations) {
                    counters.pruned += 1;
                    continue;
                }
                let mut child: Vec<Pid> = view.schedule[..s].to_vec();
                child.push(q);
                out.push(child);
            }
        }
        last = Some(d.chosen);
    }
}

/// Is the child "deviate to `q` at step `s`" redundant under the
/// sleep-set rule? See [`expand_children`].
fn prunable(
    view: &RunView<'_>,
    opts: &ExploreOptions,
    s: usize,
    q: Pid,
    deviations: usize,
) -> bool {
    let record = view.record;
    let ops = view.ops;
    // q's pending op: q is live but not running at s, so the op it will
    // issue next is already determined — it is q's next op in the trace.
    let Some(pending) = ops[s..].iter().find(|o| o.pid == q) else {
        return false;
    };
    if !independent(&ops[s], pending) {
        return false;
    }
    // The swap representative is "q right after step s". Keep the child
    // unless that representative survives: either the parent run itself
    // schedules q at s + 1, or the sibling child (s + 1, q) will be
    // generated within the same budgets.
    if s + 1 >= record.len() || s + 1 >= opts.max_branch_depth {
        return false;
    }
    let d1 = &record[s + 1];
    if d1.chosen == q {
        return true;
    }
    if !d1.live.contains(&q) {
        return false;
    }
    let default1 = rr_default(Some(record[s].chosen), &d1.live);
    let deviations1 = deviations + usize::from(d1.chosen != default1);
    deviations1 < opts.max_deviations
}

/// Bounded-deviation BFS as a [`SearchStrategy`]: a FIFO frontier, no
/// pruning, no dedup — the exhaustive reference.
#[derive(Debug)]
pub struct BfsStrategy {
    queue: VecDeque<Vec<Pid>>,
}

impl BfsStrategy {
    /// A frontier holding only the empty prefix (the baseline run).
    #[must_use]
    pub fn new() -> Self {
        BfsStrategy {
            queue: VecDeque::from([Vec::new()]),
        }
    }
}

impl Default for BfsStrategy {
    fn default() -> Self {
        Self::new()
    }
}

impl SearchStrategy for BfsStrategy {
    fn name(&self) -> &'static str {
        "bfs"
    }

    fn next_batch(&mut self, limit: usize) -> Vec<Vec<Pid>> {
        let take = self.queue.len().min(limit);
        self.queue.drain(..take).collect()
    }

    fn absorb(
        &mut self,
        batch: &[RunView<'_>],
        opts: &ExploreOptions,
        counters: &mut SearchCounters,
    ) {
        let mut children = Vec::new();
        for view in batch {
            expand_children(view, opts, false, counters, &mut children);
        }
        self.queue.extend(children);
    }

    fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// BFS order + sleep-set pruning + fingerprint dedup: equivalent
/// interleavings are expanded once.
#[derive(Debug)]
pub struct DporStrategy {
    queue: VecDeque<Vec<Pid>>,
}

impl DporStrategy {
    /// A frontier holding only the empty prefix.
    #[must_use]
    pub fn new() -> Self {
        DporStrategy {
            queue: VecDeque::from([Vec::new()]),
        }
    }
}

impl Default for DporStrategy {
    fn default() -> Self {
        Self::new()
    }
}

impl SearchStrategy for DporStrategy {
    fn name(&self) -> &'static str {
        "dpor"
    }

    fn next_batch(&mut self, limit: usize) -> Vec<Vec<Pid>> {
        let take = self.queue.len().min(limit);
        self.queue.drain(..take).collect()
    }

    fn absorb(
        &mut self,
        batch: &[RunView<'_>],
        opts: &ExploreOptions,
        counters: &mut SearchCounters,
    ) {
        let mut children = Vec::new();
        for view in batch {
            if !view.fresh {
                // An earlier run already reached this exact state;
                // its expansion stands in for this one's.
                counters.deduped += 1;
                continue;
            }
            expand_children(view, opts, true, counters, &mut children);
        }
        self.queue.extend(children);
    }

    fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// Cost-guided best-first search: children inherit their parent run's
/// observed cost as priority; each round executes the most expensive
/// queued prefixes (ties broken by lexicographic prefix order, so the
/// schedule is deterministic). Fingerprint dedup is on; independence
/// pruning is off — an expensive run's commuting variants may price
/// differently under the cost model, and the frontier ordering already
/// focuses the budget.
#[derive(Debug)]
pub struct BestFirstStrategy {
    /// `(cost, prefix)` — re-sorted each round.
    queue: Vec<(u64, Vec<Pid>)>,
    /// Max prefixes per round: big enough to keep every worker busy,
    /// small enough that priorities keep steering.
    round: usize,
}

impl BestFirstStrategy {
    /// A frontier holding only the empty prefix at cost 0.
    #[must_use]
    pub fn new() -> Self {
        BestFirstStrategy {
            queue: vec![(0, Vec::new())],
            round: 64,
        }
    }
}

impl Default for BestFirstStrategy {
    fn default() -> Self {
        Self::new()
    }
}

impl SearchStrategy for BestFirstStrategy {
    fn name(&self) -> &'static str {
        "best-first"
    }

    fn next_batch(&mut self, limit: usize) -> Vec<Vec<Pid>> {
        // Highest cost first; among equal costs the lexicographically
        // least prefix.
        self.queue
            .sort_by(|(ca, pa), (cb, pb)| cb.cmp(ca).then_with(|| pa.cmp(pb)));
        let take = self.queue.len().min(limit).min(self.round);
        self.queue.drain(..take).map(|(_, p)| p).collect()
    }

    fn absorb(
        &mut self,
        batch: &[RunView<'_>],
        opts: &ExploreOptions,
        counters: &mut SearchCounters,
    ) {
        let mut children = Vec::new();
        for view in batch {
            if !view.fresh {
                counters.deduped += 1;
                continue;
            }
            children.clear();
            expand_children(view, opts, false, counters, &mut children);
            self.queue
                .extend(children.drain(..).map(|c| (view.cost, c)));
        }
    }

    fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// Seeded schedule fuzzer with fingerprint-coverage feedback.
///
/// The corpus holds the recorded schedules of runs that reached at
/// least one previously unseen state fingerprint. Each round mutates
/// corpus entries with the three prefix mutations from the issue
/// brief — **splice** (cross two corpus schedules), **pid-swap**
/// (replace one decision's pid) and **shift** (move one decision
/// earlier/later, which shifts where an aborter's steps land) — plus a
/// random-prefix fallback while the corpus is still tiny.
#[derive(Debug)]
pub struct FuzzStrategy {
    rng: SmallRng,
    corpus: Vec<Vec<Pid>>,
    issued: HashSet<Vec<Pid>>,
    nprocs: usize,
    max_len: usize,
    bootstrapped: bool,
}

/// Corpus cap: oldest entries are evicted first.
const FUZZ_CORPUS_CAP: usize = 128;
/// Mutants per round.
const FUZZ_ROUND: usize = 64;

impl FuzzStrategy {
    /// A fuzzer seeded with `seed`; the search is a deterministic
    /// function of it.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FuzzStrategy {
            rng: SmallRng::seed_from_u64(seed),
            corpus: Vec::new(),
            issued: HashSet::new(),
            nprocs: 2,
            max_len: 64,
            bootstrapped: false,
        }
    }

    fn mutate(&mut self, base_ix: usize) -> Vec<Pid> {
        let base = &self.corpus[base_ix];
        let mut m = base.clone();
        match self.rng.random_range(0..4) {
            // Splice: prefix of one schedule + a window of another.
            0 => {
                let other = &self.corpus[self.rng.random_range(0..self.corpus.len())];
                let cut = self.rng.random_range(0..base.len().max(1));
                let from = self.rng.random_range(0..other.len().max(1));
                let len = self.rng.random_range(1..9);
                m.truncate(cut);
                m.extend(other.iter().skip(from).take(len));
            }
            // Pid-swap: redirect one decision to another process.
            1 if !m.is_empty() => {
                let i = self.rng.random_range(0..m.len());
                m[i] = self.rng.random_range(0..self.nprocs);
            }
            // Shift: move one decision to a different position.
            2 if m.len() >= 2 => {
                let i = self.rng.random_range(0..m.len());
                let p = m.remove(i);
                let j = self.rng.random_range(0..m.len() + 1);
                m.insert(j, p);
            }
            // Fallback (and arm 3): append a short random tail.
            _ => {
                let len = self.rng.random_range(1..9);
                for _ in 0..len {
                    let p = self.rng.random_range(0..self.nprocs);
                    m.push(p);
                }
            }
        }
        m.truncate(self.max_len);
        m
    }
}

impl SearchStrategy for FuzzStrategy {
    fn name(&self) -> &'static str {
        "fuzz"
    }

    fn next_batch(&mut self, limit: usize) -> Vec<Vec<Pid>> {
        if !self.bootstrapped {
            self.bootstrapped = true;
            self.issued.insert(Vec::new());
            return vec![Vec::new()];
        }
        if self.corpus.is_empty() {
            return Vec::new();
        }
        let want = limit.min(FUZZ_ROUND);
        let mut batch = Vec::with_capacity(want);
        // A few attempts per slot: mutants that collide with an already
        // issued prefix are rerolled rather than wasted on a rerun.
        let mut attempts = want * 4;
        while batch.len() < want && attempts > 0 {
            attempts -= 1;
            let base = self.rng.random_range(0..self.corpus.len());
            let m = self.mutate(base);
            if self.issued.insert(m.clone()) {
                batch.push(m);
            }
        }
        batch
    }

    fn absorb(
        &mut self,
        batch: &[RunView<'_>],
        opts: &ExploreOptions,
        _counters: &mut SearchCounters,
    ) {
        self.max_len = opts.max_branch_depth.max(1);
        for view in batch {
            if let Some(d0) = view.record.first() {
                self.nprocs = self.nprocs.max(d0.live.len());
            }
            // Coverage feedback: a mutant earns a corpus slot by
            // reaching state fingerprints nobody reached before.
            if view.new_states > 0 {
                if self.corpus.len() == FUZZ_CORPUS_CAP {
                    self.corpus.remove(0);
                }
                self.corpus.push(view.schedule.to_vec());
            }
        }
    }

    fn pending(&self) -> usize {
        // The fuzzer generates work on demand; exhausting the run
        // budget is its natural end, not a truncation.
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(pid: Pid, kind: OpKind, word: u32, value: u64) -> StepOp {
        StepOp {
            pid,
            kind,
            word,
            value,
        }
    }

    #[test]
    fn independence_is_disjoint_words_or_read_read() {
        let r0 = op(0, OpKind::Read, 7, 1);
        let r1 = op(1, OpKind::Read, 7, 1);
        let w1 = op(1, OpKind::Write, 7, 2);
        let w1b = op(1, OpKind::Write, 8, 2);
        assert!(independent(&r0, &r1), "read-read commutes");
        assert!(!independent(&r0, &w1), "read-write on one word conflicts");
        assert!(independent(&r0, &w1b), "disjoint words commute");
        assert!(
            !independent(&r0, &op(0, OpKind::Read, 9, 0)),
            "same pid never commutes"
        );
    }

    #[test]
    fn swapped_independent_steps_share_a_fingerprint() {
        let a = [op(0, OpKind::Write, 1, 5), op(1, OpKind::Write, 2, 6)];
        let b = [op(1, OpKind::Write, 2, 6), op(0, OpKind::Write, 1, 5)];
        let fa = run_fingerprints(&[0, 1], &a);
        let fb = run_fingerprints(&[1, 0], &b);
        assert_eq!(fa.final_fp, fb.final_fp);
        // Dependent reorderings (different observed values) diverge.
        let c = [op(0, OpKind::Write, 1, 5), op(1, OpKind::Read, 1, 5)];
        let d = [op(1, OpKind::Read, 1, 0), op(0, OpKind::Write, 1, 5)];
        assert_ne!(
            run_fingerprints(&[0, 1], &c).final_fp,
            run_fingerprints(&[1, 0], &d).final_fp
        );
    }

    #[test]
    fn canonical_schedule_sorts_independent_ops_only() {
        // p1's ops are independent of p0's (disjoint words): canonical
        // form floats p0 first, keeping each process's program order.
        let ops = [
            op(1, OpKind::Write, 2, 1),
            op(0, OpKind::Write, 1, 1),
            op(1, OpKind::Write, 2, 2),
            op(0, OpKind::Write, 1, 2),
        ];
        assert_eq!(canonical_schedule(&[1, 0, 1, 0], &ops), vec![0, 0, 1, 1]);
        // A conflicting pair pins the order across processes.
        let ops = [
            op(1, OpKind::Write, 1, 1),
            op(0, OpKind::Read, 1, 1),
            op(0, OpKind::Write, 2, 9),
        ];
        assert_eq!(canonical_schedule(&[1, 0, 0], &ops), vec![1, 0, 0]);
        // Equivalent interleavings canonicalize identically.
        let e1 = [
            op(0, OpKind::Write, 1, 1),
            op(1, OpKind::Write, 2, 1),
            op(0, OpKind::Read, 2, 1),
        ];
        let e2 = [
            op(1, OpKind::Write, 2, 1),
            op(0, OpKind::Write, 1, 1),
            op(0, OpKind::Read, 2, 1),
        ];
        assert_eq!(
            canonical_schedule(&[0, 1, 0], &e1),
            canonical_schedule(&[1, 0, 0], &e2)
        );
    }

    #[test]
    fn strategy_parses_and_labels() {
        assert_eq!("bfs".parse::<Strategy>().unwrap(), Strategy::Bfs);
        assert_eq!("dpor".parse::<Strategy>().unwrap(), Strategy::Dpor);
        assert_eq!(
            "best-first".parse::<Strategy>().unwrap(),
            Strategy::BestFirst
        );
        assert_eq!(
            "fuzz".parse::<Strategy>().unwrap(),
            Strategy::Fuzz { seed: 1 }
        );
        assert!("dfs".parse::<Strategy>().is_err());
        assert_eq!(Strategy::Dpor.label(), "dpor");
    }

    #[test]
    fn fuzzer_rounds_are_seed_deterministic_and_duplicate_free() {
        let batches = |seed| {
            let mut f = FuzzStrategy::new(seed);
            assert_eq!(f.next_batch(100), vec![Vec::<Pid>::new()]);
            f.corpus = vec![vec![0, 1, 0, 1], vec![1, 1, 0]];
            f.nprocs = 2;
            let mut all = Vec::new();
            for _ in 0..3 {
                all.push(f.next_batch(16));
            }
            all
        };
        let a = batches(42);
        assert_eq!(a, batches(42), "same seed, same mutants");
        assert_ne!(a, batches(43), "different seed diverges");
        let flat: Vec<_> = a.into_iter().flatten().collect();
        let distinct: HashSet<_> = flat.iter().cloned().collect();
        assert_eq!(flat.len(), distinct.len(), "issued mutants never repeat");
    }
}
