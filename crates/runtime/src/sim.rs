//! The deterministic simulator: processes on threads, one shared-memory
//! step at a time, under a schedule policy.

use crate::events::{EventKind, EventLog};
use crate::gate::{stepped, Shutdown, StepGate, SteppedMem};
use crate::schedule::{SchedStatus, SchedulePolicy};
use sal_memory::{AbortFlag, Mem, Pid};
use sal_obs::{NoProbe, Probe};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// Options for a simulation run.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Abort the run (with [`SimError::StepLimit`]) after this many
    /// shared-memory steps — the livelock/starvation detector.
    pub max_steps: u64,
    /// `(pid, step)` pairs: set `pid`'s abort flag once the global step
    /// counter reaches `step`.
    ///
    /// Flags are delivered by the scheduler *between* steps, so a body
    /// waiting for one must keep taking shared-memory steps while it
    /// polls (e.g. a spin-read loop). A body that busy-polls only the
    /// flag, with no memory operations, never yields a scheduling point
    /// and the run cannot progress.
    pub abort_plan: Vec<(Pid, u64)>,
    /// Step-lease cap: `0` = unbounded (lease as far as the policy can
    /// see), `1` = legacy per-step scheduling (leases *and* the
    /// adaptive spin gate off — the exact pre-lease handoff, kept as
    /// the benchmarking reference), `k > 1` = at most `k` steps per
    /// grant. Every value produces the identical execution — the cap
    /// only trades scheduler round-trips against lease length. The
    /// default honors `SAL_LEASE` via [`default_lease`].
    pub lease: u64,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            max_steps: 5_000_000,
            abort_plan: Vec::new(),
            lease: default_lease(),
        }
    }
}

/// The default step-lease cap: `SAL_LEASE` if set to a parsable number,
/// else `0` (unbounded). See [`SimOptions::lease`] for the semantics.
pub fn default_lease() -> u64 {
    std::env::var("SAL_LEASE")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0)
}

/// Per-process context handed to simulation bodies.
#[derive(Debug)]
pub struct ProcCtx<'a, M: Mem + ?Sized> {
    /// This process's id.
    pub pid: Pid,
    /// The stepped memory — all algorithm operations must go through it.
    pub mem: &'a SteppedMem<'a, M>,
    /// This process's abort flag (settable externally via
    /// [`SimOptions::abort_plan`] or from the body itself).
    pub signal: &'a AbortFlag,
    /// The shared event log.
    pub log: &'a EventLog,
    gate: &'a StepGate,
}

impl<M: Mem + ?Sized> ProcCtx<'_, M> {
    /// Record an event stamped with the current global step.
    pub fn event(&self, kind: EventKind) {
        self.log.record(self.pid, self.gate.steps(), kind);
    }

    /// The global step counter (free to read; not a step).
    pub fn steps(&self) -> u64 {
        self.gate.steps()
    }
}

/// Why a simulation failed.
#[derive(Debug)]
pub enum SimError {
    /// The step limit was reached before every process finished —
    /// indicates livelock, deadlock, or starvation.
    StepLimit {
        /// Steps executed before giving up.
        steps: u64,
    },
    /// A process body panicked.
    ProcessPanicked {
        /// The panicking process.
        pid: Pid,
        /// Rendered panic payload.
        message: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::StepLimit { steps } => {
                write!(
                    f,
                    "step limit reached after {steps} steps (livelock/starvation?)"
                )
            }
            SimError::ProcessPanicked { pid, message } => {
                write!(f, "process {pid} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Result of a completed simulation.
#[derive(Debug)]
pub struct SimReport {
    /// Total shared-memory steps executed.
    pub steps: u64,
    /// Everything the bodies recorded.
    pub log: EventLog,
}

/// Run `nprocs` copies of `body` (one per process) over `mem`, with every
/// shared-memory operation scheduled by `policy`. Deterministic: the same
/// memory contents, policy, options and body yield the identical
/// execution.
///
/// The body runs on its own OS thread and must perform all shared-memory
/// accesses through `ctx.mem`; purely local computation is unrestricted.
///
/// # Errors
///
/// [`SimError::StepLimit`] if the run exceeds `opts.max_steps`;
/// [`SimError::ProcessPanicked`] if a body panics (assertion failures
/// inside bodies surface here).
pub fn simulate<M, F>(
    mem: &M,
    nprocs: usize,
    policy: Box<dyn SchedulePolicy>,
    opts: SimOptions,
    body: F,
) -> Result<SimReport, SimError>
where
    M: Mem + ?Sized,
    F: Fn(&ProcCtx<'_, M>) + Sync,
{
    simulate_probed(mem, nprocs, policy, opts, &NoProbe, body)
}

/// [`simulate`] with an observability sink: scheduler-side happenings that
/// no process can see from inside its own step sequence are reported to
/// `probe`. Currently that is abort-signal injection — each delivery from
/// [`SimOptions::abort_plan`] emits `probe.note(pid, "abort-injected",
/// step)` at the global step where the flag was set.
///
/// # Errors
///
/// Same failure modes as [`simulate`].
pub fn simulate_probed<M, F>(
    mem: &M,
    nprocs: usize,
    mut policy: Box<dyn SchedulePolicy>,
    opts: SimOptions,
    probe: &dyn Probe,
    body: F,
) -> Result<SimReport, SimError>
where
    M: Mem + ?Sized,
    F: Fn(&ProcCtx<'_, M>) + Sync,
{
    let gate = StepGate::new(nprocs);
    gate.hold_starts();
    let log = EventLog::new();
    let flags: Vec<AbortFlag> = (0..nprocs).map(|_| AbortFlag::new()).collect();
    let panics: Mutex<Vec<(Pid, String)>> = Mutex::new(Vec::new());
    let mut plan = opts.abort_plan.clone();
    plan.sort_by_key(|&(_, step)| step);

    let mut hit_step_limit = false;
    let mut policy_panic: Option<Box<dyn std::any::Any + Send>> = None;

    std::thread::scope(|scope| {
        for pid in 0..nprocs {
            let gate = &gate;
            let log = &log;
            let flags = &flags;
            let panics = &panics;
            let body = &body;
            scope.spawn(move || {
                let sm = stepped(mem, gate);
                let ctx = ProcCtx {
                    pid,
                    mem: &sm,
                    signal: &flags[pid],
                    log,
                    gate,
                };
                let result = catch_unwind(AssertUnwindSafe(|| {
                    gate.wait_start(pid);
                    body(&ctx)
                }));
                if let Err(payload) = result {
                    if !payload.is::<Shutdown>() {
                        let message = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".into());
                        panics.lock().unwrap().push((pid, message));
                        gate.shutdown();
                    }
                }
                gate.mark_finished(pid);
            });
        }

        // Serialized startup: release processes one at a time, in pid
        // order, each running until it parks at its first shared-memory
        // operation (or finishes). Startup is the only phase where
        // several process threads would otherwise run local code
        // concurrently — and that local code pushes probe events (e.g.
        // a lock's `enter_begin`) into shared logs, whose order must
        // not depend on thread timing. Consumes no steps and no policy
        // decisions.
        for p in 0..nprocs {
            gate.release_start(p);
            gate.await_settled(p);
        }

        // The scheduler runs on this thread.
        let leases_on = opts.lease != 1;
        if !leases_on {
            // Cap 1 is the reference mode: strictly one step per
            // handoff *and* park-only waits — the exact pre-lease
            // scheduler, kept for baseline benchmarking.
            gate.set_spin(false);
        }
        let mut plan_idx = 0;
        let mut finished: Vec<bool> = Vec::with_capacity(nprocs);
        loop {
            // Determinism hinges on this: only sample the policy once
            // every process is either parked at the gate or finished, so
            // the live set depends on the schedule, not thread timing.
            gate.await_all_settled();
            gate.snapshot_finished(&mut finished);
            if finished.iter().all(|&f| f) {
                break;
            }
            if gate.is_shutdown() {
                break; // a process panicked; wait for unwinding via scope join
            }
            let step = gate.steps();
            while plan_idx < plan.len() && plan[plan_idx].1 <= step {
                let pid = plan[plan_idx].0;
                flags[pid].set();
                probe.note(pid, "abort-injected", step);
                plan_idx += 1;
            }
            if step >= opts.max_steps {
                hit_step_limit = true;
                gate.shutdown();
                break;
            }
            // A panicking policy (e.g. a diverging Replay) must not be
            // allowed to unwind through the scope directly: the scope
            // would wait forever on process threads parked at the gate.
            // Catch it, shut the gate down so they unwind too, and
            // re-raise after the scope joins.
            let picked = catch_unwind(AssertUnwindSafe(|| {
                let status = SchedStatus {
                    finished: &finished,
                    step,
                };
                let p = policy.next(&status);
                let extra = if leases_on {
                    policy.peek_run(&status, p)
                } else {
                    0
                };
                (p, extra)
            }));
            let (p, mut extra) = match picked {
                Ok(x) => x,
                Err(payload) => {
                    policy_panic = Some(payload);
                    gate.shutdown();
                    break;
                }
            };
            debug_assert!(!finished[p], "policy chose a finished process");
            if extra > 0 {
                // A lease must never run past the next point where the
                // scheduler has to act: the next abort-plan delivery and
                // the step limit each need a decision point at exactly
                // the counter value the per-step loop would observe.
                if plan_idx < plan.len() {
                    extra = extra.min(plan[plan_idx].1.saturating_sub(step + 1));
                }
                extra = extra.min(opts.max_steps.saturating_sub(step + 1));
                if opts.lease > 1 {
                    extra = extra.min(opts.lease - 1);
                }
            }
            // grant_run() returns None if p finished in the meantime —
            // the loop simply re-evaluates (the policy decision is
            // consumed either way, exactly as per-step). A holder that
            // finishes mid-lease returns the remainder: only the steps
            // actually taken are committed to the policy.
            if let Some(extra_taken) = gate.grant_run(p, extra) {
                if extra_taken > 0 {
                    let committed = catch_unwind(AssertUnwindSafe(|| {
                        policy.commit_run(p, extra_taken);
                    }));
                    if let Err(payload) = committed {
                        policy_panic = Some(payload);
                        gate.shutdown();
                        break;
                    }
                }
            }
        }
    });

    if let Some(payload) = policy_panic {
        std::panic::resume_unwind(payload);
    }

    let panics = panics.into_inner().unwrap();
    if let Some((pid, message)) = panics.into_iter().next() {
        return Err(SimError::ProcessPanicked { pid, message });
    }
    if hit_step_limit {
        return Err(SimError::StepLimit {
            steps: gate.steps(),
        });
    }
    Ok(SimReport {
        steps: gate.steps(),
        log,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{RandomSchedule, RoundRobin};
    use sal_memory::{AbortSignal, MemoryBuilder};

    #[test]
    fn counter_increments_are_serialized() {
        let mut b = MemoryBuilder::new();
        let w = b.alloc(0);
        let mem = b.build_cc(4);
        let report = simulate(
            &mem,
            4,
            Box::new(RoundRobin::new()),
            SimOptions::default(),
            |ctx| {
                for _ in 0..25 {
                    ctx.mem.faa(ctx.pid, w, 1);
                }
            },
        )
        .unwrap();
        assert_eq!(mem.read(0, w), 100);
        assert_eq!(report.steps, 100);
    }

    #[test]
    fn identical_seeds_give_identical_executions() {
        // The trace is pushed outside the turn, so its *order* is racy —
        // but each entry (faa-previous-value, pid) pins exactly which
        // process took which global step, so the sorted multiset is a
        // complete fingerprint of the interleaving.
        fn run(seed: u64) -> Vec<u64> {
            let mut b = MemoryBuilder::new();
            let w = b.alloc(0);
            let order = b.alloc(0);
            let mem = b.build_cc(3);
            let trace = Mutex::new(Vec::new());
            simulate(
                &mem,
                3,
                Box::new(RandomSchedule::seeded(seed)),
                SimOptions::default(),
                |ctx| {
                    for _ in 0..10 {
                        let v = ctx.mem.faa(ctx.pid, w, 1);
                        trace.lock().unwrap().push(v * 3 + ctx.pid as u64);
                    }
                    let _ = ctx.mem.read(ctx.pid, order);
                },
            )
            .unwrap();
            let mut t = trace.into_inner().unwrap();
            t.sort_unstable();
            t
        }
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn step_limit_detects_livelock() {
        let mut b = MemoryBuilder::new();
        let w = b.alloc(0);
        let mem = b.build_cc(2);
        let err = simulate(
            &mem,
            2,
            Box::new(RoundRobin::new()),
            SimOptions {
                max_steps: 1000,
                abort_plan: vec![],
                lease: crate::sim::default_lease(),
            },
            |ctx| {
                // Process 1 waits for a word nobody ever sets.
                if ctx.pid == 1 {
                    while ctx.mem.read(ctx.pid, w) == 0 {}
                }
            },
        )
        .unwrap_err();
        assert!(matches!(err, SimError::StepLimit { .. }));
        assert!(err.to_string().contains("step limit"));
    }

    #[test]
    fn body_panics_are_reported_with_pid() {
        let mut b = MemoryBuilder::new();
        let w = b.alloc(0);
        let mem = b.build_cc(2);
        let err = simulate(
            &mem,
            2,
            Box::new(RoundRobin::new()),
            SimOptions::default(),
            |ctx| {
                ctx.mem.read(ctx.pid, w);
                if ctx.pid == 1 {
                    panic!("boom from the body");
                }
                // pid 0 spins so the shutdown path is exercised.
                while ctx.mem.read(ctx.pid, w) == 0 {}
            },
        )
        .unwrap_err();
        match err {
            SimError::ProcessPanicked { pid, message } => {
                assert_eq!(pid, 1);
                assert!(message.contains("boom"));
            }
            other => panic!("expected panic error, got {other:?}"),
        }
    }

    #[test]
    fn abort_plan_fires_at_the_requested_step() {
        let mut b = MemoryBuilder::new();
        let w = b.alloc(0);
        let mem = b.build_cc(1);
        let report = simulate(
            &mem,
            1,
            Box::new(RoundRobin::new()),
            SimOptions {
                max_steps: 100_000,
                abort_plan: vec![(0, 50)],
                lease: crate::sim::default_lease(),
            },
            |ctx| {
                // Spin until the external signal fires.
                while !ctx.signal.is_set() {
                    ctx.mem.read(ctx.pid, w);
                }
                ctx.event(EventKind::Aborted);
            },
        )
        .unwrap();
        let events = report.log.events();
        assert_eq!(events.len(), 1);
        assert!(events[0].step >= 50, "fired too early: {}", events[0].step);
        assert!(events[0].step <= 60, "fired too late: {}", events[0].step);
    }

    #[test]
    fn probed_simulation_notes_abort_injections() {
        let mut b = MemoryBuilder::new();
        let w = b.alloc(0);
        let mem = b.build_cc(2);
        let log = sal_obs::EventLog::new(64);
        simulate_probed(
            &mem,
            2,
            Box::new(RoundRobin::new()),
            SimOptions {
                max_steps: 100_000,
                abort_plan: vec![(1, 20)],
                lease: crate::sim::default_lease(),
            },
            &log,
            |ctx| {
                if ctx.pid == 1 {
                    while !ctx.signal.is_set() {
                        ctx.mem.read(ctx.pid, w);
                    }
                } else {
                    ctx.mem.read(ctx.pid, w);
                }
            },
        )
        .unwrap();
        let notes: Vec<_> = log
            .events()
            .into_iter()
            .filter(|e| matches!(e.kind, sal_obs::ObsEventKind::Note("abort-injected", _)))
            .collect();
        assert_eq!(notes.len(), 1);
        assert_eq!(notes[0].pid, 1);
    }

    #[test]
    fn lease_caps_do_not_change_the_execution() {
        // The whole point of leases: every cap value (including
        // unbounded) yields the identical interleaving, step count and
        // final memory. Bursty schedules give real multi-step leases.
        fn run(lease: u64) -> (Vec<u64>, u64, u64) {
            let mut b = MemoryBuilder::new();
            let w = b.alloc(0);
            let mem = b.build_cc(3);
            let trace = Mutex::new(Vec::new());
            let report = simulate(
                &mem,
                3,
                Box::new(crate::schedule::BurstySchedule::seeded(21, 0.9)),
                SimOptions {
                    max_steps: 1_000_000,
                    abort_plan: vec![],
                    lease,
                },
                |ctx| {
                    for _ in 0..40 {
                        let v = ctx.mem.faa(ctx.pid, w, 1);
                        trace.lock().unwrap().push(v * 3 + ctx.pid as u64);
                    }
                },
            )
            .unwrap();
            let mut t = trace.into_inner().unwrap();
            t.sort_unstable();
            (t, report.steps, mem.total_rmrs())
        }
        let reference = run(1);
        for cap in [0, 2, 4, 64] {
            assert_eq!(run(cap), reference, "lease cap {cap} diverged");
        }
    }

    #[test]
    fn abort_delivery_is_lease_exact() {
        // A solo process under round-robin peeks an unbounded run; the
        // plan-delivery cap must cut the lease so the flag lands at
        // exactly the same step as per-step scheduling.
        fn run(lease: u64) -> (u64, u64) {
            let mut b = MemoryBuilder::new();
            let w = b.alloc(0);
            let mem = b.build_cc(1);
            let report = simulate(
                &mem,
                1,
                Box::new(RoundRobin::new()),
                SimOptions {
                    max_steps: 100_000,
                    abort_plan: vec![(0, 50)],
                    lease,
                },
                |ctx| {
                    while !ctx.signal.is_set() {
                        ctx.mem.read(ctx.pid, w);
                    }
                    ctx.event(EventKind::Aborted);
                },
            )
            .unwrap();
            let events = report.log.events();
            (events[0].step, report.steps)
        }
        let reference = run(1);
        for cap in [0, 7, 64] {
            assert_eq!(run(cap), reference, "lease cap {cap} diverged");
        }
    }

    #[test]
    fn step_limit_is_lease_exact() {
        // The step limit must trip at the same counter whatever the
        // lease cap — the limit cap on lease length guarantees a
        // decision point exactly at max_steps.
        fn run(lease: u64) -> u64 {
            let mut b = MemoryBuilder::new();
            let w = b.alloc(0);
            let mem = b.build_cc(2);
            let err = simulate(
                &mem,
                2,
                Box::new(RoundRobin::new()),
                SimOptions {
                    max_steps: 997,
                    abort_plan: vec![],
                    lease,
                },
                |ctx| {
                    if ctx.pid == 1 {
                        while ctx.mem.read(ctx.pid, w) == 0 {}
                    }
                },
            )
            .unwrap_err();
            match err {
                SimError::StepLimit { steps } => steps,
                other => panic!("expected step limit, got {other:?}"),
            }
        }
        let reference = run(1);
        for cap in [0, 3, 64] {
            assert_eq!(run(cap), reference, "lease cap {cap} diverged");
        }
    }

    #[test]
    fn events_are_step_stamped_in_order() {
        let mut b = MemoryBuilder::new();
        let w = b.alloc(0);
        let mem = b.build_cc(2);
        let report = simulate(
            &mem,
            2,
            Box::new(RoundRobin::new()),
            SimOptions::default(),
            |ctx| {
                ctx.event(EventKind::EnterStart);
                ctx.mem.faa(ctx.pid, w, 1);
                ctx.event(EventKind::ExitDone);
            },
        )
        .unwrap();
        let events = report.log.events();
        assert_eq!(events.len(), 4);
        let steps: Vec<u64> = events.iter().map(|e| e.step).collect();
        let mut sorted = steps.clone();
        sorted.sort_unstable();
        assert_eq!(steps, sorted, "log must be in real-time order");
    }
}
